"""Batch execution backend for test-bed experiments.

:func:`run_testbed_batch` is the drop-in counterpart of
:func:`repro.experiments.system.run_testbed` for *many* points at once:
every point that the batch engine supports becomes a lane, lanes with
the same shape (master count, warmup, measured cycles) share one
:class:`~repro.vector.engine.VectorEngine`, and unsupported points fall
back to the scalar simulator per point — callers always get a full
result list, never a partial one.

With ``strict=True`` (the default) every engine group cross-checks its
middle lane against a freshly built scalar twin on the dense simulator
and raises :class:`~repro.vector.lanes.VectorDivergenceError` on any
metric or arbiter-state mismatch — the batch analogue of the kernel's
strict mode.
"""

from repro.arbiters.registry import make_arbiter
from repro.bus.topology import build_single_bus_system
from repro.experiments.system import (
    DEFAULT_CYCLES,
    DEFAULT_MAX_BURST,
    DEFAULT_NUM_MASTERS,
    TestbedResult,
    run_testbed,
)
from repro.traffic.classes import get_traffic_class
from repro.vector._compat import get_numpy
from repro.vector.engine import VectorEngine
from repro.vector.lanes import UnsupportedConfigError, plan_lane


class BatchRun:
    """Results plus execution stats for one :func:`run_testbed_batch`."""

    __slots__ = ("results", "fallbacks", "groups", "checked_labels")

    def __init__(self, results, fallbacks, groups, checked_labels):
        self.results = results            # TestbedResult per input point
        self.fallbacks = fallbacks        # [(index, label, reason), ...]
        self.groups = groups              # number of engine groups run
        self.checked_labels = checked_labels  # cross-checked lane labels

    @property
    def vector_points(self):
        return len(self.results) - len(self.fallbacks)

    @property
    def scalar_points(self):
        return len(self.fallbacks)


def make_testbed_builder(
    arbiter_name,
    traffic_class_name,
    weights,
    seed=1,
    max_burst=DEFAULT_MAX_BURST,
    num_masters=DEFAULT_NUM_MASTERS,
    arbiter_kwargs=None,
):
    """A zero-argument builder producing the exact ``run_testbed`` system.

    Called once at plan time (the lane adopts that build's RNG streams
    and arbiter state) and again by the strict verifier to construct an
    untouched scalar twin.
    """
    traffic_class = get_traffic_class(traffic_class_name)
    kwargs = dict(arbiter_kwargs or {})

    def build():
        arbiter = make_arbiter(arbiter_name, num_masters, weights, **kwargs)
        return build_single_bus_system(
            num_masters,
            arbiter,
            traffic_class.generator_factory(seed=seed),
            max_burst=max_burst,
        )

    return build


def _normalize_point(point):
    point = dict(point)
    spec = {
        "arbiter_name": point.pop("arbiter_name"),
        "traffic_class_name": point.pop("traffic_class_name"),
        "weights": list(point.pop("weights")),
        "cycles": point.pop("cycles", DEFAULT_CYCLES),
        "seed": point.pop("seed", 1),
        "max_burst": point.pop("max_burst", DEFAULT_MAX_BURST),
        "num_masters": point.pop("num_masters", DEFAULT_NUM_MASTERS),
        "warmup": point.pop("warmup", 0),
        "arbiter_kwargs": dict(point.pop("arbiter_kwargs", {})),
    }
    if point:
        raise TypeError(
            "unknown batch point keys: {}".format(sorted(point))
        )
    return spec


def _point_label(spec):
    return "{}/{}/seed{}".format(
        spec["arbiter_name"], spec["traffic_class_name"], spec["seed"]
    )


def _scalar_point(spec):
    return run_testbed(
        spec["arbiter_name"],
        spec["traffic_class_name"],
        list(spec["weights"]),
        cycles=spec["cycles"],
        seed=spec["seed"],
        max_burst=spec["max_burst"],
        num_masters=spec["num_masters"],
        warmup=spec["warmup"],
        **spec["arbiter_kwargs"]
    )


def run_testbed_batch(points, strict=True, block_size=32):
    """Run many test-bed points, batched; returns a :class:`BatchRun`.

    :param points: dicts with :func:`run_testbed`-shaped keys
        (``arbiter_name``, ``traffic_class_name``, ``weights``, and
        optionally ``cycles``/``seed``/``max_burst``/``num_masters``/
        ``warmup``/``arbiter_kwargs``).
    :param strict: cross-check one sampled lane per engine group against
        the dense scalar simulator (raises
        :class:`~repro.vector.lanes.VectorDivergenceError` on any
        divergence).
    :param block_size: LFSR samples pre-drawn per refill block.

    Raises :class:`~repro.vector._compat.VectorUnavailableError` when
    numpy is missing; unsupported *configurations* never raise — those
    points silently run on the scalar engine (see ``BatchRun.fallbacks``
    for which, and why).  Results carry a ``backend`` attribute
    (``"vector"`` or ``"scalar"``) and are bit-identical either way.
    """
    get_numpy()
    specs = [_normalize_point(point) for point in points]
    groups = {}
    fallbacks = []
    for index, spec in enumerate(specs):
        builder = make_testbed_builder(
            spec["arbiter_name"],
            spec["traffic_class_name"],
            list(spec["weights"]),
            seed=spec["seed"],
            max_burst=spec["max_burst"],
            num_masters=spec["num_masters"],
            arbiter_kwargs=spec["arbiter_kwargs"],
        )
        label = _point_label(spec)
        try:
            plan = plan_lane(builder, label=label)
        except UnsupportedConfigError as exc:
            fallbacks.append((index, label, str(exc)))
            continue
        key = (spec["num_masters"], spec["warmup"], spec["cycles"])
        groups.setdefault(key, []).append((index, spec, plan))

    results = [None] * len(specs)
    checked_labels = []
    for (_, warmup, cycles), members in groups.items():
        engine = VectorEngine(
            [plan for _, _, plan in members], block_size=block_size
        )
        if warmup:
            engine.run(warmup)
            engine.reset_metrics()
        engine.run(cycles)
        if strict:
            lane = len(members) // 2
            engine.cross_check(lane)
            checked_labels.append(members[lane][2].label)
        for lane, (index, spec, _) in enumerate(members):
            result = TestbedResult(
                spec["arbiter_name"],
                spec["traffic_class_name"],
                spec["weights"],
                engine.lane_summary(lane),
            )
            result.backend = "vector"
            results[index] = result
    for index, _, _ in fallbacks:
        result = _scalar_point(specs[index])
        result.backend = "scalar"
        results[index] = result
    return BatchRun(results, fallbacks, len(groups), checked_labels)
