"""Durable design-space-exploration service (``python -m repro.service``).

The campaign engine (PR 4/6) runs one supervised campaign and exits;
this package wraps it in a **long-running server** so many concurrent
clients can sweep LOTTERYBUS arbiter/ticket configurations against one
warm content-addressed cache:

* :mod:`repro.service.models` — experiment/sweep submission specs with
  strict validation and a typed :class:`~repro.service.models.ServiceError`
  taxonomy that maps one-to-one onto HTTP statuses;
* :mod:`repro.service.wal` — the append-only, CRC32-stamped
  write-ahead log every job state transition goes through *before* the
  in-memory queue changes, so a ``kill -9`` at any byte offset recovers
  by per-record CRC-validated replay (torn tail truncated, interior
  damage skipped and counted) with no lost or duplicated jobs;
* :mod:`repro.service.queue` — the WAL-backed job state machine
  (``submitted → leased → running → done/failed/quarantined``) with
  idempotency keys, a bounded queue and admission control;
* :mod:`repro.service.engine` — the lease/worker loop delegating
  execution to the PR 6 :class:`~repro.experiments.supervisor.Supervisor`
  (timeouts, retries, heartbeats, quarantine, circuit breaker);
* :mod:`repro.service.core` — the framework-agnostic request API both
  front-ends dispatch into;
* :mod:`repro.service.http` — the dependency-free stdlib HTTP server
  (graceful SIGTERM drain, exit 143, resumable state);
* :mod:`repro.service.app` — the FastAPI/pydantic front-end (optional
  ``service`` extra) exposing the same core;
* :mod:`repro.service.client` — a stdlib client used by the chaos
  harness, the benchmark and the tests.
"""

from repro.service.core import ServiceCore
from repro.service.engine import ServiceEngine
from repro.service.models import (
    JobSpec,
    JobState,
    ServiceError,
    validate_submission,
    validate_sweep,
)
from repro.service.queue import JobQueue
from repro.service.wal import JobWAL

__all__ = [
    "JobSpec",
    "JobState",
    "JobQueue",
    "JobWAL",
    "ServiceCore",
    "ServiceEngine",
    "ServiceError",
    "validate_submission",
    "validate_sweep",
]
