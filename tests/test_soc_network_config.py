"""Tests for declarative multi-channel network construction."""

import pytest

from repro.soc.config import ConfigError
from repro.soc.network_config import build_network


def two_channel_spec():
    return {
        "seed": 3,
        "channels": [
            {"name": "sys", "arbiter": "lottery-static", "max_burst": 8},
            {"name": "periph", "arbiter": "round-robin"},
        ],
        "bridges": [{"from": "sys", "to": "periph", "weight": 2}],
        "masters": [
            {
                "name": "cpu",
                "channel": "sys",
                "weight": 3,
                "traffic": {
                    "kind": "closedloop",
                    "words": {"kind": "fixed", "words": 4},
                },
                "target": "sram",
            },
            {"name": "dma", "channel": "periph", "weight": 1},
        ],
        "slaves": [
            {"name": "sram", "channel": "sys"},
            {"name": "uart", "channel": "periph", "setup_wait_states": 2},
        ],
    }


def test_network_builds_and_runs():
    net, system = build_network(two_channel_spec())
    system.run(2000)
    assert net.bus("sys").metrics.total_words > 0


def test_cross_channel_submission_routes():
    net, system = build_network(two_channel_spec())
    net.submit("cpu", "uart", words=4, cycle=0)
    system.run(100)
    assert net.bus("periph").metrics.total_words == 4


def test_channel_weights_cover_bridges():
    net, system = build_network(two_channel_spec())
    # periph channel masters: bridge (weight 2) then dma (weight 1).
    periph = net.bus("periph")
    assert len(periph.masters) == 2


def test_lottery_channel_uses_declared_weights():
    spec = two_channel_spec()
    net, system = build_network(spec)
    sys_bus = net.bus("sys")
    # Single master (cpu, weight 3) on sys: lottery built with [3].
    assert sys_bus.arbiter.manager.requested_tickets.tickets == (3,)


def test_generator_target_must_be_local():
    spec = two_channel_spec()
    spec["masters"][0]["target"] = "uart"  # on the other channel
    with pytest.raises(ConfigError, match="own channel"):
        build_network(spec)


def test_traffic_requires_target():
    spec = two_channel_spec()
    spec["masters"][0]["target"] = None
    with pytest.raises(ConfigError, match="needs a target"):
        build_network(spec)


def test_unknown_target_rejected():
    spec = two_channel_spec()
    spec["masters"][0]["target"] = "rom"
    with pytest.raises(ConfigError, match="unknown target"):
        build_network(spec)


def test_slave_wait_states_applied():
    net, system = build_network(two_channel_spec())
    periph = net.bus("periph")
    uart = next(s for s in periph.slaves if s.name == "uart")
    assert uart.setup_wait_states == 2


def test_bad_weight_rejected():
    spec = two_channel_spec()
    spec["masters"][1]["weight"] = 0
    with pytest.raises(ConfigError, match="weight"):
        build_network(spec)


def test_empty_channels_rejected():
    with pytest.raises(ConfigError):
        build_network({"channels": [], "masters": [], "slaves": []})
