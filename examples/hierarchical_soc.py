"""A hierarchical two-bus SoC with a lottery manager per channel.

Section 4.1: "The proposed architecture does not presume any fixed
topology ... the components may be interconnected by an arbitrary
network of shared channels."  This example builds:

* a high-speed system bus: CPU + DSP masters, a local SRAM, and a
  bridge down to the peripheral bus;
* a peripheral bus: the bridge (as master) + a DMA engine, sharing a
  peripheral memory;
* an independent LOTTERYBUS manager on each channel.

CPU traffic targeting the peripheral memory crosses the bridge; the
script reports per-channel utilization and the end-to-end latency of
bridged transactions.

Run:  python examples/hierarchical_soc.py
"""

from repro import (
    Bridge,
    BusSystem,
    MasterInterface,
    SharedBus,
    Slave,
    StaticLotteryArbiter,
)
from repro.bus.bridge import BridgeTag
from repro.metrics.report import format_table
from repro.sim.component import Component
from repro.sim.rng import RandomStream
from repro.traffic.generator import ClosedLoopGenerator
from repro.traffic.message import UniformWords

LOCAL_SRAM, BRIDGE_SLAVE = 0, 1


class CpuWithPeripheralTraffic(Component):
    """Closed-loop CPU: 70% local SRAM accesses, 30% cross the bridge."""

    def __init__(self, name, interface, seed):
        super().__init__(name)
        self.interface = interface
        self._rng = RandomStream(seed, "cpu:" + name)
        self.issued_bridge_requests = 0

    def tick(self, cycle):
        if self.interface.queue_depth > 0:
            return
        words = self._rng.randint(2, 8)
        if self._rng.random() < 0.3:
            self.interface.submit(
                words, cycle, slave=BRIDGE_SLAVE,
                tag=BridgeTag(remote_slave=0, payload=cycle),
            )
            self.issued_bridge_requests += 1
        else:
            self.interface.submit(words, cycle, slave=LOCAL_SRAM)


def main():
    # System bus: CPU (m0), DSP (m1); slaves: SRAM (s0), bridge (s1).
    cpu_if = MasterInterface("cpu", 0)
    dsp_if = MasterInterface("dsp", 1)
    bridge_master = MasterInterface("bridge.master", 0)
    bridge = Bridge("bridge", slave_id=BRIDGE_SLAVE, far_master=bridge_master)
    system_bus = SharedBus(
        "system_bus",
        [cpu_if, dsp_if],
        StaticLotteryArbiter(tickets=[3, 1], lfsr_seed=2),
        slaves=[Slave("sram", LOCAL_SRAM), bridge],
        max_burst=8,
    )
    bridge.attach(system_bus)

    # Peripheral bus: bridge (m0) + DMA (m1); slave: peripheral memory.
    dma_if = MasterInterface("dma", 1)
    peripheral_bus = SharedBus(
        "peripheral_bus",
        [bridge_master, dma_if],
        StaticLotteryArbiter(tickets=[2, 1], lfsr_seed=3),
        slaves=[Slave("peripheral_mem", 0, setup_wait_states=2)],
        max_burst=8,
    )

    # End-to-end latency of bridged transactions: the BridgeTag payload
    # carries the CPU's issue cycle.
    bridged_latencies = []
    peripheral_bus.add_completion_hook(
        lambda request, cycle: bridged_latencies.append(cycle - request.tag)
        if isinstance(request.tag, int)
        else None
    )

    system = BusSystem()
    cpu = CpuWithPeripheralTraffic("cpu.gen", cpu_if, seed=1)
    system.add_generator(cpu)
    system.add_generator(
        ClosedLoopGenerator("dsp.gen", dsp_if, UniformWords(4, 8), 2, seed=2)
    )
    system.add_generator(
        ClosedLoopGenerator("dma.gen", dma_if, UniformWords(8, 16), 4, seed=3)
    )
    system.add_generator(bridge)  # forwards completed near-bus requests
    system.add_bus(system_bus)
    system.add_bus(peripheral_bus)
    system.run(100_000)

    rows = [
        [
            "system bus",
            "{:.1%}".format(system_bus.metrics.utilization()),
            "CPU {:.1%} / DSP {:.1%}".format(
                *system_bus.metrics.bandwidth_shares()
            ),
        ],
        [
            "peripheral bus",
            "{:.1%}".format(peripheral_bus.metrics.utilization()),
            "bridge {:.1%} / DMA {:.1%}".format(
                *peripheral_bus.metrics.bandwidth_shares()
            ),
        ],
    ]
    print(format_table(["channel", "utilization", "share split"], rows,
                       title="Hierarchical SoC with per-channel lottery managers"))
    print()
    print("bridged transactions completed : {}".format(len(bridged_latencies)))
    print(
        "mean end-to-end bridged latency: {:.1f} cycles".format(
            sum(bridged_latencies) / len(bridged_latencies)
        )
    )


if __name__ == "__main__":
    main()
