"""FastAPI front-end parity tests (skipped when the extra is absent).

The stdlib server is the canonical front-end; these tests only assert
that the optional FastAPI app dispatches into the *same* core with the
same statuses, so the two transports cannot drift apart.  They are
skipped cleanly in environments without the ``service`` extra.
"""

import os

import pytest

fastapi = pytest.importorskip("fastapi")
testclient = pytest.importorskip("fastapi.testclient")

from repro.service.app import create_app  # noqa: E402
from repro.service.core import ServiceCore  # noqa: E402

SCALE = 0.05


@pytest.fixture
def app_client(tmp_path):
    core = ServiceCore(
        os.path.join(str(tmp_path), "state"),
        cache_dir=os.path.join(str(tmp_path), "cache"),
        workers=2, timeout=60,
    )
    app = create_app(core)
    with testclient.TestClient(app) as client:
        yield client
    core.close()


def test_submit_and_result_roundtrip(app_client):
    response = app_client.post(
        "/jobs",
        json={"experiment": "figure5", "scale": SCALE, "seed": 71},
    )
    assert response.status_code == 202
    job_id = response.json()["job"]
    deadline = 120
    import time
    start = time.monotonic()
    while True:
        result = app_client.get("/jobs/{}/result".format(job_id))
        if result.status_code != 202:
            break
        assert time.monotonic() - start < deadline
        time.sleep(0.2)
    assert result.status_code == 200
    assert "Figure 5" in result.json()["report"]


def test_pydantic_shape_check_and_core_semantics(app_client):
    # Shape defects are caught by pydantic (FastAPI's 422)...
    response = app_client.post(
        "/jobs", json={"experiment": "figure5", "wat": 1}
    )
    assert response.status_code == 422
    # ...semantic defects still come from the shared core (400).
    response = app_client.post("/jobs", json={"experiment": "no-such"})
    assert response.status_code == 400
    assert response.json()["kind"] == "unknown-experiment"


def test_probes_and_stats(app_client):
    assert app_client.get("/healthz").status_code == 200
    ready = app_client.get("/readyz")
    assert ready.status_code == 200 and ready.json()["ready"]
    stats = app_client.get("/stats")
    assert stats.status_code == 200
    assert "wal_appended" in stats.json()
