# lb: module=repro.sim.fixture_guarded
"""LB201 true negative: every cross-thread access holds the same lock."""

import threading


class Tracker:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0

    def start(self):
        worker = threading.Thread(target=self._worker, daemon=True)
        worker.start()
        return worker

    def _worker(self):
        for _ in range(1000):
            with self._lock:
                self.count += 1

    def snapshot(self):
        with self._lock:
            return self.count
