"""Supervised, crash-safe parallel execution of experiment campaigns.

``lotterybus all`` runs every registry experiment.  At paper scale that
is hours of simulation, so the campaign must saturate the machine and
survive worker crashes, hangs, and outright loss of the supervising
process:

* tasks run on a **persistent, preloaded worker pool**: each worker
  process imports the ``repro`` experiment stack once, then serves any
  number of tasks over a duplex pipe, so per-task cost is one pickle
  round-trip instead of a fresh interpreter + import per task;
* dispatch is **deterministic**: tasks are independent, seeded points
  dispatched in submission order and assembled in campaign order, so
  ``--jobs N`` produces bit-identical campaign results to ``--jobs 1``
  regardless of which worker ran what when;
* each task has a wall-clock **timeout** — an expired worker is
  terminated (and replaced) and the task treated like a crash;
* crashed and timed-out tasks are **retried** a bounded number of times
  with exponential backoff, and checkpoint-aware experiments resume
  their retries from their own stage checkpoints instead of starting
  over.  A worker that merely *reports* an error (an exception inside
  the task) stays alive and keeps serving tasks; only a dying process
  costs a respawn;
* finished reports land in an append-only **JSONL result store** whose
  records are flushed, fsynced and CRC-stamped, so a SIGKILL between
  tasks loses at most the task in flight, a torn or corrupted tail is
  truncated back to the last valid record on load, and ``--resume``
  skips everything recorded;
* finished reports are also published to a **content-addressed result
  cache** (:mod:`repro.experiments.cache`) keyed by (experiment id,
  config, seed, schema version), so rerunning an unchanged point in a
  *later* campaign is a cache hit instead of a simulation;
* pool workers send **heartbeats** on a side thread, so a worker that
  is alive but wedged (stopped, swapped out, pipe stalled) is detected,
  killed and respawned instead of hanging the campaign;
* a task that kills ``quarantine_after`` consecutive workers is
  **quarantined** — reported as failed with a
  :class:`~repro.experiments.errors.QuarantinedTaskError` — instead of
  being retried forever (the poison-task guard);
* a **circuit breaker** watches respawn churn: after
  ``circuit_breaker`` consecutive worker crashes with no intervening
  success, the pool is torn down and the campaign degrades to serial
  in-process execution (tasks with a crash history still run in
  one-shot containment subprocesses, so a poison task can never take
  the supervisor down);
* **SIGTERM drains gracefully**: in-flight tasks finish (their stage
  checkpoints are already on disk), nothing new is dispatched, and
  :class:`~repro.experiments.errors.CampaignDrained` tells the caller
  to exit 143 — a later ``--resume`` is bit-identical to a run that
  was never interrupted.

Failures are typed (:mod:`repro.experiments.errors`): retry policy,
quarantine accounting and event-log tags are driven by the error class,
not by string matching.

The infrastructure-fault seams (``chaos=`` on :class:`Supervisor`,
:class:`ResultStore` and :class:`~repro.experiments.cache.ResultCache`)
accept a :class:`repro.chaos.ChaosInjector`, which schedules worker
SIGKILL/SIGSTOP, torn store appends, cache corruption and disk-full
errors from a seeded plan; ``python -m repro.chaos`` drives a campaign
under such a schedule and verifies the final report is bit-identical to
a fault-free serial run.

Experiments are deterministic given (name, scale, seed), so a resumed,
cached, or differently-parallel campaign's combined report is
byte-identical to a serial uninterrupted one.

:func:`pool_map` exposes the same pool to intra-experiment fan-out
(sweep points, figure surfaces, replication chunks): call a module-level
function over a list of argument tuples and get results back in
submission order.

Legacy note: constructing a :class:`Supervisor` with a custom
``worker=`` entry point (the pre-pool injection seam) still runs one
process per task with the injected function; the pool engages for the
default worker, where reuse is safe by construction.
"""

import json
import multiprocessing
import os
import signal
import threading
import time
import zlib
from collections import deque
from multiprocessing.connection import wait as _wait_connections

from repro.experiments.cache import (
    ResultCache,
    canonical_json,
    experiment_key,
)
from repro.experiments.errors import (
    CampaignDrained,
    CampaignError,
    QuarantinedTaskError,
    StoreCorruptionError,
    TaskError,
    TaskTimeoutError,
    WorkerCrashError,
)
from repro.experiments.runner import experiment_names, run_experiment


def default_jobs():
    """CPU-count-aware worker default.

    Prefers ``os.process_cpu_count()`` (Python 3.13+, respects CPU
    affinity) and falls back to ``os.cpu_count()``; never below 1.
    """
    counter = getattr(os, "process_cpu_count", None)
    count = counter() if counter is not None else None
    if not count:
        count = os.cpu_count()
    return count or 1


class TaskOutcome:
    """What the supervisor concluded about one task.

    ``error`` is the human-readable message (a string, stable for
    existing consumers); ``error_kind`` is the machine-readable tag of
    the :class:`~repro.experiments.errors.CampaignError` subclass that
    settled the task, so logs and exit-code policy key on types.
    """

    def __init__(self, name, status, report=None, error=None, attempts=1,
                 cached=False, error_kind=None):
        self.name = name
        self.status = status  # "done" | "failed"
        self.report = report
        self.error = error
        self.attempts = attempts
        self.cached = cached
        self.error_kind = error_kind

    def record(self):
        return {
            "name": self.name,
            "status": self.status,
            "report": self.report,
            "error": self.error,
            "error_kind": self.error_kind,
            "attempts": self.attempts,
        }


class ResultStore:
    """Append-only JSONL store of per-task outcomes.

    Appends are flushed and fsynced so a completed task survives any
    later crash, and every record carries a CRC32 of its canonical form
    so corruption (a flipped byte, not just a torn tail) is *detected*
    rather than silently resumed from.

    :meth:`load` is crash-consistent: the store is read as the longest
    valid prefix of records.  A torn trailing line (the one write a
    SIGKILL can interrupt) or a corrupt record ends the prefix — the
    file is truncated back to the last valid record (so later appends
    cannot concatenate onto torn bytes), the loss is surfaced through
    ``recovered_records`` / ``recovered_bytes``, and the affected tasks
    simply rerun.  Corruption never raises out of :meth:`load`; only an
    unreadable-but-present file (permissions, I/O error) raises
    :class:`~repro.experiments.errors.StoreCorruptionError`.

    :param chaos: optional :class:`repro.chaos.ChaosInjector`; when
        given, appends may be deliberately torn or rejected with
        ``ENOSPC`` so chaos campaigns prove the recovery path.
    """

    def __init__(self, path, chaos=None):
        self.path = path
        self.chaos = chaos
        self.recovered_records = 0  # records dropped by the last load()
        self.recovered_bytes = 0  # bytes truncated by the last load()

    def load(self, repair=True):
        """{name: record} for every successfully recorded task.

        With ``repair=True`` (the default) a torn or corrupt tail is
        physically truncated off the file; ``repair=False`` only skips
        it for this load.
        """
        self.recovered_records = 0
        self.recovered_bytes = 0
        completed = {}
        try:
            with open(self.path, "rb") as handle:
                raw = handle.read()
        except FileNotFoundError:
            return completed
        except OSError as error:
            raise StoreCorruptionError(
                "cannot read result store {}: {}".format(self.path, error)
            )
        records, valid_end = self._valid_prefix(raw)
        dropped = raw[valid_end:]
        if dropped:
            self.recovered_bytes = len(dropped)
            self.recovered_records = sum(
                1 for line in dropped.split(b"\n") if line.strip()
            )
            if repair:
                self._truncate_to(valid_end)
        for record in records:
            if (
                record.get("status") == "done"
                and isinstance(record.get("name"), str)
            ):
                completed[record["name"]] = record
        return completed

    def _valid_prefix(self, raw):
        """Parse the longest valid record prefix of the raw bytes.

        Returns ``(records, end_offset)`` where ``end_offset`` is the
        byte offset just past the last valid record — the truncation
        point that recovery rewinds the file to.
        """
        records = []
        valid_end = 0
        offset = 0
        while offset < len(raw):
            newline = raw.find(b"\n", offset)
            if newline == -1:
                line, end = raw[offset:], len(raw)
            else:
                line, end = raw[offset:newline], newline + 1
            line = line.strip()
            if line:
                record = self._parse_record(line)
                if record is None:
                    break
                records.append(record)
            valid_end = end
            offset = end
        return records, valid_end

    @staticmethod
    def _parse_record(line):
        """One validated record, or ``None`` for torn/corrupt bytes."""
        try:
            record = json.loads(line.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return None  # torn/corrupt line: it ends the valid prefix
        if not isinstance(record, dict):
            return None
        crc = record.pop("_crc", None)
        if not isinstance(crc, int):
            return None
        payload = canonical_json(record).encode("utf-8")
        if zlib.crc32(payload) != crc:
            return None
        return record

    def _truncate_to(self, size):
        try:
            with open(self.path, "r+b") as handle:
                handle.truncate(size)
                handle.flush()
                os.fsync(handle.fileno())
        except OSError:
            pass  # repair is best-effort; load already skipped the tail

    def append(self, record):
        """Append one record (flushed, fsynced, CRC-stamped).

        If a previous append was torn (file does not end in a newline —
        a crash mid-write), a newline is inserted first so the new
        record can never be glued onto torn bytes and lost with them.
        """
        record = dict(record)
        record.pop("_crc", None)
        record["_crc"] = zlib.crc32(canonical_json(record).encode("utf-8"))
        data = (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
        if self.chaos is not None:
            data = self.chaos.mangle_store_append(data)
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(self.path, "ab") as handle:
            if handle.tell() > 0 and not self._ends_with_newline():
                handle.write(b"\n")
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())

    def _ends_with_newline(self):
        try:
            with open(self.path, "rb") as handle:
                handle.seek(-1, os.SEEK_END)
                return handle.read(1) == b"\n"
        except OSError:
            return True

    def clear(self):
        try:
            os.unlink(self.path)
        except OSError:
            pass  # a missing store is already "cleared"


class TaskSpec:
    """One supervised unit of work: a single registry experiment."""

    def __init__(self, name, scale=1.0, seed=1, options=None,
                 checkpoint_dir=None, checkpoint_every=None, resume=False):
        self.name = name
        self.scale = scale
        self.seed = seed
        self.options = dict(options or {})
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_every = checkpoint_every
        self.resume = resume


def run_task_spec(spec, resume):
    """Execute one task spec in-process; returns the report text.

    Shared by the per-task legacy worker and every pool worker, so both
    execution modes produce byte-identical reports.
    """
    kwargs = dict(spec.options)
    if spec.checkpoint_dir is not None:
        from repro.experiments.checkpoint import task_checkpointer

        kwargs["checkpointer"] = task_checkpointer(
            spec.checkpoint_dir,
            every=spec.checkpoint_every,
            resume=resume,
        )
    result = run_experiment(
        spec.name, scale=spec.scale, seed=spec.seed,
        _warn_seedless=False, **kwargs
    )
    return result.format_report()


def _die_with_parent():
    """Linux: SIGKILL this worker the moment its parent process dies.

    Forked workers inherit each other's pipe file descriptors, so after
    a ``kill -9`` of the parent the orphans can keep every pipe open
    among themselves — ``conn.recv()`` never sees EOF and the orphans
    linger forever, still holding inherited sockets (which blocks a
    service restart from rebinding its port).  ``PR_SET_PDEATHSIG``
    severs that: no parent, no workers, no leaked listeners.
    """
    try:
        import ctypes

        libc = ctypes.CDLL(None, use_errno=True)
        libc.prctl(1, signal.SIGKILL, 0, 0, 0)  # 1 = PR_SET_PDEATHSIG
    except (OSError, AttributeError, ValueError, TypeError):
        return  # non-Linux: orphan cleanup falls back to pipe EOF
    if os.getppid() == 1:
        # The parent died in the fork-to-prctl window; the death signal
        # will never fire, so leave now instead of lingering as the
        # orphan the prctl was meant to prevent.
        os._exit(1)


def _worker_main(conn, spec, resume):
    """Run one experiment and send ("ok", report) or ("error", message).

    The legacy process-per-task entry point; the parent interprets
    silence plus a nonzero exit code as a crash.
    """
    _die_with_parent()
    try:
        conn.send(("ok", run_task_spec(spec, resume)))
    except BaseException as error:  # the parent needs the reason, always
        try:
            conn.send(
                ("error", "{}: {}".format(type(error).__name__, error))
            )
        except (OSError, ValueError):
            pass  # parent pipe is gone; the raise still ends the worker
        raise
    finally:
        conn.close()


def _heartbeat_sender(conn, lock, interval, stop):
    """Side thread: prove the worker process is scheduling.

    A wedged worker (SIGSTOPped, swapped to death, stalled on a dead
    pipe) stops beating; the parent's liveness check then kills and
    replaces it.  Send failures mean the parent is gone — just stop.
    """
    while not stop.wait(interval):
        try:
            with lock:
                conn.send(("heartbeat",))
        except (OSError, ValueError, BrokenPipeError):
            return  # the parent is gone; stop beating


def _pool_worker_main(conn, task_runner, heartbeat_interval=None,
                      chaos_setup=None):
    """A persistent pool worker: preload once, serve tasks until told
    to stop.

    Protocol (parent -> worker): ``("task", spec, resume)``,
    ``("call", func, args, kwargs)``, ``("stop",)``.
    Worker -> parent: ``("ok", payload)``, ``("error", message)``, plus
    unsolicited ``("heartbeat",)`` frames from a side thread when
    ``heartbeat_interval`` is set.

    An exception inside a task is *reported*, not fatal — the worker
    stays warm for the next task.  Only process death (os._exit, OOM
    kill, signal) costs the supervisor a respawn.

    ``chaos_setup`` is the worker half of the infrastructure-fault
    seam: ``(plan_state, seed, worker_id)`` installs a seeded
    write-fault hook (ENOSPC, checkpoint corruption) into
    :mod:`repro.ioutil` before any task runs.
    """
    _die_with_parent()
    # The expensive part of a fresh worker is importing the experiment
    # stack; do it exactly once, before the first task arrives.
    import repro.experiments.runner  # noqa: F401  (preload)

    if chaos_setup is not None:
        from repro.chaos.injector import install_worker_chaos

        install_worker_chaos(*chaos_setup)

    send_lock = threading.Lock()
    stop_beating = threading.Event()
    if heartbeat_interval is not None:
        threading.Thread(
            target=_heartbeat_sender,
            args=(conn, send_lock, heartbeat_interval, stop_beating),
            daemon=True,
        ).start()

    def send(message):
        with send_lock:
            conn.send(message)

    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        kind = message[0]
        if kind == "stop":
            break
        try:
            if kind == "task":
                _, spec, resume = message
                send(("ok", task_runner(spec, resume)))
            elif kind == "call":
                _, func, args, kwargs = message
                send(("ok", func(*args, **(kwargs or {}))))
            else:
                send(("error", "unknown message {!r}".format(kind)))
        except KeyboardInterrupt:
            break
        except BaseException as error:
            try:
                send(("error", "{}: {}".format(type(error).__name__, error)))
            except (OSError, ValueError):
                break
    stop_beating.set()
    conn.close()


class _PoolWorker:
    """Parent-side handle for one persistent worker process."""

    _next_id = 0

    def __init__(self, context, task_runner, heartbeat_interval=None,
                 worker_chaos=None):
        _PoolWorker._next_id += 1
        self.id = _PoolWorker._next_id
        chaos_setup = (
            None if worker_chaos is None
            else tuple(worker_chaos) + (self.id,)
        )
        parent_conn, child_conn = context.Pipe(duplex=True)
        self.conn = parent_conn
        self.process = context.Process(
            target=_pool_worker_main,
            args=(child_conn, task_runner, heartbeat_interval, chaos_setup),
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        self.tasks_done = 0
        self.last_heartbeat = time.monotonic()

    def send(self, message):
        self.conn.send(message)

    def poll_message(self):
        """The next pending non-heartbeat message, or ``None``.

        Heartbeat frames are consumed here (refreshing
        ``last_heartbeat``); a broken pipe surfaces as ``("crashed",)``
        so callers fold it into the worker-death path.
        """
        while True:
            try:
                if not self.conn.poll():
                    return None
                message = self.conn.recv()
            except (EOFError, OSError):
                return ("crashed",)
            if message[0] == "heartbeat":
                self.last_heartbeat = time.monotonic()
                continue
            return message

    def alive(self):
        return self.process.is_alive()

    def stop(self, grace=2.0):
        """Ask the worker to exit; escalate to terminate/kill."""
        if self.process.is_alive():
            try:
                self.conn.send(("stop",))
            except (OSError, ValueError, BrokenPipeError):
                pass  # pipe is dead; terminate()/kill below still reap it
        try:
            self.conn.close()
        except OSError:
            pass  # already closed
        self.process.join(timeout=grace)
        self.terminate()

    def terminate(self):
        if not self.process.is_alive():
            self.process.join(timeout=0.1)
            return
        self.process.terminate()
        self.process.join(timeout=2.0)
        if self.process.is_alive():
            self.process.kill()
            self.process.join()


class WorkerPool:
    """A set of persistent worker processes sharing one task protocol.

    :param jobs: maximum concurrent workers (spawned lazily).
    :param task_runner: the in-worker task executor (injectable for
        tests); must be a module-level callable.
    :param heartbeat_interval: seconds between worker heartbeat frames
        (``None`` disables heartbeats — e.g. :func:`pool_map`, whose
        protocol has no liveness checks).
    :param worker_chaos: ``(plan_state, seed)`` installing worker-side
        infrastructure faults; each spawned worker derives its own
        stream from its worker id.
    """

    def __init__(self, jobs=None, task_runner=run_task_spec, context=None,
                 heartbeat_interval=None, worker_chaos=None):
        if jobs is None:
            jobs = default_jobs()
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.task_runner = task_runner
        self.heartbeat_interval = heartbeat_interval
        self.worker_chaos = worker_chaos
        self._context = context or multiprocessing.get_context()
        self.idle = []
        self.spawned = 0

    def checkout(self, active):
        """An idle worker, or a fresh one if under the jobs cap.

        ``active`` is the number of workers currently busy; returns
        ``None`` when the pool is saturated.
        """
        while self.idle:
            worker = self.idle.pop(0)
            if worker.alive():
                return worker
            worker.terminate()
        if active + len(self.idle) < self.jobs:
            self.spawned += 1
            return _PoolWorker(
                self._context, self.task_runner,
                heartbeat_interval=self.heartbeat_interval,
                worker_chaos=self.worker_chaos,
            )
        return None

    def checkin(self, worker):
        """Return a worker after a served task (alive workers only)."""
        worker.tasks_done += 1
        if worker.alive():
            self.idle.append(worker)
        else:
            worker.terminate()

    def discard(self, worker):
        """Drop a crashed / timed-out worker permanently."""
        worker.terminate()
        try:
            worker.conn.close()
        except OSError:
            pass  # already closed

    def stop(self):
        for worker in self.idle:
            worker.stop()
        self.idle = []

    def terminate_all(self, extra=()):
        for worker in list(self.idle) + list(extra):
            worker.terminate()
        self.idle = []


def pool_map(func, calls, jobs=None, task_runner=run_task_spec):
    """Apply a module-level ``func`` over argument tuples, in parallel.

    The intra-experiment fan-out primitive: sweep points, figure
    surface cells and replication chunks are pure functions of their
    arguments, so results depend only on ``calls`` — never on ``jobs``
    or scheduling — and are returned in submission order.  ``jobs`` of
    ``None`` or 1 runs inline (no processes); errors raise
    :class:`RuntimeError` with the worker's message.
    """
    calls = [tuple(call) for call in calls]
    if jobs is None or jobs <= 1 or len(calls) <= 1:
        return [func(*call) for call in calls]
    pool = WorkerPool(jobs=min(jobs, len(calls)), task_runner=task_runner)
    results = [None] * len(calls)
    busy = {}  # worker -> call index
    next_index = 0
    try:
        while next_index < len(calls) or busy:
            while next_index < len(calls):
                worker = pool.checkout(len(busy))
                if worker is None:
                    break
                worker.send(("call", func, calls[next_index], None))
                busy[worker] = next_index
                next_index += 1
            ready = _wait_connections(
                [worker.conn for worker in busy], timeout=0.05
            )
            for worker in list(busy):
                if worker.conn not in ready and worker.alive():
                    continue
                index = busy[worker]
                try:
                    status, payload = worker.conn.recv()
                except (EOFError, OSError):
                    status, payload = None, None
                del busy[worker]
                if status == "ok":
                    results[index] = payload
                    pool.checkin(worker)
                    continue
                pool.discard(worker)
                # pool_map is the low-level fan-out seam (preload and
                # benchmarks), documented to raise RuntimeError; the
                # campaign retry/quarantine machinery never calls it —
                # Supervisor.run has its own dispatch loop.
                raise RuntimeError(  # lb: noqa[LB204]
                    "pool_map call {} failed: {}".format(
                        index,
                        payload if status == "error" else "worker crashed",
                    )
                )
    except BaseException:
        pool.terminate_all(extra=busy)
        raise
    pool.stop()
    return results


def _containment_main(conn, task_runner, spec, resume):
    """One-shot containment subprocess for a crash-history task.

    The degraded (post-breaker) execution mode runs clean tasks
    in-process, but a task that has already killed workers runs here:
    if it dies again it takes this throwaway process with it, never the
    supervisor.
    """
    try:
        conn.send(("ok", task_runner(spec, resume)))
    except BaseException as error:  # the parent needs the reason, always
        try:
            conn.send(
                ("error", "{}: {}".format(type(error).__name__, error))
            )
        except (OSError, ValueError):
            pass  # parent pipe is gone; the raise still ends the worker
        raise
    finally:
        conn.close()


class _RunningTask:
    def __init__(self, spec, process, conn, deadline, attempt):
        self.spec = spec
        self.process = process
        self.conn = conn
        self.deadline = deadline
        self.attempt = attempt


class _InlineTask:
    """Task handle for degraded in-process execution (no process)."""

    def __init__(self, spec, attempt):
        self.spec = spec
        self.attempt = attempt


class Supervisor:
    """Runs task specs on a supervised persistent worker pool.

    :param jobs: maximum concurrently running workers (``None`` = all
        CPUs, via :func:`default_jobs`).
    :param timeout: per-task wall-clock seconds (``None`` = unlimited).
    :param retries: extra attempts after the first (0 = fail fast).
    :param backoff: base seconds of delay before retry ``n`` (doubled
        each further attempt).
    :param poll_interval: supervisor loop sleep between health checks.
    :param worker: a legacy process-per-task entry point; passing a
        custom one disables the pool and runs the injected function in
        a fresh process per task (the original supervision seam).
    :param task_runner: in-pool task executor (injectable for tests);
        must be a module-level callable of ``(spec, resume)``.
    :param heartbeat_interval: seconds between worker heartbeat frames
        (``None`` disables liveness checks).
    :param heartbeat_timeout: seconds of heartbeat silence after which
        a busy worker is declared wedged, killed and replaced.
    :param quarantine_after: consecutive worker crashes (for one task)
        before the task is quarantined instead of retried — the poison
        task guard (``None`` disables).
    :param circuit_breaker: consecutive worker crashes (across tasks,
        reset by any success) before the pool degrades to serial
        in-process execution (``None`` disables).
    :param chaos: a :class:`repro.chaos.ChaosInjector` scheduling
        infrastructure faults (worker kills/stalls and, via the worker
        seam, write faults); ``None`` in production.
    :param drain_on_sigterm: install a SIGTERM handler for the duration
        of :meth:`run` that drains gracefully (finish in-flight work,
        dispatch nothing new, raise
        :class:`~repro.experiments.errors.CampaignDrained`).  Only
        engages on the main thread.
    """

    def __init__(self, jobs=None, timeout=None, retries=1, backoff=0.5,
                 poll_interval=0.05, worker=_worker_main,
                 task_runner=run_task_spec, heartbeat_interval=0.5,
                 heartbeat_timeout=10.0, quarantine_after=3,
                 circuit_breaker=6, chaos=None, drain_on_sigterm=True):
        if jobs is None:
            jobs = default_jobs()
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive when given")
        if quarantine_after is not None and quarantine_after < 1:
            raise ValueError("quarantine_after must be >= 1 when given")
        if circuit_breaker is not None and circuit_breaker < 1:
            raise ValueError("circuit_breaker must be >= 1 when given")
        if heartbeat_interval is not None and heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive when given")
        if heartbeat_timeout is not None and heartbeat_timeout <= 0:
            raise ValueError("heartbeat_timeout must be positive when given")
        self.jobs = jobs
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.poll_interval = poll_interval
        self.worker = worker
        self.task_runner = task_runner
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = (
            None if heartbeat_interval is None else heartbeat_timeout
        )
        self.quarantine_after = quarantine_after
        self.circuit_breaker = circuit_breaker
        self.chaos = chaos
        self.drain_on_sigterm = drain_on_sigterm
        self.pooled = worker is _worker_main
        self._context = multiprocessing.get_context()
        self.workers_spawned = 0
        self.breaker_opened = False
        self._crash_counts = {}
        self._crash_streak = 0
        self._draining = False
        self._drain_announced = False

    def request_drain(self):
        """Stop dispatching; finish in-flight tasks; then raise
        :class:`~repro.experiments.errors.CampaignDrained`.  Called by
        the SIGTERM handler, callable directly (e.g. from tests or an
        embedding service)."""
        # Single-transition bool flag (False -> True), polled by the
        # dispatch loop.  It must stay lock-free: this runs inside a
        # signal handler, where taking a lock the interrupted thread
        # may hold would deadlock.  A GIL-atomic store is the point.
        self._draining = True  # lb: noqa[LB201]

    def _handle_sigterm(self, signum, frame):
        self.request_drain()

    def run(self, specs, store=None, on_event=None):
        """Run every spec; returns {name: TaskOutcome}.

        Completed tasks are appended to ``store`` as they finish.  A
        KeyboardInterrupt terminates all workers before propagating, so
        ^C never leaves orphaned simulations running.  A SIGTERM drains
        instead: in-flight tasks finish, the rest stay pending, and
        :class:`~repro.experiments.errors.CampaignDrained` (carrying
        the settled outcomes) is raised so the caller can exit 143 and
        later ``--resume``.
        """
        specs = list(specs)
        self._crash_counts = {}
        self._crash_streak = 0
        self._draining = False
        self._drain_announced = False
        self.breaker_opened = False
        previous_handler = None
        installed = False
        if self.drain_on_sigterm:
            try:
                if threading.current_thread() is threading.main_thread():
                    previous_handler = signal.signal(
                        signal.SIGTERM, self._handle_sigterm
                    )
                    installed = True
            except (ValueError, OSError):
                pass  # embedded interpreters without signal support
        try:
            if self.pooled:
                outcomes = self._run_pooled(specs, store, on_event)
            else:
                outcomes = self._run_legacy(specs, store, on_event)
        finally:
            if installed:
                signal.signal(signal.SIGTERM, previous_handler)
        if self._draining:
            pending = [
                spec.name for spec in specs if spec.name not in outcomes
            ]
            if pending:
                raise CampaignDrained(outcomes, pending)
        return outcomes

    # -- shared bookkeeping ------------------------------------------------

    def _make_emit(self, on_event):
        def emit(message):
            if on_event is not None:
                on_event(message)
        return emit

    def _make_settle(self, outcomes, store, emit):
        def settle(task, status, report=None, error=None):
            name = task.spec.name
            if status == "done":
                # Success resets the poison and churn accounting.
                self._crash_counts.pop(name, None)
                self._crash_streak = 0
            outcome = TaskOutcome(
                name, status, report=report,
                error=None if error is None else str(error),
                error_kind=(
                    getattr(error, "kind", "campaign-error")
                    if error is not None else None
                ),
                attempts=task.attempt,
            )
            outcomes[name] = outcome
            if store is not None:
                try:
                    store.append(outcome.record())
                except OSError as store_error:
                    # A full disk must not kill the campaign: the
                    # outcome stays in memory (and in the final
                    # report); only resumability of this record is
                    # lost.
                    emit(
                        "result store append failed for task {} ({}); "
                        "continuing without persistence".format(
                            name, store_error
                        )
                    )
        return settle

    def _make_retry_or_fail(self, pending, settle, emit):
        def retry_or_fail(task, error):
            name = task.spec.name
            if not isinstance(error, CampaignError):
                error = TaskError(str(error))
            if error.counts_as_crash:
                self._crash_counts[name] = (
                    self._crash_counts.get(name, 0) + 1
                )
                self._crash_streak += 1
                if (
                    self.quarantine_after is not None
                    and self._crash_counts[name] >= self.quarantine_after
                ):
                    quarantined = QuarantinedTaskError(
                        "quarantined after {} consecutive worker crashes "
                        "(last: {})".format(self._crash_counts[name], error)
                    )
                    emit(
                        "task {}: {} [{}]".format(
                            name, quarantined, quarantined.kind
                        )
                    )
                    settle(task, "failed", error=quarantined)
                    return
            if error.retryable and task.attempt <= self.retries:
                delay = self.backoff * (2 ** (task.attempt - 1))
                emit(
                    "task {}: {}; retrying in {:.1f}s (attempt {}/{}) "
                    "[{}]".format(
                        name, error, delay, task.attempt + 1,
                        self.retries + 1, error.kind,
                    )
                )
                pending.append(
                    (task.spec, task.attempt + 1, time.monotonic() + delay)
                )
            else:
                emit(
                    "task {}: {}; giving up [{}]".format(
                        name, error, error.kind
                    )
                )
                settle(task, "failed", error=error)
        return retry_or_fail

    def _announce_drain(self, emit, pending):
        if self._draining and not self._drain_announced:
            self._drain_announced = True
            emit(
                "SIGTERM: draining — finishing in-flight tasks, {} pending "
                "task(s) deferred to --resume".format(len(pending))
            )

    # -- pooled execution --------------------------------------------------

    def _run_pooled(self, specs, store, on_event):
        emit = self._make_emit(on_event)
        pending = deque((spec, 1, 0.0) for spec in specs)
        outcomes = {}
        settle = self._make_settle(outcomes, store, emit)
        retry_or_fail = self._make_retry_or_fail(pending, settle, emit)
        worker_chaos = (
            None if self.chaos is None else self.chaos.worker_setup()
        )
        pool = WorkerPool(
            jobs=self.jobs, task_runner=self.task_runner,
            context=self._context,
            heartbeat_interval=self.heartbeat_interval,
            worker_chaos=worker_chaos,
        )
        busy = {}  # worker -> _PoolTask

        class _PoolTask:
            def __init__(self, spec, attempt, deadline):
                self.spec = spec
                self.attempt = attempt
                self.deadline = deadline

        try:
            while pending or busy:
                if self._draining and not busy:
                    self._announce_drain(emit, pending)
                    break
                now = time.monotonic()
                self._announce_drain(emit, pending)
                # Dispatch whatever is due onto idle/fresh workers, in
                # deterministic submission order.  A drain stops
                # dispatch entirely; in-flight tasks still finish.
                blocked = []
                while pending and not self._draining:
                    spec, attempt, not_before = pending.popleft()
                    if not_before > now:
                        blocked.append((spec, attempt, not_before))
                        continue
                    worker = pool.checkout(len(busy))
                    if worker is None:
                        blocked.append((spec, attempt, not_before))
                        break
                    resume = spec.resume or attempt > 1
                    worker.send(("task", spec, resume))
                    # The liveness clock starts at dispatch so a long
                    # idle gap can never count against the worker.
                    worker.last_heartbeat = now
                    deadline = (
                        None if self.timeout is None
                        else now + self.timeout
                    )
                    busy[worker] = _PoolTask(spec, attempt, deadline)
                    emit(
                        "task {}: started (attempt {}/{}) on worker {}".format(
                            spec.name, attempt, self.retries + 1, worker.id
                        )
                    )
                    if self.chaos is not None:
                        action = self.chaos.sabotage_dispatch(worker)
                        if action:
                            emit(
                                "chaos: {} worker {} (task {})".format(
                                    action, worker.id, spec.name
                                )
                            )
                pending.extendleft(reversed(blocked))

                if busy:
                    _wait_connections(
                        [worker.conn for worker in busy],
                        timeout=self.poll_interval,
                    )
                elif pending:
                    time.sleep(self.poll_interval)

                now = time.monotonic()
                for worker in list(busy):
                    task = busy[worker]
                    finished, crashed = self._collect_pooled(
                        worker, task, settle, retry_or_fail, emit, now
                    )
                    if not finished:
                        continue
                    del busy[worker]
                    if crashed:
                        pool.discard(worker)
                    else:
                        pool.checkin(worker)

                if (
                    self.circuit_breaker is not None
                    and self._crash_streak >= self.circuit_breaker
                    and (pending or busy)
                ):
                    self._open_breaker(pool, busy, pending, emit)
                    busy = {}
                    self._run_degraded(pending, settle, retry_or_fail, emit)
                    return outcomes
        except KeyboardInterrupt:
            pool.terminate_all(extra=busy)
            raise
        pool.stop()
        self.workers_spawned = pool.spawned
        return outcomes

    def _collect_pooled(self, worker, task, settle, retry_or_fail, emit,
                        now):
        """One health check; returns (finished, worker_crashed)."""
        message = worker.poll_message()
        if message is not None:
            if message[0] == "ok":
                emit("task {}: done".format(task.spec.name))
                settle(task, "done", report=message[1])
                return True, False
            if message[0] == "error":
                retry_or_fail(task, TaskError(message[1]))
                return True, False
            # ("crashed",) from a broken pipe, or an unparseable frame
            # from a corrupted worker: either way the worker is gone.
            retry_or_fail(
                task,
                WorkerCrashError(
                    "worker crashed (exit code {})".format(
                        worker.process.exitcode
                    )
                ),
            )
            return True, True
        if task.deadline is not None and now > task.deadline:
            retry_or_fail(
                task,
                TaskTimeoutError(
                    "timed out after {:.0f}s".format(self.timeout)
                ),
            )
            return True, True
        if not worker.alive():
            retry_or_fail(
                task,
                WorkerCrashError(
                    "worker crashed (exit code {})".format(
                        worker.process.exitcode
                    )
                ),
            )
            return True, True
        if (
            self.heartbeat_timeout is not None
            and now - worker.last_heartbeat > self.heartbeat_timeout
        ):
            silence = now - worker.last_heartbeat
            worker.terminate()
            retry_or_fail(
                task,
                WorkerCrashError(
                    "worker wedged (no heartbeat for {:.1f}s); "
                    "killed".format(silence)
                ),
            )
            return True, True
        return False, False

    # -- degraded (post-circuit-breaker) execution -------------------------

    def _open_breaker(self, pool, busy, pending, emit):
        """Tear the pool down; requeue in-flight tasks for serial runs.

        Requeued tasks keep their attempt number (the breaker trip is
        not their fault and does not count against them) and go to the
        *front* of the queue in dispatch order, preserving the
        campaign's deterministic task ordering.
        """
        self.breaker_opened = True
        emit(
            "circuit breaker open: {} consecutive worker crashes; "
            "degrading to serial in-process execution".format(
                self._crash_streak
            )
        )
        requeue = [
            (task.spec, task.attempt, 0.0) for task in busy.values()
        ]
        pool.terminate_all(extra=list(busy))
        self.workers_spawned = pool.spawned
        pending.extendleft(reversed(requeue))

    def _run_degraded(self, pending, settle, retry_or_fail, emit):
        """Serial fallback once the circuit breaker has opened.

        Clean tasks run in-process (no fork, no pipe — nothing left to
        chaos-kill); tasks with a crash history run in one-shot
        containment subprocesses so a poison task still cannot take the
        supervisor down.
        """
        while pending:
            self._announce_drain(emit, pending)
            if self._draining:
                return
            spec, attempt, not_before = pending.popleft()
            wait = not_before - time.monotonic()
            if wait > 0:
                time.sleep(wait)
            if self._crash_counts.get(spec.name):
                emit(
                    "task {}: started (attempt {}/{}) "
                    "[degraded, contained]".format(
                        spec.name, attempt, self.retries + 1
                    )
                )
                task = self._launch_contained(spec, attempt)
                try:
                    while not self._collect(task, settle, retry_or_fail):
                        time.sleep(self.poll_interval)
                except KeyboardInterrupt:
                    self._terminate(task)
                    raise
                continue
            emit(
                "task {}: started (attempt {}/{}) "
                "[degraded, in-process]".format(
                    spec.name, attempt, self.retries + 1
                )
            )
            task = _InlineTask(spec, attempt)
            resume = spec.resume or attempt > 1
            try:
                report = self.task_runner(spec, resume)
            except Exception as error:
                retry_or_fail(
                    task,
                    TaskError(
                        "{}: {}".format(type(error).__name__, error)
                    ),
                )
            else:
                emit("task {}: done".format(spec.name))
                settle(task, "done", report=report)

    def _launch_contained(self, spec, attempt):
        parent_conn, child_conn = self._context.Pipe(duplex=False)
        resume = spec.resume or attempt > 1
        process = self._context.Process(
            target=_containment_main,
            args=(child_conn, self.task_runner, spec, resume),
            daemon=True,
        )
        process.start()
        child_conn.close()
        self.workers_spawned += 1
        deadline = (
            None if self.timeout is None
            else time.monotonic() + self.timeout
        )
        return _RunningTask(spec, process, parent_conn, deadline, attempt)

    # -- legacy process-per-task execution ---------------------------------

    def _run_legacy(self, specs, store, on_event):
        emit = self._make_emit(on_event)
        pending = deque((spec, 1, 0.0) for spec in specs)
        running = []
        outcomes = {}
        settle = self._make_settle(outcomes, store, emit)
        retry_or_fail = self._make_retry_or_fail(pending, settle, emit)

        try:
            while pending or running:
                if self._draining and not running:
                    self._announce_drain(emit, pending)
                    break
                now = time.monotonic()
                self._announce_drain(emit, pending)
                # Launch whatever is due and fits (never during a drain).
                blocked = []
                while (
                    pending and len(running) < self.jobs
                    and not self._draining
                ):
                    spec, attempt, not_before = pending.popleft()
                    if not_before > now:
                        blocked.append((spec, attempt, not_before))
                        continue
                    running.append(self._launch(spec, attempt, emit))
                pending.extendleft(reversed(blocked))

                still_running = []
                for task in running:
                    finished = self._collect(task, settle, retry_or_fail)
                    if not finished:
                        still_running.append(task)
                running = still_running
                if pending or running:
                    time.sleep(self.poll_interval)
        except KeyboardInterrupt:
            for task in running:
                self._terminate(task)
            raise
        return outcomes

    def _launch(self, spec, attempt, emit):
        parent_conn, child_conn = self._context.Pipe(duplex=False)
        # Retries resume from the task's own checkpoints instead of
        # redoing completed stages; a resumed campaign resumes even on
        # the first attempt.
        resume = spec.resume or attempt > 1
        process = self._context.Process(
            target=self.worker, args=(child_conn, spec, resume), daemon=True
        )
        process.start()
        child_conn.close()
        self.workers_spawned += 1
        deadline = (
            None if self.timeout is None
            else time.monotonic() + self.timeout
        )
        emit(
            "task {}: started (attempt {}/{})".format(
                spec.name, attempt, self.retries + 1
            )
        )
        return _RunningTask(spec, process, parent_conn, deadline, attempt)

    def _collect(self, task, settle, retry_or_fail):
        """Check one running task; True when it left the running set."""
        if task.conn.poll():
            try:
                status, payload = task.conn.recv()
            except (EOFError, OSError):
                status, payload = None, None
            task.process.join()
            task.conn.close()
            if status == "ok":
                settle(task, "done", report=payload)
            elif status == "error":
                retry_or_fail(task, TaskError(payload))
            else:
                retry_or_fail(
                    task,
                    WorkerCrashError(
                        "worker crashed (exit code {})".format(
                            task.process.exitcode
                        )
                    ),
                )
            return True
        if task.deadline is not None and time.monotonic() > task.deadline:
            self._terminate(task)
            task.conn.close()
            retry_or_fail(
                task,
                TaskTimeoutError(
                    "timed out after {:.0f}s".format(self.timeout)
                ),
            )
            return True
        if not task.process.is_alive():
            task.process.join()
            task.conn.close()
            retry_or_fail(
                task,
                WorkerCrashError(
                    "worker crashed (exit code {})".format(
                        task.process.exitcode
                    )
                ),
            )
            return True
        return False

    def _terminate(self, task):
        if not task.process.is_alive():
            return
        task.process.terminate()
        task.process.join(timeout=2.0)
        if task.process.is_alive():
            task.process.kill()
            task.process.join()


class CampaignReport:
    """The assembled outcome of a supervised campaign."""

    def __init__(self, sections, skipped, failed, cached=None,
                 cache_stats=None):
        self.sections = sections  # [(name, report_text or None)]
        self.skipped = skipped  # names reused from the result store
        self.failed = failed  # {name: error}
        self.cached = cached or []  # names served by the result cache
        self.cache_stats = cache_stats  # CacheStats or None

    @property
    def ok(self):
        return not self.failed

    def format_report(self):
        lines = []
        for name, report in self.sections:
            lines.append("=" * 72)
            lines.append("[{}]".format(name))
            if report is None:
                lines.append(
                    "FAILED: {}".format(self.failed.get(name, "unknown"))
                )
            else:
                lines.append(report)
            lines.append("")
        return "\n".join(lines)

    def format_cache_summary(self):
        """Cache accounting block (empty string without a cache)."""
        if self.cache_stats is None:
            return ""
        from repro.metrics.report import format_kv_section

        stats = self.cache_stats.as_dict()
        stats["hit_rate"] = "{:.1%}".format(self.cache_stats.hit_rate)
        stats["cached_tasks"] = (
            ", ".join(self.cached) if self.cached else "(none)"
        )
        return format_kv_section("campaign result cache", stats)


def run_campaign(names=None, scale=1.0, seed=1, jobs=None, timeout=None,
                 retries=1, resume=False, checkpoint_dir=None,
                 checkpoint_every=None, on_event=None, supervisor=None,
                 cache=None, cache_dir=None, cache_max_bytes=None,
                 use_cache=True, chaos=None):
    """Run a supervised experiment campaign; returns a CampaignReport.

    ``checkpoint_dir`` hosts both the JSONL result store
    (``results.jsonl``) and one sub-directory per checkpoint-aware
    experiment.  With ``resume=True``, tasks recorded in the store are
    skipped outright and interrupted checkpoint-aware tasks restart
    from their stage checkpoints.

    The result cache sits in front of the supervisor: a task whose
    (name, scale, seed, options, schema-version) key holds a verified
    entry is served from the cache without dispatching a worker, and
    every freshly finished task is published back.  ``cache_dir`` names
    the cache root (``use_cache=False`` or a pre-built ``cache``
    override it); ``cache_max_bytes`` caps the cache directory size
    with least-recently-used eviction; accounting lands on
    ``CampaignReport.cache_stats``.

    ``chaos`` threads one :class:`repro.chaos.ChaosInjector` through
    every infrastructure seam at once — store appends, cache entries,
    worker dispatch and (inside workers) checkpoint writes.

    A SIGTERM mid-campaign drains: settled outcomes are published to
    the cache, then :class:`~repro.experiments.errors.CampaignDrained`
    propagates so the CLI can exit 143; ``--resume`` picks up the rest.
    """
    from repro.experiments.runner import checkpoint_aware_experiments

    if names is None:
        names = experiment_names()
    if checkpoint_dir is None:
        # Argument validation at the wiring seam, before any task runs:
        # a programmer error, not a task outcome for retry/quarantine
        # policy (the same rationale as LB204's __init__ exemption).
        raise ValueError(  # lb: noqa[LB204]
            "a campaign needs a checkpoint directory"
        )
    os.makedirs(checkpoint_dir, exist_ok=True)
    if cache is None and use_cache and cache_dir is not None:
        cache = ResultCache(cache_dir, chaos=chaos,
                            max_bytes=cache_max_bytes)
    store = ResultStore(
        os.path.join(checkpoint_dir, "results.jsonl"), chaos=chaos
    )
    if not resume:
        store.clear()
    completed = store.load()

    def emit(message):
        if on_event is not None:
            on_event(message)

    if store.recovered_bytes:
        emit(
            "result store: dropped {} torn/corrupt trailing record(s) "
            "({} bytes); affected tasks will rerun".format(
                store.recovered_records, store.recovered_bytes
            )
        )

    skipped = [name for name in names if name in completed]
    for name in skipped:
        emit("task {}: already complete, skipping".format(name))

    keys = {
        name: experiment_key(name, scale=scale, seed=seed)
        for name in names
    }
    cached = []
    if cache is not None:
        for name in names:
            if name in completed:
                continue
            record = cache.get(keys[name])
            if record is None:
                continue
            cached.append(name)
            completed[name] = {
                "name": name,
                "status": "done",
                "report": record["report"],
            }
            try:
                store.append(
                    {
                        "name": name,
                        "status": "done",
                        "report": record["report"],
                        "error": None,
                        "attempts": 0,
                    }
                )
            except OSError as error:
                emit(
                    "result store append failed for task {} ({}); "
                    "continuing without persistence".format(name, error)
                )
            emit("task {}: cache hit, skipping".format(name))

    aware = checkpoint_aware_experiments()
    specs = []
    for name in names:
        if name in completed:
            continue
        specs.append(
            TaskSpec(
                name,
                scale=scale,
                seed=seed,
                checkpoint_dir=(
                    os.path.join(checkpoint_dir, name)
                    if name in aware
                    else None
                ),
                checkpoint_every=checkpoint_every,
                resume=resume,
            )
        )

    if supervisor is None:
        supervisor = Supervisor(
            jobs=jobs, timeout=timeout, retries=retries, chaos=chaos
        )

    def publish(finished):
        if cache is None:
            return
        for name, outcome in finished.items():
            if outcome.status != "done":
                continue
            try:
                cache.put(
                    keys[name], {"name": name, "report": outcome.report}
                )
            except OSError as error:
                emit(
                    "cache store failed for task {} ({}); "
                    "continuing".format(name, error)
                )

    try:
        outcomes = supervisor.run(specs, store=store, on_event=on_event)
    except CampaignDrained as drained:
        # What finished is safely stored and cached; the caller exits
        # 143 and a later --resume runs only the pending remainder.
        publish(drained.outcomes)
        if cache is not None:
            emit(cache.stats.format_line())
        raise

    publish(outcomes)

    sections, failed = [], {}
    for name in names:
        if name in completed:
            sections.append((name, completed[name]["report"]))
        elif name in outcomes and outcomes[name].status == "done":
            sections.append((name, outcomes[name].report))
        else:
            error = (
                outcomes[name].error
                if name in outcomes
                else "never completed"
            )
            failed[name] = error
            sections.append((name, None))
    if cache is not None:
        emit(cache.stats.format_line())
    return CampaignReport(
        sections, skipped, failed, cached=cached,
        cache_stats=None if cache is None else cache.stats,
    )
