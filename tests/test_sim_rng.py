"""Tests for seeded random streams."""

import pytest

from repro.sim.rng import RandomStream, derive_seed


def test_same_seed_same_sequence():
    a = RandomStream(42, "x")
    b = RandomStream(42, "x")
    assert [a.randint(0, 100) for _ in range(10)] == [
        b.randint(0, 100) for _ in range(10)
    ]


def test_different_purposes_diverge():
    a = RandomStream(42, "traffic")
    b = RandomStream(42, "lottery")
    assert [a.randint(0, 10 ** 6) for _ in range(5)] != [
        b.randint(0, 10 ** 6) for _ in range(5)
    ]


def test_reset_rewinds():
    stream = RandomStream(7, "x")
    first = [stream.random() for _ in range(5)]
    stream.reset()
    assert [stream.random() for _ in range(5)] == first


def test_derive_seed_stable_and_distinct():
    assert derive_seed(1, "a") == derive_seed(1, "a")
    assert derive_seed(1, "a") != derive_seed(1, "b")
    assert derive_seed(1, "a") != derive_seed(2, "a")


def test_randrange_bounds():
    stream = RandomStream(3)
    values = [stream.randrange(5) for _ in range(200)]
    assert set(values) <= set(range(5))
    assert len(set(values)) == 5


def test_geometric_mean_and_support():
    stream = RandomStream(5, "g")
    samples = [stream.geometric(0.25) for _ in range(4000)]
    assert min(samples) >= 1
    mean = sum(samples) / len(samples)
    assert mean == pytest.approx(4.0, rel=0.1)


def test_geometric_p_one_is_always_one():
    stream = RandomStream(5)
    assert all(stream.geometric(1.0) == 1 for _ in range(10))


def test_geometric_rejects_bad_p():
    stream = RandomStream(5)
    with pytest.raises(ValueError):
        stream.geometric(0.0)
    with pytest.raises(ValueError):
        stream.geometric(1.5)
