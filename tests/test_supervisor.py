"""Tests for the supervised experiment executor and its result store."""

import json
import os
import time

import pytest

from repro.experiments.supervisor import (
    ResultStore,
    Supervisor,
    TaskSpec,
    run_campaign,
)


# Worker entry points must be module-level so every multiprocessing
# start method can reach them.

def ok_worker(conn, spec, resume):
    conn.send(("ok", "report for " + spec.name))
    conn.close()


def crash_worker(conn, spec, resume):
    os._exit(3)


def hang_worker(conn, spec, resume):
    time.sleep(60)


def error_worker(conn, spec, resume):
    conn.send(("error", "ValueError: synthetic failure"))
    conn.close()


def flaky_worker(conn, spec, resume):
    # Crashes on the first attempt; the retry arrives with resume=True.
    if not resume:
        os._exit(1)
    conn.send(("ok", "recovered " + spec.name))
    conn.close()


def _fast_supervisor(**kwargs):
    kwargs.setdefault("poll_interval", 0.01)
    kwargs.setdefault("backoff", 0.01)
    return Supervisor(**kwargs)


# -- ResultStore ----------------------------------------------------------


def test_store_round_trip(tmp_path):
    store = ResultStore(str(tmp_path / "r.jsonl"))
    store.append({"name": "a", "status": "done", "report": "ra"})
    store.append({"name": "b", "status": "failed", "error": "boom"})
    store.append({"name": "c", "status": "done", "report": "rc"})
    completed = store.load()
    assert set(completed) == {"a", "c"}
    assert completed["a"]["report"] == "ra"


def test_store_tolerates_torn_tail_line(tmp_path):
    path = tmp_path / "r.jsonl"
    store = ResultStore(str(path))
    store.append({"name": "a", "status": "done", "report": "ra"})
    with open(path, "a") as handle:
        handle.write('{"name": "b", "status": "do')  # killed mid-append
    assert set(store.load()) == {"a"}


def test_store_missing_file_is_empty(tmp_path):
    assert ResultStore(str(tmp_path / "none.jsonl")).load() == {}


# -- Supervisor -----------------------------------------------------------


def test_tasks_complete_and_land_in_store(tmp_path):
    store = ResultStore(str(tmp_path / "r.jsonl"))
    supervisor = _fast_supervisor(jobs=3, worker=ok_worker)
    specs = [TaskSpec("t{}".format(i)) for i in range(5)]
    outcomes = supervisor.run(specs, store=store)
    assert len(outcomes) == 5
    assert all(o.status == "done" for o in outcomes.values())
    assert set(store.load()) == {spec.name for spec in specs}


def test_worker_crash_fails_task_not_campaign(tmp_path):
    supervisor = _fast_supervisor(jobs=2, retries=0, worker=crash_worker)
    outcomes = supervisor.run([TaskSpec("dies"), TaskSpec("dies2")])
    assert outcomes["dies"].status == "failed"
    assert "crashed" in outcomes["dies"].error
    assert outcomes["dies2"].status == "failed"


def test_worker_error_message_is_captured():
    supervisor = _fast_supervisor(retries=0, worker=error_worker)
    outcomes = supervisor.run([TaskSpec("t")])
    assert outcomes["t"].status == "failed"
    assert "synthetic failure" in outcomes["t"].error


def test_timeout_kills_hanging_worker():
    supervisor = _fast_supervisor(
        timeout=0.3, retries=0, worker=hang_worker
    )
    start = time.monotonic()
    outcomes = supervisor.run([TaskSpec("hangs")])
    assert time.monotonic() - start < 10
    assert outcomes["hangs"].status == "failed"
    assert "timed out" in outcomes["hangs"].error


def test_retry_recovers_with_resume_flag():
    events = []
    supervisor = _fast_supervisor(retries=1, worker=flaky_worker)
    outcomes = supervisor.run([TaskSpec("flaky")], on_event=events.append)
    assert outcomes["flaky"].status == "done"
    assert outcomes["flaky"].attempts == 2
    assert outcomes["flaky"].report == "recovered flaky"
    assert any("retrying" in event for event in events)


def test_retries_are_bounded():
    supervisor = _fast_supervisor(retries=2, worker=crash_worker)
    outcomes = supervisor.run([TaskSpec("dies")])
    assert outcomes["dies"].status == "failed"
    assert outcomes["dies"].attempts == 3


def test_supervisor_validates_parameters():
    with pytest.raises(ValueError):
        Supervisor(jobs=0)
    with pytest.raises(ValueError):
        Supervisor(retries=-1)
    with pytest.raises(ValueError):
        Supervisor(timeout=0)


# -- run_campaign ---------------------------------------------------------


def test_campaign_resume_skips_recorded_tasks(tmp_path):
    directory = str(tmp_path / "ck")
    names = ["figure8", "hardware", "hwscale"]

    first = run_campaign(
        names=names,
        checkpoint_dir=directory,
        supervisor=_fast_supervisor(jobs=2, worker=ok_worker),
    )
    assert first.ok and first.skipped == []
    assert [name for name, _ in first.sections] == names

    events = []
    second = run_campaign(
        names=names,
        resume=True,
        checkpoint_dir=directory,
        on_event=events.append,
        supervisor=_fast_supervisor(jobs=2, worker=ok_worker),
    )
    assert second.skipped == names
    assert second.format_report() == first.format_report()
    assert sum("skipping" in event for event in events) == len(names)


def test_campaign_without_resume_restarts_fresh(tmp_path):
    directory = str(tmp_path / "ck")
    names = ["figure8"]
    run_campaign(
        names=names,
        checkpoint_dir=directory,
        supervisor=_fast_supervisor(worker=ok_worker),
    )
    again = run_campaign(
        names=names,
        checkpoint_dir=directory,
        supervisor=_fast_supervisor(worker=ok_worker),
    )
    assert again.skipped == []


def test_campaign_reports_failures_without_aborting(tmp_path):
    campaign = run_campaign(
        names=["figure8", "hardware"],
        checkpoint_dir=str(tmp_path / "ck"),
        supervisor=_fast_supervisor(retries=0, worker=crash_worker),
    )
    assert not campaign.ok
    assert set(campaign.failed) == {"figure8", "hardware"}
    report = campaign.format_report()
    assert "FAILED" in report


def test_campaign_store_is_json_lines(tmp_path):
    directory = tmp_path / "ck"
    run_campaign(
        names=["figure8"],
        checkpoint_dir=str(directory),
        supervisor=_fast_supervisor(worker=ok_worker),
    )
    lines = (directory / "results.jsonl").read_text().splitlines()
    records = [json.loads(line) for line in lines]
    assert records[0]["name"] == "figure8"
    assert records[0]["status"] == "done"
