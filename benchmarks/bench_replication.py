"""Replicated headline numbers with 95% confidence intervals.

Re-runs the central claim — lottery bandwidth shares track tickets —
across 8 independent seeds and checks the design targets fall inside
the measured confidence intervals.
"""

import pytest
from conftest import cycles, run_once

from repro.experiments.replication import run_replicated_testbed


def test_bench_replication(benchmark):
    result = run_once(
        benchmark,
        run_replicated_testbed,
        "lottery-dynamic",  # unscaled holdings: targets are exactly 1:2:3:4
        "T8",
        [1, 2, 3, 4],
        seeds=range(1, 9),
        cycles=cycles(50_000),
    )
    print()
    print(result.format_report())
    targets = [0.1, 0.2, 0.3, 0.4]
    for master, target in enumerate(targets):
        mu, halfwidth = result.interval("share{}".format(master))
        assert abs(mu - target) < max(halfwidth, 0.01) + 0.005, (
            "share{} CI {}±{} misses target {}".format(
                master, mu, halfwidth, target
            )
        )
    util, _ = result.interval("utilization")
    assert util == pytest.approx(1.0, abs=0.01)
