"""Static analysis for the reproduction's determinism & contract invariants.

Every result this repository ships rests on invariants that hold by
convention, not by construction: all randomness flows through seeded
:class:`repro.sim.rng.RandomStream` objects, every stateful component
declares its complete runtime state for the checkpoint protocol, the
wakeup contract pairs ``next_activity`` promises with ``skip_quiet``
replays, hot-path caches are invalidated on every mutation of what they
were computed from, and experiment entry points thread an explicit seed.
A violation of any of them does not crash — it silently corrupts
reproduction results.  This package checks the conventions *statically*,
over the AST, without importing or running anything.

Usage::

    python -m repro.lint src/ tests/
    python -m repro.lint --format json --baseline lint-baseline.json src/

Rules carry stable identifiers (``LB101`` .. ``LB105``); individual
lines opt out with a ``# lb: noqa[LB101]`` trailing comment, and
accepted pre-existing findings live in a tracked baseline file with a
justification per entry (see :mod:`repro.analysis.baseline`).
"""

from repro.analysis.core import (
    ALL_RULE_IDS,
    Finding,
    LintError,
    Rule,
    SourceFile,
    get_rules,
    lint_file,
    lint_paths,
    lint_source,
    register,
)
from repro.analysis.baseline import Baseline, BaselineError

__all__ = [
    "ALL_RULE_IDS",
    "Baseline",
    "BaselineError",
    "Finding",
    "LintError",
    "Rule",
    "SourceFile",
    "get_rules",
    "lint_file",
    "lint_paths",
    "lint_source",
    "register",
]
