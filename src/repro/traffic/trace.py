"""Record and replay of communication request traces.

A :class:`Trace` is a list of (cycle, master, words, slave) arrival
events.  Traces let an experiment present *identical* offered traffic to
different arbiters (record once with a :class:`TraceRecorder`, replay
through :class:`TraceReplayGenerator` per architecture), and can be
saved to / loaded from JSON for regression fixtures.
"""

import json

from repro.sim.component import Component


class TraceEvent:
    __slots__ = ("cycle", "master", "words", "slave")

    def __init__(self, cycle, master, words, slave=0):
        if cycle < 0 or master < 0 or words < 1 or slave < 0:
            raise ValueError("invalid trace event")
        self.cycle = cycle
        self.master = master
        self.words = words
        self.slave = slave

    def to_list(self):
        return [self.cycle, self.master, self.words, self.slave]

    def __eq__(self, other):
        return isinstance(other, TraceEvent) and self.to_list() == other.to_list()

    def __repr__(self):
        return "TraceEvent(cycle={}, master={}, words={})".format(
            self.cycle, self.master, self.words
        )


class Trace:
    """An ordered list of arrival events."""

    def __init__(self, events=(), num_masters=None):
        self.events = sorted(events, key=lambda e: (e.cycle, e.master))
        if num_masters is None:
            num_masters = 1 + max((e.master for e in self.events), default=-1)
        self.num_masters = max(num_masters, 1)

    def add(self, cycle, master, words, slave=0):
        self.events.append(TraceEvent(cycle, master, words, slave))
        self.num_masters = max(self.num_masters, master + 1)

    def __len__(self):
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def total_words(self, master=None):
        return sum(
            e.words for e in self.events if master is None or e.master == master
        )

    def duration(self):
        """Cycle of the last arrival (0 for an empty trace)."""
        return self.events[-1].cycle if self.events else 0

    def offered_load(self):
        """Mean words per cycle over the trace's span."""
        if not self.events:
            return 0.0
        return self.total_words() / (self.duration() + 1)

    def save(self, path):
        payload = {
            "num_masters": self.num_masters,
            "events": [e.to_list() for e in self.events],
        }
        with open(path, "w") as handle:
            json.dump(payload, handle)

    @classmethod
    def load(cls, path):
        with open(path) as handle:
            payload = json.load(handle)
        events = [TraceEvent(*record) for record in payload["events"]]
        return cls(events, num_masters=payload["num_masters"])

    @classmethod
    def capture(cls, traffic_class, cycles, seed=0):
        """Record the arrivals a traffic class would generate.

        Runs the class's generators against sink interfaces for
        ``cycles`` cycles and returns the resulting trace; the trace can
        then be replayed identically against any arbiter.
        """
        from repro.sim.kernel import Simulator

        recorder = TraceRecorder(traffic_class.num_masters)
        simulator = Simulator()
        for master_id in range(traffic_class.num_masters):
            sink = recorder.interface(master_id)
            simulator.add(traffic_class.build(master_id, sink, seed=seed))
        simulator.run(cycles)
        return recorder.trace


class _RecordingInterface:
    """Duck-typed MasterInterface that only records submissions."""

    def __init__(self, trace, master_id):
        self._trace = trace
        self.master_id = master_id
        self.queue_depth = 0  # always drains: generators see an empty queue

    def submit(self, words, cycle, slave=0, tag=None, flow=None):
        self._trace.add(cycle, self.master_id, words, slave)
        return None


class TraceRecorder:
    """Collects submissions from generators into a :class:`Trace`.

    Note: recording uses always-empty sink interfaces, so closed-loop
    (saturating) generators emit at their queue-depth rate every cycle;
    trace capture is intended for open-loop (rate-based) classes.
    """

    def __init__(self, num_masters):
        self.trace = Trace(num_masters=num_masters)
        self._interfaces = [
            _RecordingInterface(self.trace, m) for m in range(num_masters)
        ]

    def interface(self, master_id):
        return self._interfaces[master_id]


class TraceReplayGenerator(Component):
    """Replays one master's slice of a trace into a real interface."""

    def __init__(self, name, interface, trace, master_id):
        super().__init__(name)
        self.interface = interface
        self.master_id = master_id
        self._events = [e for e in trace if e.master == master_id]
        self._cursor = 0

    def reset(self):
        self._cursor = 0

    def tick(self, cycle):
        while (
            self._cursor < len(self._events)
            and self._events[self._cursor].cycle <= cycle
        ):
            event = self._events[self._cursor]
            self.interface.submit(event.words, cycle, slave=event.slave)
            self._cursor += 1
