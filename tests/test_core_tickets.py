"""Tests for ticket assignments."""

import pytest

from repro.core.tickets import TicketAssignment


def test_basic_properties():
    tickets = TicketAssignment([1, 2, 3, 4])
    assert tickets.num_masters == 4
    assert tickets.total == 10
    assert tickets.share(3) == 0.4
    assert tickets.shares() == [0.1, 0.2, 0.3, 0.4]
    assert list(tickets) == [1, 2, 3, 4]
    assert tickets[2] == 3


def test_partial_sums_match_paper_example():
    # Figure 8: tickets 1,2,3,4; requests from C1, C3, C4.
    tickets = TicketAssignment([1, 2, 3, 4])
    sums = tickets.partial_sums([True, False, True, True])
    assert sums == [1, 1, 4, 8]
    assert tickets.contending_total([True, False, True, True]) == 8


def test_partial_sums_all_idle():
    tickets = TicketAssignment([5, 5])
    assert tickets.partial_sums([False, False]) == [0, 0]
    assert tickets.contending_total([False, False]) == 0


def test_request_map_length_checked():
    tickets = TicketAssignment([1, 2])
    with pytest.raises(ValueError):
        tickets.partial_sums([True])


@pytest.mark.parametrize("bad", [[], [0, 1], [-1, 2]])
def test_validation(bad):
    with pytest.raises(ValueError):
        TicketAssignment(bad)


def test_equality_and_hash():
    assert TicketAssignment([1, 2]) == TicketAssignment([1, 2])
    assert TicketAssignment([1, 2]) != TicketAssignment([2, 1])
    assert len({TicketAssignment([1, 2]), TicketAssignment([1, 2])}) == 1


def test_values_coerced_to_int():
    tickets = TicketAssignment([1.0, 2.0])
    assert tickets.tickets == (1, 2)
