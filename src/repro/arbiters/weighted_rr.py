"""Deficit-weighted round-robin arbitration.

A deterministic proportional-share baseline beyond the paper: each
master holds a quantum proportional to its weight; a deficit counter
accumulates quantum each round and pays for granted words (deficit
round-robin, Shreedhar & Varghese).  Long-run bandwidth shares match
the lottery's ticket proportions but the service pattern is
deterministic — the natural "what if we didn't randomize?" comparison
for LOTTERYBUS, used by the jitter benchmark.
"""

from repro.arbiters.base import Arbiter
from repro.bus.transaction import Grant


class WeightedRoundRobinArbiter(Arbiter):
    """Deficit round-robin over per-master word credits.

    :param weights: positive per-master weights.
    :param quantum_scale: words of quantum per weight unit added each
        time a master is visited (default 4; larger values give longer
        uninterrupted runs per master).
    """

    name = "weighted-rr"

    # Idle rounds bail out before touching deficits or the pointer.
    supports_idle_skip = True

    state_attrs = ("_deficits", "_current")

    def __init__(self, weights, quantum_scale=4):
        super().__init__(len(weights))
        weights = [int(w) for w in weights]
        if any(w < 1 for w in weights):
            raise ValueError("weights must be positive")
        if quantum_scale < 1:
            raise ValueError("quantum_scale must be >= 1")
        self.weights = tuple(weights)
        self.quantum_scale = quantum_scale
        self._deficits = [0] * len(weights)
        self._current = 0

    def reset(self):
        self._deficits = [0] * self.num_masters
        self._current = 0

    def _advance(self):
        self._current = (self._current + 1) % self.num_masters

    def arbitrate(self, cycle, pending):
        self._check_pending(pending)
        if not any(pending):
            return None
        # Visit masters round-robin; top up the visited master's deficit
        # and grant as many words as its credit covers.  A master with
        # no pending request forfeits its credit (standard DRR).
        for _ in range(self.num_masters):
            master = self._current
            if pending[master]:
                if self._deficits[master] <= 0:
                    self._deficits[master] += (
                        self.weights[master] * self.quantum_scale
                    )
                allowance = self._deficits[master]
                words = min(pending[master], allowance)
                if words >= 1:
                    self._deficits[master] -= words
                    if self._deficits[master] <= 0:
                        self._advance()
                    return Grant(master, max_words=words)
            else:
                self._deficits[master] = 0
            self._advance()
        return None
