"""Ablation: LFSR hardware RNG vs an ideal software RNG.

DESIGN.md question: does the cheap word-sampled LFSR change the
bandwidth allocation relative to ideal uniform randomness?  The claim to
verify is that it does not — allocation error stays within the noise of
the ideal source.
"""

from conftest import cycles, run_once

from repro.arbiters.lottery import StaticLotteryArbiter
from repro.bus.topology import build_single_bus_system
from repro.core.lottery_manager import SoftwareRandomSource, StaticLotteryManager
from repro.metrics.bandwidth import share_ratio_error
from repro.sim.rng import RandomStream
from repro.traffic.classes import get_traffic_class

TICKETS = [1, 2, 3, 4]


def _run(arbiter, num_cycles):
    system, bus = build_single_bus_system(
        4, arbiter, get_traffic_class("T8").generator_factory(seed=2)
    )
    system.run(num_cycles)
    scaled = arbiter.manager.tickets.tickets
    return share_ratio_error(bus.metrics.bandwidth_shares(), list(scaled))


def run_rng_ablation(num_cycles):
    lfsr_error = _run(StaticLotteryArbiter(tickets=TICKETS, lfsr_seed=3),
                      num_cycles)
    ideal = StaticLotteryManager(
        TICKETS,
        random_source=SoftwareRandomSource(RandomStream(3, "ideal")),
    )
    ideal_error = _run(StaticLotteryArbiter(manager=ideal), num_cycles)
    return lfsr_error, ideal_error


def test_bench_ablation_rng(benchmark):
    lfsr_error, ideal_error = run_once(
        benchmark, run_rng_ablation, cycles(120_000)
    )
    print()
    print("allocation error vs scaled tickets (lower is better)")
    print("  LFSR word-sampled source : {:.4f}".format(lfsr_error))
    print("  ideal software source    : {:.4f}".format(ideal_error))
    assert lfsr_error < 0.05
    assert abs(lfsr_error - ideal_error) < 0.04
