"""A descriptor-driven DMA engine.

DMA controllers are the paper's canonical bus masters ("CPUs, DSPs, DMA
controllers etc.").  This component models the standard scatter-gather
design: software programs a chain of transfer descriptors; the engine
walks the chain, splitting each transfer into bus requests of at most
``chunk_words`` and raising a completion callback per descriptor.

Because each chunk is a separate bus transaction, the arbiter
re-arbitrates between chunks — the mechanism by which a maximum
transfer size keeps a large DMA from monopolizing the bus.
"""

from repro.sim.component import Component


class DmaDescriptor:
    """One programmed transfer.

    :param words: total words to move (>= 1).
    :param slave: target slave index on the bus.
    :param flow: optional flow label stamped on the chunks.
    :param on_complete: optional callback ``(descriptor, cycle)`` fired
        when the last chunk completes.
    """

    def __init__(self, words, slave=0, flow=None, on_complete=None):
        if words < 1:
            raise ValueError("a transfer moves at least one word")
        self.words = words
        self.slave = slave
        self.flow = flow
        self.on_complete = on_complete
        self.issued_words = 0
        self.completed_words = 0
        self.completion_cycle = None

    @property
    def done(self):
        return self.completed_words >= self.words

    def __repr__(self):
        return "DmaDescriptor(words={}, slave={}, done={})".format(
            self.words, self.slave, self.done
        )


class DmaEngine(Component):
    """Walks a descriptor chain, one outstanding chunk at a time.

    :param interface: the engine's MasterInterface.
    :param chunk_words: largest single bus request the engine issues
        (typically the bus's max burst, so one grant moves one chunk).
    """

    def __init__(self, name, interface, chunk_words=16):
        super().__init__(name)
        if chunk_words < 1:
            raise ValueError("chunk_words must be >= 1")
        self.interface = interface
        self.chunk_words = chunk_words
        self._chain = []
        self._active = None
        self.descriptors_completed = 0
        self.words_transferred = 0

    def attach(self, bus):
        """Subscribe to the bus's completion stream."""
        bus.add_completion_hook(self._on_bus_completion)

    def program(self, descriptors):
        """Append descriptors to the chain (software register write)."""
        for descriptor in descriptors:
            if not isinstance(descriptor, DmaDescriptor):
                raise TypeError("expected DmaDescriptor")
            self._chain.append(descriptor)

    @property
    def idle(self):
        """True when the chain is drained and nothing is in flight."""
        return self._active is None and not self._chain

    @property
    def queue_depth(self):
        return len(self._chain) + (1 if self._active else 0)

    def reset(self):
        self._chain = []
        self._active = None
        self.descriptors_completed = 0
        self.words_transferred = 0

    def tick(self, cycle):
        if self.interface.queue_depth > 0:
            return  # a chunk is still in flight
        if self._active is None:
            if not self._chain:
                return
            self._active = self._chain.pop(0)
        descriptor = self._active
        remaining = descriptor.words - descriptor.issued_words
        chunk = min(remaining, self.chunk_words)
        self.interface.submit(
            chunk,
            cycle,
            slave=descriptor.slave,
            tag=descriptor,
            flow=descriptor.flow,
        )
        descriptor.issued_words += chunk

    def _on_bus_completion(self, request, cycle):
        if request.master != self.interface.master_id:
            return
        descriptor = request.tag
        if not isinstance(descriptor, DmaDescriptor):
            return
        descriptor.completed_words += request.words
        self.words_transferred += request.words
        if descriptor.done:
            descriptor.completion_cycle = cycle
            self.descriptors_completed += 1
            if descriptor is self._active:
                self._active = None
            if descriptor.on_complete is not None:
                descriptor.on_complete(descriptor, cycle)
