"""Exhaustive corruption fuzzing of every persistent artifact.

For each durable format — the campaign's JSONL result store, the
content-addressed cache envelope, and the framed checkpoint container —
this suite truncates the file at *every* byte offset and flips *every*
byte, then asserts the invariant each format promises:

* ResultStore: :meth:`load` never raises and never returns a record
  that was not appended; corruption costs a suffix of the history, and
  after repair a reload recovers zero bytes.
* ResultCache: :meth:`get` returns the exact stored record or ``None``
  — never a silently different record.
* Checkpoint container: :func:`read_checkpoint` raises
  :class:`CheckpointError` for every corrupted byte pattern; nothing is
  ever unpickled from bytes that fail validation.
"""

import os

import pytest

from repro.experiments.cache import ResultCache
from repro.experiments.checkpoint import (
    _RESULT_KIND,
    ExperimentCheckpointer,
)
from repro.experiments.supervisor import ResultStore
from repro.sim.snapshot import CheckpointError, read_checkpoint, write_checkpoint

RECORDS = [
    {"name": "table1", "status": "done", "report": "r1", "seed": 1},
    {"name": "table2", "status": "done", "report": "r2", "seed": 2},
    {"name": "fig9", "status": "done", "report": "r9", "seed": 3},
]


def _store_bytes(tmp_path):
    path = str(tmp_path / "results.jsonl")
    store = ResultStore(path)
    for record in RECORDS:
        store.append(dict(record))
    return path, open(path, "rb").read()


def _record_ends(raw):
    """Byte offsets just past each newline-terminated record."""
    ends, offset = [], 0
    while True:
        newline = raw.find(b"\n", offset)
        if newline == -1:
            return ends
        ends.append(newline + 1)
        offset = newline + 1


# -- ResultStore ----------------------------------------------------------


def test_store_truncation_at_every_offset_keeps_exact_prefix(tmp_path):
    path, raw = _store_bytes(tmp_path)
    ends = _record_ends(raw)
    assert len(ends) == len(RECORDS)
    for cut in range(len(raw) + 1):
        with open(path, "wb") as handle:
            handle.write(raw[:cut])
        store = ResultStore(path)
        loaded = store.load()
        # A record survives once all its bytes are present; the cut at
        # ``end - 1`` removes only the trailing newline, which the
        # store accepts (and self-heals on the next append).
        survivors = sum(1 for end in ends if cut >= end - 1)
        assert list(loaded) == [r["name"] for r in RECORDS[:survivors]], cut
        for record in RECORDS[:survivors]:
            assert loaded[record["name"]] == record
        # Repair truncated the torn tail off the file: a second load
        # sees a fully valid store and recovers nothing.
        again = ResultStore(path)
        assert again.load() == loaded
        assert again.recovered_bytes == 0
        assert again.recovered_records == 0


def test_store_byte_flip_at_every_offset_never_fabricates(tmp_path):
    path, raw = _store_bytes(tmp_path)
    originals = {r["name"]: r for r in RECORDS}
    order = [r["name"] for r in RECORDS]
    for offset in range(len(raw)):
        mutated = bytearray(raw)
        mutated[offset] ^= 0xFF
        with open(path, "wb") as handle:
            handle.write(bytes(mutated))
        loaded = ResultStore(path).load(repair=False)
        # Whatever survives is a clean prefix of what was written —
        # never a record with silently altered contents.
        assert list(loaded) == order[: len(loaded)], offset
        for name, record in loaded.items():
            assert record == originals[name], offset


def test_store_flip_in_last_record_loses_only_that_record(tmp_path):
    path, raw = _store_bytes(tmp_path)
    ends = _record_ends(raw)
    for offset in range(ends[-2], len(raw) - 1):
        mutated = bytearray(raw)
        mutated[offset] ^= 0xFF
        with open(path, "wb") as handle:
            handle.write(bytes(mutated))
        loaded = ResultStore(path).load(repair=False)
        assert list(loaded) == ["table1", "table2"], offset


# -- ResultCache ----------------------------------------------------------


def _cache_entry(tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    record = {"name": "table1", "status": "done", "report": "payload"}
    key = "ab" + "0" * 62
    cache.put(key, record)
    path = cache.entry_path(key)
    return cache, key, record, path, open(path, "rb").read()


def test_cache_truncation_at_every_offset_misses_cleanly(tmp_path):
    cache, key, record, path, raw = _cache_entry(tmp_path)
    for cut in range(len(raw) + 1):
        with open(path, "wb") as handle:
            handle.write(raw[:cut])
        result = cache.get(key)
        if cut == len(raw):
            assert result == record
        else:
            assert result is None, cut
            # The defective entry was deleted so the slot heals.
            assert not os.path.exists(path), cut


def test_cache_byte_flip_at_every_offset_never_fabricates(tmp_path):
    cache, key, record, path, raw = _cache_entry(tmp_path)
    for offset in range(len(raw)):
        mutated = bytearray(raw)
        mutated[offset] ^= 0xFF
        with open(path, "wb") as handle:
            handle.write(bytes(mutated))
        result = cache.get(key)
        assert result is None or result == record, offset


def test_cache_heals_after_invalidation(tmp_path):
    cache, key, record, path, raw = _cache_entry(tmp_path)
    with open(path, "wb") as handle:
        handle.write(raw[: len(raw) // 2])
    assert cache.get(key) is None
    assert cache.stats.invalidated >= 1
    cache.put(key, record)
    assert cache.get(key) == record


# -- Checkpoint container -------------------------------------------------


def _checkpoint_bytes(tmp_path):
    path = str(tmp_path / "stage.ckpt")
    payload = {"cycle": 123_456, "stats": [1.5, 2.5], "label": "alpha"}
    write_checkpoint(path, payload)
    return path, payload, open(path, "rb").read()


def test_checkpoint_truncation_at_every_length_raises(tmp_path):
    path, payload, raw = _checkpoint_bytes(tmp_path)
    for cut in range(len(raw)):
        with open(path, "wb") as handle:
            handle.write(raw[:cut])
        with pytest.raises(CheckpointError):
            read_checkpoint(path)
    with open(path, "wb") as handle:
        handle.write(raw)
    assert read_checkpoint(path) == payload


def test_checkpoint_byte_flip_at_every_offset_raises(tmp_path):
    # CRC32 detects every single-byte substitution, and the header
    # fields (magic, version, length) are validated before the CRC —
    # so a one-byte flip anywhere must raise, never return a payload.
    path, payload, raw = _checkpoint_bytes(tmp_path)
    for offset in range(len(raw)):
        mutated = bytearray(raw)
        mutated[offset] ^= 0xFF
        with open(path, "wb") as handle:
            handle.write(bytes(mutated))
        with pytest.raises(CheckpointError):
            read_checkpoint(path)


def test_checkpoint_trailing_garbage_raises(tmp_path):
    path, payload, raw = _checkpoint_bytes(tmp_path)
    with open(path, "wb") as handle:
        handle.write(raw + b"\x00")
    with pytest.raises(CheckpointError):
        read_checkpoint(path)


# -- StageCheckpoint integration ------------------------------------------


def test_stage_resume_discards_corrupt_done_file(tmp_path):
    """A corrupted stage result degrades to recomputation, never a
    resume failure and never a wrong result."""
    directory = str(tmp_path / "ckpt")
    checkpointer = ExperimentCheckpointer(directory, resume=False)
    stage = checkpointer.stage("alpha run")
    result = {"report": "table-1 body", "cycles": 9000}
    write_checkpoint(
        stage.done_path,
        {"kind": _RESULT_KIND, "stage": stage.name, "result": result},
    )
    raw = open(stage.done_path, "rb").read()
    for offset in range(0, len(raw), 7):
        events = []
        resumed = ExperimentCheckpointer(
            directory, resume=True, on_event=events.append
        )
        mutated = bytearray(raw)
        mutated[offset] ^= 0xFF
        with open(stage.done_path, "wb") as handle:
            handle.write(bytes(mutated))
        outcome = resumed.stage("alpha run").completed_result()
        assert outcome is None, offset
        assert any("discarding" in event for event in events)
        assert not os.path.exists(stage.done_path)
    # Intact file: the result round-trips exactly.
    with open(stage.done_path, "wb") as handle:
        handle.write(raw)
    resumed = ExperimentCheckpointer(directory, resume=True)
    assert resumed.stage("alpha run").completed_result() == result
