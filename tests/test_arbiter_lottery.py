"""Tests for the LOTTERYBUS arbiter wrappers."""

import pytest

from repro.arbiters.lottery import DynamicLotteryArbiter, StaticLotteryArbiter
from repro.core.lottery_manager import StaticLotteryManager


def test_static_arbiter_grants_a_pending_master():
    arbiter = StaticLotteryArbiter(tickets=[1, 2, 3, 4])
    for cycle in range(50):
        grant = arbiter.arbitrate(cycle, [4, 0, 4, 0])
        assert grant.master in (0, 2)


def test_no_requests_no_grant():
    arbiter = StaticLotteryArbiter(tickets=[1, 2])
    assert arbiter.arbitrate(0, [0, 0]) is None
    assert arbiter.last_outcome is None


def test_sole_requester_always_wins():
    arbiter = StaticLotteryArbiter(tickets=[1, 2, 3])
    for cycle in range(20):
        assert arbiter.arbitrate(cycle, [0, 5, 0]).master == 1


def test_grant_frequency_tracks_tickets():
    arbiter = StaticLotteryArbiter(tickets=[1, 3])
    counts = [0, 0]
    for cycle in range(8000):
        counts[arbiter.arbitrate(cycle, [1, 1]).master] += 1
    share = counts[1] / sum(counts)
    assert share == pytest.approx(0.75, abs=0.04)


def test_prebuilt_manager_accepted():
    manager = StaticLotteryManager([2, 2])
    arbiter = StaticLotteryArbiter(manager=manager)
    assert arbiter.manager is manager
    assert arbiter.num_masters == 2


def test_manager_and_tickets_are_exclusive():
    manager = StaticLotteryManager([2, 2])
    with pytest.raises(ValueError):
        StaticLotteryArbiter(tickets=[1, 1], manager=manager)
    with pytest.raises(ValueError):
        StaticLotteryArbiter()


def test_rejection_policy_may_skip_a_round():
    # With tickets [3, 2] (total 5 -> scaled 8... keep unscaled) a
    # rejection draw beyond the contending range yields no grant.
    arbiter = StaticLotteryArbiter(
        tickets=[3, 2], scale=False, draw_policy="rejection"
    )
    outcomes = [arbiter.arbitrate(c, [1, 0]) for c in range(200)]
    skipped = sum(1 for g in outcomes if g is None)
    granted = sum(1 for g in outcomes if g is not None)
    assert granted > 0
    assert skipped > 0  # draws in [3, 4) of the 4-wide window miss


def test_dynamic_arbiter_ticket_updates_shift_shares():
    arbiter = DynamicLotteryArbiter(tickets=[1, 1])
    counts = [0, 0]
    for cycle in range(4000):
        counts[arbiter.arbitrate(cycle, [1, 1]).master] += 1
    assert counts[0] / sum(counts) == pytest.approx(0.5, abs=0.05)

    arbiter.set_tickets(0, 9)
    counts = [0, 0]
    for cycle in range(4000):
        counts[arbiter.arbitrate(cycle, [1, 1]).master] += 1
    assert counts[0] / sum(counts) == pytest.approx(0.9, abs=0.05)


def test_dynamic_set_all_tickets():
    arbiter = DynamicLotteryArbiter(tickets=[1, 1, 1])
    arbiter.set_all_tickets([5, 6, 7])
    assert arbiter.tickets == (5, 6, 7)


def test_reset_rewinds_random_source():
    arbiter = StaticLotteryArbiter(tickets=[1, 2, 3])
    first = [arbiter.arbitrate(c, [1, 1, 1]).master for c in range(30)]
    arbiter.reset()
    second = [arbiter.arbitrate(c, [1, 1, 1]).master for c in range(30)]
    assert first == second
