"""Figure 8: the worked lottery example.

Components C1..C4 hold 1, 2, 3 and 4 tickets; C1, C3 and C4 have pending
requests (request map 1011), so the contending total is 1 + 3 + 4 = 8.
The drawn number 5 lies in [4, 8) = C4's range, so C4 is granted.
"""

from repro.core.lottery_manager import StaticLotteryManager


class _FixedSource:
    """A random source that replays a scripted sequence of draws."""

    def __init__(self, values):
        self._values = list(values)
        self._cursor = 0

    def draw_below(self, bound):
        value = self._values[self._cursor % len(self._values)]
        self._cursor += 1
        if value >= bound:
            raise ValueError("scripted draw {} out of range {}".format(value, bound))
        return value

    def reset(self):
        self._cursor = 0


class Figure8Result:
    def __init__(self, tickets, request_map, outcome):
        self.tickets = tickets
        self.request_map = request_map
        self.outcome = outcome

    def format_report(self):
        lines = [
            "Figure 8: lottery example",
            "tickets          : {}".format(list(self.tickets)),
            "request map      : {}".format(
                "".join("1" if r else "0" for r in self.request_map)
            ),
            "partial sums     : {}".format(list(self.outcome.partial_sums)),
            "contending total : {}".format(self.outcome.total),
            "drawn number     : {}".format(self.outcome.draw),
            "winner           : C{}".format(self.outcome.winner + 1),
        ]
        return "\n".join(lines)


def run_figure8(draw=5):  # lb: noqa[LB105] — scripted worked example, zero randomness
    """Replay the paper's example; returns a :class:`Figure8Result`."""
    tickets = (1, 2, 3, 4)
    request_map = [True, False, True, True]
    manager = StaticLotteryManager(
        tickets, random_source=_FixedSource([draw]), scale=False
    )
    outcome = manager.draw(request_map)
    return Figure8Result(tickets, request_map, outcome)
