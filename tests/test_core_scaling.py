"""Tests for power-of-two ticket scaling."""

import pytest

from repro.core.scaling import (
    is_power_of_two,
    next_power_of_two,
    scale_to_power_of_two,
    scaling_error,
)


def test_paper_example_1_2_4_scales_to_5_9_18():
    # Section 4.3: "if the ticket holdings of three components are in the
    # ratio 1:2:4 (T=7), they would be scaled to 5:9:18 (T=32)".
    assert scale_to_power_of_two([1, 2, 4], minimum_total=32) == [5, 9, 18]


def test_total_is_power_of_two():
    for tickets in ([1, 2, 3, 4], [7], [3, 3, 3], [9, 1, 5, 5, 13]):
        scaled = scale_to_power_of_two(tickets)
        assert is_power_of_two(sum(scaled))


def test_already_power_of_two_with_exact_ratio_is_identity_like():
    scaled = scale_to_power_of_two([2, 2, 4])
    assert sum(scaled) == 8
    assert scaled == [2, 2, 4]


def test_every_master_keeps_a_ticket():
    scaled = scale_to_power_of_two([1, 1000])
    assert min(scaled) >= 1
    assert is_power_of_two(sum(scaled))


def test_minimum_total_raises_resolution():
    coarse = scale_to_power_of_two([1, 2, 4])
    fine = scale_to_power_of_two([1, 2, 4], minimum_total=256)
    assert sum(fine) == 256
    assert scaling_error([1, 2, 4], fine) < scaling_error([1, 2, 4], coarse)


def test_minimum_total_must_be_power_of_two():
    with pytest.raises(ValueError):
        scale_to_power_of_two([1, 2], minimum_total=24)


@pytest.mark.parametrize("bad", [[], [0, 1], [-2, 3]])
def test_bad_tickets_rejected(bad):
    with pytest.raises(ValueError):
        scale_to_power_of_two(bad)


def test_scaling_error_reasonably_small():
    # The paper: "care must be taken to ensure that the ratios ... are
    # not significantly altered".
    error = scaling_error([1, 2, 4], scale_to_power_of_two([1, 2, 4]))
    assert error < 0.15


def test_next_power_of_two():
    assert next_power_of_two(1) == 1
    assert next_power_of_two(5) == 8
    assert next_power_of_two(16) == 16
    with pytest.raises(ValueError):
        next_power_of_two(0)


def test_is_power_of_two():
    assert is_power_of_two(1)
    assert is_power_of_two(64)
    assert not is_power_of_two(0)
    assert not is_power_of_two(12)
