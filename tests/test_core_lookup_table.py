"""Tests for the static lottery lookup table."""

import itertools

from repro.core.lookup_table import (
    LotteryLookupTable,
    index_to_request_map,
    request_map_to_index,
)
from repro.core.tickets import TicketAssignment


def test_index_round_trip():
    for index in range(16):
        request_map = index_to_request_map(index, 4)
        assert request_map_to_index(request_map) == index


def test_table_matches_direct_computation():
    tickets = TicketAssignment([2, 3, 5, 6])
    table = LotteryLookupTable(tickets)
    for request_map in itertools.product([False, True], repeat=4):
        assert table.partial_sums(list(request_map)) == tuple(
            tickets.partial_sums(list(request_map))
        )


def test_total_for_request_map():
    table = LotteryLookupTable([1, 2, 3, 4])
    assert table.total_for([True, False, True, True]) == 8
    assert table.total_for([False] * 4) == 0
    assert table.total_for([True] * 4) == 10


def test_row_count_is_two_to_the_masters():
    table = LotteryLookupTable([1, 2, 3])
    assert len(table.rows()) == 8


def test_storage_bits_accounting():
    table = LotteryLookupTable([2, 3, 5, 6])  # total 16 -> 5 bits/entry
    assert table.entry_bits == 5
    assert table.storage_bits == 16 * 4 * 5


def test_plain_sequence_accepted():
    table = LotteryLookupTable([1, 1])
    assert table.partial_sums([True, True]) == (1, 2)
