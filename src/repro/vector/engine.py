"""The struct-of-arrays batch cycle engine.

One :class:`VectorEngine` hosts many independent systems ("lanes") in
numpy arrays shaped ``(lanes,)`` or ``(lanes, masters)`` and advances
every lane one bus cycle per vectorized step: generator refills,
arbitration (lottery table gather / ticket cumsum / priority scan),
grant bookkeeping, word transfer, and completion accounting are each a
handful of masked array ops over all lanes at once.

The engine is **bit-identical** to the scalar dense simulator, the same
way strict mode polices fast mode:

* every per-generator RNG draw happens in the scalar order (rare
  emission events drop to a tiny python loop over the generator's own
  :class:`~repro.sim.rng.RandomStream`; the saturated fast path with
  :class:`~repro.traffic.message.FixedWords` draws nothing at all);
* lottery draws replay the exact LFSR streams via
  :class:`~repro.vector.lfsr.VectorLFSR` block pre-draws — one consume
  per lottery held, none on idle rounds, exactly like the managers;
* metrics accumulate in the same integer arithmetic and are exported
  through a real :class:`~repro.metrics.collector.MetricsCollector`, so
  ``lane_summary`` is structurally and float-bitwise identical to
  ``bus.metrics.summary()``.

:meth:`cross_check` rebuilds a lane's scalar twin from its plan, replays
the same run/reset schedule on the dense simulator, and raises
:class:`~repro.vector.lanes.VectorDivergenceError` on any mismatch.
"""

import pickle

from repro.metrics.collector import MetricsCollector
from repro.vector._compat import get_numpy
from repro.vector.lanes import (
    LOTTERY_FAMILIES,
    VectorDivergenceError,
    arbiter_check_state,
)
from repro.vector.lfsr import VectorLFSR

_DUMMY_MASKS = (0,)


class VectorEngine:
    """Advance many planned lanes cycle-by-cycle, vectorized.

    :param plans: :class:`~repro.vector.lanes.LanePlan` list; all lanes
        must share the master count (lane layout is ``(lanes, masters)``).
    :param block_size: LFSR samples pre-drawn per refill block.
    """

    def __init__(self, plans, block_size=32):
        np = get_numpy()
        if not plans:
            raise ValueError("need at least one lane")
        masters = {plan.num_masters for plan in plans}
        if len(masters) != 1:
            raise ValueError(
                "lanes disagree on master count: {}".format(sorted(masters))
            )
        self._np = np
        self._plans = list(plans)
        L = len(self._plans)
        M = masters.pop()
        self.num_lanes = L
        self.num_masters = M
        self.cycle = 0
        self._schedule = []

        i64 = np.int64
        self._pow2 = (1 << np.arange(M, dtype=i64))
        self._lane_ids = np.arange(L, dtype=i64)

        # -- static per-lane configuration -------------------------------
        self.max_burst = np.array([p.max_burst for p in plans], dtype=i64)
        self.arb_cycles = np.array(
            [p.arbitration_cycles for p in plans], dtype=i64
        )
        S = max(len(p.slave_setup) for p in plans)
        self.slave_setup = np.zeros((L, S), dtype=i64)
        self.slave_pw = np.zeros((L, S), dtype=i64)
        for lane, plan in enumerate(plans):
            for j, setup in enumerate(plan.slave_setup):
                self.slave_setup[lane, j] = setup
            for j, waits in enumerate(plan.slave_per_word):
                self.slave_pw[lane, j] = waits

        # -- generators ---------------------------------------------------
        # kind: -1 none, 0 saturating, 1 closed-loop
        self.gen_kind = np.full((L, M), -1, dtype=np.int8)
        self.gen_depth = np.zeros((L, M), dtype=i64)
        self.gen_think_mean = np.zeros((L, M), dtype=i64)
        self.gen_fixed = np.full((L, M), -1, dtype=i64)
        self.gen_slave = np.zeros((L, M), dtype=i64)
        self._gen_rng = [[None] * M for _ in range(L)]
        self._gen_words = [[None] * M for _ in range(L)]
        queue_cap = 1
        for lane, plan in enumerate(plans):
            for m, spec in enumerate(plan.generators):
                if spec is None:
                    continue
                self.gen_kind[lane, m] = 0 if spec.kind == "saturating" else 1
                self.gen_depth[lane, m] = spec.depth
                self.gen_think_mean[lane, m] = spec.mean_think
                if spec.fixed_words is not None:
                    self.gen_fixed[lane, m] = spec.fixed_words
                self.gen_slave[lane, m] = spec.slave
                self._gen_rng[lane][m] = spec.rng
                self._gen_words[lane][m] = spec.words
                if spec.kind == "saturating":
                    queue_cap = max(queue_cap, spec.depth)
        self._sat_mask = self.gen_kind == 0
        self._cl_mask = self.gen_kind == 1
        self._have_sat = bool(self._sat_mask.any())
        self._have_cl = bool(self._cl_mask.any())
        # A scalar draw is needed whenever a non-fixed size or a think
        # time exists; otherwise emission is fully vectorized.
        self._any_scalar_draws = bool(
            ((self.gen_kind >= 0) & (self.gen_fixed < 0)).any()
            or (self.gen_think_mean > 0).any()
        )

        # -- queues and head-request state --------------------------------
        Q = queue_cap
        self.q_count = np.zeros((L, M), dtype=i64)
        self.q_arrival = np.zeros((L, M, Q), dtype=i64)
        self.q_words = np.zeros((L, M, Q), dtype=i64)
        self.h_remaining = np.zeros((L, M), dtype=i64)
        self.h_first = np.full((L, M), -1, dtype=i64)
        self.h_last = np.full((L, M), -1, dtype=i64)
        self.h_wlat = np.zeros((L, M), dtype=i64)
        self.think = np.zeros((L, M), dtype=i64)

        # -- bus state ----------------------------------------------------
        self.stall = np.zeros(L, dtype=i64)
        self.burst_master = np.full(L, -1, dtype=i64)
        self.burst_left = np.zeros(L, dtype=i64)

        # -- metrics (mirrors MetricsCollector / LatencyStats) ------------
        self.m_cycles = np.zeros(L, dtype=i64)
        self.m_busy = np.zeros(L, dtype=i64)
        self.m_idle = np.zeros(L, dtype=i64)
        self.m_stall = np.zeros(L, dtype=i64)
        self.m_words = np.zeros((L, M), dtype=i64)
        self.m_grants = np.zeros((L, M), dtype=i64)
        self.lat_msgs = np.zeros((L, M), dtype=i64)
        self.lat_words = np.zeros((L, M), dtype=i64)
        self.lat_total = np.zeros((L, M), dtype=i64)
        self.lat_wait = np.zeros((L, M), dtype=i64)
        self.lat_wlat = np.zeros((L, M), dtype=i64)
        self.lat_max_lpw = np.zeros((L, M), dtype=np.float64)
        self.lat_max_wait = np.zeros((L, M), dtype=i64)

        # -- arbiters -----------------------------------------------------
        self._build_arbiters(block_size)

        self._may_stall = bool(
            (self.arb_cycles > 0).any()
            or (self.slave_setup > 0).any()
            or (self.slave_pw > 0).any()
        )

    def _build_arbiters(self, block_size):
        np = self._np
        i64 = np.int64
        L, M = self.num_lanes, self.num_masters
        families = [plan.profile["family"] for plan in self._plans]
        self._is_lottery = np.array(
            [f in LOTTERY_FAMILIES for f in families]
        )
        self._is_static = np.array([f == "lottery-static" for f in families])
        self._is_comp = np.array(
            [f == "lottery-compensated" for f in families]
        )
        self._lott_lanes = np.flatnonzero(self._is_lottery)
        self._prio_lanes = np.flatnonzero(
            np.array([f == "static-priority" for f in families])
        )

        # Static lookup tables, one (2**M, M) block per static lane; the
        # scalar side shares rows across identical assignments via
        # repro.core.lookup_table.shared_lookup_table, and here the rows
        # land in one dense gatherable array.
        rows = 1 << M
        self.st_rows = np.zeros((L, rows, M), dtype=i64)
        self.policy_reject = np.zeros(L, dtype=bool)
        self.tickets = np.zeros((L, M), dtype=i64)
        self.lott_held = np.zeros(L, dtype=i64)
        self.rej_draws = np.zeros(L, dtype=i64)
        self.prio_order = np.zeros((L, M), dtype=i64)
        self.comp_base = np.zeros((L, M), dtype=i64)
        self.comp_factors = np.ones((L, M), dtype=np.float64)
        self.comp_cap = np.zeros(L, dtype=i64)
        self.comp_policy_burst = np.zeros(L, dtype=i64)
        self.comp_arb_burst = np.zeros(L, dtype=i64)
        self.comp_max_ticket = np.zeros(L, dtype=i64)

        masks = [_DUMMY_MASKS] * L
        states = [1] * L
        for lane, plan in enumerate(self._plans):
            profile = plan.profile
            family = profile["family"]
            if family == "lottery-static":
                self.st_rows[lane] = np.array(profile["rows"], dtype=i64)
                self.policy_reject[lane] = (
                    profile["draw_policy"] == "rejection"
                )
                self.lott_held[lane] = profile["lotteries_held"]
                self.rej_draws[lane] = profile["rejected_draws"]
            elif family == "lottery-dynamic":
                self.tickets[lane] = profile["tickets"]
                self.lott_held[lane] = profile["lotteries_held"]
            elif family == "lottery-compensated":
                self.tickets[lane] = profile["tickets"]
                self.comp_base[lane] = profile["base_tickets"]
                self.comp_factors[lane] = profile["factors"]
                self.comp_cap[lane] = profile["cap"]
                self.comp_policy_burst[lane] = profile["policy_max_burst"]
                self.comp_arb_burst[lane] = profile["arbiter_max_burst"]
                self.comp_max_ticket[lane] = profile["max_ticket"]
                self.lott_held[lane] = profile["lotteries_held"]
            elif family == "static-priority":
                self.prio_order[lane] = profile["order"]
            if family in LOTTERY_FAMILIES:
                source = profile["random_source"]
                masks[lane] = source.jump_masks
                states[lane] = source.state
        self.lfsr = VectorLFSR(np, masks, states, block_size=block_size)

    # ------------------------------------------------------------------
    # running

    def run(self, cycles):
        """Advance every lane by ``cycles`` bus cycles."""
        if cycles < 0:
            raise ValueError("cycle count must be non-negative")
        step = self._step
        for cycle in range(self.cycle, self.cycle + cycles):
            step(cycle)
        self.cycle += cycles
        if cycles:
            self._schedule.append(("run", cycles))

    def reset_metrics(self):
        """Zero the metric arrays, exactly like ``bus.metrics.reset()``
        after a warmup: in-flight queues, bursts, arbiter counters and
        RNG streams all keep going."""
        for array in (self.m_cycles, self.m_busy, self.m_idle, self.m_stall,
                      self.m_words, self.m_grants, self.lat_msgs,
                      self.lat_words, self.lat_total, self.lat_wait,
                      self.lat_wlat, self.lat_max_lpw, self.lat_max_wait):
            array[...] = 0
        self._schedule.append(("reset",))

    # ------------------------------------------------------------------
    # per-cycle step

    def _step(self, cycle):
        np = self._np
        # -- traffic generators (ticked before the bus, as registered) --
        if self._have_sat:
            while True:
                need = self._sat_mask & (self.q_count < self.gen_depth)
                if not need.any():
                    break
                lanes, masters = np.nonzero(need)
                self._emit(lanes, masters, cycle)
        if self._have_cl:
            empty = self._cl_mask & (self.q_count == 0)
            if empty.any():
                thinking = empty & (self.think > 0)
                if thinking.any():
                    self.think[thinking] -= 1
                    emit = empty & ~thinking
                else:
                    emit = empty
                if emit.any():
                    lanes, masters = np.nonzero(emit)
                    self._emit(lanes, masters, cycle, draw_think=True)

        # -- bus tick ----------------------------------------------------
        self.m_cycles += 1
        if self._may_stall:
            stalled = self.stall > 0
            if stalled.any():
                self.stall[stalled] -= 1
                self.m_stall[stalled] += 1
                active = ~stalled
            else:
                active = None
        else:
            active = None
        pending = self.h_remaining > 0
        has_req = pending.any(axis=1)
        free = self.burst_master < 0
        if active is not None:
            no_burst = active & free
            cont = np.flatnonzero(active & ~free)
        else:
            no_burst = free
            cont = np.flatnonzero(~free)
        arb = no_burst & has_req
        idle = no_burst & ~has_req

        transfer_new = None
        if arb.any():
            winner = self._arbitrate(arb, pending)
            granted = winner >= 0
            grant_lanes = np.flatnonzero(arb & granted)
            # A rejection-policy draw that missed every range leaves the
            # bus unowned this cycle: the scalar bus records it idle.
            idle = idle | (arb & ~granted)
            if grant_lanes.size:
                transfer_new = self._grant(grant_lanes, winner[grant_lanes],
                                           cycle)
        if idle.any():
            self.m_idle[idle] += 1

        if transfer_new is not None and transfer_new.size:
            lanes = np.concatenate((cont, transfer_new))
        else:
            lanes = cont
        if lanes.size:
            self._transfer(lanes, cycle)

    def _emit(self, lanes, masters, cycle, draw_think=False):
        """Submit one request per (lane, master) pair, scalar-RNG exact.

        Mirrors ``SaturatingGenerator.tick`` / ``ClosedLoopGenerator
        .tick``: the words draw precedes the think draw on the *same*
        per-generator stream, and fixed-size sources draw nothing.
        """
        np = self._np
        words = self.gen_fixed[lanes, masters]
        if self._any_scalar_draws:
            variable = np.flatnonzero(words < 0)
            if variable.size:
                words = words.copy()
                rngs = self._gen_rng
                dists = self._gen_words
                for i in variable:
                    lane = lanes[i]
                    m = masters[i]
                    words[i] = dists[lane][m].sample(rngs[lane][m])
        slot = self.q_count[lanes, masters]
        self.q_arrival[lanes, masters, slot] = cycle
        self.q_words[lanes, masters, slot] = words
        self.q_count[lanes, masters] = slot + 1
        head = slot == 0
        if head.any():
            hl = lanes[head]
            hm = masters[head]
            self.h_remaining[hl, hm] = words[head]
            self.h_first[hl, hm] = -1
            self.h_last[hl, hm] = -1
            self.h_wlat[hl, hm] = 0
        if draw_think and self._any_scalar_draws:
            means = self.gen_think_mean[lanes, masters]
            pondering = np.flatnonzero(means > 0)
            if pondering.size:
                rngs = self._gen_rng
                for i in pondering:
                    lane = lanes[i]
                    m = masters[i]
                    self.think[lane, m] = rngs[lane][m].geometric(
                        1.0 / means[i]
                    )

    def _arbitrate(self, arb, pending):
        """Per-lane winner (-1 = no grant) for every lane in ``arb``."""
        np = self._np
        winner = np.full(self.num_lanes, -1, dtype=np.int64)
        prio = self._prio_lanes
        if prio.size:
            sub = prio[arb[prio]]
            if sub.size:
                chosen = np.full(sub.size, -1, dtype=np.int64)
                order = self.prio_order
                for rank in range(self.num_masters):
                    candidate = order[sub, rank]
                    take = (chosen < 0) & pending[sub, candidate]
                    chosen[take] = candidate[take]
                winner[sub] = chosen
        lott = self._lott_lanes
        if lott.size:
            sub = lott[arb[lott]]
            if sub.size:
                winner[sub] = self._lottery(sub, pending)
        return winner

    def _lottery(self, sub, pending):
        """One lottery round for the arbitrating lottery lanes ``sub``.

        Static lanes gather their precomputed partial-sum row by packed
        request map; dynamic/compensated lanes cumsum their masked
        holdings (the AND/adder-tree datapath).  One LFSR consume per
        lane — exactly one lottery held — then the comparator bank is a
        single broadcast compare.
        """
        np = self._np
        M = self.num_masters
        pend = pending[sub]
        psums = np.empty((sub.size, M), dtype=np.int64)
        static = self._is_static[sub]
        if static.any():
            s = np.flatnonzero(static)
            packed = pend[s].astype(np.int64) @ self._pow2
            psums[s] = self.st_rows[sub[s], packed]
        dyn = ~static
        if dyn.any():
            d = np.flatnonzero(dyn)
            masked = np.where(pend[d], self.tickets[sub[d]], 0)
            psums[d] = np.cumsum(masked, axis=1)
        total = psums[:, -1]
        # total >= 1 always: every pending master holds >= 1 ticket, so
        # the scalar manager's total==0 bail (no draw, no counter) maps
        # to these lanes simply not arbitrating.
        self.lott_held[sub] += 1
        sample = self.lfsr.consume(sub)
        reject = self.policy_reject[sub]
        if reject.any():
            bound = np.where(reject, _next_pow2(np, total), total)
        else:
            bound = total
        pow2 = (bound & (bound - 1)) == 0
        value = np.where(pow2, sample & (bound - 1), sample % bound)
        win = (psums <= value[:, None]).sum(axis=1)
        missed = win >= M
        if missed.any():
            self.rej_draws[sub[missed]] += 1
            result = np.where(missed, -1, win)
        else:
            result = win
        comp = self._is_comp[sub] & ~missed
        if comp.any():
            c = np.flatnonzero(comp)
            self._note_grant(sub[c], win[c])
        return result

    def _note_grant(self, lanes, masters):
        """Compensation feedback at grant time (CompensatedLotteryArbiter
        .arbitrate -> manager.note_grant): inflate the winner's factor by
        quantum/used and recompute every clamped holding."""
        np = self._np
        burst = np.minimum(self.h_remaining[lanes, masters],
                           self.comp_arb_burst[lanes])
        used = np.minimum(burst, self.comp_policy_burst[lanes])
        self.comp_factors[lanes, masters] = (
            self.comp_policy_burst[lanes] / used
        )
        holdings = np.rint(self.comp_base[lanes] * self.comp_factors[lanes])
        np.maximum(holdings, 1.0, out=holdings)
        np.minimum(holdings, self.comp_cap[lanes, None], out=holdings)
        np.minimum(holdings, self.comp_max_ticket[lanes, None], out=holdings)
        self.tickets[lanes] = holdings.astype(np.int64)

    def _grant(self, lanes, masters, cycle):
        """Grant bookkeeping; returns the lanes that transfer this cycle."""
        np = self._np
        self.m_grants[lanes, masters] += 1
        first = self.h_first[lanes, masters] < 0
        if first.any():
            self.h_first[lanes[first], masters[first]] = cycle
        burst = np.minimum(self.h_remaining[lanes, masters],
                           self.max_burst[lanes])
        self.burst_master[lanes] = masters
        self.burst_left[lanes] = burst
        if not self._may_stall:
            return lanes
        slave = self.gen_slave[lanes, masters]
        setup = self.slave_setup[lanes, slave] + self.arb_cycles[lanes]
        wait = setup > 0
        if wait.any():
            waiting = lanes[wait]
            self.stall[waiting] = setup[wait] - 1
            self.m_stall[waiting] += 1
            return lanes[~wait]
        return lanes

    def _transfer(self, lanes, cycle):
        """Move one word on every lane in ``lanes`` (burst holders)."""
        np = self._np
        masters = self.burst_master[lanes]
        remaining = self.h_remaining[lanes, masters] - 1
        self.h_remaining[lanes, masters] = remaining
        self.burst_left[lanes] -= 1
        last = self.h_last[lanes, masters]
        ready = np.where(last < 0, self.q_arrival[lanes, masters, 0],
                         last + 1)
        self.h_wlat[lanes, masters] += cycle - ready + 1
        self.h_last[lanes, masters] = cycle
        self.m_words[lanes, masters] += 1
        self.m_busy[lanes] += 1
        if self._may_stall:
            slave = self.gen_slave[lanes, masters]
            self.stall[lanes] = self.slave_pw[lanes, slave]
        done = remaining == 0
        ended = self.burst_left[lanes] == 0
        release = done | ended
        if release.any():
            self.burst_master[lanes[release]] = -1
        if done.any():
            self._complete(lanes[done], masters[done], cycle)

    def _complete(self, lanes, masters, cycle):
        """Retire completed head requests: latency accounting, queue pop,
        next-head promotion (Request -> LatencyStats.record)."""
        np = self._np
        arrival = self.q_arrival[lanes, masters, 0]
        words = self.q_words[lanes, masters, 0]
        latency = cycle - arrival + 1
        self.lat_msgs[lanes, masters] += 1
        self.lat_words[lanes, masters] += words
        self.lat_total[lanes, masters] += latency
        self.lat_wait[lanes, masters] += self.h_first[lanes, masters] - arrival
        self.lat_wlat[lanes, masters] += self.h_wlat[lanes, masters]
        per_word = latency / words
        np.maximum(self.lat_max_lpw[lanes, masters], per_word,
                   out=per_word)
        self.lat_max_lpw[lanes, masters] = per_word
        self.lat_max_wait[lanes, masters] = np.maximum(
            self.lat_max_wait[lanes, masters],
            self.h_first[lanes, masters] - arrival,
        )
        count = self.q_count[lanes, masters] - 1
        self.q_count[lanes, masters] = count
        if self.q_arrival.shape[2] > 1:
            self.q_arrival[lanes, masters, :-1] = (
                self.q_arrival[lanes, masters, 1:]
            )
            self.q_words[lanes, masters, :-1] = (
                self.q_words[lanes, masters, 1:]
            )
        promote = count > 0
        if promote.any():
            pl = lanes[promote]
            pm = masters[promote]
            self.h_remaining[pl, pm] = self.q_words[pl, pm, 0]
            self.h_first[pl, pm] = -1
            self.h_last[pl, pm] = -1
            self.h_wlat[pl, pm] = 0
        drained = ~promote
        if drained.any():
            self.h_remaining[lanes[drained], masters[drained]] = 0

    # ------------------------------------------------------------------
    # export / verification

    def lane_summary(self, lane):
        """The lane's metrics summary — byte-for-byte what the scalar
        bus's ``metrics.summary()`` returns, floats included (the dict is
        produced by an actual MetricsCollector filled from the arrays)."""
        collector = MetricsCollector(self.num_masters)
        collector.cycles = int(self.m_cycles[lane])
        collector.busy_cycles = int(self.m_busy[lane])
        collector.idle_cycles = int(self.m_idle[lane])
        collector.stall_cycles = int(self.m_stall[lane])
        for m in range(self.num_masters):
            stats = collector.masters[m]
            stats.words = int(self.m_words[lane, m])
            stats.grants = int(self.m_grants[lane, m])
            latency = stats.latency
            latency.messages = int(self.lat_msgs[lane, m])
            latency.words = int(self.lat_words[lane, m])
            latency.total_cycles = int(self.lat_total[lane, m])
            latency.total_wait_cycles = int(self.lat_wait[lane, m])
            latency.total_word_latency = int(self.lat_wlat[lane, m])
            latency.max_latency_per_word = float(self.lat_max_lpw[lane, m])
            latency.max_wait_cycles = int(self.lat_max_wait[lane, m])
        return collector.summary()

    def lane_arbiter_state(self, lane):
        """The arbiter-side fingerprint state for one lane (mirrors
        :func:`repro.vector.lanes.arbiter_check_state`)."""
        family = self._plans[lane].profile["family"]
        if family == "lottery-static":
            return {
                "family": family,
                "lotteries_held": int(self.lott_held[lane]),
                "rejected_draws": int(self.rej_draws[lane]),
                "lfsr_state": int(self.lfsr.state[lane]),
            }
        if family == "lottery-dynamic":
            return {
                "family": family,
                "lotteries_held": int(self.lott_held[lane]),
                "tickets": tuple(int(t) for t in self.tickets[lane]),
                "lfsr_state": int(self.lfsr.state[lane]),
            }
        if family == "lottery-compensated":
            return {
                "family": family,
                "lotteries_held": int(self.lott_held[lane]),
                "tickets": tuple(int(t) for t in self.tickets[lane]),
                "factors": tuple(float(f) for f in self.comp_factors[lane]),
                "lfsr_state": int(self.lfsr.state[lane]),
            }
        return {"family": family}

    def lane_fingerprint(self, lane):
        """Pickled (summary, arbiter state) — comparable byte-for-byte
        with :func:`repro.vector.lanes.scalar_fingerprint`."""
        return pickle.dumps(
            (self.lane_summary(lane), self.lane_arbiter_state(lane)),
            protocol=2,
        )

    def cross_check(self, lane):
        """Replay one lane on the dense scalar simulator and compare.

        Rebuilds the lane's system from its plan's builder, replays the
        engine's exact run/reset schedule, and compares metrics summary
        and arbiter state.  Raises
        :class:`~repro.vector.lanes.VectorDivergenceError` on any
        difference; returns the scalar summary on success.
        """
        plan = self._plans[lane]
        system, bus = plan.builder()
        system.simulator.mode = "dense"
        for entry in self._schedule:
            if entry[0] == "run":
                system.run(entry[1])
            else:
                bus.metrics.reset()
        scalar_summary = bus.metrics.summary()
        vector_summary = self.lane_summary(lane)
        if scalar_summary != vector_summary:
            raise VectorDivergenceError(
                "lane {} ({}) metrics diverge from the dense scalar "
                "engine:\n  scalar: {!r}\n  vector: {!r}".format(
                    lane, plan.label, scalar_summary, vector_summary
                )
            )
        scalar_arbiter = arbiter_check_state(bus.arbiter)
        vector_arbiter = self.lane_arbiter_state(lane)
        if scalar_arbiter != vector_arbiter:
            raise VectorDivergenceError(
                "lane {} ({}) arbiter state diverges:\n  scalar: {!r}\n"
                "  vector: {!r}".format(
                    lane, plan.label, scalar_arbiter, vector_arbiter
                )
            )
        return scalar_summary


def _next_pow2(np, values):
    """Vectorized next_power_of_two for positive int64 ``values``."""
    exponent = np.frexp((values - 1).astype(np.float64))[1]
    return np.where(
        values <= 1, 1, np.left_shift(np.int64(1), exponent.astype(np.int64))
    )
