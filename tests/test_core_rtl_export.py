"""Tests for the Verilog RTL generator."""

import itertools

import pytest

from repro.core.lottery_manager import StaticLotteryManager, select_winner
from repro.core.rtl_export import StaticLotteryRtl, evaluate_reference_model


@pytest.fixture
def rtl():
    return StaticLotteryRtl([1, 2, 3, 4])


def test_module_structure(rtl):
    text = rtl.generate()
    assert "module lottery_manager (" in text
    assert text.rstrip().endswith("endmodule")
    assert "input  wire [3:0] req," in text
    assert "output reg  [3:0] gnt" in text


def test_lookup_table_has_all_request_maps(rtl):
    text = rtl.generate()
    for index in range(16):
        assert "4'b{:04b}:".format(index) in text


def test_lfsr_uses_maximal_taps(rtl):
    text = rtl.generate()
    assert "lfsr_fb" in text
    # Width = draw bits (4 for total 16) + 8 margin = 12; taps (12,6,4,1).
    assert rtl.lfsr_width == 12
    assert "lfsr[11] ^ lfsr[5] ^ lfsr[3] ^ lfsr[0]" in text


def test_scaled_tickets_documented_in_header(rtl):
    text = rtl.generate()
    assert "tickets (requested) : [1, 2, 3, 4]" in text
    assert "tickets (scaled)    : [2, 3, 5, 6] (total 16)" in text


def test_exactly_one_grant_branch_per_master(rtl):
    text = rtl.generate()
    # One `gnt[m] = 1'b1` assignment per master in the priority chain.
    assert text.count("gnt[") == rtl.num_masters
    assert text.count("else if (hit[") == rtl.num_masters - 1


def test_save_round_trip(tmp_path, rtl):
    path = tmp_path / "lottery.v"
    rtl.save(str(path))
    assert path.read_text() == rtl.generate()


def test_custom_module_name():
    rtl = StaticLotteryRtl([1, 1], module_name="arb2")
    assert "module arb2 (" in rtl.generate()


def test_reference_model_matches_python_manager():
    # Cross-check the RTL dataflow against the simulator's manager for
    # every request map and every possible draw value.
    tickets = [1, 2, 3, 4]
    rtl = StaticLotteryRtl(tickets)
    manager = StaticLotteryManager(tickets)
    assert tuple(rtl.scaled) == manager.tickets.tickets
    for request_map in itertools.product([False, True], repeat=4):
        sums = manager.table.partial_sums(list(request_map))
        for draw in range(rtl.total):
            expected = select_winner(draw, sums)
            got = evaluate_reference_model(rtl, list(request_map), draw)
            assert got == expected


def test_reference_model_validation(rtl):
    with pytest.raises(ValueError):
        evaluate_reference_model(rtl, [True], 0)
    with pytest.raises(ValueError):
        evaluate_reference_model(rtl, [True] * 4, 1 << rtl.draw_bits)


def test_bad_lfsr_width_rejected():
    with pytest.raises(ValueError):
        StaticLotteryRtl([1, 2], lfsr_width=99)


def test_testbench_structure(rtl):
    bench = rtl.generate_testbench(cycles_per_map=8)
    assert "module lottery_manager_tb;" in bench
    assert ".req(req), .gnt(gnt)" in bench
    # Sweeps all 16 request maps of the 4-master design.
    assert "map < 16" in bench
    assert "repeat (8)" in bench
    assert "one-hot" in bench
    assert bench.rstrip().endswith("endmodule")


def test_testbench_checks_reference_the_dut_register(rtl):
    bench = rtl.generate_testbench()
    # The checks compare against the DUT's registered request map.
    assert "dut.req_q" in bench
