"""Per-bus metrics collection."""

from repro.metrics.histogram import LogHistogram
from repro.metrics.latency import LatencyStats
from repro.sim.snapshot import (
    CheckpointError,
    Snapshottable,
    default_load_state_dict,
    default_state_dict,
)


class FaultStats(Snapshottable):
    """Fault-injection and recovery accounting (see :mod:`repro.faults`).

    One instance lives on every :class:`MetricsCollector` as its
    ``faults`` section; the :class:`~repro.faults.FaultInjector` keeps
    another as its cross-bus aggregate.  All counters stay zero on a
    fault-free run, so the section is inert unless faults are in play.
    """

    def __init__(self):
        self.injected = {}  # fault kind -> count
        self.detected = 0
        self.retried = 0
        self.recovered = 0
        self.aborted = 0
        self.timeouts = 0
        self.degradations = 0
        self.recovery_latency = LogHistogram()

    state_attrs = (
        "injected",
        "detected",
        "retried",
        "recovered",
        "aborted",
        "timeouts",
        "degradations",
    )
    state_children = ("recovery_latency",)

    @property
    def total_injected(self):
        """Total faults injected across all kinds."""
        return sum(self.injected.values())

    @property
    def active(self):
        """True once any fault activity has been recorded."""
        return bool(
            self.injected
            or self.detected
            or self.retried
            or self.recovered
            or self.aborted
            or self.timeouts
            or self.degradations
        )

    def record_injected(self, kind):
        """Count one injected fault of ``kind``."""
        self.injected[kind] = self.injected.get(kind, 0) + 1

    def record_detected(self):
        """Count one fault caught by a protocol-level check."""
        self.detected += 1

    def record_retried(self):
        """Count one error-completed transfer scheduled for retry."""
        self.retried += 1

    def record_recovered(self, latency_cycles):
        """Count one retried transfer that finally completed."""
        self.recovered += 1
        if latency_cycles > 0:
            self.recovery_latency.record(latency_cycles)

    def record_aborted(self):
        """Count one transfer abandoned after exhausting retries."""
        self.aborted += 1

    def record_timeout(self):
        """Count one watchdog expiry (request or bus timeout)."""
        self.timeouts += 1

    def record_degradation(self):
        """Count one non-fatal graceful-degradation event."""
        self.degradations += 1

    def merge(self, other):
        """Fold another FaultStats in (counters add, histograms merge)."""
        for kind, count in other.injected.items():
            self.injected[kind] = self.injected.get(kind, 0) + count
        self.detected += other.detected
        self.retried += other.retried
        self.recovered += other.recovered
        self.aborted += other.aborted
        self.timeouts += other.timeouts
        self.degradations += other.degradations
        self.recovery_latency.merge(other.recovery_latency)

    def summary(self):
        """A plain-dict summary (merged into the collector's summary)."""
        p50, p95, p99, peak = self.recovery_latency.summary()
        return {
            "injected": dict(self.injected),
            "injected_total": self.total_injected,
            "detected": self.detected,
            "retried": self.retried,
            "recovered": self.recovered,
            "aborted": self.aborted,
            "timeouts": self.timeouts,
            "degradations": self.degradations,
            "recovery_latency_p50": p50,
            "recovery_latency_p95": p95,
            "recovery_latency_p99": p99,
            "recovery_latency_max": peak,
        }

    def __repr__(self):
        return (
            "FaultStats(injected={}, detected={}, retried={}, recovered={}, "
            "aborted={})".format(
                self.total_injected,
                self.detected,
                self.retried,
                self.recovered,
                self.aborted,
            )
        )


class MasterStats(Snapshottable):
    """Everything observed about one master on one bus."""

    state_attrs = ("words", "grants")
    state_children = ("latency",)

    def __init__(self, master_id):
        self.master_id = master_id
        self.words = 0
        self.grants = 0
        self.latency = LatencyStats()

    def merge(self, other):
        """Fold another master's accumulators in (same master id)."""
        self.words += other.words
        self.grants += other.grants
        self.latency.merge(other.latency)

    def __repr__(self):
        return "MasterStats(master={}, words={}, grants={})".format(
            self.master_id, self.words, self.grants
        )


class MetricsCollector(Snapshottable):
    """Accumulates bus activity; one instance per bus per run.

    The bus calls :meth:`observe_cycle` exactly once per simulated cycle
    and the ``record_*`` methods as events occur, so fractions computed
    here need no knowledge of the simulator.
    """

    def __init__(self, num_masters):
        if num_masters < 1:
            raise ValueError("a bus needs at least one master")
        self.num_masters = num_masters
        self.masters = [MasterStats(i) for i in range(num_masters)]
        self.cycles = 0
        self.busy_cycles = 0
        self.idle_cycles = 0
        self.stall_cycles = 0
        self.faults = FaultStats()

    state_attrs = ("cycles", "busy_cycles", "idle_cycles", "stall_cycles")
    state_children = ("faults",)

    def state_dict(self):
        state = default_state_dict(self)
        state["masters"] = [stats.state_dict() for stats in self.masters]
        return state

    def load_state_dict(self, state):
        state = dict(state)
        master_states = state.pop("masters", None)
        if (
            not isinstance(master_states, list)
            or len(master_states) != len(self.masters)
        ):
            raise CheckpointError(
                "collector snapshot does not match {} masters".format(
                    len(self.masters)
                )
            )
        default_load_state_dict(self, state)
        for stats, master_state in zip(self.masters, master_states):
            stats.load_state_dict(master_state)

    def reset(self):
        self.__init__(self.num_masters)

    def observe_cycle(self):
        self.cycles += 1

    def observe_idle_gap(self, cycles):
        """Account ``cycles`` consecutive idle bus cycles in one step —
        the fast path's replay of that many ``observe_cycle`` +
        ``record_idle`` pairs."""
        self.cycles += cycles
        self.idle_cycles += cycles

    def record_idle(self):
        self.idle_cycles += 1

    def record_stall(self):
        self.stall_cycles += 1

    def record_grant(self, master):
        self.masters[master].grants += 1

    def record_word(self, master):
        self.masters[master].words += 1
        self.busy_cycles += 1

    def record_completion(self, request):
        self.masters[request.master].latency.record(request)

    def merge(self, other):
        """Fold another collector in — the streaming-aggregation path.

        Shards of a partitioned campaign (or chunks of one long run)
        each accumulate their own collector; merging adds every counter
        and folds the per-master latency accumulators and fault
        histograms, so ratios computed afterwards (utilization, shares,
        cycles/word) equal those of a single combined run.
        """
        if other.num_masters != self.num_masters:
            raise ValueError(
                "cannot merge collectors for {} and {} masters".format(
                    self.num_masters, other.num_masters
                )
            )
        self.cycles += other.cycles
        self.busy_cycles += other.busy_cycles
        self.idle_cycles += other.idle_cycles
        self.stall_cycles += other.stall_cycles
        for mine, theirs in zip(self.masters, other.masters):
            mine.merge(theirs)
        self.faults.merge(other.faults)
        return self

    @property
    def total_words(self):
        return sum(stats.words for stats in self.masters)

    def utilization(self):
        """Fraction of observed cycles in which a word moved."""
        if self.cycles == 0:
            return 0.0
        return self.busy_cycles / self.cycles

    def bandwidth_fraction(self, master):
        """Fraction of total bus cycles carrying this master's words."""
        if self.cycles == 0:
            return 0.0
        return self.masters[master].words / self.cycles

    def bandwidth_fractions(self):
        """Per-master fractions of total cycles (sums to utilization)."""
        return [self.bandwidth_fraction(i) for i in range(self.num_masters)]

    def bandwidth_shares(self):
        """Per-master fractions of *carried* words (sums to 1 when busy).

        This is the quantity compared against ticket ratios: among the
        bandwidth actually consumed, how was it divided?
        """
        total = self.total_words
        if total == 0:
            return [0.0] * self.num_masters
        return [stats.words / total for stats in self.masters]

    def latency_per_word(self, master):
        """Message-normalized cycles/word (in-flight cycles / words)."""
        return self.masters[master].latency.avg_latency_per_word

    def latencies_per_word(self):
        return [self.latency_per_word(i) for i in range(self.num_masters)]

    def word_latency(self, master):
        """Word-stretch cycles/word (the paper figures' metric)."""
        return self.masters[master].latency.avg_word_latency

    def word_latencies(self):
        return [self.word_latency(i) for i in range(self.num_masters)]

    def summary(self):
        """A plain-dict summary convenient for reports and JSON dumps."""
        return {
            "cycles": self.cycles,
            "utilization": self.utilization(),
            "bandwidth_fractions": self.bandwidth_fractions(),
            "bandwidth_shares": self.bandwidth_shares(),
            "latencies_per_word": self.latencies_per_word(),
            "word_latencies": self.word_latencies(),
            "words": [stats.words for stats in self.masters],
            "grants": [stats.grants for stats in self.masters],
            "faults": self.faults.summary(),
        }
