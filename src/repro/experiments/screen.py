"""Two-tier screened sweeps: surrogate scores, simulator confirms.

The design-space-exploration loop the analytic surrogate exists for:
score the *full* configuration grid with :func:`repro.analytic.score_grid`
(microseconds per point), keep every configuration whose optimistic
score could still land in the simulated top-``k`` given the checked-in
surrogate error bounds, then confirm only those survivors on the real
simulator.  Confirmed rows are produced by exactly the code path
:func:`repro.experiments.run_sweep` uses — same per-point seeds, same
backends — so a screened sweep's rows are bit-identical to the rows an
exhaustive sweep would have produced for the same configurations.

The screening rule is conservative, not heuristic: with per-combination
uncertainty band ``delta`` (from :mod:`repro.analytic.bounds`, scaled by
``band_scale``), the threshold ``tau`` is the ``k``-th smallest
*pessimistic* score (``score + delta``) and every configuration whose
*optimistic* score (``score - delta``) is at most ``tau`` survives.  If
the bounds hold, the survivor set is a superset of the true simulated
top-``k``, so the confirmed frontier equals the exhaustive frontier.
Configurations the surrogate cannot model (unsupported arbiters, mixed
open/closed traffic, missing bounds) are never screened out — they go
straight to simulation.
"""

from repro.experiments.sweep import (
    BACKENDS,
    SweepResult,
    _result_row,
    _sweep_point,
    point_seed,
)
from repro.metrics.report import format_table

#: Screening objectives (all minimized; the ``-`` entries are
#: maximizations in disguise).
OBJECTIVES = ("worst_latency", "mean_latency", "utilization", "min_share")

_MASTERS = 4


def _objective(objective, utilization, shares, latencies):
    """The scalar score (lower is better) of one configuration."""
    if objective == "worst_latency":
        return max(latencies)
    if objective == "mean_latency":
        return sum(latencies) / len(latencies)
    if objective == "utilization":
        return -utilization
    if objective == "min_share":
        return -min(shares)
    raise ValueError(
        "objective must be one of {}, got {!r}".format(
            OBJECTIVES, objective
        )
    )


def _objective_band(objective, bound, latencies, band_scale):
    """Half-width of the uncertainty band around the predicted score.

    Latency bounds are relative to ``max(simulated, 1)`` cycles per
    word; bounding the simulated value by the predicted one inside the
    band keeps the arithmetic conservative enough for screening.
    """
    if bound is None:
        return None
    if objective in ("worst_latency", "mean_latency"):
        return band_scale * bound.latency * max(1.0, max(latencies))
    if objective == "utilization":
        return band_scale * bound.utilization
    return band_scale * bound.share


def _row_score(objective, row):
    shares = [row["share{}".format(i)] for i in range(_MASTERS)]
    latencies = [row["latency{}".format(i)] for i in range(_MASTERS)]
    return _objective(objective, row["utilization"], shares, latencies)


class ScreenedSweepResult:
    """Outcome of one two-tier sweep.

    ``result`` holds the confirmed (simulated) rows as a plain
    :class:`~repro.experiments.sweep.SweepResult`; ``frontier`` is its
    simulated top-``k`` by the screening objective; ``candidates`` is
    the surrogate's view of the full grid (one dict per configuration,
    with predicted score, band and survivor flag); ``funnel`` counts
    the stages.
    """

    def __init__(self, result, frontier, candidates, funnel, objective,
                 top_k, threshold):
        self.result = result
        self.frontier = frontier
        self.candidates = candidates
        self.funnel = funnel
        self.objective = objective
        self.top_k = top_k
        self.threshold = threshold

    def format_report(self):
        table_rows = []
        for row in self.frontier:
            table_rows.append(
                [
                    row["arbiter"],
                    row["traffic"],
                    row["weights"],
                    "{:.4g}".format(_row_score(self.objective, row)),
                    "{:.2f}".format(row["utilization"]),
                    "/".join(
                        "{:.2f}".format(row["share{}".format(i)])
                        for i in range(_MASTERS)
                    ),
                ]
            )
        table = format_table(
            ["arbiter", "traffic", "weights", self.objective, "util",
             "shares"],
            table_rows,
            title="Screened sweep frontier (top {} by {})".format(
                self.top_k, self.objective
            ),
        )
        funnel = self.funnel
        return table + (
            "\nfunnel: {scored} scored -> {survivors} survivors "
            "({screened_out} screened out, {conservative} sent "
            "straight to simulation) -> {confirmed} confirmed\n".format(
                **funnel
            )
        )


def run_screened_sweep(
    arbiters,
    traffic_classes,
    weights=(1, 2, 3, 4),
    cycles=50_000,
    seed=1,
    warmup=0,
    arbiter_kwargs=None,
    seed_mode="derived",
    jobs=None,
    backend="scalar",
    objective="worst_latency",
    top_k=8,
    band_scale=1.0,
    max_burst=16,
):
    """Score the grid analytically, simulate only the survivors.

    Accepts everything :func:`repro.experiments.run_sweep` does plus
    the screening controls; ``weights`` may be a single weight vector
    or a list of vectors (the grid is then the full cross product).

    :param objective: one of :data:`OBJECTIVES`; scores are minimized
        (``utilization`` / ``min_share`` maximize via negation).
    :param top_k: frontier size the screen must preserve.
    :param band_scale: multiplier on the checked-in error bounds.  The
        bounds were calibrated at the
        :data:`repro.analytic.CALIBRATION` settings; shorter, noisier
        runs deserve ``band_scale > 1``.
    :returns: a :class:`ScreenedSweepResult` whose confirmed rows are
        bit-identical to the same configurations' rows from
        :func:`~repro.experiments.run_sweep`.
    """
    # Imported lazily: repro.analytic's batch path pulls in the vector
    # backend, which imports this package — a module-level import here
    # would close that cycle.
    from repro.analytic import (
        UnsupportedArbiterError,
        bound_for,
        score_grid,
        supported_arbiters,
    )
    from repro.experiments.supervisor import pool_map

    if backend not in BACKENDS:
        raise ValueError(
            "backend must be one of {}, got {!r}".format(BACKENDS, backend)
        )
    if objective not in OBJECTIVES:
        raise ValueError(
            "objective must be one of {}, got {!r}".format(
                OBJECTIVES, objective
            )
        )
    if top_k < 1:
        raise ValueError("top_k must be >= 1")
    arbiter_kwargs = arbiter_kwargs or {}
    weight_rows = list(weights)
    if weight_rows and not hasattr(weight_rows[0], "__len__"):
        weight_rows = [tuple(weights)]
    else:
        weight_rows = [tuple(w) for w in weight_rows]

    # Tier 1: surrogate scores for the full grid.  Anything predict()
    # cannot model is marked conservative and survives unconditionally.
    supported = set(supported_arbiters())
    candidates = []
    scorable = []
    for arbiter_name in arbiters:
        for traffic_name in traffic_classes:
            for weight_row in weight_rows:
                candidate = {
                    "arbiter": arbiter_name,
                    "traffic": traffic_name,
                    "weights": weight_row,
                    "kwargs": arbiter_kwargs.get(arbiter_name, {}),
                    "predicted": None,
                    "score": None,
                    "band": None,
                    "conservative": False,
                    "survivor": False,
                }
                bound = bound_for(arbiter_name, traffic_name)
                if arbiter_name not in supported or bound is None:
                    candidate["conservative"] = True
                else:
                    scorable.append(candidate)
                candidates.append(candidate)
    if scorable:
        try:
            predictions = score_grid(
                [
                    {
                        "arbiter_name": c["arbiter"],
                        "traffic_class_name": c["traffic"],
                        "weights": c["weights"],
                        "arbiter_kwargs": c["kwargs"],
                    }
                    for c in scorable
                ],
                max_burst=max_burst,
                horizon=cycles,
            )
        except (UnsupportedArbiterError, ValueError):
            # One bad kwarg (or a mixed open/closed class) poisons the
            # whole batch call; fall back to per-point scoring so only
            # the genuinely unmodelable points turn conservative.
            predictions = []
            for c in scorable:
                try:
                    predictions.extend(
                        score_grid(
                            [
                                {
                                    "arbiter_name": c["arbiter"],
                                    "traffic_class_name": c["traffic"],
                                    "weights": c["weights"],
                                    "arbiter_kwargs": c["kwargs"],
                                }
                            ],
                            max_burst=max_burst,
                            horizon=cycles,
                        )
                    )
                except (UnsupportedArbiterError, ValueError):
                    predictions.append(None)
        for candidate, predicted in zip(scorable, predictions):
            if predicted is None:
                candidate["conservative"] = True
                continue
            bound = bound_for(candidate["arbiter"], candidate["traffic"])
            candidate["predicted"] = predicted
            candidate["score"] = _objective(
                objective,
                predicted.utilization,
                predicted.bandwidth_shares,
                predicted.latencies_per_word,
            )
            candidate["band"] = _objective_band(
                objective, bound, predicted.latencies_per_word, band_scale
            )

    # Tier 1.5: the pessimistic-threshold rule.
    scored = [c for c in candidates if c["score"] is not None]
    threshold = None
    if scored:
        pessimistic = sorted(c["score"] + c["band"] for c in scored)
        threshold = pessimistic[min(top_k, len(pessimistic)) - 1]
        for candidate in scored:
            optimistic = candidate["score"] - candidate["band"]
            candidate["survivor"] = optimistic <= threshold
    for candidate in candidates:
        if candidate["conservative"]:
            candidate["survivor"] = True

    # Tier 2: confirm survivors through run_sweep's exact machinery.
    survivors = [c for c in candidates if c["survivor"]]
    calls = [
        (
            c["arbiter"],
            c["traffic"],
            c["weights"],
            cycles,
            point_seed(seed, c["arbiter"], c["traffic"], seed_mode),
            warmup,
            c["kwargs"],
        )
        for c in survivors
    ]
    rows = None
    if backend != "scalar":
        from repro.vector import have_numpy

        if backend == "vector" or have_numpy():
            from repro.vector import run_testbed_batch

            batch = run_testbed_batch(
                [
                    dict(
                        arbiter_name=call[0],
                        traffic_class_name=call[1],
                        weights=list(call[2]),
                        cycles=call[3],
                        seed=call[4],
                        warmup=call[5],
                        arbiter_kwargs=call[6],
                    )
                    for call in calls
                ]
            )
            rows = [
                _result_row(call[0], call[1], call[2], result)
                for call, result in zip(calls, batch.results)
            ]
    if rows is None:
        rows = pool_map(_sweep_point, calls, jobs=jobs)

    frontier = sorted(rows, key=lambda row: _row_score(objective, row))
    frontier = frontier[:top_k]
    funnel = {
        "scored": len(candidates),
        "screened_out": len(candidates) - len(survivors),
        "survivors": len(survivors),
        "conservative": sum(
            1 for c in candidates if c["conservative"]
        ),
        "confirmed": len(rows),
    }
    return ScreenedSweepResult(
        result=SweepResult(rows),
        frontier=frontier,
        candidates=candidates,
        funnel=funnel,
        objective=objective,
        top_k=top_k,
        threshold=threshold,
    )
