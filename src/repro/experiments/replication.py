"""Replicated experiment runs with confidence intervals.

The paper reports point estimates "over a long simulation trace"; this
harness adds the error bars: any test-bed configuration is replicated
across independent seeds and each metric is reported as mean ± 95% CI.
"""

from repro.experiments.system import run_testbed
from repro.metrics.report import format_table
from repro.metrics.stats import Replication


class ReplicatedResult:
    def __init__(self, arbiter_name, traffic_class, weights, replication):
        self.arbiter_name = arbiter_name
        self.traffic_class = traffic_class
        self.weights = list(weights)
        self.replication = replication

    def interval(self, metric):
        return self.replication.interval(metric)

    def format_report(self):
        rows = []
        for metric, n, mu, halfwidth in self.replication.summary_rows():
            rows.append(
                [metric, n, "{:.4f}".format(mu), "±{:.4f}".format(halfwidth)]
            )
        return format_table(
            ["metric", "replications", "mean", "95% CI"],
            rows,
            title="{} on {} (weights {}), replicated".format(
                self.arbiter_name, self.traffic_class, self.weights
            ),
        )


def run_replicated_testbed(
    arbiter_name,
    traffic_class,
    weights,
    seeds=range(1, 9),
    cycles=50_000,
    warmup=2_000,
    **arbiter_kwargs
):
    """Replicate one test-bed point; returns a :class:`ReplicatedResult`.

    Collected metrics per replication: ``utilization``, per-master
    ``share{i}`` (bandwidth shares) and ``latency{i}`` (cycles/word).
    """
    replication = Replication()
    for seed in seeds:
        result = run_testbed(
            arbiter_name,
            traffic_class,
            list(weights),
            cycles=cycles,
            seed=seed,
            warmup=warmup,
            **arbiter_kwargs
        )
        replication.record("utilization", result.utilization)
        for master, share in enumerate(result.bandwidth_shares):
            replication.record("share{}".format(master), share)
        for master, latency in enumerate(result.latencies_per_word):
            replication.record("latency{}".format(master), latency)
    return ReplicatedResult(arbiter_name, traffic_class, weights, replication)
