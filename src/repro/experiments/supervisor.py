"""Supervised, crash-safe parallel execution of experiment campaigns.

``lotterybus all`` runs every registry experiment.  At paper scale that
is hours of simulation, so the campaign must survive worker crashes,
hangs, and outright loss of the supervising process:

* every experiment runs in its **own** worker process (one process per
  task rather than a shared pool, so a dying worker can only take its
  own task down, never the campaign);
* each task has a wall-clock **timeout** — an expired worker is
  terminated and the task treated like a crash;
* crashed and timed-out tasks are **retried** a bounded number of times
  with exponential backoff, and checkpoint-aware experiments resume
  their retries from their own stage checkpoints instead of starting
  over;
* finished reports land in an append-only **JSONL result store** whose
  records are flushed and fsynced, so a SIGKILL between tasks loses at
  most the task in flight and ``--resume`` skips everything recorded.

Experiments are deterministic given (name, scale, seed), so a resumed
campaign's combined report is byte-identical to an uninterrupted one.
"""

import json
import multiprocessing
import os
import time
from collections import deque

from repro.experiments.runner import experiment_names, run_experiment


class TaskOutcome:
    """What the supervisor concluded about one task."""

    def __init__(self, name, status, report=None, error=None, attempts=1):
        self.name = name
        self.status = status  # "done" | "failed"
        self.report = report
        self.error = error
        self.attempts = attempts

    def record(self):
        return {
            "name": self.name,
            "status": self.status,
            "report": self.report,
            "error": self.error,
            "attempts": self.attempts,
        }


class ResultStore:
    """Append-only JSONL store of per-task outcomes.

    Appends are flushed and fsynced so a completed task survives any
    later crash.  :meth:`load` tolerates a torn final line (the one
    write a SIGKILL can interrupt) by skipping lines that do not parse.
    """

    def __init__(self, path):
        self.path = path

    def load(self):
        """{name: record} for every successfully recorded task."""
        completed = {}
        try:
            handle = open(self.path, "r")
        except OSError:
            return completed
        with handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue  # torn tail line from a crash mid-append
                if (
                    isinstance(record, dict)
                    and record.get("status") == "done"
                    and isinstance(record.get("name"), str)
                ):
                    completed[record["name"]] = record
        return completed

    def append(self, record):
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(self.path, "a") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def clear(self):
        try:
            os.unlink(self.path)
        except OSError:
            pass


class TaskSpec:
    """One supervised unit of work: a single registry experiment."""

    def __init__(self, name, scale=1.0, seed=1, options=None,
                 checkpoint_dir=None, checkpoint_every=None, resume=False):
        self.name = name
        self.scale = scale
        self.seed = seed
        self.options = dict(options or {})
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_every = checkpoint_every
        self.resume = resume


def _worker_main(conn, spec, resume):
    """Run one experiment and send ("ok", report) or ("error", message).

    Runs in a child process; the parent interprets silence plus a
    nonzero exit code as a crash.
    """
    try:
        kwargs = dict(spec.options)
        if spec.checkpoint_dir is not None:
            from repro.experiments.checkpoint import ExperimentCheckpointer

            kwargs["checkpointer"] = ExperimentCheckpointer(
                spec.checkpoint_dir,
                every=spec.checkpoint_every or 50_000,
                resume=resume,
            )
        result = run_experiment(
            spec.name, scale=spec.scale, seed=spec.seed,
            _warn_seedless=False, **kwargs
        )
        conn.send(("ok", result.format_report()))
    except BaseException as error:  # the parent needs the reason, always
        try:
            conn.send(
                ("error", "{}: {}".format(type(error).__name__, error))
            )
        except (OSError, ValueError):
            pass
        raise
    finally:
        conn.close()


class _RunningTask:
    def __init__(self, spec, process, conn, deadline, attempt):
        self.spec = spec
        self.process = process
        self.conn = conn
        self.deadline = deadline
        self.attempt = attempt


class Supervisor:
    """Runs task specs in supervised worker processes.

    :param jobs: maximum concurrently running workers.
    :param timeout: per-task wall-clock seconds (``None`` = unlimited).
    :param retries: extra attempts after the first (0 = fail fast).
    :param backoff: base seconds of delay before retry ``n`` (doubled
        each further attempt).
    :param poll_interval: supervisor loop sleep between health checks.
    :param worker: the worker entry point (injectable for tests).
    """

    def __init__(self, jobs=1, timeout=None, retries=1, backoff=0.5,
                 poll_interval=0.05, worker=_worker_main):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive when given")
        self.jobs = jobs
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.poll_interval = poll_interval
        self.worker = worker
        self._context = multiprocessing.get_context()

    def run(self, specs, store=None, on_event=None):
        """Run every spec; returns {name: TaskOutcome}.

        Completed tasks are appended to ``store`` as they finish.  A
        KeyboardInterrupt terminates all workers before propagating, so
        ^C never leaves orphaned simulations running.
        """

        def emit(message):
            if on_event is not None:
                on_event(message)

        pending = deque((spec, 1, 0.0) for spec in specs)  # spec, attempt, not-before
        running = []
        outcomes = {}

        def settle(task, status, report=None, error=None):
            outcome = TaskOutcome(
                task.spec.name, status, report=report, error=error,
                attempts=task.attempt,
            )
            outcomes[task.spec.name] = outcome
            if store is not None:
                store.append(outcome.record())

        def retry_or_fail(task, error):
            if task.attempt <= self.retries:
                delay = self.backoff * (2 ** (task.attempt - 1))
                emit(
                    "task {}: {}; retrying in {:.1f}s (attempt {}/{})".format(
                        task.spec.name, error, delay, task.attempt + 1,
                        self.retries + 1,
                    )
                )
                pending.append(
                    (task.spec, task.attempt + 1, time.monotonic() + delay)
                )
            else:
                emit("task {}: {}; giving up".format(task.spec.name, error))
                settle(task, "failed", error=error)

        try:
            while pending or running:
                now = time.monotonic()
                # Launch whatever is due and fits.
                blocked = []
                while pending and len(running) < self.jobs:
                    spec, attempt, not_before = pending.popleft()
                    if not_before > now:
                        blocked.append((spec, attempt, not_before))
                        continue
                    running.append(self._launch(spec, attempt, emit))
                pending.extendleft(reversed(blocked))

                still_running = []
                for task in running:
                    finished = self._collect(task, settle, retry_or_fail, emit)
                    if not finished:
                        still_running.append(task)
                running = still_running
                if pending or running:
                    time.sleep(self.poll_interval)
        except KeyboardInterrupt:
            for task in running:
                self._terminate(task)
            raise
        return outcomes

    def _launch(self, spec, attempt, emit):
        parent_conn, child_conn = self._context.Pipe(duplex=False)
        # Retries resume from the task's own checkpoints instead of
        # redoing completed stages; a resumed campaign resumes even on
        # the first attempt.
        resume = spec.resume or attempt > 1
        process = self._context.Process(
            target=self.worker, args=(child_conn, spec, resume), daemon=True
        )
        process.start()
        child_conn.close()
        deadline = (
            None if self.timeout is None
            else time.monotonic() + self.timeout
        )
        emit(
            "task {}: started (attempt {}/{})".format(
                spec.name, attempt, self.retries + 1
            )
        )
        return _RunningTask(spec, process, parent_conn, deadline, attempt)

    def _collect(self, task, settle, retry_or_fail, emit):
        """Check one running task; True when it left the running set."""
        if task.conn.poll():
            try:
                status, payload = task.conn.recv()
            except (EOFError, OSError):
                status, payload = None, None
            task.process.join()
            task.conn.close()
            if status == "ok":
                emit("task {}: done".format(task.spec.name))
                settle(task, "done", report=payload)
            elif status == "error":
                retry_or_fail(task, payload)
            else:
                retry_or_fail(
                    task,
                    "worker crashed (exit code {})".format(
                        task.process.exitcode
                    ),
                )
            return True
        if task.deadline is not None and time.monotonic() > task.deadline:
            self._terminate(task)
            task.conn.close()
            retry_or_fail(
                task, "timed out after {:.0f}s".format(self.timeout)
            )
            return True
        if not task.process.is_alive():
            task.process.join()
            task.conn.close()
            retry_or_fail(
                task,
                "worker crashed (exit code {})".format(task.process.exitcode),
            )
            return True
        return False

    def _terminate(self, task):
        if not task.process.is_alive():
            return
        task.process.terminate()
        task.process.join(timeout=2.0)
        if task.process.is_alive():
            task.process.kill()
            task.process.join()


class CampaignReport:
    """The assembled outcome of a supervised campaign."""

    def __init__(self, sections, skipped, failed):
        self.sections = sections  # [(name, report_text or None)]
        self.skipped = skipped  # names reused from the result store
        self.failed = failed  # {name: error}

    @property
    def ok(self):
        return not self.failed

    def format_report(self):
        lines = []
        for name, report in self.sections:
            lines.append("=" * 72)
            lines.append("[{}]".format(name))
            if report is None:
                lines.append(
                    "FAILED: {}".format(self.failed.get(name, "unknown"))
                )
            else:
                lines.append(report)
            lines.append("")
        return "\n".join(lines)


def run_campaign(names=None, scale=1.0, seed=1, jobs=1, timeout=None,
                 retries=1, resume=False, checkpoint_dir=None,
                 checkpoint_every=None, on_event=None, supervisor=None):
    """Run a supervised experiment campaign; returns a CampaignReport.

    ``checkpoint_dir`` hosts both the JSONL result store
    (``results.jsonl``) and one sub-directory per checkpoint-aware
    experiment.  With ``resume=True``, tasks recorded in the store are
    skipped outright and interrupted checkpoint-aware tasks restart
    from their stage checkpoints.
    """
    from repro.experiments.runner import checkpoint_aware_experiments

    if names is None:
        names = experiment_names()
    if checkpoint_dir is None:
        raise ValueError("a campaign needs a checkpoint directory")
    os.makedirs(checkpoint_dir, exist_ok=True)
    store = ResultStore(os.path.join(checkpoint_dir, "results.jsonl"))
    if not resume:
        store.clear()
    completed = store.load()
    skipped = [name for name in names if name in completed]
    for name in skipped:
        if on_event is not None:
            on_event("task {}: already complete, skipping".format(name))

    aware = checkpoint_aware_experiments()
    specs = []
    for name in names:
        if name in completed:
            continue
        specs.append(
            TaskSpec(
                name,
                scale=scale,
                seed=seed,
                checkpoint_dir=(
                    os.path.join(checkpoint_dir, name)
                    if name in aware
                    else None
                ),
                checkpoint_every=checkpoint_every,
                resume=resume,
            )
        )

    if supervisor is None:
        supervisor = Supervisor(jobs=jobs, timeout=timeout, retries=retries)
    outcomes = supervisor.run(specs, store=store, on_event=on_event)

    sections, failed = [], {}
    for name in names:
        if name in completed:
            sections.append((name, completed[name]["report"]))
        elif name in outcomes and outcomes[name].status == "done":
            sections.append((name, outcomes[name].report))
        else:
            error = (
                outcomes[name].error
                if name in outcomes
                else "never completed"
            )
            failed[name] = error
            sections.append((name, None))
    return CampaignReport(sections, skipped, failed)
