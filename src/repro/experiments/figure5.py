"""Figure 5 / Example 2: TDMA latency vs request/reservation alignment.

Three masters issue identical periodic request patterns on a TDMA bus
whose timing wheel reserves one contiguous 6-slot block per master.
Master ``i``'s request lands ``phase`` cycles after the start of its own
block; because the pattern period equals the wheel length, the alignment
is locked for the whole run.  With phase 0 (the paper's Trace 1) every
transaction is served inside its own block and waits ~0 slots; shifted
patterns (Trace 2) wait several slots per transaction.

The experiment reports three architectures per phase:

* pure TDMA (``reclaim="none"``) — reproduces Figure 5's traces exactly:
  the wait equals the locked phase distance;
* two-level TDMA (``reclaim="scan"``) — shows how much the second
  arbitration level recovers (a reproduction finding: with an idle-slot
  reclaim as capable as Figure 2's description, the alignment penalty
  largely disappears at this load);
* LOTTERYBUS — phase-blind by construction.
"""

from repro.arbiters.lottery import StaticLotteryArbiter
from repro.arbiters.tdma import TdmaArbiter
from repro.bus.bus import SharedBus
from repro.bus.master import MasterInterface
from repro.bus.slave import Slave
from repro.bus.topology import BusSystem
from repro.metrics.report import format_table
from repro.traffic.patterns import PatternGenerator

# The Figure 5 system: three masters, a wheel of three equal contiguous
# blocks ("6 contiguous slots defining the size of a burst").
BLOCK = 6
NUM_MASTERS = 3
WHEEL = [0] * BLOCK + [1] * BLOCK + [2] * BLOCK
PERIOD = len(WHEEL)  # requests repeat once per wheel revolution


def _run_pattern(arbiter_factory, phase, cycles, words=BLOCK):
    """All masters request ``words`` once per revolution, offset ``phase``.

    ``phase`` is the arrival offset from the start of each master's own
    slot block; negative offsets (arriving shortly *before* the block
    ends/after it passed) are expressed modulo the period.
    """
    masters = [MasterInterface("f5.m{}".format(i), i) for i in range(NUM_MASTERS)]
    bus = SharedBus(
        "f5.bus",
        masters,
        arbiter_factory(),
        slaves=[Slave("f5.s", 0)],
        max_burst=BLOCK,
    )
    system = BusSystem()
    for i in range(NUM_MASTERS):
        arrival = (i * BLOCK + phase) % PERIOD
        system.add_generator(
            PatternGenerator(
                "f5.g{}".format(i),
                masters[i],
                [(arrival, words)],
                repeat_period=PERIOD,
            )
        )
    system.add_bus(bus)
    system.run(cycles)
    return bus.metrics


def _mean_latency(metrics):
    values = metrics.latencies_per_word()
    return sum(values) / len(values)


def _mean_wait(metrics):
    waits = [
        metrics.masters[i].latency.avg_wait_cycles for i in range(NUM_MASTERS)
    ]
    return sum(waits) / len(waits)


class Figure5Result:
    """Mean per-word latency / wait slots per phase, per architecture."""

    def __init__(self, phases, pure_tdma, pure_waits, two_level, lottery):
        self.phases = phases
        self.pure_tdma = pure_tdma
        self.pure_waits = pure_waits
        self.two_level = two_level
        self.lottery = lottery

    def aligned_wait(self):
        return self.pure_waits[self.phases.index(0)]

    def worst_wait(self):
        return max(self.pure_waits)

    def lottery_spread(self):
        """Max - min lottery latency across phases (phase sensitivity)."""
        return max(self.lottery) - min(self.lottery)

    def format_report(self):
        rows = []
        for i, phase in enumerate(self.phases):
            rows.append(
                [
                    phase,
                    "{:.2f}".format(self.pure_tdma[i]),
                    "{:.2f}".format(self.pure_waits[i]),
                    "{:.2f}".format(self.two_level[i]),
                    "{:.2f}".format(self.lottery[i]),
                ]
            )
        table = format_table(
            [
                "phase",
                "TDMA lat/word",
                "TDMA wait (slots)",
                "2-level TDMA lat/word",
                "LOTTERY lat/word",
            ],
            rows,
            title=(
                "Figure 5: latency vs request/reservation alignment "
                "(phase 0 = Trace 1, aligned)"
            ),
        )
        traces = "\n\n".join(
            render_figure5_traces(phase=phase, cycles=40) for phase in (0, 15)
        )
        return table + "\n\n" + traces


def render_figure5_traces(phase=15, cycles=72):
    """Draw the actual Figure 5 waveforms for one phase shift.

    Returns the ASCII symbolic execution trace (request arrivals and
    per-slot bus ownership) of the pure-TDMA bus — phase 0 reproduces
    Trace 1 (aligned), other phases Trace 2 (shifted).
    """
    from repro.metrics.waveform import BusProbe, render_waveform

    masters = [MasterInterface("f5t.m{}".format(i), i) for i in range(NUM_MASTERS)]
    bus = SharedBus(
        "f5t.bus",
        masters,
        TdmaArbiter(NUM_MASTERS, WHEEL, reclaim="none"),
        slaves=[Slave("f5t.s", 0)],
        max_burst=BLOCK,
    )
    probe = BusProbe("f5t.probe", bus, window=cycles)
    system = BusSystem()
    for i in range(NUM_MASTERS):
        arrival = (i * BLOCK + phase) % PERIOD
        system.add_generator(
            PatternGenerator(
                "f5t.g{}".format(i),
                masters[i],
                [(arrival, BLOCK)],
                repeat_period=PERIOD,
            )
        )
    system.add_bus(bus)
    system.add_monitor(probe)
    system.run(cycles)
    title = "Figure 5 trace, phase shift {} (wheel: 6 slots per master)".format(
        phase
    )
    return title + "\n" + render_waveform(probe)


def run_figure5(cycles=40_000, phases=None, seed=1):  # lb: noqa[LB203] — deterministic TDMA phase sweep; seed kept for the uniform entry-point signature
    """Sweep the request-pattern phase; returns a :class:`Figure5Result`."""
    if phases is None:
        phases = [0, 3, 6, 9, 12, 15]
    pure = []
    pure_waits = []
    two_level = []
    lottery = []
    for phase in phases:
        metrics = _run_pattern(
            lambda: TdmaArbiter(NUM_MASTERS, WHEEL, reclaim="none"), phase, cycles
        )
        pure.append(_mean_latency(metrics))
        pure_waits.append(_mean_wait(metrics))
        metrics = _run_pattern(
            lambda: TdmaArbiter(NUM_MASTERS, WHEEL, reclaim="scan"), phase, cycles
        )
        two_level.append(_mean_latency(metrics))
        metrics = _run_pattern(
            lambda: StaticLotteryArbiter(
                tickets=[1] * NUM_MASTERS, lfsr_seed=seed
            ),
            phase,
            cycles,
        )
        lottery.append(_mean_latency(metrics))
    return Figure5Result(list(phases), pure, pure_waits, two_level, lottery)
