"""ATM cells."""

# An ATM cell is 53 octets (5-octet header + 48-octet payload); over a
# 32-bit system bus that is ceil(53 / 4) = 14 bus words per cell.
CELL_BYTES = 53
BUS_WORD_BYTES = 4
CELL_WORDS = -(-CELL_BYTES // BUS_WORD_BYTES)


class ATMCell:
    """One cell flowing through the switch.

    :param port: destination output port index.
    :param sequence: per-port arrival sequence number.
    :param arrival_cycle: cycle the cell arrived at the switch input.
    """

    __slots__ = (
        "port",
        "sequence",
        "arrival_cycle",
        "address",
        "dequeue_cycle",
        "forward_cycle",
    )

    def __init__(self, port, sequence, arrival_cycle):
        if port < 0 or sequence < 0 or arrival_cycle < 0:
            raise ValueError("invalid cell parameters")
        self.port = port
        self.sequence = sequence
        self.arrival_cycle = arrival_cycle
        self.address = None
        self.dequeue_cycle = None
        self.forward_cycle = None

    @property
    def forwarded(self):
        return self.forward_cycle is not None

    @property
    def switch_latency(self):
        """Cycles from switch arrival to forwarding (port-to-port delay)."""
        if self.forward_cycle is None:
            raise ValueError("cell has not been forwarded")
        return self.forward_cycle - self.arrival_cycle

    def __repr__(self):
        return "ATMCell(port={}, seq={}, arrival={})".format(
            self.port, self.sequence, self.arrival_cycle
        )
