"""The chaos acceptance harness behind ``python -m repro.chaos``.

Three phases, each a hard check on the supervision stack:

1. **Reference** — the requested experiments run serially, fault-free,
   with no cache.  This is ground truth.
2. **Chaos campaign** — the same experiments run on the worker pool
   with a seeded :class:`~repro.chaos.plan.ChaosPlan` attacking every
   infrastructure seam at once (worker SIGKILL/SIGSTOP at dispatch,
   torn/ENOSPC result-store appends, cache-envelope byte flips,
   truncated checkpoint containers).  The campaign must converge with
   exit 0 and its final report must be **bit-identical** to phase 1.
3. **Poison demo** (skippable with ``--no-poison``) — a synthetic task
   that deterministically SIGKILLs every worker that touches it must be
   quarantined after exactly ``quarantine_after`` respawns and reported
   failed, while a clean task sharing the pool still completes.

Exit codes: 0 all phases passed, 1 a phase failed (mismatched report,
failed tasks, quarantine misbehaviour), 2 bad usage.
"""

import argparse
import os
import shutil
import sys
import tempfile

from repro.chaos.injector import ChaosInjector
from repro.chaos.plan import ChaosPlan
from repro.experiments.runner import experiment_names
from repro.experiments.supervisor import (
    Supervisor,
    TaskSpec,
    run_campaign,
    run_task_spec,
)

DEFAULT_EXPERIMENTS = ("table1",)

# Flag-activated rates: high enough that a short campaign provably
# exercises the recovery path, low enough to still converge fast.
TORN_WRITE_RATE = 0.75
CACHE_CORRUPTION_RATE = 0.75
CHECKPOINT_CORRUPTION_RATE = 0.5


def build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description=(
            "run a campaign under seeded infrastructure faults and "
            "verify the report is bit-identical to a fault-free run"
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=1,
        help="root seed for both the experiments and the chaos streams",
    )
    parser.add_argument(
        "--experiments", nargs="+", default=list(DEFAULT_EXPERIMENTS),
        metavar="NAME", help="registry experiments to campaign over",
    )
    parser.add_argument(
        "--scale", type=float, default=0.1,
        help="simulation scale factor (default 0.1: a quick campaign)",
    )
    parser.add_argument("--jobs", type=int, default=2,
                        help="pool workers for the chaos campaign")
    parser.add_argument(
        "--kill-rate", type=float, default=0.0,
        help="per-dispatch probability of SIGKILLing the worker",
    )
    parser.add_argument(
        "--stall-rate", type=float, default=0.0,
        help=(
            "per-dispatch probability of SIGSTOPping the worker "
            "(recovered by heartbeat liveness; each event costs a "
            "heartbeat timeout)"
        ),
    )
    parser.add_argument(
        "--enospc-rate", type=float, default=0.0,
        help="per-write probability of an injected ENOSPC",
    )
    parser.add_argument(
        "--torn-writes", action="store_true",
        help="tear result-store appends (rate {})".format(TORN_WRITE_RATE),
    )
    parser.add_argument(
        "--corrupt-cache", action="store_true",
        help="byte-flip fresh cache envelopes (rate {})".format(
            CACHE_CORRUPTION_RATE
        ),
    )
    parser.add_argument(
        "--corrupt-checkpoints", action="store_true",
        help="truncate checkpoint containers in workers (rate {})".format(
            CHECKPOINT_CORRUPTION_RATE
        ),
    )
    parser.add_argument(
        "--retries", type=int, default=25,
        help="retry budget per task (quarantine binds first)",
    )
    parser.add_argument(
        "--quarantine-after", type=int, default=5,
        help="consecutive crashes before a task is quarantined",
    )
    parser.add_argument(
        "--circuit-breaker", type=int, default=10,
        help="consecutive crashes before degrading to serial execution",
    )
    parser.add_argument(
        "--workdir", default=None,
        help=(
            "directory for stores/checkpoints/cache (default: a "
            "temporary directory, removed on success)"
        ),
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="resume a previous chaos campaign in --workdir",
    )
    parser.add_argument(
        "--no-poison", action="store_true",
        help="skip the poison-task quarantine demonstration",
    )
    parser.add_argument(
        "--service", action="store_true",
        help=(
            "run the durable-service phase: start the DSE server as a "
            "subprocess, hammer it with concurrent/duplicate/malformed "
            "submissions, kill -9 and restart it mid-campaign, and "
            "verify bit-identical results with zero duplicated work"
        ),
    )
    parser.add_argument(
        "--service-kills", type=int, default=2,
        help="kill -9 / restart rounds in the service phase "
             "(default: %(default)s)",
    )
    parser.add_argument("--verbose", action="store_true",
                        help="stream supervisor events to stderr")
    return parser


def _validate(args):
    if args.scale <= 0:
        return "--scale must be positive"
    if args.jobs < 1:
        return "--jobs must be >= 1"
    if args.retries < 0:
        return "--retries must be >= 0"
    if args.quarantine_after < 1:
        return "--quarantine-after must be >= 1"
    if args.circuit_breaker < 1:
        return "--circuit-breaker must be >= 1"
    for name in ("kill_rate", "stall_rate", "enospc_rate"):
        if not 0.0 <= getattr(args, name) <= 1.0:
            return "--{} must lie in [0, 1]".format(name.replace("_", "-"))
    if args.resume and args.workdir is None:
        return "--resume requires --workdir (temp dirs do not persist)"
    if args.service_kills < 0:
        return "--service-kills must be >= 0"
    known = set(experiment_names())
    unknown = [name for name in args.experiments if name not in known]
    if unknown:
        return "unknown experiment(s): {}".format(", ".join(unknown))
    return None


def plan_from_args(args):
    return ChaosPlan(
        kill_rate=args.kill_rate,
        stall_rate=args.stall_rate,
        torn_write_rate=TORN_WRITE_RATE if args.torn_writes else 0.0,
        enospc_rate=args.enospc_rate,
        cache_corruption_rate=(
            CACHE_CORRUPTION_RATE if args.corrupt_cache else 0.0
        ),
        checkpoint_corruption_rate=(
            CHECKPOINT_CORRUPTION_RATE if args.corrupt_checkpoints else 0.0
        ),
    )


def _emit(message):
    print(message, file=sys.stderr, flush=True)


def run_reference(args, workdir, on_event=None):
    """Phase 1: the fault-free serial ground-truth campaign."""
    return run_campaign(
        names=list(args.experiments),
        scale=args.scale,
        seed=args.seed,
        jobs=1,
        retries=0,
        checkpoint_dir=os.path.join(workdir, "reference"),
        use_cache=False,
        on_event=on_event,
    )


def run_chaos(args, workdir, injector, on_event=None):
    """Phase 2: the same campaign under the chaos schedule."""
    supervisor = Supervisor(
        jobs=args.jobs,
        retries=args.retries,
        backoff=0.05,
        quarantine_after=args.quarantine_after,
        circuit_breaker=args.circuit_breaker,
        heartbeat_interval=0.25,
        heartbeat_timeout=5.0,
        chaos=injector,
    )
    return run_campaign(
        names=list(args.experiments),
        scale=args.scale,
        seed=args.seed,
        resume=args.resume,
        checkpoint_dir=os.path.join(workdir, "chaos"),
        cache_dir=os.path.join(workdir, "chaos-cache"),
        supervisor=supervisor,
        chaos=injector,
        on_event=on_event,
    )


def poison_task_runner(spec, resume):
    """Pool task runner whose ``chaos-poison`` task kills its worker.

    ``os._exit`` sidesteps every exception handler in the worker loop —
    from the supervisor's seat this is indistinguishable from an OOM
    kill or a segfaulting native extension, which is the point.
    """
    if spec.name == "chaos-poison":
        os._exit(23)
    if spec.name.startswith("chaos-"):
        return "ok:{}".format(spec.name)
    return run_task_spec(spec, resume)


def run_poison_demo(args, on_event=None):
    """Phase 3: prove bounded respawns + quarantine + forward progress.

    Returns a list of failure strings (empty = pass).
    """
    supervisor = Supervisor(
        jobs=2,
        retries=10,
        backoff=0.01,
        quarantine_after=3,
        circuit_breaker=None,
        task_runner=poison_task_runner,
    )
    specs = [TaskSpec("chaos-poison"), TaskSpec("chaos-clean")]
    outcomes = supervisor.run(specs, on_event=on_event)
    problems = []
    poison = outcomes.get("chaos-poison")
    clean = outcomes.get("chaos-clean")
    if poison is None or poison.status != "failed":
        problems.append("poison task was not reported failed")
    elif poison.error_kind != "quarantined":
        problems.append(
            "poison task failed as {!r}, expected 'quarantined'".format(
                poison.error_kind
            )
        )
    elif poison.attempts != 3:
        problems.append(
            "poison task took {} attempts, expected exactly 3 "
            "(bounded respawns)".format(poison.attempts)
        )
    if clean is None or clean.status != "done":
        problems.append("clean task did not complete alongside the poison")
    return problems


def main(argv=None):
    args = build_parser().parse_args(argv)
    problem = _validate(args)
    if problem is not None:
        print(
            "python -m repro.chaos: error: {}".format(problem),
            file=sys.stderr,
        )
        return 2
    on_event = _emit if args.verbose else None
    plan = plan_from_args(args)
    injector = ChaosInjector(plan, seed=args.seed)
    workdir = args.workdir
    temporary = workdir is None
    if temporary:
        workdir = tempfile.mkdtemp(prefix="lotterybus-chaos-")
    os.makedirs(workdir, exist_ok=True)

    failures = []
    total_phases = 3 + (1 if args.service else 0)
    _emit("chaos: plan {!r}".format(plan))
    _emit("chaos: phase 1/{}: fault-free serial reference".format(
        total_phases
    ))
    reference = run_reference(args, workdir, on_event=on_event)
    if not reference.ok:
        _emit("chaos: reference campaign failed; aborting")
        return 1
    _emit(
        "chaos: phase 2/{}: campaign under chaos "
        "(jobs={}, seed={})".format(total_phases, args.jobs, args.seed)
    )
    campaign = run_chaos(args, workdir, injector, on_event=on_event)
    _emit(injector.format_summary())
    if not campaign.ok:
        failures.append(
            "chaos campaign failed tasks: {}".format(
                ", ".join(sorted(campaign.failed))
            )
        )
    elif campaign.format_report() != reference.format_report():
        failures.append(
            "chaos campaign report differs from fault-free reference"
        )
    else:
        _emit(
            "chaos: report bit-identical to fault-free reference "
            "({} experiment(s))".format(len(args.experiments))
        )

    if args.no_poison:
        _emit("chaos: phase 3/{}: poison demo skipped (--no-poison)".format(
            total_phases
        ))
    else:
        _emit("chaos: phase 3/{}: poison-task quarantine".format(
            total_phases
        ))
        poison_problems = run_poison_demo(args, on_event=on_event)
        if poison_problems:
            failures.extend(poison_problems)
        else:
            _emit(
                "chaos: poison task quarantined after 3 bounded respawns; "
                "clean task unaffected"
            )

    if args.service:
        _emit(
            "chaos: phase 4/{}: durable service under kill -9 "
            "({} kill round(s))".format(total_phases, args.service_kills)
        )
        from repro.chaos.service_phase import run_service_phase

        service_problems = run_service_phase(args, workdir,
                                             on_event=on_event)
        if service_problems:
            failures.extend(service_problems)
        else:
            _emit(
                "chaos: service survived {} kill -9 round(s): results "
                "bit-identical, zero duplicated admissions, drain "
                "exited 143".format(args.service_kills)
            )

    if failures:
        for failure in failures:
            _emit("chaos: FAIL: {}".format(failure))
        _emit("chaos: workdir kept at {}".format(workdir))
        return 1
    _emit("chaos: all phases passed")
    if temporary:
        shutil.rmtree(workdir, ignore_errors=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
