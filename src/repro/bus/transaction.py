"""Bus transaction records.

A :class:`Request` is one communication transaction: a master asking to
move ``words`` bus words to/from a slave.  A :class:`Grant` is the
arbiter's decision for one arbitration round.
"""


class Request:
    """A pending (or completed) bus transaction.

    :param master: index of the issuing master on its bus.
    :param words: total words to transfer (must be >= 1).
    :param arrival_cycle: cycle at which the request became visible to
        the arbiter.
    :param slave: index of the target slave on the bus (default 0).
    :param tag: opaque caller data (e.g. an ATM cell), carried through to
        completion callbacks.
    :param flow: optional data-flow label; flow-aware arbiters allocate
        bandwidth per flow rather than per master (see
        :mod:`repro.core.flows`).
    """

    __slots__ = (
        "master",
        "words",
        "arrival_cycle",
        "slave",
        "tag",
        "flow",
        "parked_until",
        "setup_done",
        "remaining",
        "first_grant_cycle",
        "completion_cycle",
        "last_word_cycle",
        "word_latency_total",
        "retries",
        "fault_detected",
        "aborted",
        "attempt_cycle",
        "attempt_granted",
    )

    def __init__(self, master, words, arrival_cycle, slave=0, tag=None,
                 flow=None):
        if words < 1:
            raise ValueError("a request must carry at least one word")
        if master < 0:
            raise ValueError("master index must be non-negative")
        if arrival_cycle < 0:
            raise ValueError("arrival cycle must be non-negative")
        self.master = master
        self.words = words
        self.arrival_cycle = arrival_cycle
        self.slave = slave
        self.tag = tag
        self.flow = flow
        self.remaining = words
        self.first_grant_cycle = None
        self.completion_cycle = None
        self.last_word_cycle = None
        self.word_latency_total = 0
        # Split-transaction state: while parked the request is invisible
        # to arbitration (the slave is performing its setup off-bus).
        self.parked_until = None
        self.setup_done = False
        # Error-response / retry state (see repro.faults): a transfer
        # whose payload was corrupted in flight is error-completed and,
        # policy permitting, re-issued from scratch.
        self.retries = 0
        self.fault_detected = False
        self.aborted = False
        self.attempt_cycle = arrival_cycle
        self.attempt_granted = False

    def account_word(self, cycle):
        """Record one word moving at ``cycle`` (called by the bus).

        Accumulates the *word-stretch* latency: each word is charged the
        cycles since it became ready (the message's arrival for the
        first word, the cycle after the previous word for the rest).
        Back-to-back service from arrival scores exactly 1.0 per word;
        slot-interleaved service charges every inter-word gap.
        """
        if self.last_word_cycle is None:
            ready = self.arrival_cycle
        else:
            ready = self.last_word_cycle + 1
        self.word_latency_total += cycle - ready + 1
        self.last_word_cycle = cycle

    def prepare_retry(self, cycle):
        """Reset per-attempt transfer state so the request can re-issue.

        Called by the master interface's error-response path.  The
        arrival cycle is preserved, so latency figures (and the recovery
        latency histogram) charge the full arrival-to-final-completion
        span including every failed attempt and backoff wait.
        """
        self.remaining = self.words
        self.fault_detected = False
        self.setup_done = False
        self.parked_until = None
        self.attempt_granted = False
        self.attempt_cycle = cycle
        self.retries += 1

    @property
    def complete(self):
        """True once every word has been transferred."""
        return self.remaining == 0

    @property
    def latency_cycles(self):
        """Total cycles from arrival to last word, inclusive.

        Only meaningful once the request is complete; a request whose
        first word moves on its arrival cycle and which carries ``w``
        words back-to-back has latency exactly ``w``.
        """
        if self.completion_cycle is None:
            raise ValueError("request has not completed")
        return self.completion_cycle - self.arrival_cycle + 1

    @property
    def latency_per_word(self):
        """Message-normalized cycles per word: in-flight cycles / words."""
        return self.latency_cycles / self.words

    @property
    def word_latency_per_word(self):
        """Word-stretch cycles per word (see :meth:`account_word`).

        This is the reproduction's reading of the paper's "average number
        of bus cycles spent in transferring a bus word including both
        waiting time and data transfer time": every word is charged its
        own wait, so slot-interleaved (TDMA) service is visibly more
        expensive than burst (lottery) service.
        """
        return self.word_latency_total / self.words

    @property
    def wait_cycles(self):
        """Cycles spent waiting before the first word moved."""
        if self.first_grant_cycle is None:
            raise ValueError("request has not been granted")
        return self.first_grant_cycle - self.arrival_cycle

    def __repr__(self):
        return (
            "Request(master={}, words={}, arrival={}, remaining={})".format(
                self.master, self.words, self.arrival_cycle, self.remaining
            )
        )


class Grant:
    """An arbitration decision.

    :param master: index of the winning master.
    :param max_words: optional cap on the number of words this grant may
        move before re-arbitration (the TDMA arbiter grants single-word
        slots); ``None`` defers to the bus's maximum burst size.
    """

    __slots__ = ("master", "max_words")

    def __init__(self, master, max_words=None):
        if master < 0:
            raise ValueError("master index must be non-negative")
        if max_words is not None and max_words < 1:
            raise ValueError("max_words must be >= 1 when given")
        self.master = master
        self.max_words = max_words

    def __eq__(self, other):
        return (
            isinstance(other, Grant)
            and self.master == other.master
            and self.max_words == other.max_words
        )

    def __hash__(self):
        return hash((self.master, self.max_words))

    def __repr__(self):
        return "Grant(master={}, max_words={})".format(self.master, self.max_words)
