"""Tests for the modulo range-reduction hardware model."""

import pytest

from repro.core.modulo import modulo_bias, reduce_modulo, reduce_scale


def test_reduce_modulo_basic():
    assert reduce_modulo(5, 8) == 5
    assert reduce_modulo(13, 8) == 5
    assert reduce_modulo(0, 3) == 0


def test_reduce_modulo_validation():
    with pytest.raises(ValueError):
        reduce_modulo(5, 0)
    with pytest.raises(ValueError):
        reduce_modulo(-1, 4)


def test_reduce_scale_range():
    for draw in range(16):
        value = reduce_scale(draw, 5, 4)
        assert 0 <= value < 5


def test_reduce_scale_uniformish_partition():
    counts = [0] * 5
    for draw in range(1 << 10):
        counts[reduce_scale(draw, 5, 10)] += 1
    assert max(counts) - min(counts) <= 1


def test_reduce_scale_validation():
    with pytest.raises(ValueError):
        reduce_scale(16, 5, 4)
    with pytest.raises(ValueError):
        reduce_scale(1, 0, 4)


def test_modulo_bias_zero_when_dividing_evenly():
    assert modulo_bias(8, 4) == 0.0
    assert modulo_bias(16, 8) == 0.0


def test_modulo_bias_bound():
    # Bias shrinks as the draw space grows relative to the total.
    assert modulo_bias(10, 4) > modulo_bias(10, 16) > 0.0
    assert modulo_bias(10, 16) < 10 / (1 << 16)


def test_modulo_bias_exact_small_case():
    # Space 8, total 3: residues 0,1 have 3 preimages, residue 2 has 2.
    # The largest deviation is residue 2's deficit: 1/3 - 2/8 = 1/12.
    assert modulo_bias(3, 3) == pytest.approx(1 / 3 - 2 / 8)


def test_modulo_bias_validation():
    with pytest.raises(ValueError):
        modulo_bias(0, 4)
    with pytest.raises(ValueError):
        modulo_bias(100, 4)
