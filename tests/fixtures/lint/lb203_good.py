# lb: module=repro.sim.fixture_seeded
"""LB203 true negatives: seeds reaching sinks directly, via hops, via closures."""

import random


def run_sim(cycles, seed=1):
    rng = make_generator(seed)
    return sum(rng.random() for _ in range(cycles))


def make_generator(seed):
    return random.Random(seed)


def run_factory(cycles, seed=1):
    # Closure capture: the nested function consumes the outer seed.
    def build():
        return random.Random(seed)
    return build().random() * cycles


def run_stored(cycles, seed=1):
    return Simulation(seed).run(cycles)


class Simulation:
    def __init__(self, seed):
        self.seed = seed

    def run(self, cycles):
        return random.Random(self.seed).random() * cycles
