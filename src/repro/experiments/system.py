"""The 4-master/4-slave performance-evaluation test-bed (Figure 11).

All test-bed experiments share one entry point, :func:`run_testbed`:
build the single-bus system of Figure 3/11, attach a traffic class's
generators, install the arbiter under evaluation, run, and return the
bus metrics summary.
"""

import itertools

from repro.arbiters.registry import make_arbiter
from repro.bus.topology import build_single_bus_system
from repro.traffic.classes import get_traffic_class

DEFAULT_NUM_MASTERS = 4
DEFAULT_CYCLES = 200_000
DEFAULT_MAX_BURST = 16


class TestbedResult:
    """Metrics of one test-bed run."""

    def __init__(self, arbiter_name, traffic_class, weights, summary):
        self.arbiter_name = arbiter_name
        self.traffic_class = traffic_class
        self.weights = list(weights)
        self.summary = summary

    @property
    def bandwidth_fractions(self):
        return self.summary["bandwidth_fractions"]

    @property
    def bandwidth_shares(self):
        return self.summary["bandwidth_shares"]

    @property
    def latencies_per_word(self):
        return self.summary["latencies_per_word"]

    @property
    def utilization(self):
        return self.summary["utilization"]

    def __repr__(self):
        return "TestbedResult({}, {}, weights={})".format(
            self.arbiter_name, self.traffic_class, self.weights
        )


def run_testbed(
    arbiter_name,
    traffic_class_name,
    weights,
    cycles=DEFAULT_CYCLES,
    seed=1,
    max_burst=DEFAULT_MAX_BURST,
    num_masters=DEFAULT_NUM_MASTERS,
    warmup=0,
    **arbiter_kwargs
):
    """Run one (arbiter, traffic class, weights) point of the test-bed.

    :param arbiter_name: a name accepted by
        :func:`repro.arbiters.registry.make_arbiter`.
    :param traffic_class_name: ``"T1"``..``"T9"``.
    :param weights: per-master importance (priorities / slots / tickets).
    :param cycles: measured simulation cycles.
    :param seed: root RNG seed for the traffic generators.
    :param warmup: cycles simulated (queues filling, wheel spinning)
        before metrics start accumulating.
    :param arbiter_kwargs: scheme-specific extras (e.g. ``reclaim``).
    """
    if warmup < 0:
        raise ValueError("warmup must be non-negative")
    traffic_class = get_traffic_class(traffic_class_name)
    arbiter = make_arbiter(arbiter_name, num_masters, weights, **arbiter_kwargs)
    system, bus = build_single_bus_system(
        num_masters,
        arbiter,
        traffic_class.generator_factory(seed=seed),
        max_burst=max_burst,
    )
    if warmup:
        system.run(warmup)
        bus.metrics.reset()
    system.run(cycles)
    return TestbedResult(
        arbiter_name, traffic_class_name, weights, bus.metrics.summary()
    )


def weight_permutations(values=(1, 2, 3, 4)):
    """All assignments of ``values`` to masters, in the paper's order.

    The paper's x-axes enumerate "priority (ticket) assignments to
    C1-C4" lexicographically: ``1234`` means master 1 holds value 1,
    master 2 value 2, and so on.
    """
    return [list(p) for p in itertools.permutations(values)]


def permutation_label(perm):
    """``[2, 1, 4, 3]`` -> ``"2143"`` (the paper's x-axis tick format)."""
    return "".join(str(v) for v in perm)
