"""Quickstart: a 4-master LOTTERYBUS SoC in ~20 lines.

Builds the paper's Figure 3 system — four masters contending for a
shared memory over a single bus — installs a static lottery arbiter
with tickets 1:2:3:4, drives it with saturating traffic, and prints the
resulting bandwidth division and per-word latencies.

Run:  python examples/quickstart.py
"""

from repro import StaticLotteryArbiter, build_single_bus_system
from repro.metrics.report import format_table
from repro.traffic import get_traffic_class


def main():
    arbiter = StaticLotteryArbiter(tickets=[1, 2, 3, 4])
    system, bus = build_single_bus_system(
        num_masters=4,
        arbiter=arbiter,
        generator_factory=get_traffic_class("T8").generator_factory(seed=1),
        max_burst=16,
    )
    system.run(200_000)

    metrics = bus.metrics
    rows = []
    for master in range(4):
        rows.append(
            [
                "C{}".format(master + 1),
                arbiter.manager.requested_tickets[master],
                arbiter.tickets[master],
                "{:.1%}".format(metrics.bandwidth_shares()[master]),
                "{:.2f}".format(metrics.latency_per_word(master)),
            ]
        )
    print(
        format_table(
            ["master", "tickets", "scaled", "bandwidth share", "lat (cyc/word)"],
            rows,
            title="LOTTERYBUS quickstart: shares track tickets, no one starves",
        )
    )
    print("bus utilization: {:.1%}".format(metrics.utilization()))


if __name__ == "__main__":
    main()
