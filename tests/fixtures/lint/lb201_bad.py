# lb: module=repro.sim.fixture_racy
"""LB201 true positive: shared counter written from two roots, no lock."""

import threading


class Tracker:
    def __init__(self):
        self.count = 0

    def start(self):
        worker = threading.Thread(target=self._worker, daemon=True)
        worker.start()
        return worker

    def _worker(self):
        for _ in range(1000):
            self.count += 1

    def snapshot(self):
        self.count += 0  # touch from the main root too
        return self.count
