"""Bounded-memory latency histograms and percentiles.

The paper reports mean latencies; QoS analysis also needs the tail
(jitter): a deterministic scheme and a randomized one can share a mean
while differing wildly at p99.  :class:`LogHistogram` accumulates
values into geometrically spaced bins, so percentile queries run in
O(bins) with fixed memory regardless of run length.
"""

import math

from repro.sim.snapshot import Snapshottable


class LogHistogram(Snapshottable):
    """Geometric-bin histogram for positive values.

    :param low: lower edge of the first bin (values below clamp into it).
    :param high: upper edge of the last bin (values above clamp into it).
    :param bins_per_decade: resolution; 48 gives ~5% relative error.
    """

    def __init__(self, low=0.5, high=1e5, bins_per_decade=48):
        if low <= 0 or high <= low:
            raise ValueError("need 0 < low < high")
        if bins_per_decade < 1:
            raise ValueError("bins_per_decade must be >= 1")
        self.low = low
        self.high = high
        self._log_low = math.log10(low)
        span = math.log10(high) - self._log_low
        self.num_bins = max(1, int(math.ceil(span * bins_per_decade)))
        self._scale = self.num_bins / span
        self.counts = [0] * self.num_bins
        self.total = 0
        self.min_value = None
        self.max_value = None

    state_attrs = ("counts", "total", "min_value", "max_value")

    def _bin_index(self, value):
        if value <= self.low:
            return 0
        if value >= self.high:
            return self.num_bins - 1
        return min(
            self.num_bins - 1,
            int((math.log10(value) - self._log_low) * self._scale),
        )

    def _bin_upper_edge(self, index):
        return 10 ** (self._log_low + (index + 1) / self._scale)

    def record(self, value):
        if value <= 0:
            raise ValueError("histogram records positive values")
        self.counts[self._bin_index(value)] += 1
        self.total += 1
        if self.min_value is None or value < self.min_value:
            self.min_value = value
        if self.max_value is None or value > self.max_value:
            self.max_value = value

    def percentile(self, q):
        """Value at quantile ``q`` in [0, 1] (upper bin edge, ~5% error)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must lie in [0, 1]")
        if self.total == 0:
            return 0.0
        if q <= 0.0:
            return self.min_value
        target = q * self.total
        running = 0
        for index, count in enumerate(self.counts):
            running += count
            if running >= target:
                return min(self._bin_upper_edge(index), self.max_value)
        return self.max_value

    def summary(self):
        """(p50, p95, p99, max) — the jitter profile."""
        return (
            self.percentile(0.50),
            self.percentile(0.95),
            self.percentile(0.99),
            self.max_value or 0.0,
        )

    def merge(self, other):
        if other.num_bins != self.num_bins or other.low != self.low:
            raise ValueError("histograms must share binning to merge")
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.total += other.total
        if other.min_value is not None:
            self.min_value = (
                other.min_value
                if self.min_value is None
                else min(self.min_value, other.min_value)
            )
        if other.max_value is not None:
            self.max_value = (
                other.max_value
                if self.max_value is None
                else max(self.max_value, other.max_value)
            )


class LatencyDistribution:
    """Per-master latency histograms over a bus's completion stream.

    Attach with ``bus.add_completion_hook(dist.on_completion)`` (or via
    ``BusSystem.add_monitor`` for a component-managed variant); each
    completed message records its per-word latency.
    """

    def __init__(self, num_masters):
        if num_masters < 1:
            raise ValueError("need at least one master")
        self.histograms = [LogHistogram() for _ in range(num_masters)]

    def on_completion(self, request, cycle):
        self.histograms[request.master].record(request.latency_per_word)

    def percentile(self, master, q):
        return self.histograms[master].percentile(q)

    def summary_rows(self):
        """One (master, messages, p50, p95, p99, max) row per master."""
        rows = []
        for master, histogram in enumerate(self.histograms):
            p50, p95, p99, peak = histogram.summary()
            rows.append((master, histogram.total, p50, p95, p99, peak))
        return rows
