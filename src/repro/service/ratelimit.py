"""Per-client token-bucket rate limiting for submissions.

Each client (``X-Client-Id`` header, falling back to the peer address)
gets a bucket of ``burst`` tokens refilled at ``rate`` tokens/second.
A submission costs one token; an empty bucket means the request is
refused with a typed :class:`~repro.service.models.RateLimitedError`
whose ``retry_after`` says exactly when the next token lands — the
front-ends surface it as ``429`` + ``Retry-After``.

The clock is ``time.monotonic`` (never wall time, so a clock step
cannot mint or destroy tokens), and stale buckets are pruned so a
long-running server's memory does not grow with the set of clients it
has ever seen.
"""

import math
import threading
import time

from repro.service.models import RateLimitedError


class RateLimiter:
    """Token buckets per client id.

    :param rate: tokens (submissions) per second per client; ``None``
        disables limiting entirely.
    :param burst: bucket capacity — the largest instantaneous spike one
        client may submit.
    :param max_clients: buckets kept before the stalest are pruned.
    """

    def __init__(self, rate=None, burst=10, max_clients=4096):
        if rate is not None and rate <= 0:
            raise ValueError("rate must be positive when given")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.rate = rate
        self.burst = burst
        self.max_clients = max_clients
        self._lock = threading.Lock()
        self._buckets = {}  # client -> [tokens, last_refill_monotonic]
        self.denied = 0

    def check(self, client):
        """Spend one token for ``client`` or raise ``RateLimitedError``."""
        if self.rate is None:
            return
        now = time.monotonic()
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                self._prune(now)
                bucket = self._buckets[client] = [float(self.burst), now]
            tokens, last = bucket
            tokens = min(self.burst, tokens + (now - last) * self.rate)
            if tokens < 1.0:
                bucket[0] = tokens
                bucket[1] = now
                self.denied += 1
                wait = (1.0 - tokens) / self.rate
                raise RateLimitedError(
                    "client {!r} exceeded {}/s (burst {})".format(
                        client, self.rate, self.burst
                    ),
                    retry_after=max(1, int(math.ceil(wait))),
                )
            bucket[0] = tokens - 1.0
            bucket[1] = now

    def denied_count(self):
        with self._lock:
            return self.denied

    def _prune(self, now):
        """Drop the least-recently-refilled buckets over the cap.

        Full buckets carry no state worth keeping (a returning client
        starts full anyway), so pruning can never grant extra budget to
        an active abuser — their bucket is the freshest and survives.
        """
        if len(self._buckets) < self.max_clients:
            return
        stale = sorted(self._buckets.items(), key=lambda item: item[1][1])
        for client, _ in stale[: len(self._buckets) // 2]:
            del self._buckets[client]
