"""Experiment harnesses: one module per paper table/figure.

Every experiment returns a plain-data result object with a
``format_report()`` method, so benchmarks, the CLI and tests all share
one code path.  Experiment parameters default to the values recorded in
EXPERIMENTS.md; cycle counts can be reduced for smoke tests.
"""

from repro.experiments.checkpoint import (
    ExperimentCheckpointer,
    StageCheckpoint,
)
from repro.experiments.fault_sweep import build_fault_testbed, run_fault_sweep
from repro.experiments.figure4 import run_figure4
from repro.experiments.figure5 import run_figure5
from repro.experiments.figure6 import run_figure6a, run_figure6b
from repro.experiments.figure8 import run_figure8
from repro.experiments.figure12 import run_figure12a, run_figure12_latency
from repro.experiments.hardware import (
    run_hardware_comparison,
    run_hardware_scaling,
)
from repro.experiments.replication import run_replicated_testbed
from repro.experiments.screen import (
    ScreenedSweepResult,
    run_screened_sweep,
)
from repro.experiments.starvation import run_starvation
from repro.experiments.sweep import run_sweep
from repro.experiments.system import run_testbed
from repro.experiments.supervisor import (
    ResultStore,
    Supervisor,
    TaskSpec,
    run_campaign,
)
from repro.experiments.table1 import run_table1

__all__ = [
    "ExperimentCheckpointer",
    "ResultStore",
    "ScreenedSweepResult",
    "StageCheckpoint",
    "Supervisor",
    "TaskSpec",
    "build_fault_testbed",
    "run_campaign",
    "run_fault_sweep",
    "run_figure4",
    "run_figure5",
    "run_figure6a",
    "run_figure6b",
    "run_figure8",
    "run_figure12a",
    "run_figure12_latency",
    "run_hardware_comparison",
    "run_hardware_scaling",
    "run_replicated_testbed",
    "run_screened_sweep",
    "run_starvation",
    "run_sweep",
    "run_testbed",
    "run_table1",
]
