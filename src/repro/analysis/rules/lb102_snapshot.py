"""LB102: snapshot declarations must cover a class's mutable state.

The checkpoint protocol (:mod:`repro.sim.snapshot`) saves exactly the
attributes a class lists in ``state_attrs`` / ``state_children``.  An
attribute that holds runtime state but is missing from the declaration
is *silently dropped* from every checkpoint: save/load round-trips
succeed, the strict-mode cross-check passes on fresh runs, and the
divergence only surfaces as a wrong number in a resumed campaign —
the worst failure mode this repository has.

The static approximation: inside any class that declares
``state_attrs`` or ``state_children``, every ``self.X = <mutable
container>`` assignment in ``__init__`` (list/dict/set/deque displays,
constructor calls or comprehensions) must appear in ``state_attrs``,
``state_children``, or the linter-recognized escape hatch
``state_exclude`` — a class-level tuple documenting attributes that are
*deliberately* outside the snapshot (derived caches rebuilt lazily,
immutable-after-init config held in a container).  Attributes assigned
from parameters or immutable literals are treated as configuration and
not flagged.

A second check catches the inverse drift: a name listed in
``state_attrs`` that no method of the class ever assigns (a renamed or
deleted attribute whose declaration was forgotten) — unless an in-file
ancestor assigns it, since subclasses may harmlessly re-list inherited
names.
"""

import ast

from repro.analysis.core import Rule, register
from repro.analysis.visitors import (
    class_methods,
    class_tuple_attr,
    in_file_bases,
    iter_classes,
    iter_self_mutations,
    self_attr_reads,
    self_attr_target,
)

_CONTAINER_CALLS = {
    "list", "dict", "set", "deque", "defaultdict", "OrderedDict",
    "Counter", "bytearray",
    "collections.deque", "collections.defaultdict",
    "collections.OrderedDict", "collections.Counter",
}


def _is_mutable_initializer(node):
    """Does this ``__init__`` assignment value build a mutable container?"""
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, (ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        from repro.analysis.visitors import call_name

        return call_name(node) in _CONTAINER_CALLS
    return False


@register
class SnapshotCompletenessRule(Rule):
    id = "LB102"
    name = "snapshot-completeness"
    description = (
        "mutable attribute assigned in __init__ but absent from "
        "state_attrs/state_children/state_exclude (silent checkpoint drift)"
    )

    def check(self, source):
        if not (source.module.startswith("repro.") or source.module):
            return
        for class_node in iter_classes(source.tree):
            attrs = class_tuple_attr(class_node, "state_attrs")
            children = class_tuple_attr(class_node, "state_children")
            if attrs is None and children is None:
                continue
            exclude = class_tuple_attr(class_node, "state_exclude") or ()
            declared = set(attrs or ()) | set(children or ()) | set(exclude)
            methods = class_methods(class_node)
            # A custom state_dict/load_state_dict pair may serialize
            # attributes by hand (MetricsCollector snapshots its
            # per-master stats list explicitly); anything those hooks
            # touch counts as declared.
            for hook_name in ("state_dict", "load_state_dict"):
                hook = methods.get(hook_name)
                if hook is not None:
                    declared |= self_attr_reads(hook)
            init = methods.get("__init__")
            if init is not None:
                yield from self._check_init(
                    source, class_node, init, declared
                )
            yield from self._check_stale_declarations(
                source, class_node, attrs or (), methods
            )

    def _check_init(self, source, class_node, init, declared):
        for stmt in ast.walk(init):
            if not isinstance(stmt, ast.Assign):
                continue
            if not _is_mutable_initializer(stmt.value):
                continue
            for target in stmt.targets:
                if isinstance(target, ast.Subscript):
                    continue  # item store, not an attribute binding
                attr = self_attr_target(target)
                if attr and attr not in declared:
                    yield source.finding(
                        self.id, stmt,
                        "{}.{} is initialized as a mutable container but "
                        "not declared in state_attrs/state_children — "
                        "checkpoints will silently drop it; declare it or "
                        "list it in state_exclude with a comment saying "
                        "why it is safe to omit".format(
                            class_node.name, attr
                        ),
                    )

    def _check_stale_declarations(self, source, class_node, attrs, methods):
        assigned = set()
        for method in methods.values():
            for attr, _ in iter_self_mutations(method):
                assigned.add(attr)
        resolved, unresolved = in_file_bases(class_node, source.tree)
        for base in resolved:
            for method in class_methods(base).values():
                for attr, _ in iter_self_mutations(method):
                    assigned.add(attr)
        if set(unresolved) - {"object", "Snapshottable", "Component",
                              "Arbiter"}:
            # An out-of-file ancestor may assign the attribute; stay quiet.
            return
        for name in attrs:
            if name not in assigned:
                yield source.finding(
                    self.id, class_node,
                    "{}.state_attrs declares {!r} but no method ever "
                    "assigns self.{} — stale declaration (load_state_dict "
                    "will reject every checkpoint… or resurrect a ghost "
                    "attribute)".format(class_node.name, name, name),
                )
