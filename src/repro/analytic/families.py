"""Per-arbiter-family contention models.

Each family reduces to two ingredients the solver consumes:

* a *contention weight* per master — the quantity grants are
  proportional to under saturation (Section 4's tickets, TDMA slot
  counts, nothing for round-robin), derived with the exact arithmetic
  the hardware models use (power-of-two ticket scaling for the static
  lottery, the [1, 255] clamp for the dynamic one, the registry's
  weight->priority ranking); and
* a *waiting-time model*: the expected cycles one message spends not
  being transferred, as a function of every master's current demand.

The waiting models are mean-value approximations over *arbitration
rounds* — the instants a burst ends and the bus picks its next owner.
Each competitor contends in a round with its boundary-presence
probability ``q_j`` (waiting-time fraction of its non-transfer cycle);
a lottery loser's odds are averaged over the ``2^(n-1)`` contender
subsets (Jensen: thin rounds help weak masters more than linear
ticket-discounting predicts), a round-robin loser watches each pending
competitor once per rotation, a low-priority master's race is a Markov
chain over round winners (who just won is *absent* at the boundary it
created, which is when lower classes sneak in), and a TDMA master
drains at its slot share of the wheel.  In saturation
(``q = 1``) these collapse to the paper's closed forms and are exact;
at mid utilization they are approximations whose error is measured and
bounded in :mod:`repro.analytic.bounds`.
"""

from repro.core.scaling import scale_to_power_of_two

# Dynamic lottery hardware clamps run-time holdings to an 8-bit port.
_DYNAMIC_TICKET_CAP = 255

# Waits beyond this are starvation: the master effectively never runs.
_WAIT_CAP = 1e12

_EPS = 1e-9


def priority_ranks(weights):
    """The registry's weight->priority mapping, replicated exactly.

    Higher weight means higher priority; ties break toward the lower
    master index (see ``repro.arbiters.registry._make_static_priority``
    and the cross-check in tests/test_analytic_model.py).
    """
    order = sorted(range(len(weights)), key=lambda m: (weights[m], -m))
    ranks = [0] * len(weights)
    for rank, master in enumerate(order):
        ranks[master] = rank + 1
    return ranks


def _residual(i, profiles, rho):
    """Expected in-flight burst remainder seen by master ``i``'s
    randomly-phased arrival (zero-think arrivals align with burst
    boundaries and skip it; the solver scales by misalignment)."""
    total = 0.0
    for j, p in enumerate(profiles):
        if j != i:
            s = p.words_per_grant
            total += rho[j] * (s + 1.0) / 2.0
    return total


class _LotteryFamily:
    """Static / dynamic / compensated lotteries.

    Win probability per round is ticket-proportional *among the masters
    actually contending*.  Averaging ``t_i / (t_i + T_S)`` over all
    contender subsets ``S`` (each competitor present with probability
    ``q_j``) captures the convexity a linear ticket-discount misses:
    when a heavy master is thinking, a light master's odds jump from
    ``t_i / T`` to nearly 1, so partial presence redistributes far more
    bandwidth toward light masters than the time-average suggests.
    """

    def __init__(self, tickets):
        self.tickets = tickets

    def wait_delays(self, profiles, rho, a, q, mis):
        n = len(profiles)
        words = [p.words_per_grant for p in profiles]
        delays = []
        for i, p in enumerate(profiles):
            others = [j for j in range(n) if j != i]
            ticket_i = float(self.tickets[i])
            win = 0.0
            cost = 0.0
            for mask in range(1 << len(others)):
                prob = 1.0
                tickets_in = 0.0
                burst_in = 0.0
                for bit, j in enumerate(others):
                    if mask >> bit & 1:
                        prob *= q[j]
                        tickets_in += self.tickets[j]
                        burst_in += self.tickets[j] * words[j]
                    else:
                        prob *= 1.0 - q[j]
                denom = ticket_i + tickets_in
                win += prob * ticket_i / denom
                cost += prob * burst_in / denom
            # Geometric rounds until i wins; each loss costs the
            # winner's burst.  E[total lost cycles] = cost / win.
            per_grant = cost / max(win, _EPS)
            delays.append(min(
                p.mean_grants * per_grant
                + mis[i] * _residual(i, profiles, rho),
                _WAIT_CAP,
            ))
        return delays


class _RoundRobinFamily:
    """Fair rotation: each pending competitor is served once between a
    master's consecutive grants, regardless of weights."""

    def wait_delays(self, profiles, rho, a, q, mis):
        delays = []
        for i, p in enumerate(profiles):
            per_round = sum(
                q[j] * other.words_per_grant
                for j, other in enumerate(profiles)
                if j != i
            )
            delays.append(
                p.mean_grants * per_round
                + mis[i] * _residual(i, profiles, rho)
            )
        return delays


#: Lazy power-iteration steps for the boundary-winner chain below.
#: Fixed (no early exit) so the scalar and batch paths agree exactly.
_CHAIN_STEPS = 48

#: Substochastic damping of the loss recursion: keeps the linear
#: system nonsingular under total starvation (losing probability 1)
#: where the honest answer is an infinite wait.
_V_SHRINK = 1.0 - 1e-9


def _solve_linear(system):
    """Solve the augmented system (rows of ``[A | b]``) in place by
    Gaussian elimination with partial pivoting; a vanishing pivot
    means starvation, answered with :data:`_WAIT_CAP` everywhere."""
    count = len(system)
    for col in range(count):
        pivot = max(range(col, count), key=lambda r: abs(system[r][col]))
        if abs(system[pivot][col]) < 1e-300:
            return [_WAIT_CAP] * count
        system[col], system[pivot] = system[pivot], system[col]
        head = system[col]
        inv = 1.0 / head[col]
        for k in range(col, count + 1):
            head[k] *= inv
        for row in range(count):
            if row != col and system[row][col] != 0.0:
                factor = system[row][col]
                for k in range(col, count + 1):
                    system[row][k] -= factor * head[k]
    return [min(system[r][count], _WAIT_CAP) for r in range(count)]


class _StaticPriorityFamily:
    """Non-preemptive head-of-line priority.

    While master ``i`` is pending only ``i`` and its priority superiors
    can win a round, but *which* superior is pending is strongly
    correlated with who won the previous round: a master that just
    finished a burst is thinking at that very boundary (unless its
    think time is zero), which is exactly when the next class down
    sneaks in.  Treating presence as independent per round misses this
    and over-serves the top class, so the race is a small Markov chain
    over the previous round's winner: in state ``w`` the just-served
    master is present only if it never thinks, everyone else contends
    with its boundary presence ``q``, and the highest-priority
    contender wins.  The chain's stationary winner distribution gives
    ``i``'s expected lost cycles per grant; as the superiors' presence
    approaches one, ``i``'s stationary win probability vanishes —
    starvation — recovering the saturated closed form exactly."""

    def __init__(self, ranks):
        self.ranks = ranks

    def wait_delays(self, profiles, rho, a, q, mis):
        n = len(profiles)
        think = [p.think for p in profiles]
        delays = []
        for i, p in enumerate(profiles):
            higher = sorted(
                (j for j in range(n) if self.ranks[j] > self.ranks[i]),
                key=lambda j: -self.ranks[j],
            )
            base = mis[i] * _residual(i, profiles, rho)
            if not higher:
                delays.append(min(base, _WAIT_CAP))
                continue
            # Transition matrix over round winners, conditioned on i
            # pending (lower classes can never win such a round).
            # Presence of h at the boundary ending w's burst:
            #  - h == w: mid-message it re-pends instantly (a message
            #    is ``mean_grants`` bursts; only the last is followed
            #    by think), so it is present unless the message just
            #    ended and it thinks — ``1 - 1/n_h``;
            #  - h outranks w: h was absent last round (it would have
            #    won), so it is present only if its think ended during
            #    the burst; think is geometric(1/Z) in the generator
            #    (memoryless), so that is ``1 - (1 - 1/Z_h)^s_w``;
            #  - w outranks h: h may have been pending and lost, and a
            #    pending loser *persists* — q_h plus the re-arrival
            #    mass of the thinking complement.
            states = [i] + higher
            matrix = []
            for w in states:
                s_w = profiles[w].words_per_grant
                clear = 1.0
                row = {}
                for h in higher:
                    if think[h] <= 1.0:
                        arrival = 1.0
                    else:
                        arrival = 1.0 - (1.0 - 1.0 / think[h]) ** s_w
                    if h == w:
                        if think[h] == 0.0:
                            present = 1.0
                        else:
                            present = 1.0 - 1.0 / profiles[h].mean_grants
                    elif self.ranks[h] > self.ranks[w]:
                        present = arrival
                    else:
                        present = q[h] + (1.0 - q[h]) * arrival
                    row[h] = clear * present
                    clear *= 1.0 - present
                row[i] = clear
                matrix.append([row[v] for v in states])
            count = len(states)
            pi = [1.0 / count] * count
            for _ in range(_CHAIN_STEPS):
                nxt = [0.0] * count
                for w in range(count):
                    mass = pi[w]
                    row = matrix[w]
                    for v in range(count):
                        nxt[v] += mass * row[v]
                # Lazy step: the raw chain can be periodic (pure
                # alternation between two masters); the half-step
                # mixture never is.
                pi = [0.5 * (pi[v] + nxt[v]) for v in range(count)]
            # First-step analysis: V(w) = expected superior-burst
            # cycles until i wins, from the boundary ending w's burst.
            # V = c + Q V with Q the superior-to-superior block; the
            # shrink keeps Q substochastic so starvation shows up as a
            # huge-but-finite solution instead of a singular system.
            system = [
                [
                    (1.0 if v == w else 0.0)
                    - (_V_SHRINK * matrix[w][v] if v > 0 else 0.0)
                    for v in range(count)
                ]
                + [sum(
                    matrix[w][k + 1] * profiles[h].words_per_grant
                    for k, h in enumerate(higher)
                )]
                for w in range(count)
            ]
            losses = _solve_linear(system)
            # A fresh arrival lands mid-round; the round's winner is a
            # superior with probability length-biased by pi, and the
            # partial burst itself is the residual term.  Mid-message
            # re-requests start from i's own boundary instead.
            weight = sum(
                pi[k + 1] * profiles[h].words_per_grant
                for k, h in enumerate(higher)
            )
            if weight > _EPS:
                entry = sum(
                    pi[k + 1] * profiles[h].words_per_grant
                    * losses[k + 1]
                    for k, h in enumerate(higher)
                ) / weight
            else:
                entry = 0.0
            delays.append(min(
                entry + (p.mean_grants - 1.0) * losses[0] + base,
                _WAIT_CAP,
            ))
        return delays


class _TdmaFamily:
    """Two-level TDMA: a pending master drains at its share of the
    wheel plus its cut of reclaimed idle slots; latency is transfer
    stretch (words interleave with other owners' slots) plus the
    phase wait of misaligned arrivals."""

    def __init__(self, slot_counts, reclaim):
        self.slots = slot_counts
        self.wheel = float(sum(slot_counts))
        self.reclaim = reclaim

    def wait_delays(self, profiles, rho, a, q, mis):
        n = len(profiles)
        pending = sum(a)
        pool = sum(
            self.slots[j] * (1.0 - a[j]) for j in range(n)
        )
        if self.reclaim == "scan":
            efficiency = 1.0
        elif self.reclaim == "single":
            # Only one candidate is examined per idle slot; it is
            # pending with roughly the mean pending fraction.
            efficiency = pending / float(n)
        else:  # "none": pure single-level TDMA, idle slots are wasted
            efficiency = 0.0
        delays = []
        for i, p in enumerate(profiles):
            extra = 0.0
            if pending > _EPS:
                extra = efficiency * pool * a[i] / pending
            mu = min(1.0, (self.slots[i] + extra) / self.wheel)
            stretch = p.mean_words * (1.0 / max(mu, _EPS) - 1.0)
            gap = self.wheel - self.slots[i]
            phase = mis[i] * gap * gap / (2.0 * self.wheel)
            delays.append(min(stretch + phase, _WAIT_CAP))
        return delays


def build_family(arbiter_name, weights, kwargs):
    """The contention model for one registry arbiter name.

    Returns ``(family, contention_weights)`` — the waiting-time model
    and the per-master weight vector open-loop allocation uses.  Raises
    :class:`KeyError` for families without an analytic model (the
    caller turns that into ``UnsupportedArbiterError``).
    """
    weights = list(weights)
    if arbiter_name == "lottery-static":
        if not kwargs.get("scale", True):
            tickets = weights
        else:
            tickets = scale_to_power_of_two(weights)
        return _LotteryFamily(tickets), tickets
    if arbiter_name == "lottery-dynamic":
        tickets = [
            min(_DYNAMIC_TICKET_CAP, max(1, t)) for t in weights
        ]
        return _LotteryFamily(tickets), tickets
    if arbiter_name == "lottery-compensated":
        # Compensation tickets make *word* shares track the base
        # holdings even across mixed message sizes, so the base weights
        # are the contention weights directly (no power-of-two scaling:
        # the dynamic manager underneath takes run-time holdings).
        return _LotteryFamily(weights), weights
    if arbiter_name == "static-priority":
        ranks = priority_ranks(weights)
        return _StaticPriorityFamily(ranks), ranks
    if arbiter_name == "round-robin":
        return _RoundRobinFamily(), [1] * len(weights)
    if arbiter_name == "tdma":
        reclaim = kwargs.get("reclaim", "scan")
        if reclaim not in ("scan", "single", "none"):
            raise ValueError(
                "reclaim must be one of ('scan', 'single', 'none'), "
                "got {!r}".format(reclaim)
            )
        return _TdmaFamily(weights, reclaim), weights
    raise KeyError(arbiter_name)
