"""Section 5.2: hardware cost of the LOTTERYBUS controller.

The paper maps the 4-master static lottery manager to NEC's 0.35 um
cell-based array: ~1458 cell grids and ~3.1 ns arbitration (single-cycle
past 300 MHz).  This experiment evaluates the analytic gate-level model
for the static and dynamic managers and the conventional baselines.
"""

from repro.core.hardware_model import (
    Technology,
    estimate_dynamic_manager,
    estimate_static_manager,
    estimate_static_priority,
    estimate_tdma,
)
from repro.core.scaling import scale_to_power_of_two
from repro.metrics.report import format_table


class HardwareResult:
    def __init__(self, estimates):
        self.estimates = estimates

    def by_name(self, prefix):
        for estimate in self.estimates:
            if estimate.name.startswith(prefix):
                return estimate
        raise KeyError(prefix)

    def format_report(self):
        rows = [
            [
                e.name,
                "{:.0f}".format(e.gate_equivalents),
                "{:.0f}".format(e.area_cell_grids),
                "{:.2f}".format(e.arbitration_ns),
                "{:.0f}".format(e.max_bus_mhz),
            ]
            for e in self.estimates
        ]
        return format_table(
            ["arbiter", "gates", "cell grids", "arbitration ns", "max bus MHz"],
            rows,
            title="Section 5.2: arbiter hardware cost (0.35um model)",
        )


class HardwareScalingResult:
    """Static vs dynamic manager cost as the master count grows."""

    def __init__(self, rows):
        # rows: (masters, static_estimate, dynamic_estimate)
        self.rows = rows

    def crossover_masters(self):
        """Smallest master count where the static manager is larger."""
        for n, static, dynamic in self.rows:
            if static.area_cell_grids > dynamic.area_cell_grids:
                return n
        return None

    def format_report(self):
        table_rows = []
        for n, static, dynamic in self.rows:
            table_rows.append(
                [
                    n,
                    "{:.0f}".format(static.area_cell_grids),
                    "{:.2f}".format(static.arbitration_ns),
                    "{:.0f}".format(dynamic.area_cell_grids),
                    "{:.2f}".format(dynamic.arbitration_ns),
                ]
            )
        report = format_table(
            ["masters", "static grids", "static ns", "dynamic grids",
             "dynamic ns"],
            table_rows,
            title="Lottery manager scaling with master count",
        )
        crossover = self.crossover_masters()
        if crossover is not None:
            report += "\narea crossover at {} masters".format(crossover)
        return report


def run_hardware_scaling(  # lb: noqa[LB105] — analytic gate-cost model, no RNG
    master_counts=(2, 3, 4, 5, 6, 8, 10, 12),
    ticket_total=16,
    technology=None,
):
    """Cost of both managers across SoC sizes; locates the crossover.

    The static manager's 2**n lookup table grows exponentially while
    the dynamic datapath grows ~linearly — the design guidance implicit
    in Section 4.4.
    """
    if technology is None:
        technology = Technology()
    rows = []
    for n in master_counts:
        rows.append(
            (
                n,
                estimate_static_manager(n, ticket_total, technology=technology),
                estimate_dynamic_manager(n, technology=technology),
            )
        )
    return HardwareScalingResult(rows)


def run_hardware_comparison(  # lb: noqa[LB105] — analytic gate-cost model, no RNG
    num_masters=4, tickets=(1, 2, 3, 4), tdma_slots=10, technology=None
):
    """Estimate all arbiter implementations; returns HardwareResult."""
    if technology is None:
        technology = Technology()
    scaled_total = sum(scale_to_power_of_two(list(tickets)))
    estimates = [
        estimate_static_manager(num_masters, scaled_total, technology=technology),
        estimate_dynamic_manager(num_masters, technology=technology),
        estimate_dynamic_manager(
            num_masters, technology=technology, pipelined=False
        ),
        estimate_static_priority(num_masters, technology=technology),
        estimate_tdma(num_masters, tdma_slots, technology=technology),
    ]
    # Disambiguate the two dynamic variants in the report.
    estimates[2].name += "-unpipelined"
    return HardwareResult(estimates)
