# lb: module=repro.core.fixture_good
"""LB104 true negatives: every mutator invalidates, restore clears."""


class InvalidatingManager:
    state_attrs = ("_tickets",)
    state_exclude = ("_sums_cache",)

    def __init__(self, tickets):
        self._tickets = list(tickets)
        self._sums_cache = {}

    def draw(self, request_map):
        key = tuple(request_map)
        sums = self._sums_cache.get(key)
        if sums is None:
            total = 0
            sums = []
            for pending, tickets in zip(request_map, self._tickets):
                total += tickets if pending else 0
                sums.append(total)
            self._sums_cache[key] = sums
        return sums

    def set_tickets(self, master, count):
        if count != self._tickets[master]:
            self._tickets[master] = count
            self._sums_cache.clear()

    def load_state_dict(self, state):
        self._tickets = list(state["_tickets"])
        self._sums_cache.clear()


class ImmutableInputCache:
    """The memo's only input is fixed at construction; no mutators, no
    snapshot of it, nothing to invalidate."""

    def __init__(self, table):
        self._table = dict(table)
        self._row_cache = {}

    def row(self, key):
        value = self._row_cache.get(key)
        if value is None:
            value = self._table.get(key, 0) * 2
            self._row_cache[key] = value
        return value

    def unrelated_counter(self):
        # Mutating a non-input attribute needs no invalidation.
        self.calls = getattr(self, "calls", 0) + 1
