"""Figure 12(b): TDMA latency surface, classes T1-T6 x slot holdings.

Paper claims regenerated here:
* latency is large and strongly class-dependent under TDMA (the paper's
  surface peaks at 8.55 cycles/word for T6);
* the latency of high-priority components varies significantly across
  classes (the paper reports a wide spread).
"""

from conftest import cycles, run_once

from repro.experiments.figure12 import run_figure12_latency


def test_bench_figure12b(benchmark):
    result = run_once(
        benchmark,
        run_figure12_latency,
        "tdma",
        cycles=cycles(300_000),
        reclaim="single",
    )
    print()
    print(result.format_report())
    # The bursty class dominates the surface.
    t6_peak = result.latency("T6", 1)
    assert t6_peak == max(max(row) for row in result.surface)
    # High-priority latency spread across classes is wide (paper: the
    # TDMA latency of the most-slots component varies severalfold).
    col = [row[-1] for row in result.surface]
    assert max(col) / min(col) > 2.0
