"""Block pre-draws of the scalar LFSR (``LFSR.sample_block``).

The batch engine pre-generates ticket draws in blocks; these tests pin
the contract that makes that safe: a block of N samples is bit-for-bit
the same stream as N sequential one-shot ``sample()`` calls, including
across snapshot save/restore boundaries.
"""

import pytest

from repro.core.lfsr import LFSR


@pytest.mark.parametrize("width", [2, 5, 8, 16, 24, 32])
def test_block_equals_sequential_samples(width):
    block = LFSR(width, seed=3)
    sequential = LFSR(width, seed=3)
    assert block.sample_block(64) == [
        sequential.sample() for _ in range(64)
    ]
    # And the generators are left in the same state.
    assert block.state == sequential.state


def test_consecutive_blocks_continue_the_stream():
    blocked = LFSR(16, seed=9)
    sequential = LFSR(16, seed=9)
    stream = []
    for size in (1, 7, 32, 3):
        stream.extend(blocked.sample_block(size))
    assert stream == [sequential.sample() for _ in range(43)]


def test_block_mixes_with_one_shot_draws():
    mixed = LFSR(12, seed=5)
    sequential = LFSR(12, seed=5)
    stream = mixed.sample_block(5)
    stream.append(mixed.sample())
    stream.extend(mixed.sample_block(10))
    stream.append(mixed.sample())
    assert stream == [sequential.sample() for _ in range(17)]


def test_block_across_snapshot_boundary():
    # Pre-drawing a block, snapshotting, and restoring must replay the
    # exact same continuation: the snapshot captures the *consumed*
    # position of the stream, never a half-used block.
    lfsr = LFSR(16, seed=7)
    lfsr.sample_block(11)
    saved = lfsr.state_dict()
    first = lfsr.sample_block(20)
    lfsr.load_state_dict(saved)
    assert lfsr.sample_block(20) == first
    # One-shot draws after restore see the same stream too.
    lfsr.load_state_dict(saved)
    assert [lfsr.sample() for _ in range(20)] == first


def test_empty_block_and_bad_count():
    lfsr = LFSR(8, seed=1)
    before = lfsr.state
    assert lfsr.sample_block(0) == []
    assert lfsr.state == before
    with pytest.raises(ValueError):
        lfsr.sample_block(-1)


def test_jump_masks_describe_one_sample():
    # Output bit i of a sample is the parity of ``state & jump_masks[i]``
    # — the GF(2) map the vectorized implementation gathers per lane.
    lfsr = LFSR(10, seed=21)
    masks = lfsr.jump_masks
    assert len(masks) == 10
    state = lfsr.state
    expected = 0
    for bit, mask in enumerate(masks):
        expected |= (bin(state & mask).count("1") & 1) << bit
    assert lfsr.sample() == expected
