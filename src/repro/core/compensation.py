"""Compensation tickets: ticket inflation for short transfers.

The paper's lottery allocates *grants* in ticket proportion, so when
masters move different message sizes the resulting *word* shares are
proportional to ``tickets x mean transfer size``, not tickets alone
(visible in mixed-size traffic).  Waldspurger & Weihl's original lottery
scheduling [16] solves the analogous CPU problem with *compensation
tickets*: a client that consumes only a fraction ``f`` of its quantum
has its tickets inflated by ``1/f`` until it next wins.

:class:`CompensationPolicy` ports that mechanism to the bus: the
quantum is the bus's maximum transfer size; a master granted a burst of
``b`` words receives inflation ``max_burst / b`` on its base holding
until its next grant.  With the policy enabled, word shares track base
tickets even when message sizes differ across masters — an extension
the paper leaves open, built on the dynamic lottery manager's run-time
ticket port.
"""

from repro.core.lottery_manager import DynamicLotteryManager
from repro.core.tickets import TicketAssignment
from repro.sim.snapshot import Snapshottable


class CompensationPolicy(Snapshottable):
    """Computes per-master inflated holdings from observed burst sizes.

    :param base_tickets: the designer's intended proportions.
    :param max_burst: the bus quantum in words.
    :param cap: ceiling on any inflated holding (hardware word width).
    """

    def __init__(self, base_tickets, max_burst, cap=255):
        base = TicketAssignment(base_tickets)
        if max_burst < 1:
            raise ValueError("max_burst must be >= 1")
        if cap < max(base.tickets):
            raise ValueError("cap must accommodate the base tickets")
        self.base = base
        self.max_burst = max_burst
        self.cap = cap
        self._factors = [1.0] * base.num_masters

    state_attrs = ("_factors",)

    @property
    def num_masters(self):
        return self.base.num_masters

    @property
    def factors(self):
        """Current per-master inflation factors (read-only copy)."""
        return tuple(self._factors)

    def holdings(self):
        """Current inflated holdings (integers, >= 1, <= cap)."""
        return [
            min(self.cap, max(1, round(t * f)))
            for t, f in zip(self.base.tickets, self._factors)
        ]

    def on_grant(self, master, burst_words):
        """Record a grant; returns the master's next inflation factor.

        A full-quantum burst resets the factor to 1; a partial burst of
        ``b`` words earns ``max_burst / b`` inflation (Waldspurger's
        ``1/f``), so over time each master's *expected words per
        lottery* equalizes at ``tickets / total``.
        """
        if not 0 <= master < self.num_masters:
            raise ValueError("unknown master {}".format(master))
        if burst_words < 1:
            raise ValueError("burst must carry at least one word")
        used = min(burst_words, self.max_burst)
        self._factors[master] = self.max_burst / used
        return self._factors[master]

    def reset(self):
        self._factors = [1.0] * self.num_masters


class CompensatedLotteryManager(Snapshottable):
    """A dynamic lottery manager driven by a CompensationPolicy.

    Drop-in compatible with the managers consumed by
    :class:`repro.arbiters.lottery._LotteryArbiter`: exposes
    ``num_masters``, ``draw`` and ``reset``.  The arbiter wrapper feeds
    grant sizes back through :meth:`note_grant`.
    """

    def __init__(self, base_tickets, max_burst, random_source=None,
                 lfsr_seed=1, cap=255):
        self.policy = CompensationPolicy(base_tickets, max_burst, cap=cap)
        self._manager = DynamicLotteryManager(
            self.policy.holdings(),
            random_source=random_source,
            lfsr_seed=lfsr_seed,
        )

    state_children = ("policy", "_manager")

    @property
    def num_masters(self):
        return self.policy.num_masters

    @property
    def tickets(self):
        return self._manager.tickets

    @property
    def lotteries_held(self):
        return self._manager.lotteries_held

    def draw(self, request_map):
        return self._manager.draw(request_map)

    def note_grant(self, master, burst_words):
        """Feed the granted burst size back into the compensation loop."""
        self.policy.on_grant(master, burst_words)
        self._manager.set_all_tickets(self.policy.holdings())

    def reset(self):
        self.policy.reset()
        self._manager.reset()
        self._manager.set_all_tickets(self.policy.holdings())
