"""LB101: no nondeterminism inside the simulation core.

Bit-identical reproduction (checkpoint/resume equality, ``--jobs N`` ==
``--jobs 1``, the strict-mode kernel cross-check) requires that every
random draw inside the simulator flows through a seeded
:class:`repro.sim.rng.RandomStream` and that nothing observable depends
on wall-clock time, OS entropy, hash randomization or unordered
container iteration.  This rule bans, inside the deterministic
packages:

* the module-level :mod:`random` API (``random.random()`` …) — ambient,
  process-global state (seeded ``random.Random(...)`` instances are
  fine and are exactly what ``RandomStream`` wraps);
* wall-clock reads: ``time.time``, ``time.perf_counter``,
  ``time.monotonic`` and friends;
* OS entropy: ``os.urandom``, ``uuid.uuid1``/``uuid4``, the
  :mod:`secrets` module;
* direct iteration over a set display / ``set()`` / ``frozenset()``
  value — iteration order depends on ``PYTHONHASHSEED`` for str
  elements, so a set feeding an arbitration or scheduling decision is a
  run-to-run hazard (wrap in ``sorted(...)``);
* unsorted directory listings (``os.listdir``, ``os.scandir``,
  ``glob.glob``, ``Path.iterdir``) — filesystem order is arbitrary;
* the builtin ``hash()`` outside a ``__hash__`` method — salted per
  process for strings.
"""

import ast

from repro.analysis.core import Rule, register
from repro.analysis.visitors import call_name

#: Packages whose behaviour must be bit-reproducible.  ``repro.bench``
#: and ``repro.experiments`` are deliberately absent: timing harnesses
#: read the clock and supervisors enforce wall-clock timeouts, both
#: legitimately outside the simulated world.
DETERMINISTIC_PACKAGES = (
    "repro.sim",
    "repro.arbiters",
    "repro.bus",
    "repro.core",
    "repro.traffic",
    "repro.atm",
    "repro.faults",
    "repro.metrics",
    "repro.soc",
)

_AMBIENT_RANDOM = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "expovariate", "gauss", "normalvariate",
    "seed", "getrandbits", "betavariate", "triangular", "vonmisesvariate",
}
_WALL_CLOCK = {
    "time", "time_ns", "perf_counter", "perf_counter_ns",
    "monotonic", "monotonic_ns", "process_time", "process_time_ns",
}
_LISTING_CALLS = {"os.listdir", "os.scandir", "glob.glob", "glob.iglob"}


@register
class NondeterminismRule(Rule):
    id = "LB101"
    name = "nondeterminism"
    description = (
        "ambient randomness, wall-clock reads, OS entropy, or "
        "hash-order-dependent iteration inside the deterministic core"
    )

    def check(self, source):
        if not source.in_package(*DETERMINISTIC_PACKAGES):
            return
        hash_method_spans = _method_spans(source.tree, "__hash__")
        for node in ast.walk(source.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                yield from self._check_import(source, node)
            elif isinstance(node, ast.Call):
                yield from self._check_call(source, node, hash_method_spans)
            elif isinstance(node, (ast.For, ast.comprehension)):
                iterable = node.iter
                finding = self._set_iteration(source, iterable)
                if finding:
                    yield finding

    def _check_import(self, source, node):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "secrets":
                    yield source.finding(
                        self.id, node,
                        "import of 'secrets' (OS entropy) in the "
                        "deterministic core",
                    )
        else:
            if node.module == "random":
                names = [
                    alias.name for alias in node.names
                    if alias.name in _AMBIENT_RANDOM
                ]
                if names:
                    yield source.finding(
                        self.id, node,
                        "from-import of module-level RNG ({}) — route "
                        "randomness through repro.sim.rng.RandomStream"
                        .format(", ".join(sorted(names))),
                    )
            elif node.module == "time":
                names = [
                    alias.name for alias in node.names
                    if alias.name in _WALL_CLOCK
                ]
                if names:
                    yield source.finding(
                        self.id, node,
                        "from-import of wall-clock function ({}) in the "
                        "deterministic core".format(", ".join(sorted(names))),
                    )
            elif node.module == "secrets":
                yield source.finding(
                    self.id, node,
                    "import from 'secrets' (OS entropy) in the "
                    "deterministic core",
                )

    def _check_call(self, source, node, hash_method_spans):
        name = call_name(node)
        if name is None:
            return
        module, _, attr = name.rpartition(".")
        if module == "random" and attr in _AMBIENT_RANDOM:
            yield source.finding(
                self.id, node,
                "call to module-level random.{}() — ambient process-global "
                "RNG; use a seeded repro.sim.rng.RandomStream".format(attr),
            )
        elif module == "time" and attr in _WALL_CLOCK:
            yield source.finding(
                self.id, node,
                "wall-clock read time.{}() in the deterministic core — "
                "simulated time must come from the kernel cycle"
                .format(attr),
            )
        elif name in ("os.urandom", "uuid.uuid1", "uuid.uuid4"):
            yield source.finding(
                self.id, node,
                "call to {}() draws OS entropy — not reproducible from "
                "a seed".format(name),
            )
        elif name in _LISTING_CALLS or attr == "iterdir":
            if not self._is_sorted_immediately(source, node):
                yield source.finding(
                    self.id, node,
                    "unsorted directory listing {}() — filesystem order "
                    "is arbitrary; wrap in sorted(...)".format(name),
                )
        elif name == "hash":
            if not _inside_spans(node, hash_method_spans):
                yield source.finding(
                    self.id, node,
                    "builtin hash() is salted per process for str — not "
                    "stable across runs; use zlib.crc32 or an explicit key",
                )

    def _set_iteration(self, source, iterable):
        if isinstance(iterable, ast.Set) or isinstance(iterable, ast.SetComp):
            return source.finding(
                self.id, iterable,
                "iteration over a set — order depends on PYTHONHASHSEED "
                "for str elements; iterate sorted(...) instead",
            )
        name = call_name(iterable)
        if name in ("set", "frozenset"):
            return source.finding(
                self.id, iterable,
                "iteration over {}(...) — unordered; iterate sorted(...) "
                "instead".format(name),
            )
        return None

    def _is_sorted_immediately(self, source, node):
        parent = source.parents.get(node)
        if isinstance(parent, ast.Starred):
            parent = source.parents.get(parent)
        return isinstance(parent, ast.Call) and call_name(parent) == "sorted"


def _method_spans(tree, method_name):
    spans = []
    for node in ast.walk(tree):
        if (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node.name == method_name
        ):
            spans.append((node.lineno, getattr(node, "end_lineno", node.lineno)))
    return spans


def _inside_spans(node, spans):
    return any(start <= node.lineno <= end for start, end in spans)
