"""Figure 5: TDMA latency vs request/reservation time-alignment.

Paper claims regenerated here:
* aligned periodic requests (Trace 1) wait ~0-1 slots per transaction;
* the identical pattern phase-shifted (Trace 2) waits ~3+ slots;
* LOTTERYBUS latency is independent of the phase.
"""

from conftest import cycles, run_once

from repro.experiments.figure5 import run_figure5


def test_bench_figure5(benchmark):
    result = run_once(benchmark, run_figure5, cycles=cycles(40_000))
    print()
    print(result.format_report())
    assert result.aligned_wait() < 0.5
    assert result.worst_wait() >= 3.0
    assert result.lottery_spread() < 0.5
