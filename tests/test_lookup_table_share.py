"""Shared lottery lookup tables: identical ticket assignments reuse one
precomputed table across managers (replicated systems), with reuse
counted in the cache stats.
"""

import pytest

from repro.core.lookup_table import (
    lookup_table_cache_stats,
    reset_lookup_table_cache,
    shared_lookup_table,
)
from repro.core.lottery_manager import StaticLotteryManager
from repro.core.tickets import TicketAssignment


@pytest.fixture(autouse=True)
def clean_cache():
    reset_lookup_table_cache()
    yield
    reset_lookup_table_cache()


def test_identical_assignments_share_one_table():
    first = shared_lookup_table(TicketAssignment([3, 1, 2]))
    second = shared_lookup_table(TicketAssignment([3, 1, 2]))
    assert second is first
    stats = lookup_table_cache_stats()
    assert stats["builds"] == 1
    assert stats["hits"] == 1
    assert stats["entries"] == 1


def test_distinct_assignments_build_distinct_tables():
    first = shared_lookup_table(TicketAssignment([3, 1, 2]))
    second = shared_lookup_table(TicketAssignment([1, 3, 2]))
    assert second is not first
    stats = lookup_table_cache_stats()
    assert stats["builds"] == 2
    assert stats["hits"] == 0


def test_managers_reuse_tables_for_replicated_systems():
    managers = [
        StaticLotteryManager([12, 2, 6, 1], lfsr_seed=seed)
        for seed in range(1, 9)
    ]
    tables = {id(manager.table) for manager in managers}
    assert len(tables) == 1
    stats = lookup_table_cache_stats()
    assert stats["builds"] == 1
    assert stats["hits"] == len(managers) - 1


def test_shared_table_draws_match_private_behaviour():
    # Sharing is a pure memoization: winners are identical to a fresh
    # manager's, draw for draw.
    shared = StaticLotteryManager([4, 3, 2, 1], lfsr_seed=5)
    reset_lookup_table_cache()
    fresh = StaticLotteryManager([4, 3, 2, 1], lfsr_seed=5)
    request_map = [True, False, True, True]
    for _ in range(200):
        ours = shared.draw(request_map)
        theirs = fresh.draw(request_map)
        assert ours.winner == theirs.winner
        assert ours.draw == theirs.draw


def test_lru_eviction_is_counted(monkeypatch):
    monkeypatch.setattr("repro.core.lookup_table._SHARED_CAPACITY", 2)
    shared_lookup_table(TicketAssignment([1, 2]))
    shared_lookup_table(TicketAssignment([2, 1]))
    shared_lookup_table(TicketAssignment([3, 1]))
    stats = lookup_table_cache_stats()
    assert stats["builds"] == 3
    assert stats["evictions"] == 1
    assert stats["entries"] == 2
    # The evicted (least recently used) entry is rebuilt on next use.
    shared_lookup_table(TicketAssignment([1, 2]))
    assert lookup_table_cache_stats()["builds"] == 4
