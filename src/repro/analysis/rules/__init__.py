"""Built-in rules; importing this package registers them all."""

from repro.analysis.rules import (  # noqa: F401  (imported for registration)
    lb101_determinism,
    lb102_snapshot,
    lb103_wakeup,
    lb104_caches,
    lb105_seeds,
    lb106_durability,
    lb107_swallow,
    lb201_races,
    lb202_forks,
    lb203_seedflow,
    lb204_errors,
)
