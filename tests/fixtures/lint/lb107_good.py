# lb: module=repro.experiments.fixture_good107
"""LB107 true negatives: handled, re-raised, justified, or scoped out."""

import logging

log = logging.getLogger(__name__)


def handled(task):
    try:
        task()
    except ValueError as error:
        log.warning("task rejected: %s", error)


def reraised(task):
    try:
        task()
    except OSError as error:
        raise RuntimeError("task failed") from error


def narrow_justified_same_line(path):
    try:
        import os

        os.unlink(path)
    except OSError:
        pass  # already gone — exactly the state we wanted


def narrow_justified_comment_above(path):
    try:
        import os

        os.unlink(path)
    except OSError:
        # Best-effort cleanup: a leftover temp file is harmless and the
        # next run overwrites it.
        pass


def broad_suppressed_with_justification(callback):
    try:
        callback()
    except Exception:  # lb: noqa[LB107] - third-party callback boundary
        pass


def narrow_with_fallback(payload):
    try:
        return int(payload)
    except ValueError:
        return 0  # a real fallback value is handling, not swallowing
