# lb: module=repro.experiments.fixture_bad
"""LB106 true positives: truncating writes in a persistence module."""

import io
import json
import os
import pathlib


def save_report_plain(path, report):
    with open(path, "w") as handle:
        handle.write(report)


def save_report_binary(path, payload):
    with open(path, mode="wb") as handle:
        handle.write(payload)


def save_exclusive(path, payload):
    with open(path, "x") as handle:
        handle.write(payload)


def save_via_fdopen(path, payload):
    fd = os.open(path, os.O_WRONLY | os.O_CREAT)
    with os.fdopen(fd, "wb") as handle:
        handle.write(payload)


def save_via_io_open(path, record):
    with io.open(path, "w") as handle:
        json.dump(record, handle)


def save_via_pathlib(path, report):
    pathlib.Path(path).write_text(report)


def save_bytes_via_pathlib(path, payload):
    pathlib.Path(path).write_bytes(payload)
