"""LB202: fork/thread hygiene on concurrent paths.

Two contracts the chaos suite (PR 7) depends on:

* **No lock held across a spawn.**  Forking or spawning a child
  process while holding a lock can deadlock the child (the lock is
  copied in its acquired state with no owner to release it) and
  spawning a thread under a lock invites lock-ordering deadlocks when
  the child immediately contends for it.  The flow engine knows every
  lock provably held at each ``Thread(...)`` / ``Process(...)`` /
  ``Popen(...)`` / pool-spawn site (syntactic ``with`` scopes plus the
  entry-held fixpoint), so any non-empty held set is reported.
* **Service threads must be daemons.**  A non-daemon thread in
  ``repro.service`` keeps the interpreter alive after ``main`` exits —
  the drain/SIGTERM story (PR 6) assumes the process can always die.
  Every ``threading.Thread(...)`` spawn in a ``repro.service`` module
  must pass ``daemon=True`` explicitly.
"""

from repro.analysis.core import Finding, Rule, register


@register
class ForkHygieneRule(Rule):
    id = "LB202"
    name = "fork-hygiene"
    description = (
        "lock held across a thread/process spawn, or service thread "
        "without daemon=True"
    )
    project = True

    def check_project(self, project):
        for spawn in project.spawn_sites():
            if spawn["locks"]:
                held = ", ".join(
                    sorted(lock.describe() for lock in spawn["locks"])
                )
                yield Finding(
                    self.id, spawn["path"], spawn["line"], 0,
                    "{} spawn in {} while holding [{}] — a child "
                    "inheriting or contending for a held lock can "
                    "deadlock; move the spawn outside the lock "
                    "scope".format(spawn["kind"], spawn["func"], held),
                    spawn["code"],
                )
            if (
                spawn["kind"] == "thread"
                and spawn["daemon"] is not True
                and _service_module(spawn["module"])
            ):
                yield Finding(
                    self.id, spawn["path"], spawn["line"], 0,
                    "service thread spawned in {} without daemon=True — "
                    "non-daemon threads block interpreter exit and break "
                    "the drain/SIGTERM contract".format(spawn["func"]),
                    spawn["code"],
                )


def _service_module(module):
    return module == "repro.service" or module.startswith("repro.service.")
