"""Tests for the energy model."""

import pytest

from repro.core.energy_model import (
    EnergyBreakdown,
    EnergyTechnology,
    estimate_run_energy,
)
from repro.core.hardware_model import estimate_static_manager, estimate_tdma
from repro.metrics.collector import MetricsCollector


def make_metrics(words_per_master, cycles, grants_per_master=None):
    collector = MetricsCollector(len(words_per_master))
    for _ in range(cycles):
        collector.observe_cycle()
    for master, words in enumerate(words_per_master):
        for _ in range(words):
            collector.record_word(master)
    if grants_per_master:
        for master, grants in enumerate(grants_per_master):
            for _ in range(grants):
                collector.record_grant(master)
    return collector


def test_energy_components_scale_correctly():
    hardware = estimate_static_manager(4, 16)
    metrics = make_metrics([100, 100, 0, 0], 400, [10, 10, 0, 0])
    breakdown = estimate_run_energy(metrics, hardware)
    assert breakdown.transfer_pj == pytest.approx(200 * 12.0)
    assert breakdown.words == 200
    assert breakdown.total_pj > breakdown.transfer_pj
    assert 0.0 < breakdown.arbitration_overhead < 1.0


def test_more_arbitrations_cost_more():
    hardware = estimate_static_manager(4, 16)
    few = estimate_run_energy(
        make_metrics([160, 0, 0, 0], 200, [10, 0, 0, 0]), hardware
    )
    many = estimate_run_energy(
        make_metrics([160, 0, 0, 0], 200, [160, 0, 0, 0]), hardware
    )
    assert many.total_pj > few.total_pj
    assert many.arbitration_overhead > few.arbitration_overhead


def test_bigger_arbiter_leaks_more():
    metrics = make_metrics([100, 0], 1000, [10, 0])
    small = estimate_run_energy(metrics, estimate_tdma(2, 4))
    big = estimate_run_energy(metrics, estimate_static_manager(2, 16))
    assert big.static_pj > small.static_pj


def test_explicit_arbitration_count():
    hardware = estimate_static_manager(4, 16)
    metrics = make_metrics([10, 0, 0, 0], 20)
    breakdown = estimate_run_energy(metrics, hardware, arbitrations=5)
    assert breakdown.arbitration_pj > 0


def test_empty_run_is_zero_per_word():
    hardware = estimate_static_manager(4, 16)
    breakdown = estimate_run_energy(make_metrics([0, 0, 0, 0], 0), hardware)
    assert breakdown.pj_per_word == 0.0
    assert EnergyBreakdown(0, 0, 0, 0, 0).arbitration_overhead == 0.0


def test_technology_validation():
    with pytest.raises(ValueError):
        EnergyTechnology(wire_pj_per_word=0)
    with pytest.raises(ValueError):
        EnergyTechnology(activity=-1)


def test_simulated_run_energy_end_to_end():
    from repro.arbiters.lottery import StaticLotteryArbiter
    from repro.bus.topology import build_single_bus_system
    from repro.traffic.classes import get_traffic_class

    arbiter = StaticLotteryArbiter(tickets=[1, 2, 3, 4])
    system, bus = build_single_bus_system(
        4, arbiter, get_traffic_class("T9").generator_factory(seed=1)
    )
    system.run(10_000)
    hardware = estimate_static_manager(4, sum(arbiter.tickets))
    breakdown = estimate_run_energy(bus.metrics, hardware)
    # 16-word bursts: one arbitration per ~16 words keeps arbitration
    # overhead small relative to wire energy.
    assert breakdown.arbitration_overhead < 0.2
    assert breakdown.pj_per_word == pytest.approx(12.0, rel=0.25)
