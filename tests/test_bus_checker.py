"""Tests for the run-time bus protocol checker."""

import pytest

from repro.arbiters.registry import available_arbiters, make_arbiter
from repro.arbiters.static_priority import StaticPriorityArbiter
from repro.bus.bus import SharedBus
from repro.bus.checker import BusChecker, CheckerViolation
from repro.bus.master import MasterInterface
from repro.bus.topology import build_single_bus_system
from repro.sim.kernel import Simulator
from repro.traffic.classes import get_traffic_class


def test_checker_passes_on_healthy_bus():
    system, bus = build_single_bus_system(
        4,
        make_arbiter("lottery-static", 4, [1, 2, 3, 4]),
        get_traffic_class("T8").generator_factory(seed=1),
    )
    checker = system.add_monitor(BusChecker("chk", bus, starvation_bound=2000))
    system.run(20_000)
    assert checker.checks_performed == 20_000
    assert checker.worst_wait < 2000


def test_starvation_watchdog_trips_on_static_priority():
    # Under closed-loop saturation the lowest-priority master never gets
    # the bus; the watchdog must catch it.
    system, bus = build_single_bus_system(
        4,
        make_arbiter("static-priority", 4, [1, 2, 3, 4]),
        get_traffic_class("T8").generator_factory(seed=1),
    )
    system.add_monitor(BusChecker("chk", bus, starvation_bound=500))
    with pytest.raises(CheckerViolation, match="starved"):
        system.run(5_000)


def test_watchdog_can_be_disabled():
    system, bus = build_single_bus_system(
        4,
        make_arbiter("static-priority", 4, [1, 2, 3, 4]),
        get_traffic_class("T8").generator_factory(seed=1),
    )
    checker = system.add_monitor(
        BusChecker("chk", bus, starvation_bound=None)
    )
    system.run(5_000)
    assert checker.checks_performed == 5_000


@pytest.mark.parametrize(
    "name", [n for n in available_arbiters() if n != "static-priority"]
)
def test_no_starvation_for_fair_arbiters(name):
    system, bus = build_single_bus_system(
        4,
        make_arbiter(name, 4, [1, 2, 3, 4]),
        get_traffic_class("T8").generator_factory(seed=1),
    )
    system.add_monitor(BusChecker("chk", bus, starvation_bound=2_000))
    system.run(30_000)  # raises on violation


def test_cycle_accounting_checked():
    masters = [MasterInterface("m", 0)]
    bus = SharedBus("bus", masters, StaticPriorityArbiter([1]))
    checker = BusChecker("chk", bus)
    sim = Simulator()
    sim.add(bus)
    sim.add(checker)
    masters[0].submit(3, 0)
    sim.run(10)
    # Corrupt the accounting; the checker must notice on its next tick.
    bus.metrics.idle_cycles += 1
    with pytest.raises(CheckerViolation, match="accounting"):
        sim.run(1)


def test_validation():
    masters = [MasterInterface("m", 0)]
    bus = SharedBus("bus", masters, StaticPriorityArbiter([1]))
    with pytest.raises(ValueError):
        BusChecker("chk", bus, starvation_bound=0)
