"""WAL crash-consistency: every byte offset, every bit, every torn tail.

The write-ahead log is the service's whole durability story, so the
tests are exhaustive rather than illustrative: a journal truncated at
*every possible byte offset* must recover the longest valid prefix, a
bit flip at any position must invalidate exactly the record it lands
in, and appends after a torn tail must never be glued onto garbage.
"""

import json
import os
import zlib

import pytest

from repro.experiments.cache import canonical_json
from repro.service.wal import WAL_OPS, JobWAL


def wal_at(tmp_path, name="queue.wal"):
    return JobWAL(os.path.join(str(tmp_path), name))


def sample_records(n=6):
    records = []
    for i in range(n):
        records.append({
            "op": WAL_OPS[i % len(WAL_OPS)],
            "job": "j-{:08d}".format(i + 1),
            "seq": i + 1,
            "spec": {"experiment": "figure5", "scale": 0.05, "seed": i},
        })
    return records


def test_append_then_replay_roundtrips(tmp_path):
    wal = wal_at(tmp_path)
    for record in sample_records():
        wal.append(record)
    replayed = JobWAL(wal.path).replay()
    assert [r["job"] for r in replayed] == [
        r["job"] for r in sample_records()
    ]
    # The CRC stamp is consumed by validation, not leaked to callers.
    assert all("_crc" not in r for r in replayed)


def test_replay_missing_file_is_empty(tmp_path):
    wal = wal_at(tmp_path)
    assert wal.replay() == []
    assert wal.recovered_bytes == 0


def test_truncation_at_every_byte_offset_recovers_valid_prefix(tmp_path):
    wal = wal_at(tmp_path)
    records = sample_records()
    boundaries = [0]
    for record in records:
        wal.append(record)
        boundaries.append(os.path.getsize(wal.path))
    raw = open(wal.path, "rb").read()

    for cut in range(len(raw) + 1):
        path = os.path.join(str(tmp_path), "cut.wal")
        with open(path, "wb") as handle:
            handle.write(raw[:cut])
        replayed = JobWAL(path).replay()
        # Exactly the records whose JSON bytes are wholly before the
        # cut survive (losing only the trailing newline is harmless) —
        # never a partial record, never a lost complete one.
        expected = sum(1 for b in boundaries[1:] if b - 1 <= cut)
        assert len(replayed) == expected, "cut at byte {}".format(cut)
        assert [r["job"] for r in replayed] == [
            r["job"] for r in records[:expected]
        ]


def test_truncation_repair_physically_removes_torn_tail(tmp_path):
    wal = wal_at(tmp_path)
    for record in sample_records(3):
        wal.append(record)
    whole = os.path.getsize(wal.path)
    with open(wal.path, "ab") as handle:
        handle.write(b'{"op": "done", "job"')  # torn mid-record
    reader = JobWAL(wal.path)
    replayed = reader.replay()
    assert len(replayed) == 3
    assert reader.recovered_bytes > 0
    assert os.path.getsize(wal.path) == whole  # tail physically gone
    # A fresh append lands cleanly after the repair.
    reader.append({"op": "done", "job": "j-00000099", "seq": 99})
    assert len(JobWAL(wal.path).replay()) == 4


def test_bit_flip_fuzz_invalidates_from_the_flipped_record(tmp_path):
    wal = wal_at(tmp_path)
    records = sample_records(4)
    boundaries = [0]
    for record in records:
        wal.append(record)
        boundaries.append(os.path.getsize(wal.path))
    raw = bytearray(open(wal.path, "rb").read())

    # Flip one bit at a spread of positions (every 3rd byte, three bit
    # planes: fast, yet covers every record and every field kind).  The
    # flip must invalidate exactly the record it lands in — every other
    # record still replays, and a mutated record is never trusted.
    for position in range(0, len(raw), 3):
        damaged = {
            i for i, b in enumerate(boundaries[1:])
            if boundaries[i] <= position < b
        }
        if position in {b - 1 for b in boundaries[1:]}:
            # Flipping a record's newline merges it with the next line,
            # invalidating both.
            damaged |= {min(damaged) + 1} & set(range(len(records)))
        expected = [
            r["job"] for i, r in enumerate(records) if i not in damaged
        ]
        for bit in (0, 3, 7):
            mutated = bytearray(raw)
            mutated[position] ^= 1 << bit
            path = os.path.join(str(tmp_path), "flip.wal")
            with open(path, "wb") as handle:
                handle.write(bytes(mutated))
            replayed = JobWAL(path).replay(repair=False)
            assert [r["job"] for r in replayed] == expected, (
                "flip at byte {} bit {}".format(position, bit)
            )


def test_unknown_op_is_rejected_even_with_valid_crc(tmp_path):
    record = {"op": "teleport", "job": "j-1"}
    stamped = dict(record)
    stamped["_crc"] = zlib.crc32(canonical_json(record).encode("utf-8"))
    path = os.path.join(str(tmp_path), "ops.wal")
    with open(path, "wb") as handle:
        handle.write((json.dumps(stamped, sort_keys=True) + "\n").encode())
    assert JobWAL(path).replay() == []


def test_interior_junk_lines_are_skipped_and_counted(tmp_path):
    wal = wal_at(tmp_path)
    wal.append({"op": "submit", "job": "j-1", "seq": 1})
    with open(wal.path, "ab") as handle:
        handle.write(b'[1, 2, 3]\n')
    wal.append({"op": "done", "job": "j-1", "seq": 2})
    # The junk line is skipped, never trusted — but it must not orphan
    # the durable, CRC-valid record appended after it.
    reader = JobWAL(wal.path)
    replayed = reader.replay()
    assert [r["op"] for r in replayed] == ["submit", "done"]
    assert reader.skipped_records == 1
    assert reader.recovered_bytes == 0  # the tail itself is clean


def test_append_self_heals_missing_trailing_newline(tmp_path):
    wal = wal_at(tmp_path)
    wal.append({"op": "submit", "job": "j-1", "seq": 1})
    with open(wal.path, "ab") as handle:
        handle.write(b'{"torn": ')  # torn append with no newline
    wal.append({"op": "submit", "job": "j-2", "seq": 2})
    # The self-healing newline isolated the new record on its own line,
    # so the torn bytes cost exactly themselves — j-2 was acknowledged
    # durable and must replay.
    reader = JobWAL(wal.path)
    replayed = reader.replay()
    assert [r["job"] for r in replayed] == ["j-1", "j-2"]
    assert reader.skipped_records == 1


def test_chaos_enospc_append_raises_and_journal_stays_valid(tmp_path):
    class Injector:
        def __init__(self):
            self.calls = 0

        def mangle_store_append(self, data):
            self.calls += 1
            if self.calls == 2:
                raise OSError(28, "No space left on device")
            return data

    injector = Injector()
    wal = JobWAL(os.path.join(str(tmp_path), "c.wal"), chaos=injector)
    wal.append({"op": "submit", "job": "j-1", "seq": 1})
    with pytest.raises(OSError):
        wal.append({"op": "submit", "job": "j-2", "seq": 2})
    wal.append({"op": "submit", "job": "j-3", "seq": 3})
    assert [r["job"] for r in JobWAL(wal.path).replay()] == ["j-1", "j-3"]


def test_clear_removes_the_journal(tmp_path):
    wal = wal_at(tmp_path)
    wal.append({"op": "submit", "job": "j-1", "seq": 1})
    wal.clear()
    assert not os.path.exists(wal.path)
    wal.clear()  # idempotent
    assert wal.replay() == []
