"""Tests for address maps and decode."""

import pytest

from repro.bus.address_map import AddressedMaster, AddressError, AddressMap
from repro.bus.master import MasterInterface


@pytest.fixture
def soc_map():
    address_map = AddressMap()
    address_map.add_region("sram", 0x0000_0000, 0x1_0000, slave=0)
    address_map.add_region("periph", 0x4000_0000, 0x1000, slave=1)
    address_map.add_region("ddr", 0x8000_0000, 0x100_0000, slave=2)
    return address_map


def test_decode_hits_the_right_region(soc_map):
    assert soc_map.decode(0x0) == (0, 0)
    assert soc_map.decode(0xFFFF) == (0, 0xFFFF)
    assert soc_map.decode(0x4000_0004) == (1, 4)
    assert soc_map.decode(0x8000_1000) == (2, 0x1000)


def test_holes_raise(soc_map):
    with pytest.raises(AddressError, match="no region"):
        soc_map.decode(0x2000_0000)
    with pytest.raises(AddressError):
        soc_map.decode(0x4000_1000)  # one past the peripheral window


def test_overlap_rejected(soc_map):
    with pytest.raises(AddressError, match="overlaps"):
        soc_map.add_region("bad", 0x4000_0800, 0x1000, slave=3)


def test_duplicate_name_rejected(soc_map):
    with pytest.raises(AddressError, match="duplicate"):
        soc_map.add_region("sram", 0x9000_0000, 0x100, slave=3)


def test_region_lookup_and_repr(soc_map):
    region = soc_map.region("ddr")
    assert region.slave == 2
    assert "ddr" in repr(region)
    with pytest.raises(AddressError):
        soc_map.region("flash")


def test_regions_sorted_by_base():
    address_map = AddressMap()
    address_map.add_region("high", 0x1000, 0x100, slave=1)
    address_map.add_region("low", 0x0, 0x100, slave=0)
    assert [r.name for r in address_map.regions()] == ["low", "high"]


def test_decode_burst_within_region(soc_map):
    assert soc_map.decode_burst(0x8000_0000, 16) == 2


def test_decode_burst_crossing_boundary_rejected(soc_map):
    # 16 words x 4 bytes ending beyond the peripheral window.
    with pytest.raises(AddressError, match="crosses"):
        soc_map.decode_burst(0x4000_0FF0, 16)


def test_format_map(soc_map):
    text = soc_map.format_map()
    assert "sram" in text
    assert "0x80000000" in text


def test_addressed_master_submits_decoded_slave(soc_map):
    interface = MasterInterface("cpu", 0)
    master = AddressedMaster(interface, soc_map)
    request = master.submit(0x4000_0010, 2, cycle=0, flow="mmio")
    assert request.slave == 1
    assert request.flow == "mmio"


def test_addressed_master_counts_decode_errors(soc_map):
    interface = MasterInterface("cpu", 0)
    master = AddressedMaster(interface, soc_map)
    with pytest.raises(AddressError):
        master.submit(0x2000_0000, 1, cycle=0)
    assert master.decode_errors == 1
    assert interface.queue_depth == 0


def test_addressed_master_end_to_end(soc_map):
    from repro.arbiters.round_robin import RoundRobinArbiter
    from repro.bus.bus import SharedBus
    from repro.bus.slave import Slave
    from repro.sim.kernel import Simulator

    interface = MasterInterface("cpu", 0)
    slaves = [Slave("s{}".format(i), i) for i in range(3)]
    bus = SharedBus("bus", [interface], RoundRobinArbiter(1), slaves=slaves)
    master = AddressedMaster(interface, soc_map)
    sim = Simulator()
    sim.add(bus)
    master.submit(0x8000_0000, 4, cycle=0)
    sim.run(10)
    assert slaves[2].words_served == 4
