"""Submission specs and the typed service error taxonomy.

A submission is JSON: ``{"experiment": name, "scale": s, "seed": n,
"options": {...}}`` (a sweep adds ``"seeds": [...]``).  Validation is
dependency-free and strict — every defect is a typed
:class:`SpecValidationError` naming the field, never a traceback out of
the server — and a validated spec's **idempotency key** is exactly the
campaign engine's content-addressed cache key
(:func:`repro.experiments.cache.experiment_key`), so the service, the
CLI and the chaos harness all address the same memo table.

Errors follow the campaign engine's taxonomy style
(:mod:`repro.experiments.errors`): each :class:`ServiceError` subclass
carries a stable machine-readable ``kind`` plus the HTTP status it maps
to, so front-ends translate mechanically and clients key on types
instead of prose.  The pydantic-modelled request schemas live with the
FastAPI front-end (:mod:`repro.service.app`, optional ``service``
extra); this module is the single source of validation truth either way.
"""

import math

from repro.experiments.cache import canonical_json, experiment_key
from repro.experiments.runner import experiment_names

#: Hard ceiling on one sweep submission; a bigger sweep must be split
#: by the client so admission control can meter it.
MAX_SWEEP_SEEDS = 1024


class JobState:
    """The job lifecycle state machine (values stored in the WAL).

    ``SUBMITTED → LEASED → RUNNING → DONE | FAILED | QUARANTINED``;
    ``SUBMITTED → CANCELLED`` (cancel only before a lease); a crash or
    drain rewinds ``LEASED``/``RUNNING`` back to ``SUBMITTED`` via an
    explicit ``requeue`` transition, never silently.
    """

    SUBMITTED = "submitted"
    LEASED = "leased"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    QUARANTINED = "quarantined"
    CANCELLED = "cancelled"

    ALL = (SUBMITTED, LEASED, RUNNING, DONE, FAILED, QUARANTINED, CANCELLED)
    #: States still occupying queue/pool capacity (feed admission control).
    ACTIVE = (SUBMITTED, LEASED, RUNNING)
    #: Settled states — the job will never change again.
    TERMINAL = (DONE, FAILED, QUARANTINED, CANCELLED)


# -- error taxonomy --------------------------------------------------------


class ServiceError(Exception):
    """Base class: a request the service refuses, typed for transport.

    ``kind`` is the stable machine tag (mirrors
    :class:`repro.experiments.errors.CampaignError.kind`);
    ``http_status`` is the one status this error maps to;
    ``retry_after`` (seconds, optional) becomes a ``Retry-After``
    header when present.
    """

    kind = "service-error"
    http_status = 500

    def __init__(self, message, retry_after=None):
        super().__init__(message)
        self.retry_after = retry_after

    def as_dict(self):
        body = {"error": str(self), "kind": self.kind}
        if self.retry_after is not None:
            body["retry_after"] = self.retry_after
        return body


class SpecValidationError(ServiceError):
    """The submission payload is malformed (wrong shape/type/value)."""

    kind = "invalid-spec"
    http_status = 400


class UnknownExperimentError(SpecValidationError):
    """The named experiment is not in the registry."""

    kind = "unknown-experiment"


class JobNotFoundError(ServiceError):
    """No job with the requested id (or it predates the WAL)."""

    kind = "job-not-found"
    http_status = 404


class JobConflictError(ServiceError):
    """The transition is illegal from the job's current state
    (e.g. cancelling a job that is already running or settled)."""

    kind = "job-conflict"
    http_status = 409


class QueueFullError(ServiceError):
    """Admission control: the bounded queue is at capacity."""

    kind = "queue-full"
    http_status = 429


class RateLimitedError(ServiceError):
    """Admission control: the client exceeded its submission budget."""

    kind = "rate-limited"
    http_status = 429


class ServiceDrainingError(ServiceError):
    """The server is draining after SIGTERM; resubmit after restart."""

    kind = "draining"
    http_status = 503


class StoreFailureError(ServiceError):
    """The WAL append failed (full disk, I/O error); nothing was
    admitted — the submission is safe to retry."""

    kind = "store-failure"
    http_status = 503


#: Campaign-engine ``error_kind`` values a *failed* job surfaces; the
#: job status body carries the kind verbatim so clients key on the PR 6
#: taxonomy (worker-crash, task-timeout, task-error, quarantined, ...).
FAILED_JOB_HTTP_STATUS = 500


# -- spec validation -------------------------------------------------------


def _require_mapping(payload):
    if not isinstance(payload, dict):
        raise SpecValidationError(
            "submission must be a JSON object, got {}".format(
                type(payload).__name__
            )
        )


def _validate_experiment(payload):
    name = payload.get("experiment")
    if not isinstance(name, str) or not name:
        raise SpecValidationError(
            'field "experiment" must be a non-empty string'
        )
    known = experiment_names()
    if name not in known:
        raise UnknownExperimentError(
            "unknown experiment {!r}; choose from {}".format(name, known)
        )
    return name


def _validate_scale(payload):
    scale = payload.get("scale", 1.0)
    if isinstance(scale, bool) or not isinstance(scale, (int, float)):
        raise SpecValidationError('field "scale" must be a number')
    scale = float(scale)
    if not math.isfinite(scale) or scale <= 0:
        raise SpecValidationError(
            'field "scale" must be a positive finite number, got {!r}'.format(
                scale
            )
        )
    return scale


def _validate_seed(value, field="seed"):
    if isinstance(value, bool) or not isinstance(value, int):
        raise SpecValidationError(
            'field "{}" must be an integer'.format(field)
        )
    if value < 0:
        raise SpecValidationError(
            'field "{}" must be non-negative, got {}'.format(field, value)
        )
    return value


def _validate_options(payload):
    options = payload.get("options", {})
    if options is None:
        options = {}
    if not isinstance(options, dict):
        raise SpecValidationError('field "options" must be a JSON object')
    if any(not isinstance(key, str) for key in options):
        raise SpecValidationError('"options" keys must be strings')
    try:
        canonical_json(options)
    except (TypeError, ValueError) as error:
        raise SpecValidationError(
            '"options" must be JSON-representable: {}'.format(error)
        )
    return options


_KNOWN_FIELDS = frozenset(("experiment", "scale", "seed", "options"))
_KNOWN_SWEEP_FIELDS = _KNOWN_FIELDS | frozenset(("seeds",))


def _reject_unknown_fields(payload, known):
    unknown = sorted(set(payload) - set(known))
    if unknown:
        raise SpecValidationError(
            "unknown field(s): {}".format(", ".join(unknown))
        )


class JobSpec:
    """One validated, immutable unit of exploration work.

    Identity is the content-addressed idempotency key: two specs with
    the same (experiment, scale, seed, options) are the *same* work, no
    matter who submitted them or when.
    """

    __slots__ = ("experiment", "scale", "seed", "options")

    def __init__(self, experiment, scale=1.0, seed=1, options=None):
        self.experiment = experiment
        self.scale = scale
        self.seed = seed
        self.options = dict(options or {})

    def key(self):
        """The idempotency key — the campaign cache key, verbatim."""
        return experiment_key(
            self.experiment, scale=self.scale, seed=self.seed,
            options=self.options,
        )

    def as_dict(self):
        return {
            "experiment": self.experiment,
            "scale": self.scale,
            "seed": self.seed,
            "options": dict(self.options),
        }

    @classmethod
    def from_dict(cls, payload):
        """Rebuild a spec from its ``as_dict`` form (WAL replay path).

        Replay trusts the WAL's CRC, not the registry: an experiment
        renamed between restarts still replays (and then fails typed at
        execution time) instead of wedging recovery.
        """
        return cls(
            payload["experiment"],
            scale=payload.get("scale", 1.0),
            seed=payload.get("seed", 1),
            options=payload.get("options") or {},
        )

    def __repr__(self):
        return "JobSpec({!r}, scale={}, seed={})".format(
            self.experiment, self.scale, self.seed
        )


def validate_submission(payload):
    """Validate one job submission; returns a :class:`JobSpec`.

    Every defect raises a typed :class:`SpecValidationError` (HTTP 400)
    naming the offending field — garbage in a request body must never
    become a traceback out of the server.
    """
    _require_mapping(payload)
    _reject_unknown_fields(payload, _KNOWN_FIELDS)
    name = _validate_experiment(payload)
    scale = _validate_scale(payload)
    seed = _validate_seed(payload.get("seed", 1))
    options = _validate_options(payload)
    return JobSpec(name, scale=scale, seed=seed, options=options)


def validate_sweep(payload):
    """Validate a sweep submission; returns a list of :class:`JobSpec`.

    A sweep is one experiment/scale/options point crossed with an
    explicit ``"seeds"`` list — the service-side analogue of the
    replication sweep, bounded by :data:`MAX_SWEEP_SEEDS` so one request
    cannot blow past admission control.
    """
    _require_mapping(payload)
    _reject_unknown_fields(payload, _KNOWN_SWEEP_FIELDS)
    if "seed" in payload and "seeds" in payload:
        raise SpecValidationError('"seed" and "seeds" are mutually exclusive')
    name = _validate_experiment(payload)
    scale = _validate_scale(payload)
    options = _validate_options(payload)
    seeds = payload.get("seeds")
    if not isinstance(seeds, list) or not seeds:
        raise SpecValidationError(
            'field "seeds" must be a non-empty list of integers'
        )
    if len(seeds) > MAX_SWEEP_SEEDS:
        raise SpecValidationError(
            "sweep of {} seeds exceeds the per-request limit of {}; "
            "split the sweep".format(len(seeds), MAX_SWEEP_SEEDS)
        )
    validated = [_validate_seed(seed, field="seeds") for seed in seeds]
    if len(set(validated)) != len(validated):
        raise SpecValidationError('"seeds" must not contain duplicates')
    return [
        JobSpec(name, scale=scale, seed=seed, options=options)
        for seed in validated
    ]
