"""Tests for split transactions (Section 2's dynamic bus splitting)."""

from repro.arbiters.round_robin import RoundRobinArbiter
from repro.bus.bus import SharedBus
from repro.bus.master import MasterInterface
from repro.bus.slave import Slave
from repro.sim.kernel import Simulator


def build(split, setups=(3, 3), num_masters=2):
    masters = [MasterInterface("m{}".format(i), i) for i in range(num_masters)]
    slaves = [
        Slave("s{}".format(j), j, setup_wait_states=s)
        for j, s in enumerate(setups)
    ]
    bus = SharedBus(
        "bus",
        masters,
        RoundRobinArbiter(num_masters),
        slaves=slaves,
        max_burst=16,
        split_transactions=split,
    )
    sim = Simulator()
    sim.add(bus)
    return sim, bus, masters


def test_split_overlaps_setups_of_different_slaves():
    # Two masters targeting two slaves, each with 3-cycle setup.
    # Blocking: grant A holds the bus through its setup (3 stalls + 4
    # words), then B the same: 14 cycles total.
    sim, bus, masters = build(split=False)
    a = masters[0].submit(4, 0, slave=0)
    b = masters[1].submit(4, 0, slave=1)
    sim.run(20)
    blocking_finish = max(a.completion_cycle, b.completion_cycle)

    # Split: address phases post in cycles 0 and 1; both setups run
    # off-bus concurrently; data phases pack back-to-back.
    sim, bus, masters = build(split=True)
    a = masters[0].submit(4, 0, slave=0)
    b = masters[1].submit(4, 0, slave=1)
    sim.run(20)
    split_finish = max(a.completion_cycle, b.completion_cycle)
    assert split_finish < blocking_finish


def test_split_request_pays_setup_once():
    sim, bus, masters = build(split=True, setups=(4,), num_masters=1)
    request = masters[0].submit(2, 0, slave=0)
    sim.run(12)
    # Address at cycle 0, parked through cycle 4, words at 4 and 5.
    assert request.setup_done
    assert request.completion_cycle == 5
    assert bus.slaves[0].bursts_served == 1


def test_parked_request_is_invisible_to_arbitration():
    sim, bus, masters = build(split=True, setups=(5, 0))
    slow = masters[0].submit(2, 0, slave=0)
    fast = masters[1].submit(3, 0, slave=1)
    sim.run(15)
    # The zero-setup transfer proceeds while the other is parked.
    assert fast.completion_cycle < slow.completion_cycle
    assert bus.metrics.total_words == 5


def test_split_off_by_default():
    sim, bus, masters = build(split=False, setups=(3,), num_masters=1)
    request = masters[0].submit(1, 0, slave=0)
    sim.run(10)
    # Blocking behaviour: stalls occupy the bus.
    assert bus.metrics.stall_cycles == 3
    assert request.completion_cycle == 3


def test_split_with_zero_setup_behaves_identically():
    for split in (False, True):
        sim, bus, masters = build(split=split, setups=(0, 0))
        a = masters[0].submit(4, 0, slave=0)
        masters[1].submit(4, 0, slave=1)
        sim.run(10)
        assert bus.metrics.total_words == 8
        assert a.completion_cycle is not None


def test_split_conserves_words_under_load():
    sim, bus, masters = build(split=True, setups=(2, 4))
    total = 0
    for master, words in ((0, 7), (1, 5), (0, 3)):
        masters[master].submit(words, 0, slave=master % 2)
        total += words
    sim.run(60)
    assert bus.metrics.total_words == total
    assert all(not m.has_request for m in masters)
