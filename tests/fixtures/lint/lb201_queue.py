# lb: module=repro.fixture_queue
"""A miniature JobQueue shaped like the real one: one lock guards the
pending list and the settled counter, which the submitting (main) root
and the drain (worker-thread) root both touch.  The seeded-race test
strips the ``with self._lock:`` acquisition out of ``submit`` and
asserts LB201 reports the attribute, both roots and the missing lock.
"""

import threading


class MiniQueue:
    def __init__(self):
        self._lock = threading.Lock()
        self.pending = []
        self.settled = 0

    def start(self):
        worker = threading.Thread(target=self._drain, daemon=True)
        worker.start()
        return worker

    def submit(self, item):
        with self._lock:
            self.pending.append(item)

    def _drain(self):
        while True:
            with self._lock:
                if self.pending:
                    self.pending.pop()
                    self.settled += 1
