"""Content-addressed cache of finished experiment results.

A paper campaign is a large cross product of configurations, and most
reruns repeat points that have not changed.  This cache makes such
reruns free: every task is addressed by a canonical hash of

* the **experiment id** (registry name),
* the **full configuration** (scale, extra options — anything that can
  change the result),
* the **seed**, and
* the **code-schema version** (:data:`SCHEMA_VERSION`, bumped whenever
  a code change legitimately alters results),

so any change to any of these produces a different key — stale results
can never be served.  Entries are self-verifying JSON files: the stored
record is accompanied by a SHA-256 digest of its canonical form, and a
sidecar-style envelope records the key and schema version.  Writes go
through :func:`repro.ioutil.atomic_write` (temp file + fsync +
``os.replace`` + directory fsync); a corrupted, truncated or mismatched
entry is treated as a **miss**, counted as an invalidation, and removed
— never a crash.

Accounting (hits / misses / stores / invalidations) is kept per
:class:`ResultCache` and surfaces in the campaign metrics report and on
the CLI's stderr summary line.
"""

import hashlib
import json
import os

from repro.ioutil import atomic_write

# Bump whenever experiment code changes in a way that alters results
# (new metrics, RNG stream changes, workload fixes).  Old entries then
# hash to different keys and are recomputed instead of served stale.
SCHEMA_VERSION = 1

_ENVELOPE_KIND = "lotterybus-result-cache"


def canonical_json(payload):
    """The canonical serialized form hashed into cache keys.

    Sorted keys, no whitespace, explicit unicode — byte-stable across
    Python versions and hosts for JSON-representable payloads.
    """
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


def cache_key(experiment, config, seed, schema_version=SCHEMA_VERSION):
    """SHA-256 key addressing one (experiment, config, seed, schema).

    ``config`` must be JSON-representable; non-JSON configurations are
    a :class:`TypeError` at key time rather than a silent wrong hit.
    """
    blob = canonical_json(
        {
            "experiment": experiment,
            "config": config,
            "seed": seed,
            "schema": schema_version,
        }
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def experiment_key(name, scale=1.0, seed=1, options=None,
                   schema_version=SCHEMA_VERSION):
    """The campaign engine's key for one registry experiment task."""
    return cache_key(
        name,
        {"scale": scale, "options": dict(options or {})},
        seed,
        schema_version=schema_version,
    )


class CacheStats:
    """Hit/miss/store/invalidation/eviction counters for one cache."""

    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.invalidated = 0
        self.evicted = 0

    @property
    def lookups(self):
        return self.hits + self.misses

    @property
    def hit_rate(self):
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def as_dict(self):
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "invalidated": self.invalidated,
            "evicted": self.evicted,
            "hit_rate": round(self.hit_rate, 4),
        }

    def format_line(self):
        """One grep-friendly line for progress streams and CI asserts."""
        return (
            "campaign cache: hits={} misses={} stores={} invalidated={} "
            "evicted={} hit_rate={:.1%}".format(
                self.hits, self.misses, self.stores, self.invalidated,
                self.evicted, self.hit_rate,
            )
        )

    def __repr__(self):
        return "CacheStats({})".format(self.format_line())


class ResultCache:
    """Content-addressed store of finished task records.

    :param directory: cache root; entries live in two-level fan-out
        subdirectories (``ab/abcdef….json``) so huge campaigns do not
        pile thousands of files into one directory.
    :param chaos: optional :class:`repro.chaos.ChaosInjector`; when
        given, freshly stored entries may be deliberately corrupted so
        chaos campaigns prove the self-verifying read path heals them.
    :param max_bytes: optional size cap on the cache directory; once the
        sum of entry sizes exceeds it, least-recently-*used* entries
        (mtime order — hits touch their entry) are evicted until the
        cache fits again.  ``None`` means unbounded (the historical
        behaviour).
    """

    def __init__(self, directory, chaos=None, max_bytes=None):
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be >= 1 when given")
        self.directory = directory
        self.stats = CacheStats()
        self.chaos = chaos
        self.max_bytes = max_bytes
        self._total_bytes = None  # lazy; first cap check scans the dir
        os.makedirs(directory, exist_ok=True)

    def entry_path(self, key):
        return os.path.join(self.directory, key[:2], key + ".json")

    def get(self, key):
        """The record stored under ``key``, or ``None`` on a miss.

        Any defect — unreadable file, bad JSON, wrong envelope, digest
        mismatch — counts as an invalidation plus a miss, and the bad
        entry is deleted so the slot heals on the next store.
        """
        path = self.entry_path(key)
        try:
            with open(path, "r") as handle:
                envelope = json.load(handle)
        except OSError:
            self.stats.misses += 1
            return None
        except ValueError:
            self._invalidate(path)
            return None
        if not self._envelope_ok(envelope, key):
            self._invalidate(path)
            return None
        self.stats.hits += 1
        self._touch(path)
        return envelope["record"]

    def put(self, key, record):
        """Atomically store ``record`` (JSON-representable) under ``key``."""
        envelope = {
            "kind": _ENVELOPE_KIND,
            "schema": SCHEMA_VERSION,
            "key": key,
            "sha256": hashlib.sha256(
                canonical_json(record).encode("utf-8")
            ).hexdigest(),
            "record": record,
        }
        path = self.entry_path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        old_size = self._size_of(path)
        atomic_write(path, json.dumps(envelope, sort_keys=True))
        self.stats.stores += 1
        if self._total_bytes is not None:
            self._total_bytes += self._size_of(path) - old_size
        if self.chaos is not None:
            self.chaos.maybe_corrupt_cache_entry(path)
        self._evict_if_needed(keep=path)

    def _envelope_ok(self, envelope, key):
        if not isinstance(envelope, dict):
            return False
        if envelope.get("kind") != _ENVELOPE_KIND:
            return False
        if envelope.get("key") != key:
            return False
        if "record" not in envelope:
            return False
        digest = hashlib.sha256(
            canonical_json(envelope["record"]).encode("utf-8")
        ).hexdigest()
        return envelope.get("sha256") == digest

    def _invalidate(self, path):
        self.stats.invalidated += 1
        self.stats.misses += 1
        self._unlink(path)

    # -- size cap / LRU eviction ------------------------------------------

    def total_bytes(self):
        """Current sum of entry sizes (scans the directory once, then
        maintained incrementally across puts/evictions)."""
        if self._total_bytes is None:
            self._total_bytes = sum(
                size for _, _, size in self._entry_files()
            )
        return self._total_bytes

    def _entry_files(self):
        """All ``(path, mtime, size)`` entry triples under the root."""
        entries = []
        for dirpath, _, filenames in os.walk(self.directory):
            for filename in filenames:
                if not filename.endswith(".json"):
                    continue
                path = os.path.join(dirpath, filename)
                try:
                    status = os.stat(path)
                except OSError:
                    continue  # raced with an unlink; it costs no bytes
                entries.append((path, status.st_mtime, status.st_size))
        return entries

    def _evict_if_needed(self, keep=None):
        """Evict least-recently-used entries until under ``max_bytes``.

        ``keep`` (the entry just stored) is never evicted — even a
        pathological cap smaller than one entry must not make the cache
        drop the result it was just asked to remember.
        """
        if self.max_bytes is None or self.total_bytes() <= self.max_bytes:
            return
        entries = sorted(self._entry_files(), key=lambda e: (e[1], e[0]))
        # Rebuild the total from the fresh scan; incremental accounting
        # drifts if another process shares the directory.
        self._total_bytes = sum(size for _, _, size in entries)
        for path, _, size in entries:
            if self._total_bytes <= self.max_bytes:
                break
            if keep is not None and os.path.abspath(path) == (
                os.path.abspath(keep)
            ):
                continue
            self._unlink(path)
            self.stats.evicted += 1
            self._total_bytes -= size

    @staticmethod
    def _size_of(path):
        try:
            return os.path.getsize(path)
        except OSError:
            return 0  # absent file: zero bytes toward the cap

    def _touch(self, path):
        try:
            os.utime(path, None)
        except OSError:
            pass  # LRU ordering degrades gracefully to store order

    def _unlink(self, path):
        try:
            os.unlink(path)
        except OSError:
            pass  # already gone (or unremovable): the read path heals it

    def __repr__(self):
        return "ResultCache({!r}, {})".format(
            self.directory, self.stats.format_line()
        )
