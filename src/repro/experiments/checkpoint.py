"""Stage-structured checkpointing for long experiments.

An experiment that runs several independent simulations in sequence
(e.g. :mod:`~repro.experiments.table1` building one switch per
architecture) exposes each simulation as a named *stage*.  An
:class:`ExperimentCheckpointer` gives every stage two files inside its
directory:

``<stage>.ckpt``
    the most recent mid-run simulator checkpoint (rewritten atomically
    every ``every`` cycles; deleted once the stage completes), and

``<stage>.done``
    the stage's final result, written through the same versioned,
    checksummed container (see :mod:`repro.sim.snapshot`).

Because experiment construction is deterministic from its parameters,
resuming is exact: completed stages are replayed from their ``.done``
files, an interrupted stage restores its simulator from ``.ckpt`` and
runs the remaining cycles (chunked execution is cycle-identical to a
single ``run`` call), and stages never started run fresh.  The resumed
report is bit-identical to an uninterrupted one.
"""

import os
import re

from repro.sim.snapshot import (
    CheckpointError,
    read_checkpoint,
    write_checkpoint,
)

_RESULT_KIND = "lotterybus-stage-result"
DEFAULT_CHECKPOINT_EVERY = 50_000


def task_checkpointer(directory, every=None, resume=False, on_event=None):
    """Build the checkpointer a campaign worker attaches to its task.

    The one construction path shared by the CLI, the legacy per-task
    worker and every pool worker, so a task checkpoints identically no
    matter which execution mode ran it.  ``every=None`` means
    :data:`DEFAULT_CHECKPOINT_EVERY`.
    """
    return ExperimentCheckpointer(
        directory,
        every=every or DEFAULT_CHECKPOINT_EVERY,
        resume=resume,
        on_event=on_event,
    )


def stage_slug(label):
    """A filesystem-safe stage name derived from a human label."""
    slug = re.sub(r"[^a-z0-9]+", "-", label.lower()).strip("-")
    return slug or "stage"


class ExperimentCheckpointer:
    """Owns one experiment's checkpoint directory.

    :param directory: where stage files live; created if missing.  A
        fresh (non-resuming) run wipes any stage files left behind by a
        previous run so stale state can never leak into new results.
    :param every: cycles between mid-run simulator checkpoints.
    :param resume: honour existing stage files instead of wiping them.
    :param on_event: optional callable receiving one-line progress
        strings ("skipping ...", "resuming ..."); the CLI routes these
        to stderr so ``--resume`` shows exactly what was reused.
    """

    def __init__(self, directory, every=DEFAULT_CHECKPOINT_EVERY,
                 resume=False, on_event=None):
        if every < 1:
            raise ValueError("checkpoint interval must be >= 1 cycle")
        self.directory = directory
        self.every = every
        self.resume = resume
        self.on_event = on_event
        os.makedirs(directory, exist_ok=True)
        if not resume:
            self._wipe()

    def _wipe(self):
        for name in os.listdir(self.directory):
            if name.endswith((".ckpt", ".done")):
                os.unlink(os.path.join(self.directory, name))

    def emit(self, message):
        if self.on_event is not None:
            self.on_event(message)

    def stage(self, name):
        """The :class:`StageCheckpoint` for one named stage."""
        return StageCheckpoint(self, stage_slug(name))


class StageCheckpoint:
    """Checkpoint handle for one stage of an experiment."""

    def __init__(self, checkpointer, name):
        self.checkpointer = checkpointer
        self.name = name
        self.ckpt_path = os.path.join(checkpointer.directory, name + ".ckpt")
        self.done_path = os.path.join(checkpointer.directory, name + ".done")

    def completed_result(self):
        """The stage's recorded result when resuming, else ``None``.

        A corrupted ``.done`` file (torn device write, bitrot) is
        discarded and the stage recomputes — experiments are
        deterministic, so recomputation yields the identical result;
        corruption must never fail a resume.  A *well-formed* container
        holding the wrong kind or stage is a caller error and still
        raises :class:`~repro.sim.snapshot.CheckpointError`.
        """
        if not self.checkpointer.resume or not os.path.exists(self.done_path):
            return None
        try:
            payload = read_checkpoint(self.done_path)
        except CheckpointError as error:
            self._discard(
                self.done_path,
                "corrupt result for stage {}: {}".format(self.name, error),
            )
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("kind") != _RESULT_KIND
            or payload.get("stage") != self.name
        ):
            raise CheckpointError(
                "{} does not hold a result for stage {!r}".format(
                    self.done_path, self.name
                )
            )
        self.checkpointer.emit(
            "skipping stage {} (already complete)".format(self.name)
        )
        return payload["result"]

    def _discard(self, path, reason):
        """Drop an unusable stage file; recomputation takes over."""
        self.checkpointer.emit(
            "discarding {} ({}); recomputing".format(path, reason)
        )
        try:
            os.unlink(path)
        except OSError:
            pass  # already gone; recomputation proceeds either way

    def run(self, simulator, total_cycles, progress=None):
        """Advance ``simulator`` to ``total_cycles``, checkpointing.

        When resuming past a mid-run checkpoint the simulator is
        restored first; a *corrupted* checkpoint is discarded and the
        stage restarts from cycle 0 (determinism makes the recomputed
        stage bit-identical, so corruption degrades to lost progress,
        never a failed task).  A valid checkpoint already beyond
        ``total_cycles`` (e.g. from a longer earlier run) raises
        :class:`~repro.sim.snapshot.CheckpointError` rather than
        silently producing a wrong-length result.

        Mid-run checkpoint *writes* are best-effort: a full disk
        (``OSError``) skips that checkpoint and the simulation carries
        on — losing resumability is strictly better than losing the
        run.  ``progress`` is called as ``progress(stage, cycle,
        total_cycles)`` after every chunk.  Returns the final cycle
        count.
        """
        if self.checkpointer.resume and os.path.exists(self.ckpt_path):
            try:
                cycle = simulator.load_checkpoint(self.ckpt_path)
            except CheckpointError as error:
                self._discard(
                    self.ckpt_path,
                    "corrupt checkpoint for stage {}: {}".format(
                        self.name, error
                    ),
                )
            else:
                if cycle > total_cycles:
                    raise CheckpointError(
                        "checkpoint for stage {} is at cycle {}, beyond the "
                        "requested {} cycles".format(
                            self.name, cycle, total_cycles
                        )
                    )
                self.checkpointer.emit(
                    "resuming stage {} at cycle {}".format(self.name, cycle)
                )
        every = self.checkpointer.every
        while simulator.cycle < total_cycles:
            simulator.run(min(every, total_cycles - simulator.cycle))
            if simulator.cycle < total_cycles:
                try:
                    simulator.save_checkpoint(self.ckpt_path)
                except OSError as error:
                    self.checkpointer.emit(
                        "checkpoint write failed for stage {} at cycle {} "
                        "({}); continuing without it".format(
                            self.name, simulator.cycle, error
                        )
                    )
            if progress is not None:
                progress(self.name, simulator.cycle, total_cycles)
        return simulator.cycle

    def complete(self, result):
        """Record the stage's final result and drop its checkpoint.

        Persisting the result is best-effort too: if the write fails
        (``OSError``), the stage simply is not resumable and will
        recompute next time — the in-memory result is still returned
        and the experiment proceeds.
        """
        try:
            write_checkpoint(
                self.done_path,
                {"kind": _RESULT_KIND, "stage": self.name, "result": result},
            )
        except OSError as error:
            self.checkpointer.emit(
                "result write failed for stage {} ({}); stage will "
                "recompute on resume".format(self.name, error)
            )
        if os.path.exists(self.ckpt_path):
            os.unlink(self.ckpt_path)
        return result
