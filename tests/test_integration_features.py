"""Integration tests combining extension features."""

import pytest

from repro.arbiters.lottery import StaticLotteryArbiter
from repro.arbiters.registry import make_arbiter
from repro.bus.address_map import AddressedMaster, AddressMap
from repro.bus.bus import SharedBus
from repro.bus.checker import BusChecker
from repro.bus.master import MasterInterface
from repro.bus.network import BusNetwork
from repro.bus.slave import Slave
from repro.bus.topology import build_single_bus_system
from repro.metrics.histogram import LatencyDistribution
from repro.sim.kernel import Simulator
from repro.soc.dma import DmaDescriptor, DmaEngine
from repro.traffic.classes import get_traffic_class


def test_preemptive_lottery_bus_with_checker():
    arbiter = make_arbiter("lottery-static", 4, [1, 2, 3, 4])
    system, bus = build_single_bus_system(
        4, arbiter, get_traffic_class("T8").generator_factory(seed=1)
    )
    bus.preemptive = True
    checker = system.add_monitor(BusChecker("chk", bus, starvation_bound=3000))
    system.run(15_000)
    # Per-word lotteries: grants == words, invariants hold throughout.
    assert bus.metrics.utilization() == pytest.approx(1.0, abs=0.01)
    grants = sum(s.grants for s in bus.metrics.masters)
    assert grants == bus.metrics.total_words
    assert checker.worst_wait < 3000


def test_dma_through_address_map_on_lottery_bus():
    address_map = AddressMap()
    address_map.add_region("sram", 0x0000, 0x10000, slave=0)
    address_map.add_region("dram", 0x8000_0000, 0x10000, slave=1)

    interface = MasterInterface("dma.if", 0)
    arbiter = StaticLotteryArbiter(tickets=[1])
    bus = SharedBus(
        "bus",
        [interface],
        arbiter,
        slaves=[Slave("sram", 0), Slave("dram", 1)],
    )
    dma = DmaEngine("dma", interface, chunk_words=8)
    dma.attach(bus)
    addressed = AddressedMaster(interface, address_map)

    # Program the DMA toward slave indices derived from addresses.
    target = address_map.decode_burst(0x8000_0000, 8)
    dma.program([DmaDescriptor(24, slave=target)])
    sim = Simulator()
    sim.add(dma)
    sim.add(bus)
    sim.run(60)
    assert bus.slaves[1].words_served == 24
    assert addressed.decode_errors == 0


def test_lottery_network_with_histograms():
    net = BusNetwork()
    net.add_channel(
        "sys", lambda n: StaticLotteryArbiter(tickets=[2] * n, lfsr_seed=3)
    )
    net.add_channel(
        "io", lambda n: StaticLotteryArbiter(tickets=[1] * n, lfsr_seed=4)
    )
    net.add_master("cpu", "sys")
    net.add_master("nic", "io")
    net.add_slave("mem", "sys")
    net.add_slave("flash", "io")
    net.add_bridge("sys", "io")
    system = net.build()

    distribution = LatencyDistribution(2)
    net.bus("io").add_completion_hook(distribution.on_completion)
    for cycle_slot in range(10):
        net.submit("cpu", "flash", words=4, cycle=0)
        net.submit("nic", "flash", words=4, cycle=0)
    system.run(300)
    # Both the bridge (master 0 on io) and the NIC completed transfers.
    rows = distribution.summary_rows()
    assert rows[0][1] == 10
    assert rows[1][1] == 10


def test_soc_config_with_compensated_arbiter():
    from repro.soc import build_system

    spec = {
        "bus": {
            "arbiter": "lottery-compensated",
            "weights": [1, 1],
            "arbiter_options": {"max_burst": 16},
        },
        "masters": [
            {
                "name": "small",
                "traffic": {
                    "kind": "closedloop",
                    "words": {"kind": "fixed", "words": 2},
                },
            },
            {
                "name": "large",
                "traffic": {
                    "kind": "closedloop",
                    "words": {"kind": "fixed", "words": 16},
                },
            },
        ],
    }
    system, bus = build_system(spec)
    system.run(40_000)
    shares = bus.metrics.bandwidth_shares()
    assert shares[0] == pytest.approx(0.5, abs=0.05)


def test_weighted_rr_vs_lottery_same_shares():
    results = {}
    for name in ("weighted-rr", "lottery-dynamic"):
        arbiter = make_arbiter(name, 4, [1, 2, 3, 4])
        system, bus = build_single_bus_system(
            4, arbiter, get_traffic_class("T9").generator_factory(seed=6)
        )
        system.run(40_000)
        results[name] = bus.metrics.bandwidth_shares()
    for a, b in zip(results["weighted-rr"], results["lottery-dynamic"]):
        assert a == pytest.approx(b, abs=0.03)


def test_cli_exposes_hwscale(capsys):
    from repro.cli import main

    assert main(["hwscale"]) == 0
    out = capsys.readouterr().out
    assert "crossover" in out
