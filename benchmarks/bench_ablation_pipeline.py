"""Ablation: pipelined vs blocking arbitration.

DESIGN.md question: the paper "pipelines lottery manager operations
with actual data transfers, to minimize idle bus cycles".  Charge 0
(pipelined), 1 and 2 visible arbitration cycles per grant and measure
the throughput and latency cost under small-message saturation, where
arbitration happens most often.
"""

from conftest import cycles, run_once

from repro.arbiters.lottery import StaticLotteryArbiter
from repro.bus.topology import build_single_bus_system
from repro.metrics.report import format_table
from repro.traffic.classes import get_traffic_class

ARB_CYCLES = [0, 1, 2]


def run_pipeline_ablation(num_cycles):
    rows = []
    for arb in ARB_CYCLES:
        arbiter = StaticLotteryArbiter(tickets=[1, 2, 3, 4], lfsr_seed=3)
        system, bus = build_single_bus_system(
            4,
            arbiter,
            get_traffic_class("T8").generator_factory(seed=2),
            arbitration_cycles=arb,
        )
        system.run(num_cycles)
        mean_latency = sum(bus.metrics.latencies_per_word()) / 4
        rows.append((arb, bus.metrics.utilization(), mean_latency))
    return rows


def test_bench_ablation_pipeline(benchmark):
    rows = run_once(benchmark, run_pipeline_ablation, cycles(80_000))
    print()
    print(
        format_table(
            ["arbitration cycles", "utilization", "mean lat/word"],
            list(rows),
            title="Arbitration pipelining ablation (T8: small-message saturation)",
        )
    )
    utils = {arb: util for arb, util, _ in rows}
    # Pipelined arbitration keeps the bus fully busy; every visible
    # arbitration cycle costs real throughput with ~2.5-word messages.
    assert utils[0] > 0.99
    assert utils[1] < 0.80
    assert utils[2] < utils[1]
