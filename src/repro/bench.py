"""Kernel performance benchmarks (``python -m repro.bench``).

Times the paper's workloads under the dense reference kernel and the
activity-driven fast path, verifies that both produce bit-identical
results, and writes the measurements to ``benchmarks/perf/BENCH_kernel.json``.

Scenarios:

* ``table1_lowutil`` — the four Table 1 architectures under light
  Poisson load (~1.5% offered utilisation).  The idle-heavy sweep the
  fast path exists for; target is a >= 5x cycles/sec speedup.
* ``table1_saturated`` — the same architectures with saturating
  generators.  There is nothing to skip, so this guards the fast
  path's overhead on busy systems (target: within 2% of dense).
* ``figure8_lottery`` — the Figure 8 ticket assignment (1:2:3:4) on a
  saturated lottery bus.
* ``atm_switch`` — the Table 1 output-queued ATM switch.  Bernoulli
  cell arrivals draw their RNG every cycle, so this runs dense-
  equivalent by design and measures pure kernel overhead.

Every scenario is run once per mode and fingerprinted: the metrics
summary and the full kernel ``state_dict`` are pickled and compared
byte-for-byte.  Any divergence fails the benchmark (exit status 1) —
speed without equivalence is a bug, not a result.
"""

import argparse
import json
import os
import pickle
import platform
import shutil
import sys
import tempfile
import threading
import time

from repro.arbiters.registry import make_arbiter
from repro.atm.switch import OutputQueuedSwitch
from repro.bus.topology import build_single_bus_system
from repro.experiments.table1 import ARCHITECTURES, TABLE1_WEIGHTS, table1_workload
from repro.traffic.generator import PoissonGenerator, SaturatingGenerator
from repro.traffic.message import FixedWords

NUM_MASTERS = 4
DEFAULT_OUTPUT = os.path.join("benchmarks", "perf", "BENCH_kernel.json")
DEFAULT_CAMPAIGN_OUTPUT = os.path.join(
    "benchmarks", "perf", "BENCH_campaign.json"
)
DEFAULT_SERVICE_OUTPUT = os.path.join(
    "benchmarks", "perf", "BENCH_service.json"
)
DEFAULT_BATCH_OUTPUT = os.path.join(
    "benchmarks", "perf", "BENCH_batch.json"
)
DEFAULT_ANALYTIC_OUTPUT = os.path.join(
    "benchmarks", "perf", "BENCH_analytic.json"
)
DEFAULT_LINT_OUTPUT = os.path.join(
    "benchmarks", "perf", "BENCH_lint.json"
)


def _platform_info():
    """Host fingerprint recorded in every benchmark report header, so
    checked-in numbers can be read next to the machine they came from."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "processor": platform.processor(),
        "system": platform.system(),
        "release": platform.release(),
        "cpu_count": os.cpu_count(),
    }


def _fingerprint(simulator, summary):
    return pickle.dumps(
        (summary, simulator.state_dict()), protocol=pickle.HIGHEST_PROTOCOL
    )


def _lowutil_factory(index, master):
    return PoissonGenerator(
        "gen{}".format(index),
        master,
        FixedWords(4),
        0.001,
        seed=17 + index,
    )


def _saturating_factory(index, master):
    return SaturatingGenerator(
        "gen{}".format(index), master, FixedWords(8), seed=7 + index
    )


def _run_architectures(mode, cycles, generator_factory, architectures):
    """One testbed run per architecture; returns (fingerprints, counters)."""
    blobs = []
    ticked = skipped = 0
    for label, arb_name, kwargs in architectures:
        arbiter = make_arbiter(
            arb_name, NUM_MASTERS, list(TABLE1_WEIGHTS), **kwargs
        )
        system, bus = build_single_bus_system(
            NUM_MASTERS, arbiter, generator_factory=generator_factory
        )
        system.simulator.mode = mode
        system.run(cycles)
        blobs.append(
            (label, _fingerprint(system.simulator, bus.metrics.summary()))
        )
        ticked += system.simulator.ticked_cycles
        skipped += system.simulator.skipped_cycles
    return pickle.dumps(blobs), ticked, skipped


def _run_table1_lowutil(mode, cycles):
    return _run_architectures(mode, cycles, _lowutil_factory, ARCHITECTURES)


def _run_table1_saturated(mode, cycles):
    return _run_architectures(mode, cycles, _saturating_factory, ARCHITECTURES)


def _run_figure8(mode, cycles):
    arbiter = make_arbiter("lottery-static", NUM_MASTERS, [1, 2, 3, 4])
    system, bus = build_single_bus_system(
        NUM_MASTERS, arbiter, generator_factory=_saturating_factory
    )
    system.simulator.mode = mode
    system.run(cycles)
    sim = system.simulator
    blob = _fingerprint(sim, bus.metrics.summary())
    return blob, sim.ticked_cycles, sim.skipped_cycles


def _run_atm_switch(mode, cycles):
    arbiter = make_arbiter(
        "lottery-static", NUM_MASTERS, list(TABLE1_WEIGHTS)
    )
    switch = OutputQueuedSwitch(arbiter, table1_workload(), seed=1)
    switch.simulator.mode = mode
    switch.run(cycles)
    sim = switch.simulator
    blob = _fingerprint(sim, switch.bus.metrics.summary())
    return blob, sim.ticked_cycles, sim.skipped_cycles


# (name, runner, systems, full cycles, quick cycles, description)
SCENARIOS = (
    (
        "table1_lowutil",
        _run_table1_lowutil,
        len(ARCHITECTURES),
        150000,
        20000,
        "Table 1 architectures, ~1.5% utilisation Poisson load",
    ),
    (
        "table1_saturated",
        _run_table1_saturated,
        len(ARCHITECTURES),
        40000,
        8000,
        "Table 1 architectures, saturating generators",
    ),
    (
        "figure8_lottery",
        _run_figure8,
        1,
        120000,
        24000,
        "Figure 8 ticket ratios (1:2:3:4), saturated lottery bus",
    ),
    (
        "atm_switch",
        _run_atm_switch,
        1,
        30000,
        6000,
        "Table 1 output-queued ATM switch (dense-equivalent workload)",
    ),
)


def _time_once(runner, mode, cycles, best):
    """One timed run folded into ``best``; runs are deterministic, so
    every repeat must reproduce the same fingerprint."""
    start = time.perf_counter()
    blob, ticked, skipped = runner(mode, cycles)
    elapsed = time.perf_counter() - start
    if best["blob"] is not None and blob != best["blob"]:
        raise AssertionError(
            "{} mode is non-deterministic across repeats".format(mode)
        )
    best["blob"] = blob
    best["ticked"] = ticked
    best["skipped"] = skipped
    if best["wall"] is None or elapsed < best["wall"]:
        best["wall"] = elapsed
    return best


def run_benchmarks(quick=False, repeats=3):
    """Run every scenario in both modes; returns the results document."""
    scenarios = []
    all_match = True
    for name, runner, systems, full_cycles, quick_cycles, description in (
        SCENARIOS
    ):
        cycles = quick_cycles if quick else full_cycles
        total_cycles = cycles * systems
        # Repeats are interleaved dense/fast so slow drift in machine
        # load biases both modes equally instead of whichever ran last.
        dense = {"blob": None, "ticked": None, "skipped": None, "wall": None}
        fast = {"blob": None, "ticked": None, "skipped": None, "wall": None}
        for _ in range(repeats):
            _time_once(runner, "dense", cycles, dense)
            _time_once(runner, "fast", cycles, fast)
        match = dense["blob"] == fast["blob"]
        all_match = all_match and match
        entry = {
            "name": name,
            "description": description,
            "systems": systems,
            "cycles_per_system": cycles,
            "dense": {
                "wall_seconds": round(dense["wall"], 4),
                "cycles_per_second": round(total_cycles / dense["wall"], 1),
            },
            "fast": {
                "wall_seconds": round(fast["wall"], 4),
                "cycles_per_second": round(total_cycles / fast["wall"], 1),
                "skipped_fraction": round(
                    fast["skipped"] / float(total_cycles), 4
                ),
            },
            "speedup": round(dense["wall"] / fast["wall"], 2),
            "identical": match,
        }
        scenarios.append(entry)
    return {
        "benchmark": "repro.bench",
        "quick": quick,
        "repeats": repeats,
        "python": platform.python_version(),
        "platform": _platform_info(),
        "scenarios": scenarios,
        "all_identical": all_match,
    }


# -- campaign benchmark ----------------------------------------------------
#
# Times the same Table 1 point campaign three ways: serial in-process,
# fanned over the persistent worker pool, and replayed against a warm
# content-addressed result cache.  All three must produce identical
# campaign results; the JSON report records the walls, speedups and
# cache accounting.


def _campaign_calls(quick):
    """The benchmark campaign: Table 1 architectures x two seeds."""
    cycles = 6_000 if quick else 60_000
    calls = []
    for seed in (1, 2):
        for label, arb_name, kwargs in ARCHITECTURES:
            calls.append(
                ("{} seed{}".format(label, seed), arb_name, kwargs, cycles,
                 seed)
            )
    return calls


def _campaign_point_key(call):
    from repro.experiments.cache import cache_key

    label, arb_name, kwargs, cycles, seed = call
    return cache_key(
        "table1-point",
        {"label": label, "arbiter": arb_name, "kwargs": kwargs,
         "cycles": cycles},
        seed,
    )


def _run_campaign_cached(calls, cache):
    from repro.experiments.table1 import run_table1_point

    rows = []
    for call in calls:
        key = _campaign_point_key(call)
        record = cache.get(key)
        if record is None:
            row = run_table1_point(*call)
            cache.put(key, {"row": row})
        else:
            row = record["row"]
        rows.append(row)
    return rows


def _canonical_rows(rows):
    """Rows normalized through JSON so cached (list) and fresh (tuple)
    results compare by value, not container type."""
    return json.loads(json.dumps(rows))


def _bench_point_runner(spec, resume):
    """Pool-worker runner for the chaos leg: one Table 1 point per task.

    The call parameters ride in ``spec.options`` so workers (which
    unpickle the spec, not a closure) can reconstruct the exact same
    point the serial leg computed.
    """
    from repro.experiments.table1 import run_table1_point

    options = spec.options
    row = run_table1_point(
        options["label"], options["arbiter"], options["kwargs"],
        options["cycles"], spec.seed,
    )
    return json.dumps(row)


def _run_campaign_chaos(calls, jobs, chaos_rate):
    """The campaign under seeded worker kills; returns (rows, stats).

    Every task must still finish with a row identical to the serial
    leg's — resilience without equivalence is a bug, not a result.
    """
    from repro.chaos import ChaosInjector, ChaosPlan
    from repro.experiments.supervisor import Supervisor, TaskSpec

    specs = []
    for label, arb_name, kwargs, cycles, seed in calls:
        specs.append(
            TaskSpec(
                "{} seed{}".format(label, seed),
                seed=seed,
                options={"label": label, "arbiter": arb_name,
                         "kwargs": kwargs, "cycles": cycles},
            )
        )
    injector = ChaosInjector(ChaosPlan(kill_rate=chaos_rate), seed=1)
    supervisor = Supervisor(
        jobs=jobs, retries=30, backoff=0.05, quarantine_after=None,
        circuit_breaker=None, task_runner=_bench_point_runner,
        chaos=injector,
    )
    outcomes = supervisor.run(specs)
    rows = [json.loads(outcomes[spec.name].report) for spec in specs]
    return rows, injector, supervisor


def run_campaign_benchmark(quick=False, jobs=4, cache_dir=None,
                           chaos_rate=0.0):
    """Serial vs pooled vs warm-cache campaign; returns the results doc."""
    from repro.experiments.cache import ResultCache
    from repro.experiments.supervisor import default_jobs, pool_map
    from repro.experiments.table1 import run_table1_point

    calls = _campaign_calls(quick)

    start = time.perf_counter()
    serial_rows = [run_table1_point(*call) for call in calls]
    serial_wall = time.perf_counter() - start

    start = time.perf_counter()
    pooled_rows = pool_map(run_table1_point, calls, jobs=jobs)
    pooled_wall = time.perf_counter() - start
    pooled_identical = serial_rows == pooled_rows

    own_cache_dir = cache_dir is None
    if own_cache_dir:
        cache_dir = tempfile.mkdtemp(prefix="bench-campaign-cache-")
    try:
        cold_cache = ResultCache(cache_dir)
        start = time.perf_counter()
        cold_rows = _run_campaign_cached(calls, cold_cache)
        cold_wall = time.perf_counter() - start

        warm_cache = ResultCache(cache_dir)
        start = time.perf_counter()
        warm_rows = _run_campaign_cached(calls, warm_cache)
        warm_wall = time.perf_counter() - start
    finally:
        if own_cache_dir:
            shutil.rmtree(cache_dir, ignore_errors=True)

    warm_identical = (
        _canonical_rows(serial_rows)
        == _canonical_rows(cold_rows)
        == _canonical_rows(warm_rows)
    )

    chaos_entry = None
    chaos_identical = True
    if chaos_rate:
        start = time.perf_counter()
        chaos_rows, injector, supervisor = _run_campaign_chaos(
            calls, jobs, chaos_rate
        )
        chaos_wall = time.perf_counter() - start
        chaos_identical = (
            _canonical_rows(serial_rows) == _canonical_rows(chaos_rows)
        )
        chaos_entry = {
            "rate": chaos_rate,
            "wall_seconds": round(chaos_wall, 4),
            "slowdown_vs_pooled": round(chaos_wall / pooled_wall, 2),
            "workers_killed": injector.events["kill"],
            "workers_spawned": supervisor.workers_spawned,
            "identical": chaos_identical,
        }

    all_identical = pooled_identical and warm_identical and chaos_identical
    return {
        "benchmark": "repro.bench --campaign",
        "quick": quick,
        "python": platform.python_version(),
        "platform": _platform_info(),
        "cpus": default_jobs(),
        "tasks": len(calls),
        "cycles_per_task": calls[0][3],
        "jobs": jobs,
        "serial": {"wall_seconds": round(serial_wall, 4)},
        "pooled": {
            "wall_seconds": round(pooled_wall, 4),
            "speedup_vs_serial": round(serial_wall / pooled_wall, 2),
            "identical": pooled_identical,
        },
        "cache_cold": {
            "wall_seconds": round(cold_wall, 4),
            "stats": cold_cache.stats.as_dict(),
        },
        "cache_warm": {
            "wall_seconds": round(warm_wall, 4),
            "fraction_of_cold": round(warm_wall / cold_wall, 4),
            "stats": warm_cache.stats.as_dict(),
            "identical": warm_identical,
        },
        "chaos": chaos_entry,
        "all_identical": all_identical,
    }


# -- batch (vectorized) benchmark ------------------------------------------
#
# Times the saturated Table 1 sweep two ways: one dense scalar run per
# lane (the reference) and one struct-of-arrays VectorEngine hosting
# every lane at once (repro.vector).  Every lane's metrics summary and
# arbiter state are fingerprinted on both sides and compared
# byte-for-byte; any divergence fails the benchmark (exit status 1).


# The engine-hosted architectures of the saturated sweep: the full
# lottery family plus static priority (TDMA stays on the scalar path —
# its wheel state has no vector profile).
BATCH_ARCHITECTURES = (
    ("static priority", "static-priority", {}),
    ("LOTTERYBUS", "lottery-static", {}),
    ("lottery dynamic", "lottery-dynamic", {}),
    ("lottery compensated", "lottery-compensated", {}),
)


def _batch_lane_specs(quick):
    """The batch workload: lottery-family architectures x seeds.

    Saturated fixed-size bursts (the ``table1_saturated`` scenario,
    Table 1 weights) with a per-lane ``lfsr_seed`` so every lottery
    lane replays a different draw stream.
    """
    seeds_per_arch = 24 if quick else 96
    cycles = 2_500 if quick else 12_000
    specs = []
    for label, arb_name, kwargs in BATCH_ARCHITECTURES:
        for seed in range(1, seeds_per_arch + 1):
            lane_kwargs = dict(kwargs)
            if arb_name.startswith("lottery"):
                lane_kwargs["lfsr_seed"] = seed
            specs.append(
                ("{} seed{}".format(label, seed), arb_name, lane_kwargs)
            )
    return specs, cycles


def _batch_lane_builder(arb_name, kwargs):
    def build():
        arbiter = make_arbiter(
            arb_name, NUM_MASTERS, list(TABLE1_WEIGHTS), **kwargs
        )
        return build_single_bus_system(
            NUM_MASTERS, arbiter, generator_factory=_saturating_factory
        )

    return build


def run_batch_benchmark(quick=False, repeats=3, block_size=32):
    """Scalar-dense vs vectorized batch run; returns the results doc.

    Raises :class:`repro.vector.VectorUnavailableError` when numpy is
    not installed — the batch benchmark has no scalar fallback to
    measure against itself.
    """
    from repro.core.lookup_table import (
        lookup_table_cache_stats,
        reset_lookup_table_cache,
    )
    from repro.vector import scalar_fingerprint
    from repro.vector.engine import VectorEngine
    from repro.vector.lanes import plan_lane

    specs, cycles = _batch_lane_specs(quick)
    builders = [
        (label, _batch_lane_builder(arb_name, kwargs))
        for label, arb_name, kwargs in specs
    ]

    # Scalar reference leg: one dense run per lane.
    scalar_prints = []
    start = time.perf_counter()
    for _, builder in builders:
        system, bus = builder()
        system.simulator.mode = "dense"
        system.run(cycles)
        scalar_prints.append(scalar_fingerprint(bus))
    scalar_wall = time.perf_counter() - start

    # Vector leg: every lane in one engine; best wall over repeats, and
    # repeats must reproduce the same fingerprints (determinism guard).
    reset_lookup_table_cache()
    vector_wall = None
    vector_prints = None
    for _ in range(max(1, repeats)):
        plans = [
            plan_lane(builder, label=label) for label, builder in builders
        ]
        engine = VectorEngine(plans, block_size=block_size)
        start = time.perf_counter()
        engine.run(cycles)
        elapsed = time.perf_counter() - start
        prints = [
            engine.lane_fingerprint(lane) for lane in range(len(plans))
        ]
        if vector_prints is not None and prints != vector_prints:
            raise AssertionError(
                "vector engine is non-deterministic across repeats"
            )
        vector_prints = prints
        if vector_wall is None or elapsed < vector_wall:
            vector_wall = elapsed

    mismatches = [
        label
        for (label, _), scalar, vector in zip(
            builders, scalar_prints, vector_prints
        )
        if scalar != vector
    ]
    lanes = len(builders)
    total_cycles = lanes * cycles
    return {
        "benchmark": "repro.bench --batch",
        "quick": quick,
        "repeats": repeats,
        "python": platform.python_version(),
        "platform": _platform_info(),
        "lanes": lanes,
        "cycles_per_lane": cycles,
        "scalar_dense": {
            "wall_seconds": round(scalar_wall, 4),
            "cycles_per_second": round(total_cycles / scalar_wall, 1),
        },
        "vector": {
            "wall_seconds": round(vector_wall, 4),
            "cycles_per_second": round(total_cycles / vector_wall, 1),
            "block_size": block_size,
            "lookup_table_cache": lookup_table_cache_stats(),
        },
        "speedup": round(scalar_wall / vector_wall, 2),
        "mismatched_lanes": mismatches[:10],
        "all_identical": not mismatches,
    }


def _print_batch(results):
    print("batch: {} lanes x {} cycles (block_size={})".format(
        results["lanes"], results["cycles_per_lane"],
        results["vector"]["block_size"],
    ))
    print("  scalar dense {:>9.3f}s  {:>12.1f} cycles/s".format(
        results["scalar_dense"]["wall_seconds"],
        results["scalar_dense"]["cycles_per_second"],
    ))
    print("  vector       {:>9.3f}s  {:>12.1f} cycles/s".format(
        results["vector"]["wall_seconds"],
        results["vector"]["cycles_per_second"],
    ))
    cache = results["vector"]["lookup_table_cache"]
    print("  speedup      {:>8.2f}x  identical={}  table cache: "
          "{} builds / {} hits".format(
              results["speedup"],
              "yes" if results["all_identical"] else "NO",
              cache["builds"], cache["hits"],
          ))
    for label in results["mismatched_lanes"]:
        print("  MISMATCH: {}".format(label))


# -- analytic surrogate benchmark ------------------------------------------
#
# Two legs.  Accuracy: the surrogate is cross-validated against one
# simulated sweep at the pinned calibration settings and every
# combination must land inside its checked-in error bound
# (repro.analytic.bounds) — any violation fails the benchmark (exit
# status 1).  Speed: the surrogate scores a large replicated grid while
# the vectorized simulator runs the standard-sweep grid at the standard
# 50k-cycle budget; the per-configuration speedup must clear 1000x
# (gated in full runs; --quick still reports it).


# The simulator side of the speed leg: the standard sweep's
# engine-hosted arbiters (see repro.experiments.runner).
_ANALYTIC_SIM_ARBITERS = (
    "static-priority",
    "lottery-static",
    "lottery-dynamic",
    "lottery-compensated",
)
_ANALYTIC_SIM_CYCLES = 50_000
_ANALYTIC_SPEEDUP_TARGET = 1000.0


def run_analytic_benchmark(quick=False, repeats=3, jobs=None):
    """Surrogate accuracy + throughput vs the vector engine.

    Raises :class:`repro.vector.VectorUnavailableError` when numpy is
    not installed — the speed leg's baseline is the vectorized batch
    engine.
    """
    from repro.analytic import (
        CALIBRATION,
        score_grid,
        supported_arbiters,
        validate_surrogate,
    )
    from repro.vector import run_testbed_batch

    # Accuracy leg: one cross-validation sweep at the calibration
    # settings.  --quick trims the arbiter families, not the settings —
    # the bounds are only meaningful at the cycles they were
    # calibrated for.
    families = list(supported_arbiters())
    if quick:
        families = ["lottery-static", "static-priority", "tdma"]
    validation = validate_surrogate(
        arbiters=families, backend="auto", jobs=jobs
    )

    # Surrogate timing: the full supported grid, replicated so the
    # batch path dominates fixed overheads; best wall over repeats.
    weights = tuple(CALIBRATION["weights"])
    traffic = list(CALIBRATION["traffic_classes"])
    base_grid = [
        {
            "arbiter_name": arbiter_name,
            "traffic_class_name": traffic_name,
            "weights": weights,
        }
        for arbiter_name in supported_arbiters()
        for traffic_name in traffic
    ]
    grid = base_grid * (8 if quick else 40)
    surrogate_wall = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        predictions = score_grid(grid, horizon=_ANALYTIC_SIM_CYCLES)
        elapsed = time.perf_counter() - start
        if surrogate_wall is None or elapsed < surrogate_wall:
            surrogate_wall = elapsed
    surrogate_per_config = surrogate_wall / len(grid)

    # Simulator baseline: the standard sweep grid on the vector engine
    # at the standard cycle budget (what a screened sweep avoids
    # paying per screened-out configuration).
    sim_calls = [
        dict(
            arbiter_name=arbiter_name,
            traffic_class_name=traffic_name,
            weights=list(weights),
            cycles=_ANALYTIC_SIM_CYCLES,
            seed=CALIBRATION["seed"],
        )
        for arbiter_name in _ANALYTIC_SIM_ARBITERS
        for traffic_name in traffic
    ]
    if quick:
        sim_calls = sim_calls[:: len(traffic) // 3]
    start = time.perf_counter()
    run_testbed_batch(sim_calls)
    sim_wall = time.perf_counter() - start
    sim_per_config = sim_wall / len(sim_calls)

    speedup = sim_per_config / surrogate_per_config
    speedup_ok = quick or speedup >= _ANALYTIC_SPEEDUP_TARGET
    max_errors = validation.max_errors()
    return {
        "benchmark": "repro.bench --analytic",
        "quick": quick,
        "repeats": repeats,
        "python": platform.python_version(),
        "platform": _platform_info(),
        "validation": {
            "cycles": validation.cycles,
            "seed": validation.seed,
            "arbiters": families,
            "combinations": len(validation.rows),
            "max_share_error": round(max_errors["share"], 4),
            "max_utilization_error": round(max_errors["utilization"], 4),
            "max_latency_error": round(max_errors["latency"], 4),
            "violations": [
                "{}/{}".format(row["arbiter"], row["traffic"])
                for row in validation.violations
            ][:10],
            "ok": validation.ok,
        },
        "surrogate": {
            "configs": len(grid),
            "wall_seconds": round(surrogate_wall, 4),
            "per_config_microseconds": round(
                surrogate_per_config * 1e6, 2
            ),
            "configs_per_second": round(len(grid) / surrogate_wall, 1),
            "sample_utilization": round(predictions[0].utilization, 4),
        },
        "simulator": {
            "backend": "vector",
            "configs": len(sim_calls),
            "cycles_per_config": _ANALYTIC_SIM_CYCLES,
            "wall_seconds": round(sim_wall, 4),
            "per_config_milliseconds": round(sim_per_config * 1e3, 2),
            "configs_per_second": round(len(sim_calls) / sim_wall, 2),
        },
        "speedup": round(speedup, 1),
        "speedup_target": _ANALYTIC_SPEEDUP_TARGET,
        "speedup_gated": not quick,
        "all_identical": validation.ok and speedup_ok,
    }


def _print_analytic(results):
    validation = results["validation"]
    print("analytic: {} combinations validated ({} cycles, seed {})".format(
        validation["combinations"], validation["cycles"],
        validation["seed"],
    ))
    print("  max error    share={} util={} latency={}  bounds={}".format(
        validation["max_share_error"],
        validation["max_utilization_error"],
        validation["max_latency_error"],
        "ok" if validation["ok"] else "VIOLATED",
    ))
    print("  surrogate   {:>9.3f}s  {:>10.1f} configs/s  ({} configs, "
          "{}us each)".format(
              results["surrogate"]["wall_seconds"],
              results["surrogate"]["configs_per_second"],
              results["surrogate"]["configs"],
              results["surrogate"]["per_config_microseconds"],
          ))
    print("  simulator   {:>9.3f}s  {:>10.2f} configs/s  ({} configs, "
          "{} cycles each)".format(
              results["simulator"]["wall_seconds"],
              results["simulator"]["configs_per_second"],
              results["simulator"]["configs"],
              results["simulator"]["cycles_per_config"],
          ))
    print("  speedup     {:>8.0f}x  (target {:.0f}x, {})".format(
        results["speedup"], results["speedup_target"],
        "gated" if results["speedup_gated"] else "reported only",
    ))
    for label in validation["violations"]:
        print("  VIOLATED: {}".format(label))


# -- lint benchmark --------------------------------------------------------
#
# Times the incremental linter (repro.lint) on the repo's own tree:
# a cold run against an empty cache, a fully warm run (every per-file
# result and the whole-program pass replayed from the cache), and a
# cold run fanned across a worker pool.  All three legs must produce
# byte-identical findings, and the warm run must clear the 5x speedup
# target — an incremental cache that changes answers is a bug, not a
# result.

_LINT_TARGETS = ("src", "tests")
_LINT_WARM_SPEEDUP_TARGET = 5.0


def run_lint_benchmark(quick=False, repeats=3, jobs=4,
                       targets=_LINT_TARGETS):
    """Cold vs warm vs parallel lint of the repo tree, in process.

    The cache lives in a throwaway directory so the benchmark never
    touches (or benefits from) the checkout's own ``.lint-cache.json``.
    Cache load and save are inside the timed region on both the cold
    and warm legs — persistence is part of what each run costs.
    """
    from repro.analysis.cache import LintCache
    from repro.analysis.core import (
        get_rules,
        iter_python_files,
        lint_paths,
    )

    rules = get_rules()
    rule_ids = [rule.id for rule in rules]
    paths = list(targets)
    file_count = sum(1 for _ in iter_python_files(paths))
    repeats = 1 if quick else max(1, repeats)

    def fingerprint(findings):
        return json.dumps(
            [finding.as_dict() for finding in findings], sort_keys=True
        )

    work_dir = tempfile.mkdtemp(prefix="bench-lint-")
    cache_path = os.path.join(work_dir, ".lint-cache.json")
    try:
        # Cold: empty cache, every file parsed and summarized.
        cold_wall = None
        for _ in range(repeats):
            try:
                os.remove(cache_path)
            except OSError:
                pass  # first iteration: nothing written yet
            start = time.perf_counter()
            cache = LintCache.load(cache_path, rule_ids)
            findings = lint_paths(paths, rules=rules, cache=cache)
            cache.save()
            elapsed = time.perf_counter() - start
            if cold_wall is None or elapsed < cold_wall:
                cold_wall = elapsed
        cold_fingerprint = fingerprint(findings)
        finding_count = len(findings)

        # Warm: unchanged tree, reloaded cache — per-file results and
        # the project pass all replay; no parsing at all.
        warm_wall = None
        warm_hits = warm_misses = 0
        for _ in range(repeats):
            start = time.perf_counter()
            cache = LintCache.load(cache_path, rule_ids)
            findings = lint_paths(paths, rules=rules, cache=cache)
            cache.save()
            elapsed = time.perf_counter() - start
            if warm_wall is None or elapsed < warm_wall:
                warm_wall = elapsed
            warm_hits, warm_misses = cache.hits, cache.misses
        warm_fingerprint = fingerprint(findings)

        # Parallel: cold per-file work fanned across a process pool,
        # no cache — exercises the multiprocessing path, not reuse.
        # Reported, never gated: a 1-CPU container legitimately shows
        # ~1x here.
        parallel_wall = None
        for _ in range(repeats):
            start = time.perf_counter()
            findings = lint_paths(paths, rules=rules, jobs=jobs)
            elapsed = time.perf_counter() - start
            if parallel_wall is None or elapsed < parallel_wall:
                parallel_wall = elapsed
        parallel_fingerprint = fingerprint(findings)
    finally:
        shutil.rmtree(work_dir, ignore_errors=True)

    identical = (
        cold_fingerprint == warm_fingerprint == parallel_fingerprint
    )
    warm_speedup = (cold_wall / warm_wall) if warm_wall else float("inf")
    speedup_ok = quick or warm_speedup >= _LINT_WARM_SPEEDUP_TARGET
    return {
        "benchmark": "repro.bench --lint",
        "quick": quick,
        "repeats": repeats,
        "platform": _platform_info(),
        "targets": list(targets),
        "files": file_count,
        "rules": rule_ids,
        "findings": finding_count,
        "cold": {
            "wall_seconds": round(cold_wall, 4),
            "files_per_second": round(file_count / cold_wall, 1),
        },
        "warm": {
            "wall_seconds": round(warm_wall, 4),
            "files_per_second": round(file_count / warm_wall, 1),
            "cache_hits": warm_hits,
            "cache_misses": warm_misses,
        },
        "parallel": {
            "jobs": jobs,
            "wall_seconds": round(parallel_wall, 4),
            "files_per_second": round(file_count / parallel_wall, 1),
            "speedup_vs_cold": round(cold_wall / parallel_wall, 2),
        },
        "warm_speedup": round(warm_speedup, 1),
        "warm_speedup_target": _LINT_WARM_SPEEDUP_TARGET,
        "warm_speedup_gated": not quick,
        "identical_findings": identical,
        "all_identical": identical and speedup_ok,
    }


def _print_lint(results):
    print("lint: {} files, {} rules, {} findings".format(
        results["files"], len(results["rules"]), results["findings"],
    ))
    print("  cold        {:>9.3f}s  {:>8.1f} files/s".format(
        results["cold"]["wall_seconds"],
        results["cold"]["files_per_second"],
    ))
    print("  warm        {:>9.3f}s  {:>8.1f} files/s  "
          "({} hits / {} misses)".format(
              results["warm"]["wall_seconds"],
              results["warm"]["files_per_second"],
              results["warm"]["cache_hits"],
              results["warm"]["cache_misses"],
          ))
    print("  parallel    {:>9.3f}s  {:>8.1f} files/s  "
          "(jobs={}, {:.2f}x vs cold)".format(
              results["parallel"]["wall_seconds"],
              results["parallel"]["files_per_second"],
              results["parallel"]["jobs"],
              results["parallel"]["speedup_vs_cold"],
          ))
    print("  warm speedup {:>7.1f}x  (target {:.0f}x, {})".format(
        results["warm_speedup"], results["warm_speedup_target"],
        "gated" if results["warm_speedup_gated"] else "reported only",
    ))
    print("  findings     {}".format(
        "identical across all legs"
        if results["identical_findings"] else "DIVERGED"
    ))


# -- service benchmark -----------------------------------------------------
#
# Hammers a live in-process DSE server (stdlib front-end, real sockets)
# with concurrent clients: cold submissions that execute on the worker
# pool, duplicate submissions that must *join* the finished jobs, and
# warm result fetches.  The served reports must be bit-identical to
# in-process references and the duplicates must cause zero extra
# executions — throughput without idempotency is a bug, not a result.


def _percentile_ms(samples, q):
    """The q-quantile of ``samples`` (seconds) in milliseconds."""
    if not samples:
        return None
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))
    return round(ordered[index] * 1000.0, 3)


def _hammer_clients(clients, worker):
    """Run ``worker(index, errors)`` on ``clients`` threads; returns
    (wall_seconds, errors)."""
    errors = []
    threads = [
        threading.Thread(target=worker, args=(index, errors), daemon=True)
        for index in range(clients)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return time.perf_counter() - start, errors


def run_service_benchmark(quick=False, workers=2, clients=4):
    """Concurrent-client service benchmark; returns the results doc."""
    from repro.experiments.runner import run_experiment
    from repro.service.client import ServiceClient
    from repro.service.core import ServiceCore
    from repro.service.http import ServiceServer

    scale = 0.05
    seeds = tuple(range(1, 3 if quick else 5))
    per_client = 25 if quick else 100

    root = tempfile.mkdtemp(prefix="bench-service-")
    core = ServiceCore(
        os.path.join(root, "state"),
        cache_dir=os.path.join(root, "cache"),
        workers=workers, timeout=300,
    )
    server = ServiceServer(core, port=0)
    server.start()
    try:
        client = ServiceClient(server.address, client_id="bench-root")

        # Cold leg: real executions on the worker pool.
        start = time.perf_counter()
        job_ids = {}
        for seed in seeds:
            status, body = client.submit("figure5", scale=scale, seed=seed)
            if status != 202:
                raise AssertionError(
                    "cold submit bounced: {} {}".format(status, body)
                )
            job_ids[seed] = body["job"]
        results = client.wait_all(list(job_ids.values()), timeout=600)
        cold_wall = time.perf_counter() - start
        reference = {
            seed: run_experiment(
                "figure5", scale=scale, seed=seed, _warn_seedless=False
            ).format_report()
            for seed in seeds
        }
        identical = all(
            results[job_ids[seed]][0] == 200
            and results[job_ids[seed]][1]["report"] == reference[seed]
            for seed in seeds
        )

        # Duplicate-submission leg: pure admission path.  Every request
        # must join its finished job (200, deduplicated), never rerun it.
        submit_latencies = []

        def _submitter(index, errors):
            mine = ServiceClient(
                server.address, client_id="bench-{}".format(index)
            )
            for i in range(per_client):
                seed = seeds[(index + i) % len(seeds)]
                begin = time.perf_counter()
                status, body = mine.submit("figure5", scale=scale, seed=seed)
                submit_latencies.append(time.perf_counter() - begin)
                if status != 200 or not body.get("deduplicated"):
                    errors.append(
                        "duplicate submit: {} {}".format(status, body)
                    )
                    return

        submit_wall, submit_errors = _hammer_clients(clients, _submitter)

        # Warm-result leg: concurrent fetches of memoized reports.
        fetch_latencies = []

        def _fetcher(index, errors):
            mine = ServiceClient(
                server.address, client_id="bench-{}".format(index)
            )
            for i in range(per_client):
                seed = seeds[(index + i) % len(seeds)]
                begin = time.perf_counter()
                status, body = mine.job_result(job_ids[seed])
                fetch_latencies.append(time.perf_counter() - begin)
                if status != 200:
                    errors.append(
                        "warm fetch: {} {}".format(status, body)
                    )
                    return

        fetch_wall, fetch_errors = _hammer_clients(clients, _fetcher)

        status, stats = client.stats()
        executed = stats.get("executed", -1) if status == 200 else -1
        errors = submit_errors + fetch_errors
        all_identical = (
            identical and not errors and executed == len(seeds)
        )
        requests = clients * per_client
        return {
            "benchmark": "repro.bench --service",
            "quick": quick,
            "python": platform.python_version(),
            "platform": _platform_info(),
            "workers": workers,
            "clients": clients,
            "requests_per_client": per_client,
            "cold": {
                "jobs": len(seeds),
                "wall_seconds": round(cold_wall, 4),
                "identical": identical,
            },
            "submissions": {
                "total": requests,
                "wall_seconds": round(submit_wall, 4),
                "per_second": round(requests / submit_wall, 1),
                "p50_ms": _percentile_ms(submit_latencies, 0.50),
                "p95_ms": _percentile_ms(submit_latencies, 0.95),
            },
            "warm_results": {
                "total": requests,
                "wall_seconds": round(fetch_wall, 4),
                "per_second": round(requests / fetch_wall, 1),
                "p50_ms": _percentile_ms(fetch_latencies, 0.50),
                "p95_ms": _percentile_ms(fetch_latencies, 0.95),
            },
            "executed": executed,
            "duplicate_executions": max(0, executed - len(seeds)),
            "errors": errors[:5],
            "all_identical": all_identical,
        }
    finally:
        server.drain(timeout=30.0)
        shutil.rmtree(root, ignore_errors=True)


def _print_service(results):
    print("service: {} clients x {} requests ({} workers)".format(
        results["clients"], results["requests_per_client"],
        results["workers"],
    ))
    print("  cold jobs   {:>8.3f}s  ({} jobs) identical={}".format(
        results["cold"]["wall_seconds"], results["cold"]["jobs"],
        "yes" if results["cold"]["identical"] else "NO",
    ))
    print(
        "  submit      {:>8.1f}/s  p50={}ms p95={}ms "
        "(duplicates joined, {} extra executions)".format(
            results["submissions"]["per_second"],
            results["submissions"]["p50_ms"],
            results["submissions"]["p95_ms"],
            results["duplicate_executions"],
        )
    )
    print("  warm fetch  {:>8.1f}/s  p50={}ms p95={}ms".format(
        results["warm_results"]["per_second"],
        results["warm_results"]["p50_ms"],
        results["warm_results"]["p95_ms"],
    ))
    for error in results["errors"]:
        print("  error: {}".format(error))


def _print_campaign(results):
    print("campaign: {} tasks x {} cycles (jobs={}, {} cpus)".format(
        results["tasks"], results["cycles_per_task"], results["jobs"],
        results["cpus"],
    ))
    print("  serial      {:>8.3f}s".format(
        results["serial"]["wall_seconds"]))
    print("  pooled      {:>8.3f}s  {:>5.2f}x  identical={}".format(
        results["pooled"]["wall_seconds"],
        results["pooled"]["speedup_vs_serial"],
        "yes" if results["pooled"]["identical"] else "NO",
    ))
    print("  cache cold  {:>8.3f}s  ({} stores)".format(
        results["cache_cold"]["wall_seconds"],
        results["cache_cold"]["stats"]["stores"],
    ))
    print("  cache warm  {:>8.3f}s  ({:.1%} of cold, {} hits) identical={}".format(
        results["cache_warm"]["wall_seconds"],
        results["cache_warm"]["fraction_of_cold"],
        results["cache_warm"]["stats"]["hits"],
        "yes" if results["cache_warm"]["identical"] else "NO",
    ))
    chaos = results.get("chaos")
    if chaos:
        print(
            "  chaos       {:>8.3f}s  ({} kills at rate {:.2f}, "
            "{} workers) identical={}".format(
                chaos["wall_seconds"],
                chaos["workers_killed"],
                chaos["rate"],
                chaos["workers_spawned"],
                "yes" if chaos["identical"] else "NO",
            )
        )


def _print_table(results):
    header = "{:<18} {:>10} {:>12} {:>12} {:>8} {:>8} {:>6}".format(
        "scenario", "cycles", "dense c/s", "fast c/s", "skip%", "speedup",
        "match",
    )
    print(header)
    print("-" * len(header))
    for entry in results["scenarios"]:
        print(
            "{:<18} {:>10} {:>12} {:>12} {:>7.1f}% {:>7.2f}x {:>6}".format(
                entry["name"],
                entry["cycles_per_system"] * entry["systems"],
                entry["dense"]["cycles_per_second"],
                entry["fast"]["cycles_per_second"],
                entry["fast"]["skipped_fraction"] * 100.0,
                entry["speedup"],
                "yes" if entry["identical"] else "NO",
            )
        )


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Benchmark the fast-path kernel against the dense "
        "reference and verify bit-identical results.",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shortened cycle counts for CI smoke runs",
    )
    parser.add_argument(
        "--output",
        default=DEFAULT_OUTPUT,
        help="where to write the JSON report (default: %(default)s)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timed repeats per mode; best wall time is kept "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--campaign",
        action="store_true",
        help="benchmark the campaign engine (serial vs pooled vs "
        "warm-cache) instead of the kernel",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=4,
        help="worker pool size for --campaign / --service "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--campaign-output",
        default=DEFAULT_CAMPAIGN_OUTPUT,
        help="where --campaign writes its JSON report "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--service",
        action="store_true",
        help="benchmark the DSE service (submission throughput and "
        "warm-cache hit latency under concurrent clients) instead of "
        "the kernel",
    )
    parser.add_argument(
        "--clients",
        type=int,
        default=4,
        help="concurrent clients for --service (default: %(default)s)",
    )
    parser.add_argument(
        "--service-output",
        default=DEFAULT_SERVICE_OUTPUT,
        help="where --service writes its JSON report "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--batch",
        action="store_true",
        help="benchmark the vectorized batch engine (repro.vector) "
        "against per-lane dense scalar runs on the saturated Table 1 "
        "sweep; requires numpy (pip install .[vector])",
    )
    parser.add_argument(
        "--batch-output",
        default=DEFAULT_BATCH_OUTPUT,
        help="where --batch writes its JSON report (default: %(default)s)",
    )
    parser.add_argument(
        "--block-size",
        type=int,
        default=32,
        metavar="N",
        help="with --batch: LFSR samples pre-drawn per refill block "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--analytic",
        action="store_true",
        help="benchmark the analytic surrogate (repro.analytic): "
        "cross-validate it against the simulator at the calibration "
        "settings and time it against the vector engine; any error-"
        "bound violation fails the run",
    )
    parser.add_argument(
        "--analytic-output",
        default=DEFAULT_ANALYTIC_OUTPUT,
        help="where --analytic writes its JSON report "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--lint",
        action="store_true",
        help="benchmark the incremental linter (repro.lint) on the "
        "repo tree: cold vs fully-warm vs parallel runs must produce "
        "byte-identical findings and the warm run must clear the "
        "{:.0f}x speedup target".format(_LINT_WARM_SPEEDUP_TARGET),
    )
    parser.add_argument(
        "--lint-output",
        default=DEFAULT_LINT_OUTPUT,
        help="where --lint writes its JSON report "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--chaos-rate",
        type=float,
        default=0.0,
        metavar="RATE",
        help="with --campaign: also time the campaign under seeded "
        "worker kills at this per-dispatch rate and verify the rows "
        "stay identical to serial (default: off)",
    )
    args = parser.parse_args(argv)
    if not 0.0 <= args.chaos_rate <= 1.0:
        parser.error("--chaos-rate must be within [0, 1]")
    if args.chaos_rate and not args.campaign:
        parser.error("--chaos-rate requires --campaign")
    if sum((args.service, args.campaign, args.batch, args.analytic,
            args.lint)) > 1:
        parser.error("--service, --campaign, --batch, --analytic and "
                     "--lint are mutually exclusive")
    if args.clients < 1:
        parser.error("--clients must be >= 1")
    if args.block_size < 1:
        parser.error("--block-size must be >= 1")

    if args.lint:
        results = run_lint_benchmark(
            quick=args.quick, repeats=args.repeats, jobs=args.jobs
        )
        _print_lint(results)
        output = args.lint_output
        failure = ("FAIL: warm or parallel lint diverged from the cold "
                   "run, or the warm run missed the {:.0f}x speedup "
                   "target".format(_LINT_WARM_SPEEDUP_TARGET))
    elif args.analytic:
        results = run_analytic_benchmark(
            quick=args.quick, repeats=args.repeats, jobs=args.jobs
        )
        _print_analytic(results)
        output = args.analytic_output
        failure = ("FAIL: surrogate exceeded its checked-in error "
                   "bounds or missed the {}x speedup target".format(
                       int(_ANALYTIC_SPEEDUP_TARGET)))
    elif args.batch:
        results = run_batch_benchmark(
            quick=args.quick, repeats=args.repeats,
            block_size=args.block_size,
        )
        _print_batch(results)
        output = args.batch_output
        failure = ("FAIL: vectorized batch engine diverged from the "
                   "dense scalar reference")
    elif args.service:
        results = run_service_benchmark(
            quick=args.quick, workers=args.jobs, clients=args.clients
        )
        _print_service(results)
        output = args.service_output
        failure = ("FAIL: service served non-identical reports or "
                   "re-executed deduplicated jobs")
    elif args.campaign:
        results = run_campaign_benchmark(
            quick=args.quick, jobs=args.jobs, chaos_rate=args.chaos_rate
        )
        _print_campaign(results)
        output = args.campaign_output
        failure = "FAIL: pooled or cached campaign diverged from serial"
    else:
        results = run_benchmarks(quick=args.quick, repeats=args.repeats)
        _print_table(results)
        output = args.output
        failure = "FAIL: fast path diverged from the dense reference"

    out_dir = os.path.dirname(output)
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
    with open(output, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=False)
        handle.write("\n")
    print("\nwrote {}".format(output))

    if not results["all_identical"]:
        print(failure, file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
