"""Statistical sanity pins for the stochastic generators' rates.

The analytic surrogate (repro.analytic) derives everything from the
generators' *parameters* — Poisson arrival rates, on-off duty cycles,
geometric think times — so these tests pin the parameters to what the
generators empirically do.  If a generator's semantics drift, this is
the file that should fail first, before the surrogate's error bounds
do.
"""

import pytest

from repro.bus.master import MasterInterface
from repro.sim.kernel import Simulator
from repro.traffic.generator import (
    ClosedLoopGenerator,
    OnOffGenerator,
    PoissonGenerator,
)
from repro.traffic.message import FixedWords


def drive(generator, cycles):
    sim = Simulator()
    sim.add(generator)
    sim.run(cycles)
    return generator


@pytest.mark.parametrize("rate", [0.02, 0.1, 0.5])
def test_poisson_empirical_rate_matches_parameter(rate):
    cycles = 60_000
    counts = []
    for seed in (1, 2, 3):
        interface = MasterInterface("m", 0, max_queue=10 ** 9)
        gen = PoissonGenerator(
            "g", interface, FixedWords(1), rate=rate, seed=seed
        )
        drive(gen, cycles)
        counts.append(gen.messages_emitted)
    mean = sum(counts) / len(counts)
    expected = rate * cycles
    # Bernoulli(rate) per cycle: sigma = sqrt(n p (1-p)) per run, and
    # averaging three seeds shrinks it by sqrt(3); gate at 4 sigma.
    sigma = (cycles * rate * (1.0 - rate) / len(counts)) ** 0.5
    assert abs(mean - expected) <= 4.0 * sigma


@pytest.mark.parametrize(
    "on_rate,mean_on,mean_off",
    [(1.0, 10, 90), (0.5, 50, 150), (0.25, 200, 200)],
)
def test_onoff_empirical_rate_matches_duty_cycle(
    on_rate, mean_on, mean_off
):
    cycles = 80_000
    rates = []
    for seed in (1, 2, 3):
        interface = MasterInterface("m", 0, max_queue=10 ** 9)
        gen = OnOffGenerator(
            "g", interface, FixedWords(1), on_rate=on_rate,
            mean_on=mean_on, mean_off=mean_off, seed=seed,
        )
        drive(gen, cycles)
        rates.append(gen.words_emitted / cycles)
    mean = sum(rates) / len(rates)
    expected = on_rate * mean_on / (mean_on + mean_off)
    assert expected == pytest.approx(gen.offered_load())
    # Dwell times are geometric, so the effective sample size is the
    # number of on/off epochs, not cycles; 15% relative is ~4 sigma at
    # these settings.
    assert mean == pytest.approx(expected, rel=0.15)


def test_closed_loop_think_times_are_geometric_with_pinned_mean():
    # The surrogate's priority model leans on think times being
    # geometric (memoryless): the chance a master re-pends within a
    # window of w cycles is 1 - (1 - 1/Z)^w.  Pin the mean and the
    # memoryless signature of the empirical gaps.
    mean_think = 8
    interface = MasterInterface("m", 0)
    gen = ClosedLoopGenerator(
        "g", interface, FixedWords(1), mean_think=mean_think, seed=11
    )
    sim = Simulator()
    sim.add(gen)
    issues = []
    for cycle in range(60_000):
        sim.run(1)
        if interface.queue_depth > 0:
            issues.append(interface.head().arrival_cycle)
            interface.pop()  # instant zero-latency service
    gaps = [b - a for a, b in zip(issues, issues[1:])]
    assert len(gaps) > 3_000
    mean_gap = sum(gaps) / len(gaps)
    # Completion at cycle t, think ~ Geometric(1/Z) >= 1, re-issue on
    # the tick after the countdown: gap = think + 1.
    assert mean_gap == pytest.approx(mean_think + 1.0, rel=0.05)
    # Memorylessness: P(gap > 2Z | gap > Z) ~ P(gap > Z).
    over = sum(1 for g in gaps if g - 1 > mean_think) / len(gaps)
    tail = [g for g in gaps if g - 1 > mean_think]
    over_tail = sum(1 for g in tail if g - 1 > 2 * mean_think) / len(tail)
    assert over_tail == pytest.approx(over, abs=0.05)
