"""VectorEngine equivalence: every lane bit-identical to the scalar
dense simulator, enforced through the engine's own strict cross-check
(which rebuilds a scalar twin, replays the schedule, and raises
:class:`VectorDivergenceError` on any metric or arbiter-state drift).
"""

import pytest

from repro.arbiters.registry import make_arbiter
from repro.bus.bus import SharedBus
from repro.bus.master import MasterInterface
from repro.bus.slave import Slave
from repro.bus.topology import BusSystem, build_single_bus_system
from repro.traffic.generator import PoissonGenerator, SaturatingGenerator
from repro.traffic.message import FixedWords, UniformWords
from repro.vector.backend import make_testbed_builder
from repro.vector.engine import VectorEngine
from repro.vector.lanes import (
    UnsupportedConfigError,
    VectorDivergenceError,
    plan_lane,
)

pytest.importorskip("numpy")

ARBITERS = (
    ("lottery-static", {}),
    ("lottery-static", {"draw_policy": "rejection"}),
    ("lottery-dynamic", {}),
    ("lottery-compensated", {}),
    ("static-priority", {}),
)
WEIGHTS = [12, 2, 6, 1]


def _engine(plans, cycles, warmup=0):
    engine = VectorEngine(plans)
    if warmup:
        engine.run(warmup)
        engine.reset_metrics()
    engine.run(cycles)
    return engine


def _check_all(plans, cycles, warmup=0):
    engine = _engine(plans, cycles, warmup=warmup)
    for lane in range(len(plans)):
        engine.cross_check(lane)
    return engine


@pytest.mark.parametrize("arbiter_name,kwargs", ARBITERS)
def test_closed_loop_traffic_matches_scalar(arbiter_name, kwargs):
    plans = [
        plan_lane(
            make_testbed_builder(
                arbiter_name, traffic, WEIGHTS, seed=seed,
                arbiter_kwargs=kwargs,
            ),
            label="{}/{}".format(traffic, seed),
        )
        for traffic in ("T1", "T8", "T9")
        for seed in (1, 6)
    ]
    _check_all(plans, cycles=1500, warmup=300)


def _saturated_builder(arbiter_name, kwargs, seed, uniform=False,
                       arbitration_cycles=0):
    def factory(index, master):
        words = UniformWords(2, 9) if uniform else FixedWords(8)
        return SaturatingGenerator(
            "gen{}".format(index), master, words, seed=seed + index
        )

    def build():
        arbiter = make_arbiter(arbiter_name, 4, WEIGHTS, **kwargs)
        return build_single_bus_system(
            4, arbiter, generator_factory=factory,
            arbitration_cycles=arbitration_cycles,
        )

    return build


@pytest.mark.parametrize("arbiter_name,kwargs", ARBITERS)
@pytest.mark.parametrize("uniform", [False, True])
def test_saturated_traffic_matches_scalar(arbiter_name, kwargs, uniform):
    plans = [
        plan_lane(_saturated_builder(arbiter_name, kwargs, seed,
                                     uniform=uniform))
        for seed in (7, 40)
    ]
    _check_all(plans, cycles=1800)


def test_arbitration_penalty_and_wait_states():
    def builder(arbiter_name, seed):
        def build():
            system = BusSystem()
            masters = [MasterInterface("m{}".format(i), i) for i in range(4)]
            slaves = [
                Slave("s0", 0, setup_wait_states=2, per_word_wait_states=1),
                Slave("s1", 1),
            ]
            bus = SharedBus(
                "bus", masters, make_arbiter(arbiter_name, 4, WEIGHTS),
                slaves=slaves, max_burst=8, arbitration_cycles=1,
            )
            for i, master in enumerate(masters):
                system.add_generator(
                    SaturatingGenerator(
                        "gen{}".format(i), master, FixedWords(5),
                        seed=seed + i, slave=i % 2,
                    )
                )
            system.add_bus(bus)
            return system, bus

        return build

    plans = [
        plan_lane(builder(name, seed))
        for name, _ in ARBITERS
        for seed in (3, 11)
    ]
    _check_all(plans, cycles=1500, warmup=200)


def test_mixed_architectures_share_one_engine():
    plans = [
        plan_lane(
            make_testbed_builder(name, "T8", WEIGHTS, seed=2,
                                 arbiter_kwargs=kwargs)
        )
        for name, kwargs in ARBITERS
    ]
    _check_all(plans, cycles=2000, warmup=500)


def test_metric_tamper_is_caught():
    plans = [plan_lane(make_testbed_builder("lottery-static", "T8", WEIGHTS))]
    engine = _engine(plans, cycles=800)
    engine.cross_check(0)
    engine.m_words[0, 1] += 1
    with pytest.raises(VectorDivergenceError):
        engine.cross_check(0)


def test_arbiter_state_tamper_is_caught():
    plans = [
        plan_lane(make_testbed_builder("lottery-compensated", "T8", WEIGHTS))
    ]
    engine = _engine(plans, cycles=800)
    engine.cross_check(0)
    engine.lott_held[0] += 1
    with pytest.raises(VectorDivergenceError):
        engine.cross_check(0)


def test_unsupported_arbiter_is_rejected():
    with pytest.raises(UnsupportedConfigError):
        plan_lane(make_testbed_builder("round-robin", "T8", WEIGHTS))


def test_unsupported_generator_is_rejected():
    def build():
        arbiter = make_arbiter("lottery-static", 4, WEIGHTS)
        return build_single_bus_system(
            4,
            arbiter,
            generator_factory=lambda i, m: PoissonGenerator(
                "gen{}".format(i), m, FixedWords(4), 0.01, seed=i
            ),
        )

    with pytest.raises(UnsupportedConfigError):
        plan_lane(build)


def test_already_run_system_is_rejected():
    def build():
        arbiter = make_arbiter("lottery-static", 4, WEIGHTS)
        system, bus = build_single_bus_system(
            4, arbiter, generator_factory=lambda i, m: SaturatingGenerator(
                "gen{}".format(i), m, FixedWords(4), seed=i
            ),
        )
        system.run(10)
        return system, bus

    with pytest.raises(UnsupportedConfigError):
        plan_lane(build)


def test_lanes_must_share_master_count():
    def build_two():
        arbiter = make_arbiter("lottery-static", 2, [3, 1])
        return build_single_bus_system(2, arbiter)

    plans = [
        plan_lane(make_testbed_builder("lottery-static", "T8", WEIGHTS)),
        plan_lane(build_two),
    ]
    with pytest.raises(ValueError):
        VectorEngine(plans)
