# lb: module=repro.experiments.fixture_good
"""LB105 true negatives: seeds accepted, defaulted to ints, forwarded."""


def run_properly_seeded(cycles=1000, seed=1):
    return simulate(cycles, seed=seed)


def run_with_base_seed(replicates=8, base_seed=1):
    return [simulate(1000, seed=base_seed + i) for i in range(replicates)]


def run_analytic_model(sizes=(2, 4, 8)):  # lb: noqa[LB105] — closed-form, no RNG
    return [size * size for size in sizes]


def helper_function(cycles):
    # Not a run_* entry point; out of scope.
    return cycles


def simulate(cycles, seed):
    return cycles * seed
