"""Tests for the nine traffic classes."""

import pytest

from repro.arbiters.round_robin import RoundRobinArbiter
from repro.bus.topology import build_single_bus_system
from repro.traffic.classes import (
    TRAFFIC_CLASSES,
    get_traffic_class,
    latency_classes,
)


def run_class(name, cycles=30_000, seed=3):
    cls = get_traffic_class(name)
    system, bus = build_single_bus_system(
        4, RoundRobinArbiter(4), cls.generator_factory(seed=seed)
    )
    system.run(cycles)
    return bus.metrics


def test_all_nine_classes_exist():
    assert sorted(TRAFFIC_CLASSES) == [
        "T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8", "T9",
    ]


def test_every_class_builds_and_generates():
    for name in TRAFFIC_CLASSES:
        metrics = run_class(name, cycles=5000)
        assert metrics.total_words > 0, name


def test_saturating_classes_keep_bus_busy():
    for name, cls in TRAFFIC_CLASSES.items():
        if cls.saturating:
            metrics = run_class(name)
            assert metrics.utilization() > 0.9, name


def test_sparse_classes_leave_bus_idle():
    for name, cls in TRAFFIC_CLASSES.items():
        if not cls.saturating:
            metrics = run_class(name)
            assert metrics.utilization() < 0.6, name


def test_t5_demand_rises_with_master_index():
    metrics = run_class("T5", cycles=60_000)
    words = [metrics.masters[i].words for i in range(4)]
    assert words[0] < words[1] < words[2] < words[3]


def test_unknown_class_rejected():
    with pytest.raises(ValueError):
        get_traffic_class("T10")


def test_latency_classes_are_t1_to_t6():
    assert [cls.name for cls in latency_classes()] == [
        "T1", "T2", "T3", "T4", "T5", "T6",
    ]


def test_generator_factory_uses_distinct_seeds():
    cls = get_traffic_class("T1")
    factory = cls.generator_factory(seed=10)
    from repro.bus.master import MasterInterface

    a = factory(0, MasterInterface("a", 0))
    b = factory(1, MasterInterface("b", 1))
    assert a._rng.seed != b._rng.seed
