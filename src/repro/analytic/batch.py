"""Vectorized grid scoring: thousands of predictions per millisecond.

:func:`score_grid` is the batch counterpart of
:func:`repro.analytic.predict`: it takes a list of configuration
points, groups them by (arbiter, traffic class, arbiter kwargs), and
runs the *same* fixed-point model as the scalar solver with every
group's weight vectors stacked into numpy arrays — one solver
iteration advances every configuration in the group at once.  This is
the path that makes million-config screening and the ``>= 1000x``
per-config speedup over the vector simulator real: the scalar
``predict`` costs a few hundred microseconds of interpreter time per
configuration, the batched path a few microseconds.

numpy is the same optional extra the vector simulator uses; without it
``score_grid`` degrades to looping ``predict`` (identical numbers,
scalar speed).  The agreement between the two paths is pinned by
``tests/test_analytic_model.py``.
"""

from functools import lru_cache

from repro.analytic.families import (
    _CHAIN_STEPS,
    _V_SHRINK,
    priority_ranks,
)
from repro.analytic.model import (
    PERCENTILES,
    AnalyticResult,
    check_config,
    predict,
)
from repro.core.scaling import scale_to_power_of_two
from repro.vector._compat import have_numpy, get_numpy

_EPS = 1e-9
_WAIT_CAP = 1e12
_ALPHA_LO = 1e-4
_ALPHA_HI = 1e4
_DYNAMIC_TICKET_CAP = 255


@lru_cache(maxsize=65536)
def _scaled_tickets(weights):
    """Power-of-two ticket scaling, memoized per weight vector — DSE
    grids revisit the same vectors across families and classes."""
    return tuple(scale_to_power_of_two(list(weights)))


@lru_cache(maxsize=65536)
def _cached_ranks(weights):
    return tuple(priority_ranks(list(weights)))


def _family_rows(arbiter_name, weight_rows, kwargs):
    """Per-config contention vectors for one group, as lists of
    tuples (stacked into the group's parameter matrix)."""
    if arbiter_name == "lottery-static":
        if not kwargs.get("scale", True):
            return [tuple(w) for w in weight_rows]
        return [_scaled_tickets(tuple(w)) for w in weight_rows]
    if arbiter_name == "lottery-dynamic":
        return [
            tuple(min(_DYNAMIC_TICKET_CAP, max(1, t)) for t in w)
            for w in weight_rows
        ]
    if arbiter_name == "lottery-compensated":
        return [tuple(w) for w in weight_rows]
    if arbiter_name == "static-priority":
        return [_cached_ranks(tuple(w)) for w in weight_rows]
    if arbiter_name == "round-robin":
        return [(1,) * len(w) for w in weight_rows]
    if arbiter_name == "tdma":
        reclaim = kwargs.get("reclaim", "scan")
        if reclaim not in ("scan", "single", "none"):
            raise ValueError(
                "reclaim must be one of ('scan', 'single', 'none'), "
                "got {!r}".format(reclaim)
            )
        return [tuple(w) for w in weight_rows]
    raise KeyError(arbiter_name)


def _kind(arbiter_name):
    if arbiter_name in (
        "lottery-static", "lottery-dynamic", "lottery-compensated"
    ):
        return "lottery"
    if arbiter_name == "static-priority":
        return "priority"
    if arbiter_name == "tdma":
        return "tdma"
    return "rr"


def _residuals(np, rho, s):
    """(G, N) expected in-flight burst remainder seen by each master."""
    per = rho * ((s + 1.0) / 2.0)
    return per.sum(axis=1, keepdims=True) - per


class _LotterySubsets:
    """Hoisted per-group constants for the subset-averaged lottery
    wait: the full 2^n contender-subset enumeration, with each
    master's ticket/burst subset sums precomputed (tickets never
    change across solver iterations — only presence does)."""

    def __init__(self, np, tickets, s):
        grid, n = tickets.shape
        masks = np.arange(1 << n)
        bits = ((masks[:, None] >> np.arange(n)) & 1).astype(float)
        tickets_in = tickets @ bits.T          # (G, 2^n)
        burst_in = (tickets * s) @ bits.T
        # For master i: the subsets excluding i, in the order produced
        # by marginalizing i out of the outer-product tensor (both
        # sort by descending-master bit significance).
        self.cols = [
            [m for m in range(1 << n) if not (m >> i) & 1]
            for i in range(n)
        ]
        self.denom = [
            tickets[:, i:i + 1] + tickets_in[:, self.cols[i]]
            for i in range(n)
        ]
        self.burst = [burst_in[:, self.cols[i]] for i in range(n)]
        self.n = n

    def probabilities(self, np, q):
        """(G, 2^n) presence probability of every contender subset."""
        grid = q.shape[0]
        marginals = [
            np.stack((1.0 - q[:, j], q[:, j]), axis=1)
            for j in range(self.n)
        ]
        if self.n == 4:
            return np.einsum(
                "ga,gb,gc,gd->gabcd",
                marginals[3], marginals[2], marginals[1], marginals[0],
            )
        prob = marginals[self.n - 1]
        for j in range(self.n - 2, -1, -1):
            prob = prob[..., None] * marginals[j].reshape(
                (grid,) + (1,) * (prob.ndim - 1) + (2,)
            )
        return prob

    def marginalized(self, np, prob, i):
        """Subset probabilities with master ``i`` summed out, aligned
        with ``cols[i]``."""
        grid = prob.shape[0]
        return prob.sum(axis=self.n - i).reshape(grid, -1)


def _lottery_wait(np, tickets, s, ngr, q, resid, mis, subsets):
    grid, n = tickets.shape
    delays = np.empty((grid, n))
    prob = subsets.probabilities(np, q)
    for i in range(n):
        prob_i = subsets.marginalized(np, prob, i)
        weighted = prob_i / subsets.denom[i]
        win = weighted.sum(axis=1) * tickets[:, i]
        cost = (weighted * subsets.burst[i]).sum(axis=1)
        per_grant = cost / np.maximum(win, _EPS)
        delays[:, i] = np.minimum(
            ngr[i] * per_grant + mis[i] * resid[:, i], _WAIT_CAP
        )
    return delays


def _rr_wait(np, s, ngr, q, resid, mis):
    total = q @ s
    per_round = total[:, None] - q * s
    return ngr * per_round + mis * resid


def _priority_wait(np, s, ngr, q, resid, mis, order, higher, arr,
                   d_self):
    """The scalar family's boundary-winner Markov chain, vectorized.

    ``order`` sorts each row by descending rank; ``higher`` is the
    (G, N, N) float mask ``rank_j > rank_i``; ``arr`` is the
    (N, N) geometric re-arrival probability ``P(think_h ends within
    s_w)``; ``d_self`` the mid-message self-presence — all constant
    per group.  See ``families._StaticPriorityFamily`` for the model.
    """
    grid, n = q.shape
    diag = np.arange(n)
    # Presence of contender h at the boundary ending w's burst: a
    # pending loser persists (w outranks h), an outranked-by-h winner
    # implies h was absent and must re-arrive during the burst.
    arrival = np.broadcast_to(arr[None], (grid, n, n))
    qh = q[:, None, :]
    persist = qh + (1.0 - qh) * arrival
    present = np.where(higher > 0.5, arrival, persist)
    present = np.broadcast_to(
        present[:, None], (grid, n, n, n)
    ).copy()
    present[:, :, diag, diag] = d_self
    for i in range(n):
        present[:, i, :, i] = 1.0     # the tagged master always pends
    elig = np.maximum(higher, np.eye(n)[None])    # winners: i/superiors
    present *= elig[:, :, None, :]
    # Round winner = highest-priority present contender: exclusive
    # running product of absences down the descending-rank order.
    order4 = np.broadcast_to(order[:, None, None, :], present.shape)
    sorted_p = np.take_along_axis(present, order4, axis=3)
    running = np.cumprod(1.0 - sorted_p, axis=3)
    exclusive = np.empty_like(running)
    exclusive[..., 0] = 1.0
    exclusive[..., 1:] = running[..., :-1]
    trans = np.empty_like(present)
    np.put_along_axis(trans, order4, sorted_p * exclusive, axis=3)
    # Stationary winner mix (lazy steps: the raw chain can be
    # periodic under pure two-master alternation).
    pi = elig / elig.sum(axis=2, keepdims=True)
    for _ in range(_CHAIN_STEPS):
        pi = 0.5 * (pi + np.einsum("giw,giwv->giv", pi, trans))
    # First-step analysis: V = c + Q V over the superior block; the
    # shrink keeps the system nonsingular under total starvation.
    superior_block = trans * higher[:, :, None, :]
    system = np.eye(n)[None, None] - _V_SHRINK * superior_block
    cost = superior_block @ s
    losses = np.minimum(
        np.linalg.solve(system, cost[..., None])[..., 0], _WAIT_CAP
    )
    # A fresh arrival lands mid-round, length-biased over superior
    # rounds; mid-message re-requests start from i's own boundary.
    mass = pi * higher * s
    weight = mass.sum(axis=2)
    entry = np.where(
        weight > _EPS,
        (mass * losses).sum(axis=2) / np.maximum(weight, _EPS),
        0.0,
    )
    self_loss = losses[:, diag, diag]
    return np.minimum(
        entry + (ngr - 1.0) * self_loss + mis * resid, _WAIT_CAP
    )


def _tdma_wait(np, slots, wbar, a, reclaim, mis):
    grid, n = slots.shape
    wheel = slots.sum(axis=1, keepdims=True)
    pool = (slots * (1.0 - a)).sum(axis=1, keepdims=True)
    pending = a.sum(axis=1, keepdims=True)
    if reclaim == "scan":
        efficiency = 1.0
    elif reclaim == "single":
        efficiency = pending / float(n)
    else:  # "none"
        efficiency = 0.0
    extra = efficiency * pool * a / np.maximum(pending, _EPS)
    mu = np.minimum(1.0, (slots + extra) / wheel)
    stretch = wbar * (1.0 / np.maximum(mu, _EPS) - 1.0)
    gap = wheel - slots
    phase = mis * gap * gap / (2.0 * wheel)
    return np.minimum(stretch + phase, _WAIT_CAP)


def _idle_balance(np, wait, wbar, think):
    period = think + wait + wbar
    idle = 1.0 - (wbar / period).sum(axis=1)
    product = np.prod(think / period, axis=1)
    return idle - product


def _solve_closed_batch(np, profiles, kind, params, reclaim,
                        iterations=64, damping=0.0, compact_at=10):
    """The scalar ``solve_closed`` with a leading grid dimension.

    After ``compact_at`` iterations, rows that have already converged
    are frozen and the loop continues on the straggler subset only —
    extreme weight ratios need 2-3x the typical iteration count, and
    without compaction they would set the pace for the whole grid.
    """
    grid = params.shape[0]
    n = len(profiles)
    wbar = np.array([p.mean_words for p in profiles])
    think = np.array([p.think for p in profiles])
    s = np.array([p.words_per_grant for p in profiles])
    ngr = np.array([p.mean_grants for p in profiles])
    mis = np.minimum(1.0, think)
    tol = 1e-6

    def make_family(rows):
        if kind == "lottery":
            return _LotterySubsets(np, rows, s)
        if kind == "priority":
            # Geometric re-arrival during a burst of s_w cycles, and
            # the mid-message self-presence at a master's own boundary
            # (see families._StaticPriorityFamily).
            arr = np.where(
                think[None, :] <= 1.0,
                1.0,
                1.0
                - (1.0 - 1.0 / np.maximum(think, 1.0)[None, :])
                ** s[:, None],
            )
            d_self = np.where(think == 0.0, 1.0, 1.0 - 1.0 / ngr)
            return (
                np.argsort(-rows, axis=1),
                (rows[:, None, :] > rows[:, :, None]).astype(float),
                arr,
                d_self,
            )
        return None

    def targets(rows, aux, wait, first):
        period = think + wait + wbar
        rho = wbar / period
        a = 1.0 - think / period
        if first:
            # Warm start at the saturation solution (everyone always
            # pending) — exact for the saturated classes, a few
            # iterations away elsewhere.
            q = np.ones_like(wait)
        else:
            q = np.where(
                think == 0.0, 1.0,
                wait / np.maximum(think + wait, _EPS),
            )
        resid = _residuals(np, rho, s)
        if kind == "lottery":
            return _lottery_wait(np, rows, s, ngr, q, resid, mis, aux)
        if kind == "priority":
            return _priority_wait(
                np, s, ngr, q, resid, mis,
                aux[0], aux[1], aux[2], aux[3],
            )
        if kind == "tdma":
            return _tdma_wait(np, rows, wbar, a, reclaim, mis)
        return _rr_wait(np, s, ngr, q, resid, mis)

    aux = make_family(params)
    wait = targets(params, aux, np.zeros((grid, n)), True)
    active = None     # None => every row still iterating
    rows, sub_aux, sub_wait = params, aux, wait
    for iteration in range(iterations):
        target = targets(rows, sub_aux, sub_wait, False)
        new_wait = damping * sub_wait + (1.0 - damping) * target
        drifts = np.max(
            np.abs(new_wait - sub_wait) / (1.0 + sub_wait), axis=1
        )
        sub_wait = new_wait
        if active is None:
            wait = sub_wait
        else:
            wait[active] = sub_wait
        if float(drifts.max()) < tol:
            break
        if iteration >= compact_at:
            busy = drifts >= tol
            if busy.mean() < 0.7:
                keep = np.nonzero(busy)[0]
                active = keep if active is None else active[keep]
                rows = params[active]
                sub_aux = make_family(rows)
                sub_wait = wait[active]

    lo = np.full(grid, _ALPHA_LO)
    hi = np.full(grid, _ALPHA_HI)
    saturated = _idle_balance(np, _ALPHA_HI * wait, wbar, think) <= 0.0
    for _ in range(28):
        mid = (lo + hi) / 2.0
        above = _idle_balance(np, mid[:, None] * wait, wbar, think) > 0.0
        hi = np.where(above, mid, hi)
        lo = np.where(above, lo, mid)
    alpha = np.where(saturated, _ALPHA_HI, (lo + hi) / 2.0)

    wait = alpha[:, None] * wait
    period = think + wait + wbar
    rho = wbar / period
    total = rho.sum(axis=1)
    return {
        "model": "closed",
        "alpha": alpha,
        "throughputs": 1.0 / period,
        "shares": rho / np.maximum(total, _EPS)[:, None],
        "utilization": np.minimum(1.0, total),
        "delays": wait + wbar,
    }


def _solve_open_batch(np, profiles, kind, params, reclaim):
    """The scalar ``solve_open`` with a leading grid dimension (stable
    regime only; the caller falls back to scalar when overloaded)."""
    grid = params.shape[0]
    n = len(profiles)
    wbar = np.array([p.mean_words for p in profiles])
    offered = np.array([p.rate_words for p in profiles])
    peak = np.array([p.peak_rate for p in profiles])
    total_offered = float(offered.sum())

    if total_offered <= _EPS:
        shares = np.full((grid, n), 1.0 / n)
        served = np.zeros(n)
    else:
        shares = np.broadcast_to(
            offered / total_offered, (grid, n)
        ).copy()
        served = offered

    # Interference: everything a master waits behind, weighted 0.4 for
    # lower-priority competitors (they only block via burst residuals).
    load = np.broadcast_to(
        peak + (offered.sum() - offered), (grid, n)
    ).copy()
    if kind == "priority":
        lower_mask = params[:, None, :] < params[:, :, None]
        discount = (
            (offered[None, None, :] * lower_mask).sum(axis=2) * 0.6
        )
        load = load - discount
    load = np.minimum(load, 0.98)
    queue_wait = (
        load * np.maximum(wbar - 1.0, 0.0) / (2.0 * (1.0 - load))
    )
    if kind == "tdma":
        wheel = params.sum(axis=1, keepdims=True)
        gap = wheel - params
        phase = gap * gap / (2.0 * wheel)
        others = np.broadcast_to(
            offered.sum() - offered, (grid, n)
        )
        if reclaim == "scan":
            phase = phase * np.minimum(1.0, others)
        elif reclaim == "single":
            phase = phase * (0.5 + 0.5 * np.minimum(1.0, others))
        queue_wait = queue_wait + phase
    delays = queue_wait + wbar
    return {
        "model": "open",
        "alpha": np.ones(grid),
        "throughputs": np.broadcast_to(served / wbar, (grid, n)),
        "shares": shares,
        "utilization": np.full(grid, min(1.0, total_offered)),
        "delays": delays,
    }


def _assemble(np, points, indices, state, profiles, horizon,
              percentiles):
    """Turn one group's solved arrays into AnalyticResult objects."""
    wbar = np.array([p.mean_words for p in profiles])
    latencies = state["delays"] / wbar
    if horizon is not None:
        expected = state["throughputs"] * horizon
        latencies = np.where(expected < 1.0, 0.0, latencies)
    pct = []
    if percentiles:
        waits = np.maximum(0.0, state["delays"] - wbar)
        for quantile in PERCENTILES:
            factor = -np.log(1.0 - quantile)
            pct.append((
                "p{:02.0f}".format(quantile * 100),
                ((wbar + factor * waits) / wbar).tolist(),
            ))
    model = state["model"]
    count = len(indices)
    masters = len(profiles)
    # Bulk-convert once per group: per-element float() calls dominate
    # assembly time otherwise.
    alpha = np.broadcast_to(state["alpha"], (count,)).tolist()
    shares = np.broadcast_to(
        state["shares"], (count, masters)
    ).tolist()
    util = np.broadcast_to(state["utilization"], (count,)).tolist()
    latencies = np.broadcast_to(
        latencies, (count, masters)
    ).tolist()
    results = []
    for row, index in enumerate(indices):
        point = points[index]
        results.append((index, AnalyticResult(
            arbiter=point["arbiter_name"],
            traffic=point["traffic_class_name"],
            weights=point["weights"],
            utilization=util[row],
            shares=tuple(shares[row]),
            latencies_per_word=tuple(latencies[row]),
            percentiles=(
                {key: tuple(values[row]) for key, values in pct}
                if percentiles else None
            ),
            meta={
                "model": model,
                "alpha": alpha[row],
                "backend": "batch",
            },
        )))
    return results


def score_grid(points, max_burst=16, horizon=None, percentiles=False):
    """Score many configurations with the analytic surrogate at once.

    :param points: a sequence of dicts with the vector backend's point
        shape — ``arbiter_name``, ``traffic_class_name``, ``weights``
        and optional ``arbiter_kwargs``.
    :param max_burst: the bus's maximum words per grant.
    :param horizon: optional simulated-cycle horizon (see
        :func:`repro.analytic.predict`).
    :param percentiles: attach latency percentiles to every result
        (off by default — screening reads shares/latencies only, and
        percentile assembly is a measurable fraction of batch cost).
    :returns: a list of :class:`AnalyticResult`, one per point, in
        input order.  Numbers match the scalar ``predict`` to floating
        -point noise; without numpy this *is* a ``predict`` loop.
    """
    points = list(points)
    if not have_numpy():
        return [
            predict(
                point["arbiter_name"],
                point["traffic_class_name"],
                weights=point["weights"],
                max_burst=max_burst,
                horizon=horizon,
                **(point.get("arbiter_kwargs") or {})
            )
            for point in points
        ]
    np = get_numpy()

    groups = {}
    for index, point in enumerate(points):
        kwargs = point.get("arbiter_kwargs") or {}
        key = (
            point["arbiter_name"],
            point["traffic_class_name"],
            tuple(sorted(kwargs.items())),
        )
        groups.setdefault(key, []).append(index)

    results = [None] * len(points)
    for (arbiter_name, traffic_name, _), indices in groups.items():
        kwargs = dict(points[indices[0]].get("arbiter_kwargs") or {})
        weight_rows = [list(points[i]["weights"]) for i in indices]
        profiles = check_config(
            arbiter_name, traffic_name, weight_rows[0], kwargs,
            max_burst,
        )
        for row in weight_rows[1:]:
            if any(w < 1 for w in row) or len(row) != len(profiles):
                raise ValueError(
                    "weights must be positive and match {} masters, "
                    "got {!r}".format(len(profiles), row)
                )
        # Distinct weight vectors often share one contention vector —
        # priority ranks are permutations (at most n! distinct rows)
        # and round-robin ignores weights entirely — so solve each
        # unique row once and scatter the solution back.
        family_rows = _family_rows(arbiter_name, weight_rows, kwargs)
        unique = {}
        row_of = [
            unique.setdefault(row, len(unique)) for row in family_rows
        ]
        params = np.array(list(unique), dtype=float)
        kind = _kind(arbiter_name)
        reclaim = kwargs.get("reclaim", "scan")

        closed = all(p.closed for p in profiles)
        if not closed and any(p.closed for p in profiles):
            raise ValueError(
                "traffic class {!r} mixes closed- and open-loop "
                "masters; the surrogate models homogeneous classes "
                "only".format(traffic_name)
            )
        if closed:
            state = _solve_closed_batch(
                np, profiles, kind, params, reclaim
            )
        elif sum(p.rate_words for p in profiles) > 0.995:
            # Overloaded open grids need the scalar water-fill; rare
            # enough that looping predict is the simplest correct path.
            for i in indices:
                point = points[i]
                results[i] = predict(
                    point["arbiter_name"],
                    point["traffic_class_name"],
                    weights=point["weights"],
                    max_burst=max_burst,
                    horizon=horizon,
                    **(point.get("arbiter_kwargs") or {})
                )
            continue
        else:
            state = _solve_open_batch(np, profiles, kind, params, reclaim)
        if len(unique) < len(family_rows):
            scatter = np.array(row_of)
            state = {
                key: (
                    value[scatter] if hasattr(value, "shape") else value
                )
                for key, value in state.items()
            }
        for index, result in _assemble(
            np, points, indices, state, profiles, horizon, percentiles
        ):
            results[index] = result
    return results
