"""Helpers for assembling bus systems.

A :class:`BusSystem` bundles a simulator with the buses, masters, slaves
and generators it drives, registering everything in dataflow order
(generators, then application components, then buses) so a single
``run(cycles)`` advances the whole SoC.
"""

from repro.bus.bus import SharedBus
from repro.bus.master import MasterInterface
from repro.bus.slave import Slave
from repro.sim.kernel import Simulator


class BusSystem:
    """A simulator plus the communication fabric it drives."""

    def __init__(self):
        self.simulator = Simulator()
        self.buses = []
        self.generators = []
        self.monitors = []
        self._finalized = False

    def add_generator(self, generator):
        """Register a traffic source; ticked before any bus."""
        if self._finalized:
            raise RuntimeError("cannot add components after first run")
        self.generators.append(generator)
        return generator

    def add_bus(self, bus):
        """Register a bus; buses tick after all generators."""
        if self._finalized:
            raise RuntimeError("cannot add components after first run")
        self.buses.append(bus)
        return bus

    def add_monitor(self, monitor):
        """Register an observer (probe, checker); ticked after all buses."""
        if self._finalized:
            raise RuntimeError("cannot add components after first run")
        self.monitors.append(monitor)
        return monitor

    def _finalize(self):
        if self._finalized:
            return
        for generator in self.generators:
            self.simulator.add(generator)
        for bus in self.buses:
            self.simulator.add(bus)
        for monitor in self.monitors:
            self.simulator.add(monitor)
        self._finalized = True

    def run(self, cycles):
        """Advance the whole system by ``cycles`` bus cycles."""
        self._finalize()
        return self.simulator.run(cycles)

    def reset(self):
        self._finalize()
        self.simulator.reset()

    def save_checkpoint(self, path):
        """Checkpoint the whole system (see Simulator.save_checkpoint)."""
        self._finalize()
        return self.simulator.save_checkpoint(path)

    def load_checkpoint(self, path):
        """Restore the whole system; registration happens first, so this
        works on a freshly built (never-run) system too."""
        self._finalize()
        return self.simulator.load_checkpoint(path)

    @property
    def metrics(self):
        """Metrics of the first (usually only) bus."""
        return self.buses[0].metrics


def build_single_bus_system(
    num_masters,
    arbiter,
    generator_factory=None,
    max_burst=16,
    arbitration_cycles=0,
    num_slaves=1,
    name="bus",
):
    """Build the canonical single-shared-bus system (Figure 3 / Figure 11).

    :param num_masters: number of bus masters.
    :param arbiter: the arbiter instance to install.
    :param generator_factory: optional callable
        ``(master_id, master_interface) -> Component`` creating a traffic
        source per master; sources are ticked before the bus.
    :param max_burst: maximum burst transfer size in words.
    :param arbitration_cycles: non-pipelined arbitration penalty.
    :param num_slaves: number of slaves (default a single shared memory).
    :returns: (BusSystem, SharedBus).
    """
    if num_masters < 1:
        raise ValueError("need at least one master")
    system = BusSystem()
    masters = [
        MasterInterface("{}.m{}".format(name, i), i) for i in range(num_masters)
    ]
    slaves = [Slave("{}.s{}".format(name, j), j) for j in range(num_slaves)]
    bus = SharedBus(
        name,
        masters,
        arbiter,
        slaves=slaves,
        max_burst=max_burst,
        arbitration_cycles=arbitration_cycles,
    )
    if generator_factory is not None:
        for index, master in enumerate(masters):
            system.add_generator(generator_factory(index, master))
    system.add_bus(bus)
    return system, bus
