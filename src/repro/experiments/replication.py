"""Replicated experiment runs with confidence intervals.

The paper reports point estimates "over a long simulation trace"; this
harness adds the error bars: any test-bed configuration is replicated
across independent seeds and each metric is reported as mean ± 95% CI.

Aggregation is *streaming*: every replication produces a compact
:class:`~repro.metrics.stats.StreamingReplication` summary (a few
numbers per metric, independent of run length), and summaries are
merged in seed order.  With ``jobs`` > 1 the replications run on the
persistent worker pool and only the summaries cross the pipe — pipe
traffic and parent memory are O(metrics), not O(transactions) — and
because the merge order is fixed by the seed list, the result is
bit-identical whatever ``jobs`` is.
"""

from repro.experiments.system import run_testbed
from repro.metrics.report import format_table
from repro.metrics.stats import StreamingReplication
from repro.sim.rng import child_seed


class ReplicatedResult:
    def __init__(self, arbiter_name, traffic_class, weights, replication):
        self.arbiter_name = arbiter_name
        self.traffic_class = traffic_class
        self.weights = list(weights)
        self.replication = replication

    def interval(self, metric):
        return self.replication.interval(metric)

    def format_report(self):
        rows = []
        for metric, n, mu, halfwidth in self.replication.summary_rows():
            rows.append(
                [metric, n, "{:.4f}".format(mu), "±{:.4f}".format(halfwidth)]
            )
        return format_table(
            ["metric", "replications", "mean", "95% CI"],
            rows,
            title="{} on {} (weights {}), replicated".format(
                self.arbiter_name, self.traffic_class, self.weights
            ),
        )


def replication_seed(seed, seed_mode="derived"):
    """The generator seed one replication actually runs with.

    ``"derived"`` decorrelates the conventionally adjacent entries of a
    ``seeds=range(...)`` list through
    :func:`~repro.sim.rng.child_seed`; ``"shared"`` is the legacy shim
    using the listed value directly.
    """
    if seed_mode == "derived":
        return child_seed(seed, "replication")
    if seed_mode == "shared":
        return seed
    raise ValueError(
        "seed_mode must be 'derived' or 'shared', got {!r}".format(seed_mode)
    )


def _replication_chunk(
    arbiter_name, traffic_class, weights, seeds, cycles, warmup, seed_mode,
    arbiter_kwargs
):
    """Replicate a chunk of seeds; returns a compact summary state.

    The pool fan-out unit: runs entirely in a worker and ships back a
    ``StreamingReplication.state_dict()`` — O(metrics) numbers however
    many seeds or transactions the chunk covered.
    """
    replication = StreamingReplication()
    for seed in seeds:
        result = run_testbed(
            arbiter_name,
            traffic_class,
            list(weights),
            cycles=cycles,
            seed=replication_seed(seed, seed_mode),
            warmup=warmup,
            **arbiter_kwargs
        )
        _record_replication(replication, result)
    return replication.state_dict()


def _record_replication(replication, result):
    """Fold one replication's TestbedResult into the running summary."""
    replication.record("utilization", result.utilization)
    for master, share in enumerate(result.bandwidth_shares):
        replication.record("share{}".format(master), share)
    for master, latency in enumerate(result.latencies_per_word):
        replication.record("latency{}".format(master), latency)


def run_replicated_testbed(
    arbiter_name,
    traffic_class,
    weights,
    seeds=range(1, 9),
    cycles=50_000,
    warmup=2_000,
    seed_mode="shared",
    jobs=None,
    backend="scalar",
    **arbiter_kwargs
):
    """Replicate one test-bed point; returns a :class:`ReplicatedResult`.

    Collected metrics per replication: ``utilization``, per-master
    ``share{i}`` (bandwidth shares) and ``latency{i}`` (cycles/word).

    Every seed is summarized as its own chunk and chunks are merged in
    seed order, so the statistics are bit-identical for any ``jobs``
    (the default keeps the historical ``seed_mode="shared"`` seeds so
    existing checked-in numbers stay reproducible; pass
    ``seed_mode="derived"`` for decorrelated streams).

    ``backend="vector"`` runs every replication as one lane of the
    struct-of-arrays engine (:mod:`repro.vector`) — per-run summaries
    are bit-identical to the scalar path, so the merged statistics are
    too; ``"auto"`` picks the vector engine when numpy is available.
    """
    seeds = list(seeds)
    from repro.experiments.supervisor import pool_map

    if backend not in ("scalar", "vector", "auto"):
        raise ValueError(
            "backend must be 'scalar', 'vector' or 'auto', got {!r}".format(
                backend
            )
        )
    if backend != "scalar":
        from repro.vector import have_numpy

        if backend == "vector" or have_numpy():
            from repro.vector import run_testbed_batch

            batch = run_testbed_batch(
                [
                    dict(
                        arbiter_name=arbiter_name,
                        traffic_class_name=traffic_class,
                        weights=list(weights),
                        cycles=cycles,
                        seed=replication_seed(seed, seed_mode),
                        warmup=warmup,
                        arbiter_kwargs=arbiter_kwargs,
                    )
                    for seed in seeds
                ]
            )
            # Summarize each replication as its own chunk and merge in
            # seed order — the exact shape of the pooled scalar path, so
            # the statistics stay bit-identical whatever the backend.
            replication = StreamingReplication()
            for result in batch.results:
                chunk = StreamingReplication()
                _record_replication(chunk, result)
                replication.merge(chunk.state_dict())
            return ReplicatedResult(
                arbiter_name, traffic_class, weights, replication
            )

    states = pool_map(
        _replication_chunk,
        [
            (arbiter_name, traffic_class, tuple(weights), [seed], cycles,
             warmup, seed_mode, arbiter_kwargs)
            for seed in seeds
        ],
        jobs=jobs,
    )
    replication = StreamingReplication()
    for state in states:
        replication.merge(state)
    return ReplicatedResult(arbiter_name, traffic_class, weights, replication)
