"""Kernel performance benchmarks (``python -m repro.bench``).

Times the paper's workloads under the dense reference kernel and the
activity-driven fast path, verifies that both produce bit-identical
results, and writes the measurements to ``benchmarks/perf/BENCH_kernel.json``.

Scenarios:

* ``table1_lowutil`` — the four Table 1 architectures under light
  Poisson load (~1.5% offered utilisation).  The idle-heavy sweep the
  fast path exists for; target is a >= 5x cycles/sec speedup.
* ``table1_saturated`` — the same architectures with saturating
  generators.  There is nothing to skip, so this guards the fast
  path's overhead on busy systems (target: within 2% of dense).
* ``figure8_lottery`` — the Figure 8 ticket assignment (1:2:3:4) on a
  saturated lottery bus.
* ``atm_switch`` — the Table 1 output-queued ATM switch.  Bernoulli
  cell arrivals draw their RNG every cycle, so this runs dense-
  equivalent by design and measures pure kernel overhead.

Every scenario is run once per mode and fingerprinted: the metrics
summary and the full kernel ``state_dict`` are pickled and compared
byte-for-byte.  Any divergence fails the benchmark (exit status 1) —
speed without equivalence is a bug, not a result.
"""

import argparse
import json
import os
import pickle
import platform
import sys
import time

from repro.arbiters.registry import make_arbiter
from repro.atm.switch import OutputQueuedSwitch
from repro.bus.topology import build_single_bus_system
from repro.experiments.table1 import ARCHITECTURES, TABLE1_WEIGHTS, table1_workload
from repro.traffic.generator import PoissonGenerator, SaturatingGenerator
from repro.traffic.message import FixedWords

NUM_MASTERS = 4
DEFAULT_OUTPUT = os.path.join("benchmarks", "perf", "BENCH_kernel.json")


def _fingerprint(simulator, summary):
    return pickle.dumps(
        (summary, simulator.state_dict()), protocol=pickle.HIGHEST_PROTOCOL
    )


def _lowutil_factory(index, master):
    return PoissonGenerator(
        "gen{}".format(index),
        master,
        FixedWords(4),
        0.001,
        seed=17 + index,
    )


def _saturating_factory(index, master):
    return SaturatingGenerator(
        "gen{}".format(index), master, FixedWords(8), seed=7 + index
    )


def _run_architectures(mode, cycles, generator_factory, architectures):
    """One testbed run per architecture; returns (fingerprints, counters)."""
    blobs = []
    ticked = skipped = 0
    for label, arb_name, kwargs in architectures:
        arbiter = make_arbiter(
            arb_name, NUM_MASTERS, list(TABLE1_WEIGHTS), **kwargs
        )
        system, bus = build_single_bus_system(
            NUM_MASTERS, arbiter, generator_factory=generator_factory
        )
        system.simulator.mode = mode
        system.run(cycles)
        blobs.append(
            (label, _fingerprint(system.simulator, bus.metrics.summary()))
        )
        ticked += system.simulator.ticked_cycles
        skipped += system.simulator.skipped_cycles
    return pickle.dumps(blobs), ticked, skipped


def _run_table1_lowutil(mode, cycles):
    return _run_architectures(mode, cycles, _lowutil_factory, ARCHITECTURES)


def _run_table1_saturated(mode, cycles):
    return _run_architectures(mode, cycles, _saturating_factory, ARCHITECTURES)


def _run_figure8(mode, cycles):
    arbiter = make_arbiter("lottery-static", NUM_MASTERS, [1, 2, 3, 4])
    system, bus = build_single_bus_system(
        NUM_MASTERS, arbiter, generator_factory=_saturating_factory
    )
    system.simulator.mode = mode
    system.run(cycles)
    sim = system.simulator
    blob = _fingerprint(sim, bus.metrics.summary())
    return blob, sim.ticked_cycles, sim.skipped_cycles


def _run_atm_switch(mode, cycles):
    arbiter = make_arbiter(
        "lottery-static", NUM_MASTERS, list(TABLE1_WEIGHTS)
    )
    switch = OutputQueuedSwitch(arbiter, table1_workload(), seed=1)
    switch.simulator.mode = mode
    switch.run(cycles)
    sim = switch.simulator
    blob = _fingerprint(sim, switch.bus.metrics.summary())
    return blob, sim.ticked_cycles, sim.skipped_cycles


# (name, runner, systems, full cycles, quick cycles, description)
SCENARIOS = (
    (
        "table1_lowutil",
        _run_table1_lowutil,
        len(ARCHITECTURES),
        150000,
        20000,
        "Table 1 architectures, ~1.5% utilisation Poisson load",
    ),
    (
        "table1_saturated",
        _run_table1_saturated,
        len(ARCHITECTURES),
        40000,
        8000,
        "Table 1 architectures, saturating generators",
    ),
    (
        "figure8_lottery",
        _run_figure8,
        1,
        120000,
        24000,
        "Figure 8 ticket ratios (1:2:3:4), saturated lottery bus",
    ),
    (
        "atm_switch",
        _run_atm_switch,
        1,
        30000,
        6000,
        "Table 1 output-queued ATM switch (dense-equivalent workload)",
    ),
)


def _time_once(runner, mode, cycles, best):
    """One timed run folded into ``best``; runs are deterministic, so
    every repeat must reproduce the same fingerprint."""
    start = time.perf_counter()
    blob, ticked, skipped = runner(mode, cycles)
    elapsed = time.perf_counter() - start
    if best["blob"] is not None and blob != best["blob"]:
        raise AssertionError(
            "{} mode is non-deterministic across repeats".format(mode)
        )
    best["blob"] = blob
    best["ticked"] = ticked
    best["skipped"] = skipped
    if best["wall"] is None or elapsed < best["wall"]:
        best["wall"] = elapsed
    return best


def run_benchmarks(quick=False, repeats=3):
    """Run every scenario in both modes; returns the results document."""
    scenarios = []
    all_match = True
    for name, runner, systems, full_cycles, quick_cycles, description in (
        SCENARIOS
    ):
        cycles = quick_cycles if quick else full_cycles
        total_cycles = cycles * systems
        # Repeats are interleaved dense/fast so slow drift in machine
        # load biases both modes equally instead of whichever ran last.
        dense = {"blob": None, "ticked": None, "skipped": None, "wall": None}
        fast = {"blob": None, "ticked": None, "skipped": None, "wall": None}
        for _ in range(repeats):
            _time_once(runner, "dense", cycles, dense)
            _time_once(runner, "fast", cycles, fast)
        match = dense["blob"] == fast["blob"]
        all_match = all_match and match
        entry = {
            "name": name,
            "description": description,
            "systems": systems,
            "cycles_per_system": cycles,
            "dense": {
                "wall_seconds": round(dense["wall"], 4),
                "cycles_per_second": round(total_cycles / dense["wall"], 1),
            },
            "fast": {
                "wall_seconds": round(fast["wall"], 4),
                "cycles_per_second": round(total_cycles / fast["wall"], 1),
                "skipped_fraction": round(
                    fast["skipped"] / float(total_cycles), 4
                ),
            },
            "speedup": round(dense["wall"] / fast["wall"], 2),
            "identical": match,
        }
        scenarios.append(entry)
    return {
        "benchmark": "repro.bench",
        "quick": quick,
        "repeats": repeats,
        "python": platform.python_version(),
        "scenarios": scenarios,
        "all_identical": all_match,
    }


def _print_table(results):
    header = "{:<18} {:>10} {:>12} {:>12} {:>8} {:>8} {:>6}".format(
        "scenario", "cycles", "dense c/s", "fast c/s", "skip%", "speedup",
        "match",
    )
    print(header)
    print("-" * len(header))
    for entry in results["scenarios"]:
        print(
            "{:<18} {:>10} {:>12} {:>12} {:>7.1f}% {:>7.2f}x {:>6}".format(
                entry["name"],
                entry["cycles_per_system"] * entry["systems"],
                entry["dense"]["cycles_per_second"],
                entry["fast"]["cycles_per_second"],
                entry["fast"]["skipped_fraction"] * 100.0,
                entry["speedup"],
                "yes" if entry["identical"] else "NO",
            )
        )


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Benchmark the fast-path kernel against the dense "
        "reference and verify bit-identical results.",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shortened cycle counts for CI smoke runs",
    )
    parser.add_argument(
        "--output",
        default=DEFAULT_OUTPUT,
        help="where to write the JSON report (default: %(default)s)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timed repeats per mode; best wall time is kept "
        "(default: %(default)s)",
    )
    args = parser.parse_args(argv)

    results = run_benchmarks(quick=args.quick, repeats=args.repeats)
    _print_table(results)

    out_dir = os.path.dirname(args.output)
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
    with open(args.output, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=False)
        handle.write("\n")
    print("\nwrote {}".format(args.output))

    if not results["all_identical"]:
        print("FAIL: fast path diverged from the dense reference",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
