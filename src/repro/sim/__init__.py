"""Cycle-based simulation kernel.

The kernel is a deterministic synchronous simulator: every registered
:class:`~repro.sim.component.Component` is ticked once per bus cycle, in
registration order.  All stochastic behaviour draws from seeded
:class:`~repro.sim.rng.RandomStream` instances, so a simulation is exactly
reproducible from its seed.
"""

from repro.sim.component import Component
from repro.sim.kernel import KernelDivergenceError, SimulationError, Simulator
from repro.sim.rng import RandomStream
from repro.sim.snapshot import (
    CheckpointError,
    Snapshottable,
    read_checkpoint,
    write_checkpoint,
)

__all__ = [
    "Component",
    "KernelDivergenceError",
    "SimulationError",
    "Simulator",
    "RandomStream",
    "CheckpointError",
    "Snapshottable",
    "read_checkpoint",
    "write_checkpoint",
]
