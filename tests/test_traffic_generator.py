"""Tests for the traffic generators."""

import pytest

from repro.bus.master import MasterInterface
from repro.sim.kernel import Simulator
from repro.traffic.generator import (
    ClosedLoopGenerator,
    OnOffGenerator,
    PeriodicGenerator,
    PoissonGenerator,
    SaturatingGenerator,
)
from repro.traffic.message import FixedWords, UniformWords


def drive(generator, cycles):
    sim = Simulator()
    sim.add(generator)
    sim.run(cycles)
    return generator


def test_saturating_keeps_queue_at_depth():
    interface = MasterInterface("m", 0)
    gen = SaturatingGenerator("g", interface, FixedWords(4), depth=2)
    drive(gen, 10)
    assert interface.queue_depth == 2
    # Drain one; the generator refills on its next tick.
    interface.pop()
    drive(gen, 1)
    assert interface.queue_depth == 2


def test_poisson_rate_controls_message_count():
    interface = MasterInterface("m", 0)
    gen = PoissonGenerator("g", interface, FixedWords(1), rate=0.2, seed=3)
    drive(gen, 10_000)
    assert gen.messages_emitted == pytest.approx(2000, rel=0.1)
    assert gen.offered_load() == pytest.approx(0.2)


def test_poisson_rate_validation():
    interface = MasterInterface("m", 0)
    with pytest.raises(ValueError):
        PoissonGenerator("g", interface, FixedWords(1), rate=0.0)


def test_periodic_arrivals_exact():
    interface = MasterInterface("m", 0)
    gen = PeriodicGenerator("g", interface, 3, period=10, phase=2)
    drive(gen, 33)
    # Arrivals at cycles 2, 12, 22, 32.
    assert gen.messages_emitted == 4
    arrivals = [r.arrival_cycle for r in interface._queue]
    assert arrivals == [2, 12, 22, 32]
    assert gen.offered_load() == pytest.approx(0.3)


def test_periodic_validation():
    interface = MasterInterface("m", 0)
    with pytest.raises(ValueError):
        PeriodicGenerator("g", interface, 3, period=0)
    with pytest.raises(ValueError):
        PeriodicGenerator("g", interface, 3, period=5, phase=-1)


def test_onoff_duty_cycle_shapes_load():
    interface = MasterInterface("m", 0, max_queue=10 ** 9)
    gen = OnOffGenerator(
        "g", interface, FixedWords(1), on_rate=0.5, mean_on=50, mean_off=150,
        seed=5,
    )
    drive(gen, 40_000)
    measured = gen.words_emitted / 40_000
    assert measured == pytest.approx(gen.offered_load(), rel=0.25)
    assert gen.offered_load() == pytest.approx(0.125)


def test_onoff_emits_in_clusters():
    interface = MasterInterface("m", 0)
    gen = OnOffGenerator(
        "g", interface, FixedWords(1), on_rate=1.0, mean_on=10, mean_off=90,
        seed=2,
    )
    drive(gen, 5000)
    arrivals = [r.arrival_cycle for r in interface._queue]
    gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
    # Mostly back-to-back arrivals, with occasional long silences.
    assert sum(1 for g in gaps if g == 1) > 0.7 * len(gaps)
    assert max(gaps) > 20


def test_closed_loop_blocks_until_completion():
    interface = MasterInterface("m", 0)
    gen = ClosedLoopGenerator("g", interface, FixedWords(4), mean_think=0)
    drive(gen, 10)
    # Only one request outstanding, no matter how long it waits.
    assert interface.queue_depth == 1
    interface.pop()
    drive(gen, 1)
    assert interface.queue_depth == 1


def test_closed_loop_think_time_gates_reissue():
    interface = MasterInterface("m", 0)
    gen = ClosedLoopGenerator(
        "g", interface, FixedWords(1), mean_think=1000, seed=9
    )
    drive(gen, 1)
    assert interface.queue_depth == 1
    interface.pop()
    drive(gen, 20)  # far less than the think time
    assert interface.queue_depth == 0


def test_closed_loop_offered_load():
    interface = MasterInterface("m", 0)
    gen = ClosedLoopGenerator("g", interface, FixedWords(5), mean_think=5)
    assert gen.offered_load() == pytest.approx(0.5)


def test_generators_stamp_flow_labels():
    interface = MasterInterface("m", 0, max_queue=100)
    gen = ClosedLoopGenerator(
        "g", interface, FixedWords(2), 0, flow="video"
    )
    drive(gen, 1)
    assert interface.head().flow == "video"


def test_config_traffic_accepts_flow():
    from repro.soc.config import build_traffic_source

    interface = MasterInterface("m", 0)
    source = build_traffic_source(
        {
            "kind": "closedloop",
            "words": {"kind": "fixed", "words": 4},
            "flow": "rt",
        },
        "g",
        interface,
        seed=1,
    )
    assert source.flow == "rt"


def test_generators_reset_reproducibly():
    interface = MasterInterface("m", 0, max_queue=10 ** 9)
    gen = PoissonGenerator("g", interface, UniformWords(1, 8), rate=0.3, seed=4)
    drive(gen, 500)
    first = [(r.arrival_cycle, r.words) for r in interface._queue]
    interface.reset()
    gen.reset()
    drive(gen, 500)
    second = [(r.arrival_cycle, r.words) for r in interface._queue]
    assert first == second
