"""Chaos phase for the DSE service: kill -9 the server, prove nothing.

The campaign phases attack the *library* stack; this phase attacks the
**serving** stack end to end, as a real deployment would experience it:

1. A fault-free **serial reference** report is computed in-process for
   every spec the phase will submit — ground truth, no service at all.
2. The stdlib server (``python -m repro.service``) is started as a real
   subprocess on a scratch state dir, and a pack of concurrent client
   threads hammers it: every spec submitted by *every* client (so each
   is a duplicate several times over), malformed payloads interleaved,
   ``429`` backpressure honoured by waiting out ``Retry-After``.
3. Mid-hammer the server is **SIGKILLed** — repeatedly — and restarted
   on the same state dir each time.  Clients ride through the downtime
   by retrying.
4. The phase passes only if every job settles ``done`` with a report
   **bit-identical** to the serial reference, the drained server exits
   ``143``, and the write-ahead log shows **zero duplicated work**: one
   ``submit`` per idempotency key (every duplicate joined the original
   job) and at most one ``done`` per job.
"""

import os
import signal
import subprocess
import sys
import threading
import time

from repro.experiments.runner import run_experiment
from repro.service.client import ServiceClient
from repro.service.http import pick_free_port
from repro.service.models import JobSpec
from repro.service.wal import JobWAL

#: Client threads hammering the server concurrently; every thread
#: submits every spec, so each spec arrives this many times.
HAMMER_CLIENTS = 3

#: Queue bound for the hammered server — deliberately small so the
#: phase provably exercises 429 + Retry-After backpressure.
SERVICE_QUEUE_DEPTH = 4

_MALFORMED_PAYLOADS = (
    {"experiment": "no-such-experiment"},
    {"experiment": "figure5", "scale": -1},
    {"experiment": "figure5", "seed": "three"},
    {"experiment": "figure5", "bogus_field": 1},
    ["not", "an", "object"],
)


def _reference_reports(specs, on_event=None):
    """Serial fault-free ground truth: ``{idempotency key: report}``."""
    reports = {}
    for spec in specs:
        if on_event is not None:
            on_event("service reference: {} seed {}".format(
                spec.experiment, spec.seed
            ))
        result = run_experiment(
            spec.experiment, scale=spec.scale, seed=spec.seed,
            _warn_seedless=False, **spec.options
        )
        reports[spec.key()] = result.format_report()
    return reports


class _ServerProcess:
    """The service subprocess, restartable on one durable state dir."""

    def __init__(self, state_dir, cache_dir, port, workers):
        self.state_dir = state_dir
        self.cache_dir = cache_dir
        self.port = port
        self.workers = workers
        self.proc = None

    @property
    def wal_path(self):
        return os.path.join(self.state_dir, "queue.wal")

    def start(self):
        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)
        )))
        env["PYTHONPATH"] = os.pathsep.join(
            [src_root] + env.get("PYTHONPATH", "").split(os.pathsep)
        ).rstrip(os.pathsep)
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.service",
                "--state-dir", self.state_dir,
                "--cache-dir", self.cache_dir,
                "--port", str(self.port),
                "--workers", str(self.workers),
                "--queue-depth", str(SERVICE_QUEUE_DEPTH),
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )

    def kill9(self):
        self.proc.kill()
        self.proc.wait()

    def terminate(self, timeout=90.0):
        """SIGTERM and return the exit code (143 = graceful drain)."""
        self.proc.send_signal(signal.SIGTERM)
        return self.proc.wait(timeout=timeout)


def _hammer(client, specs, job_ids, errors, deadline):
    """One client thread: submit every spec, riding through crashes.

    429 (queue full) waits out ``Retry-After`` and retries; connection
    errors (the server is dead between kill and restart) back off and
    retry; 503 (draining) retries after restart.  Anything else —
    including 400s for these well-formed specs — is a phase failure.
    """
    for spec in specs:
        while True:
            if time.monotonic() > deadline:
                errors.append("hammer timed out submitting {}".format(spec))
                return
            try:
                status, body = client.submit(
                    spec.experiment, scale=spec.scale, seed=spec.seed,
                    options=spec.options,
                )
            except OSError:
                time.sleep(0.2)  # crash window: server is between lives
                continue
            if status in (200, 202):
                job_ids[spec.key()] = body["job"]
                break
            if status == 429:
                time.sleep(min(5, int(body.get("retry_after", 1))))
                continue
            if status == 503:
                time.sleep(0.3)
                continue
            errors.append(
                "unexpected {} submitting {}: {}".format(status, spec, body)
            )
            return


def run_service_phase(args, workdir, on_event=None):
    """The whole phase; returns a list of failure strings (empty = pass)."""
    failures = []
    specs = [
        JobSpec(name, scale=args.scale, seed=seed)
        for name in args.experiments
        for seed in (args.seed, args.seed + 1)
    ]
    reference = _reference_reports(specs, on_event=on_event)

    server = _ServerProcess(
        state_dir=os.path.join(workdir, "service-state"),
        cache_dir=os.path.join(workdir, "service-cache"),
        port=pick_free_port(),
        workers=args.jobs,
    )
    base_url = "http://127.0.0.1:{}".format(server.port)
    server.start()
    probe = ServiceClient(base_url, client_id="chaos-probe")
    if not probe.wait_ready(30):
        server.kill9()
        return ["service never became ready on {}".format(base_url)]

    # Concurrent duplicate submissions from several client identities.
    job_ids = [dict() for _ in range(HAMMER_CLIENTS)]
    errors = []
    deadline = time.monotonic() + 300
    threads = [
        threading.Thread(
            target=_hammer,
            args=(
                ServiceClient(base_url, client_id="chaos-{}".format(i)),
                specs, job_ids[i], errors, deadline,
            ),
            daemon=True,
        )
        for i in range(HAMMER_CLIENTS)
    ]
    for thread in threads:
        thread.start()

    # Malformed submissions must bounce typed, never crash the server.
    for payload in _MALFORMED_PAYLOADS:
        try:
            status, body = probe.submit_raw(payload)
        except OSError:
            continue  # landed in a crash window; validity covered below
        if status != 400:
            failures.append(
                "malformed payload {!r} got {} ({}), expected 400".format(
                    payload, status, body
                )
            )

    # The kill schedule: SIGKILL mid-campaign, restart on the same
    # state dir, repeat.  Submissions and executions are in flight
    # throughout — exactly the torn states the WAL must absorb.
    for round_number in range(args.service_kills):
        time.sleep(0.8)
        if on_event is not None:
            on_event("service chaos: kill -9 round {}".format(
                round_number + 1
            ))
        server.kill9()
        time.sleep(0.2)
        server.start()
        if not probe.wait_ready(30):
            server.kill9()
            return ["service did not come back after kill round {}".format(
                round_number + 1
            )]

    for thread in threads:
        thread.join(timeout=300)
    failures.extend(errors)

    # Every client's every job must settle bit-identical to reference.
    all_jobs = {}
    for table in job_ids:
        all_jobs.update(table)
    if len(all_jobs) != len(specs):
        failures.append(
            "expected {} distinct jobs, saw {}".format(
                len(specs), len(all_jobs)
            )
        )
    waiter = ServiceClient(base_url, client_id="chaos-waiter",
                           timeout=60.0)
    for key, job_id in sorted(all_jobs.items()):
        try:
            status, body = waiter.wait_result(job_id, timeout=240)
        except (OSError, TimeoutError) as error:
            failures.append("job {} never settled: {}".format(job_id, error))
            continue
        if status != 200:
            failures.append(
                "job {} settled {} ({}), expected done".format(
                    job_id, status, body
                )
            )
        elif body["report"] != reference[key]:
            failures.append(
                "job {} report differs from fault-free reference".format(
                    job_id
                )
            )

    # Cross-client idempotency: all clients were handed the same job id
    # for the same spec.
    for key in reference:
        ids = {table[key] for table in job_ids if key in table}
        if len(ids) > 1:
            failures.append(
                "spec {} got {} distinct jobs across clients: {}".format(
                    key[:12], len(ids), sorted(ids)
                )
            )

    exit_code = server.terminate()
    if exit_code != 143:
        failures.append(
            "drained server exited {}, expected 143".format(exit_code)
        )

    failures.extend(_audit_wal(server.wal_path))
    return failures


def _audit_wal(wal_path):
    """Replay the final WAL and assert the no-duplicated-work invariants.

    * exactly one ``submit`` per idempotency key — every duplicate
      submission joined the original job instead of spawning a new one;
    * at most one ``done`` per job — a result is recorded once, no
      matter how many crashes and restarts happened around it.

    (Multiple ``run`` records per job are *legal*: a kill -9 mid-run
    legitimately reruns the job, and determinism makes that safe.)
    """
    failures = []
    records = JobWAL(wal_path).replay(repair=False)
    if not records:
        return ["service WAL is empty or unreadable: {}".format(wal_path)]
    submits_per_key = {}
    dones_per_job = {}
    for record in records:
        if record["op"] == "submit":
            submits_per_key.setdefault(record["key"], []).append(
                record["job"]
            )
        elif record["op"] == "done":
            dones_per_job[record["job"]] = (
                dones_per_job.get(record["job"], 0) + 1
            )
    for key, jobs in sorted(submits_per_key.items()):
        if len(jobs) != 1:
            failures.append(
                "duplicated admission for key {}: jobs {}".format(
                    key[:12], ", ".join(jobs)
                )
            )
    for job_id, count in sorted(dones_per_job.items()):
        if count > 1:
            failures.append(
                "job {} recorded done {} times".format(job_id, count)
            )
    return failures
