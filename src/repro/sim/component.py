"""Base class for everything that participates in the cycle loop."""

from repro.sim.snapshot import Snapshottable


class Component(Snapshottable):
    """A synchronous hardware block driven by the simulator clock.

    Subclasses override :meth:`tick`, which the simulator calls exactly
    once per cycle in registration order.  Components that produce values
    consumed by later components in the same cycle (e.g. traffic
    generators feeding master interfaces feeding the bus) should simply be
    registered in dataflow order; the kernel makes no attempt at
    delta-cycle evaluation.

    Components also carry the checkpoint protocol (see
    :mod:`repro.sim.snapshot`): declare runtime state in ``state_attrs``
    / ``state_children`` and the inherited :meth:`state_dict` /
    :meth:`load_state_dict` hooks snapshot and restore it, which is what
    :meth:`repro.sim.kernel.Simulator.save_checkpoint` aggregates.
    """

    def __init__(self, name):
        self.name = name

    def tick(self, cycle):
        """Advance the component by one clock cycle.

        :param cycle: the current cycle number, starting at 0.
        """

    def reset(self):
        """Return the component to its power-on state.

        The default implementation does nothing; stateful components
        override it so a :class:`~repro.sim.kernel.Simulator` can be
        re-run from cycle 0.
        """

    def __repr__(self):
        return "{}(name={!r})".format(type(self).__name__, self.name)
