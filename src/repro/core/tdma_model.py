"""Closed-form latency model for pure TDMA under locked alignment.

The Figure 5 system is exactly solvable: ``n`` masters, a wheel of
``n`` contiguous ``block``-slot reservations, every master issuing a
``block``-word message once per revolution, each arriving ``phase``
cycles after the start of its own block (the pattern period equals the
wheel, so the alignment is locked).

With no reclaim, master ``i`` is only served inside its own block, so:

* ``0 < phase < block`` — the message catches the tail of its block:
  ``block - phase`` words move immediately, the remaining ``phase``
  words wait out the foreign stretch of ``period - block`` cycles, so
  the message spans exactly one period: per-word latency
  ``period / block`` (first-word wait 0).  ``phase == 0`` is the
  aligned Trace 1: latency exactly 1 cycle/word.
* ``block <= phase < period`` — the whole message waits
  ``period - phase`` cycles for the block to come around, then moves
  back-to-back: per-word latency ``(period - phase + block) / block``.

These expressions are validated against simulation by the test suite
(and visually by ``render_figure5_traces``).
"""


def _check(block, num_masters, phase):
    if block < 1 or num_masters < 1:
        raise ValueError("block and num_masters must be >= 1")
    period = block * num_masters
    if not 0 <= phase < period:
        raise ValueError("phase must lie in [0, period)")
    return period


def pure_tdma_wait(phase, block, num_masters):
    """First-word wait (cycles) for the locked Figure 5 pattern."""
    period = _check(block, num_masters, phase)
    if phase < block:
        return 0
    return period - phase


def pure_tdma_latency_per_word(phase, block, num_masters):
    """Per-word latency (cycles/word) for the locked Figure 5 pattern."""
    period = _check(block, num_masters, phase)
    if phase == 0:
        return 1.0
    if phase < block:
        # (block - phase) words move immediately, then a
        # (period - block) stall, then the last `phase` words: the
        # message spans exactly one period.
        return period / block
    return (period - phase + block) / block


def worst_case_phase(block, num_masters):
    """The phase maximizing first-word wait: just after the block."""
    return block


def aligned_phase():
    """The phase minimizing latency (Trace 1): block-aligned arrivals."""
    return 0
