"""Per-data-flow lottery allocation.

The paper's abstract promises control over "the fraction of
communication bandwidth that each system component **or data flow**
receives".  The component case is the ticket-per-master lottery; this
module supplies the data-flow case: tickets are assigned to named
flows, requests carry a flow label, and each lottery weighs the
contending masters by the tickets of the flow at the head of their
queue.  A master carrying different flows at different times receives
bandwidth according to what it currently carries — e.g. a DMA engine
whose real-time stream outranks its own bulk transfers.
"""

from repro.core.adder_tree import prefix_sums
from repro.core.lfsr import LFSR
from repro.core.lottery_manager import select_winner
from repro.sim.snapshot import Snapshottable


class FlowTicketTable:
    """Named flows and their ticket holdings.

    :param flows: mapping of flow name -> positive ticket count.
    :param default_tickets: holding used for requests with an unknown or
        absent flow label.
    """

    def __init__(self, flows, default_tickets=1):
        if default_tickets < 1:
            raise ValueError("default_tickets must be >= 1")
        self._tickets = {}
        for name, tickets in dict(flows).items():
            if int(tickets) < 1:
                raise ValueError(
                    "flow {!r} must hold at least one ticket".format(name)
                )
            self._tickets[name] = int(tickets)
        self.default_tickets = int(default_tickets)

    def tickets_for(self, flow):
        """Ticket holding of ``flow`` (the default for unknown flows)."""
        return self._tickets.get(flow, self.default_tickets)

    def flows(self):
        return sorted(self._tickets)

    def __contains__(self, flow):
        return flow in self._tickets

    def __repr__(self):
        return "FlowTicketTable({})".format(self._tickets)


class FlowLotteryManager(Snapshottable):
    """Holds lotteries weighted by head-of-queue flow tickets.

    Unlike the per-master managers, the ticket vector is recomputed
    every drawing from the flow labels the caller supplies.
    """

    state_attrs = ("lotteries_held",)
    state_children = ("random_source",)
    # Pure memo over the immutable ticket table — identical entries are
    # rebuilt on demand after a restore, so it stays out of checkpoints.
    state_exclude = ("_sums_cache",)

    # Flow vectors recur heavily (the same few masters contend with the
    # same head flows), and the ticket table is immutable, so the prefix
    # sums per distinct vector are cached.  Bounded so adversarial label
    # churn cannot grow it without limit.
    _CACHE_LIMIT = 1024

    def __init__(self, table, random_source=None, lfsr_seed=1):
        self.table = table
        if random_source is None:
            random_source = LFSR(16, seed=lfsr_seed)
        self.random_source = random_source
        self.lotteries_held = 0
        self._sums_cache = {}

    def reset(self):
        if hasattr(self.random_source, "reset"):
            self.random_source.reset()
        self.lotteries_held = 0

    def draw(self, flows):
        """One lottery over per-master head flows.

        :param flows: one entry per master — the head request's flow
            label, or ``None`` when the master has no pending request.
            (A pending request whose flow is unlabeled should be passed
            as the empty string so it is distinguishable from idle.)
        :returns: winning master index, or ``None`` with no requests.
        """
        key = tuple(flows)
        sums = self._sums_cache.get(key)
        if sums is None:
            masked = [
                0 if flow is None else self.table.tickets_for(flow or None)
                for flow in flows
            ]
            sums = prefix_sums(masked)
            if len(self._sums_cache) < self._CACHE_LIMIT:
                self._sums_cache[key] = sums
        total = sums[-1] if sums else 0
        if total == 0:
            return None
        self.lotteries_held += 1
        value = self.random_source.draw_below(total)
        return select_winner(value, sums)


class FlowUsage(Snapshottable):
    """Per-flow word accounting over a bus's completion stream.

    Attach with ``bus.add_completion_hook(usage.on_completion)`` (or let
    :class:`~repro.arbiters.flow_lottery.FlowLotteryArbiter` do it) and
    read back each flow's carried words and share.
    """

    state_attrs = ("words", "messages")

    def __init__(self):
        self.words = {}
        self.messages = {}

    def on_completion(self, request, cycle):
        flow = request.flow
        self.words[flow] = self.words.get(flow, 0) + request.words
        self.messages[flow] = self.messages.get(flow, 0) + 1

    def total_words(self):
        return sum(self.words.values())

    def share(self, flow):
        total = self.total_words()
        if total == 0:
            return 0.0
        return self.words.get(flow, 0) / total

    def shares(self):
        return {flow: self.share(flow) for flow in self.words}
