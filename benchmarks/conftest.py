"""Shared benchmark helpers.

Every benchmark runs its experiment exactly once under pytest-benchmark
timing (rounds=1) — the interesting output is the regenerated paper
table/figure, which each bench prints so ``pytest benchmarks/
--benchmark-only -s`` shows the full reproduction alongside timings.
"""

import os

# Scale factor for benchmark cycle counts; raise for tighter confidence
# intervals, lower for smoke runs.  1.0 keeps the full suite around a
# couple of minutes on a laptop.
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def run_once(benchmark, func, *args, **kwargs):
    """Execute ``func`` once under the benchmark timer; return its result."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)


def cycles(base):
    """Scale a cycle count by REPRO_BENCH_SCALE (minimum 1000)."""
    return max(1000, int(base * SCALE))
