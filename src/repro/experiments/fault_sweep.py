"""Fault sweep: proportional bandwidth under injected faults.

Reruns the Figure-4/6(a) bandwidth-proportionality setup (four masters
saturating one bus, lottery tickets 1:2:3:4) while a
:class:`~repro.faults.FaultInjector` corrupts words, stalls the slave,
drops and garbles grants and wedges the lottery LFSR at increasing
rates.  The claim under test is the robustness analogue of the paper's
central property: with the recovery machinery engaged (bounded retries,
exponential backoff, bus-timeout watchdog) the ticket-proportional
bandwidth shares survive the faults — and with retries disabled they do
not (transfers abort), proving the recovery path rather than luck
preserves the property.

Two companion sub-runs round out the picture:

* a *no-retry* run at the highest fault rate
  (:class:`~repro.faults.RetryPolicy` ``max_retries=0``) demonstrating
  aborts without recovery;
* a *degradation* run on the dynamic lottery where the injector takes
  the ticket-update channel down and the manager falls back to its
  last-known table (counted, non-fatal).

A :class:`~repro.bus.checker.BusChecker` rides along on every run, so
any conservation, latency or starvation violation under faults fails
the experiment at the offending cycle.
"""

from repro.arbiters.lottery import DynamicLotteryArbiter, StaticLotteryArbiter
from repro.bus.bus import SharedBus
from repro.bus.checker import BusChecker
from repro.bus.master import MasterInterface
from repro.bus.slave import Slave
from repro.bus.topology import BusSystem
from repro.faults import FaultInjector, FaultPlan, RetryPolicy
from repro.metrics.report import format_table
from repro.sim.component import Component
from repro.traffic.generator import SaturatingGenerator
from repro.traffic.message import UniformWords

DEFAULT_FAULT_RATES = (0.0, 0.0005, 0.002, 0.005)


class _TicketRefresher(Component):
    """Periodically re-communicates holdings to a dynamic arbiter.

    Models the masters' ticket-update traffic so a ticket-channel
    outage has updates to drop.
    """

    def __init__(self, name, arbiter, tickets, period=50):
        super().__init__(name)
        self.arbiter = arbiter
        self.tickets = list(tickets)
        self.period = period

    def tick(self, cycle):
        if cycle % self.period == 0:
            self.arbiter.set_all_tickets(self.tickets)


def build_fault_testbed(
    tickets=(1, 2, 3, 4),
    seed=1,
    plan=None,
    retry_policy=None,
    arbiter=None,
    bus_timeout=2_000,
    starvation_bound=10_000,
    max_burst=16,
    name="fbus",
):
    """Assemble the saturated lottery test-bed with fault machinery.

    Returns ``(system, bus, injector, checker)``; ``injector`` is
    ``None`` when ``plan`` is ``None`` or inactive.
    """
    masters = [
        MasterInterface(
            "{}.m{}".format(name, i),
            i,
            retry_policy=retry_policy,
            retry_seed=seed + i,
        )
        for i in range(len(tickets))
    ]
    if arbiter is None:
        arbiter = StaticLotteryArbiter(
            tickets=list(tickets), lfsr_seed=max(1, seed)
        )
    bus = SharedBus(
        name,
        masters,
        arbiter,
        slaves=[Slave("{}.s0".format(name), 0)],
        max_burst=max_burst,
        bus_timeout=bus_timeout,
    )
    system = BusSystem()
    injector = None
    if plan is not None and plan.active:
        injector = FaultInjector("{}.faults".format(name), plan, seed=seed)
        injector.attach_bus(bus)
        system.add_generator(injector)
    for index, master in enumerate(masters):
        system.add_generator(
            SaturatingGenerator(
                "{}.gen{}".format(name, index),
                master,
                UniformWords(2, 6),
                seed=seed + index,
            )
        )
    system.add_bus(bus)
    checker = system.add_monitor(
        BusChecker("{}.chk".format(name), bus, starvation_bound=starvation_bound)
    )
    return system, bus, injector, checker


class FaultSweepResult:
    """Shares and fault/recovery accounting per injected fault rate."""

    def __init__(
        self,
        rates,
        shares,
        utilizations,
        fault_summaries,
        worst_waits,
        expected_shares,
        no_retry,
        degradation,
        cycles,
        seed,
    ):
        self.rates = list(rates)
        self.shares = [list(row) for row in shares]
        self.utilizations = list(utilizations)
        self.fault_summaries = list(fault_summaries)
        self.worst_waits = list(worst_waits)
        self.expected_shares = list(expected_shares)
        self.no_retry = no_retry  # dict or None
        self.degradation = degradation  # dict or None
        self.cycles = cycles
        self.seed = seed

    def baseline_shares(self):
        """Shares of the fault-free (rate 0) run."""
        index = self.rates.index(0.0)
        return self.shares[index]

    def max_share_delta_pp(self, row):
        """Worst per-master share deviation from fault-free, in points."""
        baseline = self.baseline_shares()
        return 100.0 * max(
            abs(share - base) for share, base in zip(self.shares[row], baseline)
        )

    def format_report(self):
        headers = (
            ["fault rate"]
            + ["M{} share".format(i) for i in range(len(self.expected_shares))]
            + ["Δmax pp", "util", "inj", "det", "retry", "recov", "abort",
               "t/o", "worst wait"]
        )
        rows = []
        for index, rate in enumerate(self.rates):
            faults = self.fault_summaries[index]
            rows.append(
                ["{:g}".format(rate)]
                + ["{:.1%}".format(v) for v in self.shares[index]]
                + [
                    "{:.2f}".format(self.max_share_delta_pp(index)),
                    "{:.3f}".format(self.utilizations[index]),
                    faults["injected_total"],
                    faults["detected"],
                    faults["retried"],
                    faults["recovered"],
                    faults["aborted"],
                    faults["timeouts"],
                    self.worst_waits[index],
                ]
            )
        lines = [
            format_table(
                headers,
                rows,
                title=(
                    "Fault sweep: lottery shares under injected faults "
                    "({} cycles, seed {}, expected shares {})".format(
                        self.cycles,
                        self.seed,
                        " ".join(
                            "{:.1%}".format(v) for v in self.expected_shares
                        ),
                    )
                ),
            )
        ]
        if self.no_retry is not None:
            lines.append(
                "no-retry control at rate {:g}: {} aborted, {} recovered "
                "(recovery machinery disabled)".format(
                    self.no_retry["rate"],
                    self.no_retry["aborted"],
                    self.no_retry["recovered"],
                )
            )
        if self.degradation is not None:
            lines.append(
                "dynamic-lottery degradation at rate {:g}: {} outages, "
                "{} dropped updates, shares {} (last-known-table fallback)".format(
                    self.degradation["rate"],
                    self.degradation["events"],
                    self.degradation["dropped_updates"],
                    " ".join(
                        "{:.1%}".format(v) for v in self.degradation["shares"]
                    ),
                )
            )
        return "\n".join(lines)


def _run_point(cycles, seed, tickets, plan, retry_policy):
    system, bus, injector, checker = build_fault_testbed(
        tickets=tickets, seed=seed, plan=plan, retry_policy=retry_policy
    )
    system.run(cycles)
    return bus, checker


def run_fault_sweep(
    cycles=60_000,
    seed=1,
    fault_rates=DEFAULT_FAULT_RATES,
    tickets=(1, 2, 3, 4),
    max_retries=8,
    request_timeout=5_000,
    include_no_retry=True,
    include_degradation=True,
):
    """Run the sweep; returns a :class:`FaultSweepResult`.

    Any :class:`~repro.bus.checker.CheckerViolation` under faults
    propagates — a clean return certifies every invariant held at every
    fault rate.
    """
    rates = sorted(set(fault_rates))
    for rate in rates:
        if not 0.0 <= rate <= 1.0:
            raise ValueError("fault rates must lie in [0, 1]; got {!r}".format(rate))
    if 0.0 not in rates:
        rates.insert(0, 0.0)
    policy = RetryPolicy(max_retries=max_retries, timeout=request_timeout)
    shares, utilizations, fault_summaries, worst_waits = [], [], [], []
    for rate in rates:
        plan = FaultPlan.uniform(rate) if rate > 0 else None
        bus, checker = _run_point(cycles, seed, tickets, plan, policy)
        shares.append(bus.metrics.bandwidth_shares())
        utilizations.append(bus.metrics.utilization())
        fault_summaries.append(bus.metrics.faults.summary())
        worst_waits.append(checker.worst_wait)

    no_retry = None
    top_rate = max(rates)
    if include_no_retry and top_rate > 0:
        bus, _ = _run_point(
            cycles,
            seed,
            tickets,
            FaultPlan.uniform(top_rate),
            RetryPolicy.disabled(),
        )
        no_retry = {
            "rate": top_rate,
            "aborted": bus.metrics.faults.aborted,
            "recovered": bus.metrics.faults.recovered,
            "shares": bus.metrics.bandwidth_shares(),
        }

    degradation = None
    if include_degradation and top_rate > 0:
        # Outage-only plan: the point is the ticket-channel fallback,
        # not transfer errors, so other channels stay quiet.
        plan = FaultPlan(
            ticket_outage_rate=min(1.0, top_rate * 4),
            ticket_outage_cycles=64,
        )
        arbiter = DynamicLotteryArbiter(tickets=list(tickets))
        system, bus, injector, checker = build_fault_testbed(
            tickets=tickets,
            seed=seed,
            plan=plan,
            retry_policy=policy,
            arbiter=arbiter,
        )
        system.add_generator(
            _TicketRefresher("fbus.tickets", arbiter, tickets, period=50)
        )
        system.run(max(1_000, cycles // 4))
        manager = arbiter.manager
        degradation = {
            "rate": top_rate,
            "events": manager.degradation_events,
            "dropped_updates": manager.dropped_updates,
            "shares": bus.metrics.bandwidth_shares(),
        }

    total = float(sum(tickets))
    expected = [ticket / total for ticket in tickets]
    return FaultSweepResult(
        rates,
        shares,
        utilizations,
        fault_summaries,
        worst_waits,
        expected,
        no_retry,
        degradation,
        cycles,
        seed,
    )
