"""Figure 4: bandwidth sharing under the static priority architecture.

Example 1 of the paper: four masters saturate the bus; for every one of
the 24 possible priority assignments, measure the fraction of bus
bandwidth each master receives.  The paper observes (i) a master's
share is extremely sensitive to its priority (C1 ranges from under 1%
to nearly the whole bus), and (ii) low-priority masters starve.
"""

from repro.arbiters.registry import make_arbiter
from repro.bus.topology import build_single_bus_system
from repro.experiments.system import permutation_label, weight_permutations
from repro.metrics.report import format_table
from repro.traffic.generator import PoissonGenerator
from repro.traffic.message import UniformWords


def _saturating_open_loop_factory(seed, rate=0.25, low=2, high=6):
    """Each master individually offers ~1x the bus capacity.

    Open-loop (rate-based) saturation rather than closed-loop, so the
    top-priority master's share reflects its own request gaps and the
    losers pick up fractions of a percent — the texture of Figure 4.
    """
    def make(master_id, interface):
        return PoissonGenerator(
            "fig4.gen{}".format(master_id),
            interface,
            UniformWords(low, high),
            rate,
            seed=seed + master_id,
        )

    return make


class Figure4Result:
    """Bandwidth fractions for each of the 24 priority assignments."""

    def __init__(self, labels, fractions, utilizations):
        self.labels = labels
        self.fractions = fractions  # one row per permutation, one col per master
        self.utilizations = utilizations

    def master_range(self, master):
        """(min, max) bandwidth fraction master receives across assignments."""
        values = [row[master] for row in self.fractions]
        return min(values), max(values)

    def average_when_lowest(self, master=3):
        """Mean share of ``master`` over assignments where it has priority 1."""
        rows = [
            row[master]
            for label, row in zip(self.labels, self.fractions)
            if label[master] == "1"
        ]
        return sum(rows) / len(rows)

    def format_report(self):
        rows = [
            [label] + ["{:.1%}".format(v) for v in row] + ["{:.1%}".format(u)]
            for label, row, u in zip(self.labels, self.fractions, self.utilizations)
        ]
        return format_table(
            ["priorities C1-C4"] + ["C{}".format(i + 1) for i in range(4)] + ["util"],
            rows,
            title="Figure 4: bandwidth sharing under static priority arbitration",
        )


def run_figure4(cycles=100_000, seed=1, values=(1, 2, 3, 4)):
    """Run all priority permutations; returns a :class:`Figure4Result`."""
    labels = []
    fractions = []
    utilizations = []
    for perm in weight_permutations(values):
        arbiter = make_arbiter("static-priority", len(perm), perm)
        system, bus = build_single_bus_system(
            len(perm), arbiter, _saturating_open_loop_factory(seed), max_burst=16
        )
        system.run(cycles)
        labels.append(permutation_label(perm))
        fractions.append(bus.metrics.bandwidth_fractions())
        utilizations.append(bus.metrics.utilization())
    return Figure4Result(labels, fractions, utilizations)
