"""Analytic surrogate models for the shared-bus test-bed.

Simulation answers "what happens" one cycle at a time; this package
answers it in closed form, a few microseconds per configuration, using
a stochastic-automata-style contention model (PAPERS.md: "Stochastic
Automata Network for Performance Evaluation of Heterogeneous SoC
Communication") built on the paper's Section 4 ticket->bandwidth-share
relationship.

Entry points:

* :func:`predict` — per-master bandwidth shares, bus utilization and
  latency distribution (mean + percentiles) for one
  (arbiter, traffic class, weights) configuration.
* :func:`score_grid` — the vectorized batch path: a list of
  configuration points predicted at a few microseconds each (degrades
  to looping :func:`predict` without numpy).
* :data:`ERROR_BOUNDS` / :func:`bound_for` — the checked-in, regression-
  tested surrogate<->simulator error bounds.
* :func:`validate_surrogate` — cross-validation driver producing the
  observed errors the bounds are calibrated from.

The surrogate exists to *screen*, not to replace, the simulator: see
:func:`repro.experiments.run_screened_sweep` for the two-tier driver
that scores a grid analytically and confirms the surviving frontier
with bit-identical simulation rows.
"""

from repro.analytic.batch import score_grid
from repro.analytic.bounds import (
    CALIBRATION,
    ERROR_BOUNDS,
    ErrorBound,
    bound_for,
)
from repro.analytic.model import (
    AnalyticResult,
    UnsupportedArbiterError,
    predict,
    supported_arbiters,
)
from repro.analytic.validate import ValidationReport, validate_surrogate

__all__ = [
    "AnalyticResult",
    "CALIBRATION",
    "ERROR_BOUNDS",
    "ErrorBound",
    "UnsupportedArbiterError",
    "ValidationReport",
    "bound_for",
    "predict",
    "score_grid",
    "supported_arbiters",
    "validate_surrogate",
]
