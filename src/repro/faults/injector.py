"""The fault injector component.

A :class:`FaultInjector` owns one :class:`~repro.sim.rng.RandomStream`
and realizes a :class:`~repro.faults.plan.FaultPlan` against attached
buses, bridges and lottery managers.  Register it as a *generator* on
the :class:`~repro.bus.topology.BusSystem` (so it ticks before the
buses and window faults take effect the cycle they start), then attach
the fabric::

    injector = FaultInjector("faults", FaultPlan.uniform(0.002), seed=1)
    system.add_generator(injector)
    injector.attach_system(system)

Per-word and per-grant faults are pulled by the bus (which checks its
``injector`` attribute at the relevant protocol points); window faults
(stuck LFSRs, ticket-channel outages) are pushed by the injector's own
``tick``.  Every decision consumes the injector's private RNG stream,
so the fault schedule replays exactly from the seed and never perturbs
traffic or lottery randomness.
"""

from repro.bus.transaction import Grant
from repro.sim.component import Component
from repro.sim.rng import RandomStream


class StuckRandomSource:
    """Wraps a lottery manager's random source with a stuck-at fault.

    While stuck, every draw returns the wedged register value (reduced
    into the caller's bound); otherwise draws pass through to the
    wrapped source.  Models a transient stuck-at fault on the LFSR
    output register.
    """

    def __init__(self, inner):
        self.inner = inner
        self.stuck_value = None
        self.stuck_until = None
        self.stuck_draws = 0

    @property
    def stuck(self):
        """True while the stuck-at window is active."""
        return self.stuck_value is not None

    def stick(self, until):
        """Wedge the output at the next inner value until ``until``."""
        self.stuck_value = self.inner.draw_below(1 << 16)
        self.stuck_until = until

    def release(self):
        """End the stuck-at window."""
        self.stuck_value = None
        self.stuck_until = None

    def draw_below(self, bound):
        """Draw in ``[0, bound)`` — constant while the fault is active."""
        if self.stuck_value is not None:
            self.stuck_draws += 1
            return self.stuck_value % bound
        return self.inner.draw_below(bound)

    def reset(self):
        """Clear the fault and reset the wrapped source."""
        self.release()
        self.stuck_draws = 0
        if hasattr(self.inner, "reset"):
            self.inner.reset()


class FaultInjector(Component):
    """Schedules a :class:`FaultPlan` against an attached bus fabric.

    :param name: component name.
    :param plan: the :class:`~repro.faults.plan.FaultPlan` to realize.
    :param seed: root seed for the injector's private RNG stream.

    The injector keeps an aggregate :class:`FaultStats` in ``stats``;
    each attached bus additionally accounts faults in its own
    ``bus.metrics.faults`` section, so per-bus reports stay local.
    """

    def __init__(self, name, plan, seed=1):
        super().__init__(name)
        self.plan = plan
        self.seed = seed
        self._rng = RandomStream(seed, "faults:" + name)
        from repro.metrics.collector import FaultStats

        self.stats = FaultStats()
        self._buses = []
        self._bridges = []
        self._sources = []  # (StuckRandomSource, owning bus)
        self._managers = []  # [manager, owning bus, outage-end cycle]

    # -- attachment ------------------------------------------------------

    def attach_bus(self, bus):
        """Attach to a bus: grant/word/stall faults plus manager faults."""
        bus.injector = self
        self._buses.append(bus)
        manager = getattr(bus.arbiter, "manager", None)
        if manager is None:
            return bus
        source = getattr(manager, "random_source", None)
        if source is not None and self.plan.lfsr_stuck_rate > 0:
            wrapper = StuckRandomSource(source)
            manager.random_source = wrapper
            self._sources.append((wrapper, bus))
        if (
            hasattr(manager, "disable_ticket_channel")
            and self.plan.ticket_outage_rate > 0
        ):
            self._managers.append([manager, bus, None])
        return bus

    def attach_bridge(self, bridge):
        """Attach to a bridge: forwarded messages may be lost."""
        bridge.injector = self
        self._bridges.append(bridge)
        return bridge

    def attach_system(self, system):
        """Attach to every bus (and bridge slave) in a BusSystem."""
        from repro.bus.bridge import Bridge

        for bus in system.buses:
            self.attach_bus(bus)
            for slave in bus.slaves:
                if isinstance(slave, Bridge):
                    self.attach_bridge(slave)
        return system

    # -- accounting ------------------------------------------------------

    def _record(self, kind, bus=None):
        self.stats.record_injected(kind)
        if bus is not None:
            bus.metrics.faults.record_injected(kind)

    # -- pull-side hooks (called by the bus / bridge) --------------------

    def corrupt_word(self, bus, request, cycle):
        """Decide whether the word moving this cycle is corrupted."""
        if self.plan.word_error_rate and self._rng.random() < self.plan.word_error_rate:
            self._record("word_error", bus)
            return True
        return False

    def slave_stall(self, bus, slave, cycle):
        """Extra transient wait states after the word served this cycle."""
        if self.plan.slave_stall_rate and self._rng.random() < self.plan.slave_stall_rate:
            low, high = self.plan.slave_stall_cycles
            self._record("slave_stall", bus)
            return self._rng.randint(low, high)
        return 0

    def filter_grant(self, bus, grant, pending, cycle):
        """Possibly drop or corrupt the arbiter's grant for this round."""
        if grant is None:
            return None
        if self.plan.grant_drop_rate and self._rng.random() < self.plan.grant_drop_rate:
            self._record("grant_drop", bus)
            return None
        if (
            self.plan.grant_spurious_rate
            and self._rng.random() < self.plan.grant_spurious_rate
        ):
            self._record("grant_spurious", bus)
            return Grant(self._rng.randrange(len(pending)), grant.max_words)
        return grant

    def bridge_loss(self, bridge, cycle):
        """Decide whether a bridge forward is lost (bridge retransmits)."""
        if self.plan.bridge_loss_rate and self._rng.random() < self.plan.bridge_loss_rate:
            self._record("bridge_loss", getattr(bridge, "_near_bus", None))
            return True
        return False

    # -- push-side window faults -----------------------------------------

    def tick(self, cycle):
        plan = self.plan
        for wrapper, bus in self._sources:
            if wrapper.stuck:
                if cycle >= wrapper.stuck_until:
                    wrapper.release()
            elif self._rng.random() < plan.lfsr_stuck_rate:
                wrapper.stick(cycle + plan.lfsr_stuck_cycles)
                self._record("lfsr_stuck", bus)
        for entry in self._managers:
            manager, bus, until = entry
            if until is not None:
                if cycle >= until:
                    manager.restore_ticket_channel()
                    entry[2] = None
            elif self._rng.random() < plan.ticket_outage_rate:
                manager.disable_ticket_channel()
                entry[2] = cycle + plan.ticket_outage_cycles
                self._record("ticket_outage", bus)
                self.stats.record_degradation()
                bus.metrics.faults.record_degradation()

    def next_activity(self, cycle):
        # Window-fault scheduling (stuck LFSRs, ticket outages) draws the
        # RNG every tick, so those schedules force dense ticking.  The
        # pull-side hooks (word/grant/stall/bridge faults) fire only
        # during transfers, when the bus keeps the kernel dense anyway,
        # and consume no RNG on idle cycles — skip-compatible.
        if self._sources or self._managers:
            return cycle
        return None

    def reset(self):
        from repro.metrics.collector import FaultStats

        self._rng.reset()
        self.stats = FaultStats()
        for wrapper, _ in self._sources:
            wrapper.release()
            wrapper.stuck_draws = 0
        for entry in self._managers:
            entry[2] = None
