"""Command-line interface: regenerate any paper table or figure.

Examples::

    lotterybus list
    lotterybus table1
    lotterybus figure12a --scale 0.25 --seed 7
    lotterybus all --scale 0.1
    python -m repro figure5
"""

import argparse
import sys

from repro.experiments.runner import (
    experiment_names,
    format_full_report,
    run_all,
    run_experiment,
)


def build_parser():
    parser = argparse.ArgumentParser(
        prog="lotterybus",
        description="LOTTERYBUS (DAC 2001) reproduction experiment runner",
    )
    parser.add_argument(
        "experiment",
        help='an experiment id, "all", or "list"',
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="scale simulation cycle counts (default 1.0 = paper-length runs)",
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="root RNG seed (default 1)"
    )
    parser.add_argument(
        "--fault-rate",
        type=float,
        default=None,
        help=(
            "faultsweep only: sweep just {0, RATE} instead of the default "
            "fault-rate ladder"
        ),
    )
    parser.add_argument(
        "--output",
        help="also write the report to this file",
    )
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    options = {}
    if args.fault_rate is not None:
        options["fault_rates"] = (0.0, args.fault_rate)
    if args.experiment == "list":
        report = "\n".join(experiment_names())
    elif args.experiment == "all":
        if options:
            print("--fault-rate applies only to faultsweep", file=sys.stderr)
            return 2
        results = run_all(scale=args.scale, seed=args.seed)
        report = format_full_report(results)
    else:
        try:
            result = run_experiment(
                args.experiment, scale=args.scale, seed=args.seed, **options
            )
        except ValueError as error:
            print(str(error), file=sys.stderr)
            return 2
        report = result.format_report()
    print(report)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(report + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
