"""Content-hash incremental cache: warm lint runs re-parse nothing.

Whole-program analysis made the linter do strictly more work per file
(parse → extract a flow summary → project passes), so PR 10 also makes
repeat runs cheap: each file's *per-file* results — the file-rule
findings (post-suppression) and the flow summary — are keyed by a
sha256 of the file's bytes and persisted to ``.lint-cache.json``.  On a
warm run every unchanged file is a cache hit: no parse, no AST walk, no
extraction.  The project passes (call graph, thread reachability,
LB2xx rules) always run, rebuilt from the cached summaries — they are
cross-file by definition and cheap next to parsing.

The cache is invalidated wholesale when anything that could change
per-file results changes: the cache format, the summary schema
(:data:`~repro.analysis.flow.summary.SUMMARY_VERSION`), or the selected
rule set.  A corrupt or stale cache file is indistinguishable from an
empty one — the linter silently runs cold and rewrites it.  The file is
local state, never committed (gitignored).

The whole-program pass is memoized too, at the coarsest sound grain:
its result is a pure function of the full set of (path, content-hash)
pairs, so its findings are cached under a digest of exactly that.  A
fully warm run therefore skips the project build as well — it reads
bytes, hashes them, and replays both layers of findings.  Any single
changed, added or removed file misses the project key and the passes
rebuild from the (mostly cached) summaries.
"""

import hashlib
import json
import os

from repro.analysis.flow.summary import SUMMARY_VERSION
from repro.ioutil import atomic_write

CACHE_VERSION = 1
DEFAULT_CACHE_NAME = ".lint-cache.json"


def content_digest(text):
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def project_key(path_digests):
    """Digest of the whole analyzed file set — the project-pass key."""
    blob = json.dumps(sorted(path_digests), sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class LintCache:
    """Per-file (findings, summary) results keyed by content hash."""

    def __init__(self, path, rule_ids):
        self.path = path
        self.rule_ids = sorted(rule_ids)
        self.entries = {}
        self.project = None  # {"key": ..., "findings": [...]}
        self.hits = 0
        self.misses = 0
        self._dirty = False

    @classmethod
    def load(cls, path, rule_ids):
        """Load the cache; any mismatch or damage yields an empty one."""
        cache = cls(path, rule_ids)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return cache
        if (
            not isinstance(payload, dict)
            or payload.get("version") != CACHE_VERSION
            or payload.get("summary_version") != SUMMARY_VERSION
            or payload.get("rules") != cache.rule_ids
            or not isinstance(payload.get("entries"), dict)
        ):
            return cache
        cache.entries = payload["entries"]
        project = payload.get("project")
        if isinstance(project, dict) and isinstance(
                project.get("findings"), list):
            cache.project = project
        return cache

    def lookup(self, display_path, digest):
        """The cached ``{"findings": [...], "summary": {...}}`` for an
        unchanged file, or ``None`` (counts hit/miss either way)."""
        entry = self.entries.get(display_path)
        if entry is not None and entry.get("digest") == digest:
            self.hits += 1
            return entry
        self.misses += 1
        return None

    def store(self, display_path, digest, findings, summary):
        self.entries[display_path] = {
            "digest": digest,
            "findings": findings,
            "summary": summary,
        }
        self._dirty = True

    def project_lookup(self, key):
        """Cached whole-program finding dicts for an unchanged file
        set, or ``None``."""
        if self.project is not None and self.project.get("key") == key:
            return self.project["findings"]
        return None

    def project_store(self, key, findings):
        self.project = {"key": key, "findings": findings}
        self._dirty = True

    def save(self):
        if not self._dirty and os.path.exists(self.path):
            return
        payload = {
            "version": CACHE_VERSION,
            "summary_version": SUMMARY_VERSION,
            "rules": self.rule_ids,
            "entries": self.entries,
            "project": self.project,
        }
        try:
            atomic_write(self.path, json.dumps(payload, sort_keys=True))
        except OSError:
            pass  # a read-only checkout still lints, just never warm

    def stats_line(self):
        total = self.hits + self.misses
        rate = (100.0 * self.hits / total) if total else 0.0
        return "cache: {} hits / {} misses ({:.1f}% warm, {})".format(
            self.hits, self.misses, rate, self.path
        )
