"""LB203: interprocedural seed threading.

LB105 (PR 5) checks *signatures*: experiment entry points must accept a
seed parameter and mention it somewhere in the body.  That is easy to
satisfy vacuously — pass the seed to a helper that drops it on the
floor and LB105 is happy while every run still self-seeds from the OS.

LB203 follows the value: every seed-carrying parameter of every
function in the ``repro`` package must *reach a sink* — an RNG or
derived-seed constructor, a ``self.*`` store (deliberate threading for
later use), a return value (the caller inherits the obligation), or an
arithmetic use (seed derivation).  Forwarding to another in-project
function discharges the obligation only if that function's matching
parameter reaches a sink itself, computed recursively over the resolved
call graph; forwarding to code outside the index is trusted (no view
inside, so no claim — a documented false-negative source, never a
false positive).
"""

from repro.analysis.core import Finding, Rule, register
from repro.analysis.rules.lb105_seeds import SEED_PARAMS

#: Call-target suffixes that consume a seed by construction.
SINK_SUFFIXES = frozenset((
    "Random", "RandomState", "default_rng", "SeedSequence", "seed",
    "getrandbits", "child_seed", "derive_seed", "spawn_seed",
))

_MAX_DEPTH = 8


@register
class SeedFlowRule(Rule):
    id = "LB203"
    name = "seed-flow"
    description = (
        "seed parameter never reaches an RNG or derived-seed sink "
        "(accepted but discarded)"
    )
    project = True

    def check_project(self, project):
        memo = {}
        for key in sorted(project.funcs):
            func = project.funcs[key]
            if not _in_repro(func.module):
                continue
            summary = func.summary
            if _is_abstract(summary):
                continue
            for param in summary["params"]:
                if param not in SEED_PARAMS:
                    continue
                if self._consumed(project, func, param, memo, 0):
                    continue
                yield Finding(
                    self.id,
                    project._func_path(func),
                    summary["line"], 0,
                    "seed parameter {!r} of {} never reaches an RNG, "
                    "derived-seed constructor, store or return — the "
                    "caller's seed is silently discarded and the run "
                    "self-seeds".format(param, key.split(":", 1)[1]),
                    summary["code"],
                )

    def _consumed(self, project, func, param, memo, depth):
        key = (func.key, param)
        if key in memo:
            return memo[key]
        if depth > _MAX_DEPTH:
            return True  # recursion bound: trust rather than accuse
        memo[key] = True  # cycles count as consumed (no false positives)
        result = self._consumed_uncached(project, func, param, memo, depth)
        memo[key] = result
        return result

    def _consumed_uncached(self, project, func, param, memo, depth):
        summary = func.summary
        uses = summary["param_uses"].get(param, {})
        # Arithmetic / computed use: the seed feeds a derivation.
        if uses.get("escapes"):
            return True
        # Closure capture: a nested function reads the name — the
        # factory pattern (``def make(): return Random(seed)``).
        if self._captured_by_descendant(project, func, param):
            return True
        # Stored on self (threading for later use) or returned.
        for descriptor in summary["self_assigns"].values():
            if descriptor.get("k") == "name" and descriptor.get("n") == param:
                return True
        for descriptor in summary["returns"]:
            if descriptor.get("k") == "name" and descriptor.get("n") == param:
                return True
        # Passed to a thread/process entry: consumed there.
        for spawn in summary["spawns"]:
            if param in spawn["args"]:
                return True
        # Forwarded into calls.
        for record in summary["calls"]:
            slots = [
                index for index, arg in enumerate(record["args"])
                if arg == param
            ]
            kw_slots = [
                name for name, arg in record["kwargs"].items()
                if arg == param
            ]
            if not slots and not kw_slots:
                continue
            target_last = record["t"].rsplit(".", 1)[-1]
            if target_last in SINK_SUFFIXES or "seed" in target_last.lower() \
                    or "rng" in target_last.lower():
                return True
            callee_key = project.resolve_call(func, record)
            if callee_key is None:
                return True  # out-of-index callee: trusted
            callee = project.funcs[callee_key]
            params = list(callee.summary["params"])
            if params and params[0] == "self" and \
                    callee.summary["cls"] is not None:
                params = params[1:]
            for slot in slots:
                if slot < len(params) and self._consumed(
                        project, callee, params[slot], memo, depth + 1):
                    return True
            for name in kw_slots:
                if name in callee.summary["params"] and self._consumed(
                        project, callee, name, memo, depth + 1):
                    return True
        return False

    def _captured_by_descendant(self, project, func, param):
        target = func.summary["qualname"]
        prefix = func.module + ":"
        for key, other in project.funcs.items():
            if not key.startswith(prefix) or other is func:
                continue
            if param not in other.summary["name_reads"]:
                continue
            if param in other.summary["params"]:
                continue  # shadowed: its own parameter, not our capture
            parent = other.summary.get("parent")
            hops = 0
            while parent is not None and hops < 8:
                if parent == target:
                    return True
                owner = project.funcs.get(prefix + parent)
                if owner is None:
                    break
                parent = owner.summary.get("parent")
                hops += 1
        return False


def _in_repro(module):
    return module == "repro" or module.startswith("repro.")


def _is_abstract(summary):
    for record in summary["raises"]:
        if record["exc"].rsplit(".", 1)[-1] == "NotImplementedError":
            return True
    return False
