"""Property-based tests (hypothesis) for the extension modules."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.atm.header import decode_header, encode_header, verify
from repro.core.compensation import CompensationPolicy
from repro.core.energy_model import estimate_run_energy
from repro.core.flows import FlowLotteryManager, FlowTicketTable
from repro.core.hardware_model import estimate_static_manager
from repro.core.rtl_export import StaticLotteryRtl, evaluate_reference_model
from repro.metrics.collector import MetricsCollector
from repro.metrics.stats import confidence_interval, mean


@given(
    vpi=st.integers(min_value=0, max_value=255),
    vci=st.integers(min_value=0, max_value=0xFFFF),
    pt=st.integers(min_value=0, max_value=7),
    clp=st.integers(min_value=0, max_value=1),
    gfc=st.integers(min_value=0, max_value=15),
)
def test_header_encode_decode_round_trip(vpi, vci, pt, clp, gfc):
    header = encode_header(vpi=vpi, vci=vci, pt=pt, clp=clp, gfc=gfc)
    assert verify(header)
    fields = decode_header(header)
    assert fields == {"gfc": gfc, "vpi": vpi, "vci": vci, "pt": pt, "clp": clp}


@given(
    vpi=st.integers(min_value=0, max_value=255),
    vci=st.integers(min_value=0, max_value=0xFFFF),
    octet=st.integers(min_value=0, max_value=4),
    bit=st.integers(min_value=0, max_value=7),
)
def test_header_detects_any_single_bit_flip(vpi, vci, octet, bit):
    header = encode_header(vpi=vpi, vci=vci)
    header[octet] ^= 1 << bit
    assert not verify(header)


@given(
    tickets=st.lists(st.integers(min_value=1, max_value=20), min_size=1,
                     max_size=5),
    bursts=st.lists(st.integers(min_value=1, max_value=32), min_size=1,
                    max_size=20),
    data=st.data(),
)
def test_compensation_holdings_always_valid(tickets, bursts, data):
    policy = CompensationPolicy(tickets, max_burst=16, cap=255)
    for burst in bursts:
        master = data.draw(
            st.integers(min_value=0, max_value=len(tickets) - 1)
        )
        policy.on_grant(master, burst)
        holdings = policy.holdings()
        assert all(1 <= h <= 255 for h in holdings)
        # A full-quantum user is never inflated above its base holding.
        if burst >= 16:
            assert holdings[master] == tickets[master]


@given(
    flows=st.dictionaries(
        st.sampled_from(["a", "b", "c", "d"]),
        st.integers(min_value=1, max_value=50),
        min_size=1,
    ),
    heads=st.lists(
        st.one_of(st.none(), st.sampled_from(["a", "b", "c", "d", "other"])),
        min_size=1,
        max_size=6,
    ),
)
def test_flow_lottery_winner_is_always_pending(flows, heads):
    manager = FlowLotteryManager(FlowTicketTable(flows), lfsr_seed=7)
    winner = manager.draw(heads)
    if all(flow is None for flow in heads):
        assert winner is None
    else:
        assert heads[winner] is not None


@settings(max_examples=20)
@given(st.lists(st.integers(min_value=1, max_value=9), min_size=2, max_size=4))
def test_rtl_reference_model_equals_python_for_random_tickets(tickets):
    from repro.core.lottery_manager import StaticLotteryManager, select_winner

    rtl = StaticLotteryRtl(tickets)
    manager = StaticLotteryManager(tickets)
    request_map = [True] * len(tickets)
    sums = manager.table.partial_sums(request_map)
    for draw in range(0, rtl.total, max(1, rtl.total // 16)):
        assert evaluate_reference_model(rtl, request_map, draw) == (
            select_winner(draw, sums)
        )


@given(
    words=st.lists(st.integers(min_value=0, max_value=500), min_size=1,
                   max_size=4),
    cycles=st.integers(min_value=1, max_value=2000),
)
def test_energy_is_nonnegative_and_monotone_in_words(words, cycles):
    hardware = estimate_static_manager(len(words), 16)
    collector = MetricsCollector(len(words))
    for _ in range(cycles):
        collector.observe_cycle()
    for master, count in enumerate(words):
        for _ in range(min(count, cycles)):
            collector.record_word(master)
    breakdown = estimate_run_energy(collector, hardware, arbitrations=1)
    assert breakdown.total_pj >= 0
    assert breakdown.transfer_pj == collector.total_words * 12.0


@given(
    st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=30)
)
def test_confidence_interval_contains_the_mean(values):
    mu, halfwidth = confidence_interval(values)
    assert mu == mean(values)
    assert halfwidth >= 0
