"""CLI, baseline and self-check tests for ``python -m repro.lint``."""

import json
import os
import shutil
import subprocess
import sys

from repro.analysis import Baseline, lint_file
from repro.analysis.baseline import BaselineError

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FIXTURES = os.path.join(REPO_ROOT, "tests", "fixtures", "lint")
SRC = os.path.join(REPO_ROOT, "src")


def run_lint(*args, cwd=REPO_ROOT):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.lint"] + list(args),
        cwd=cwd,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


# ---------------------------------------------------------------------------
# The self-check: the shipped tree is clean against the shipped baseline.
# ---------------------------------------------------------------------------


def test_repo_tree_is_clean_against_committed_baseline():
    result = run_lint("src/", "tests/")
    assert result.returncode == 0, result.stdout + result.stderr
    assert "clean: no unbaselined findings" in result.stdout


def test_bad_fixture_fails_the_cli_with_exit_1():
    result = run_lint(os.path.join(FIXTURES, "lb101_bad.py"))
    assert result.returncode == 1
    assert "LB101" in result.stdout


def test_every_rule_has_a_fixture_verified_true_positive():
    for rule in ("LB101", "LB102", "LB103", "LB104", "LB105", "LB106"):
        bad = os.path.join(FIXTURES, "{}_bad.py".format(rule.lower()))
        result = run_lint("--select", rule, bad)
        assert result.returncode == 1, "{} bad fixture not caught".format(rule)
        assert rule in result.stdout


def test_introducing_a_bad_file_into_the_tree_fails(tmp_path):
    tree = tmp_path / "pkg"
    tree.mkdir()
    shutil.copy(
        os.path.join(FIXTURES, "lb105_bad.py"), str(tree / "newexp.py")
    )
    result = run_lint(str(tree))
    assert result.returncode == 1
    assert "LB105" in result.stdout


def test_fixture_directory_is_excluded_from_tree_walks_only(tmp_path):
    # Walking tests/ skips fixtures/ (the tree self-check depends on it)…
    result = run_lint("tests/")
    assert result.returncode == 0
    # …but naming a fixture file explicitly always lints it.
    result = run_lint(os.path.join(FIXTURES, "lb103_bad.py"))
    assert result.returncode == 1


# ---------------------------------------------------------------------------
# Output formats and exit codes.
# ---------------------------------------------------------------------------


def test_json_report_shape():
    result = run_lint(
        "--format", "json", os.path.join(FIXTURES, "lb102_bad.py")
    )
    assert result.returncode == 1
    payload = json.loads(result.stdout)
    assert payload["version"] == 1
    assert payload["summary"]["total"] == len(payload["findings"]) > 0
    assert payload["summary"]["by_rule"].keys() == {"LB102"}
    finding = payload["findings"][0]
    assert {"rule", "path", "line", "col", "message", "code"} <= set(finding)


def test_json_report_clean_tree_has_empty_findings():
    result = run_lint(
        "--format", "json", os.path.join(FIXTURES, "lb101_good.py")
    )
    assert result.returncode == 0
    payload = json.loads(result.stdout)
    assert payload["findings"] == []


def test_unknown_rule_is_a_usage_error():
    result = run_lint("--select", "LB999", "src/")
    assert result.returncode == 2
    assert "unknown rule" in result.stderr


def test_missing_path_is_a_usage_error():
    result = run_lint("no/such/dir")
    assert result.returncode == 2


def test_list_rules_prints_catalog():
    result = run_lint("--list-rules")
    assert result.returncode == 0
    for rule in ("LB101", "LB102", "LB103", "LB104", "LB105", "LB106"):
        assert rule in result.stdout


# ---------------------------------------------------------------------------
# Baseline workflow.
# ---------------------------------------------------------------------------


def test_write_baseline_then_lint_is_clean(tmp_path):
    bad = os.path.join(FIXTURES, "lb104_bad.py")
    baseline = str(tmp_path / "baseline.json")
    written = run_lint("--write-baseline", baseline, bad)
    assert written.returncode == 0
    result = run_lint("--baseline", baseline, bad)
    assert result.returncode == 0, result.stdout
    assert "baselined finding" in result.stdout


def test_baseline_does_not_mask_new_findings(tmp_path):
    baseline = str(tmp_path / "baseline.json")
    run_lint(
        "--write-baseline", baseline, os.path.join(FIXTURES, "lb104_bad.py")
    )
    # A different bad file is not covered by that baseline.
    result = run_lint(
        "--baseline", baseline, os.path.join(FIXTURES, "lb105_bad.py")
    )
    assert result.returncode == 1


def test_stale_baseline_entries_are_reported(tmp_path):
    baseline = str(tmp_path / "baseline.json")
    Baseline(
        [
            {
                "rule": "LB101",
                "path": "src/gone.py",
                "code": "x = time.time()",
                "justification": "was needed once",
            }
        ]
    ).save(baseline)
    result = run_lint(
        "--baseline", baseline, os.path.join(FIXTURES, "lb101_good.py")
    )
    assert result.returncode == 0
    assert "stale baseline entry" in result.stdout


def test_no_baseline_flag_reports_accepted_findings():
    result = run_lint("--no-baseline", "src/")
    assert result.returncode == 1
    assert "run_task_spec" in result.stdout


def test_committed_baseline_justifications_are_non_empty():
    baseline = Baseline.load(os.path.join(REPO_ROOT, "lint-baseline.json"))
    for entry in baseline.entries:
        assert entry["justification"].strip()
        assert "TODO" not in entry["justification"]


def test_baseline_rejects_malformed_entries(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"version": 1, "entries": [{"rule": "LB101"}]}')
    try:
        Baseline.load(str(path))
    except BaselineError:
        pass
    else:
        raise AssertionError("malformed baseline accepted")


def test_baseline_matching_survives_line_drift(tmp_path):
    original = os.path.join(FIXTURES, "lb105_bad.py")
    baseline = str(tmp_path / "baseline.json")
    run_lint("--write-baseline", baseline, original)
    # Same content shifted 20 lines down: fingerprints still match.
    shifted = tmp_path / "lb105_shifted.py"
    with open(original) as handle:
        content = handle.read()
    directive, rest = content.split("\n", 1)
    shifted.write_text(directive + "\n" + "#\n" * 20 + rest)
    entries = json.load(open(baseline))["entries"]
    for entry in entries:
        entry["path"] = _display(str(shifted))
    json.dump({"version": 1, "entries": entries}, open(baseline, "w"))
    result = run_lint("--baseline", baseline, str(shifted))
    assert result.returncode == 0, result.stdout


def _display(path):
    rel = os.path.relpath(path, REPO_ROOT)
    if not rel.startswith(".."):
        path = rel
    return path.replace(os.sep, "/")


def test_lint_file_api_matches_cli(tmp_path):
    findings = lint_file(os.path.join(FIXTURES, "lb103_bad.py"))
    assert {f.rule for f in findings} == {"LB103"}
    assert all(f.code for f in findings)
