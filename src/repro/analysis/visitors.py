"""Shared AST inspection helpers used by the rules.

Everything here is purely syntactic: no imports of the analyzed code,
no name resolution beyond what a single file's AST supports.  Rules that
need inheritance information resolve base classes *within the file* and
treat unresolvable bases conservatively (documented per rule).
"""

import ast


def iter_classes(tree):
    """Every ClassDef in the module, including nested ones."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            yield node


def class_methods(class_node):
    """Mapping of method name -> FunctionDef for a class body (direct
    children only — nested helper defs are not methods)."""
    methods = {}
    for item in class_node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            methods[item.name] = item
    return methods


def class_tuple_attr(class_node, name):
    """The string elements of a class-level tuple assignment like
    ``state_attrs = ("a", "b")``; ``None`` when the class does not
    declare ``name`` at all (distinct from declaring it empty)."""
    for item in class_node.body:
        if isinstance(item, ast.Assign):
            targets = item.targets
        elif isinstance(item, ast.AnnAssign) and item.value is not None:
            targets = [item.target]
        else:
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id == name:
                return _constant_strings(item.value)
    return None


def _constant_strings(node):
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        return tuple(
            element.value
            for element in node.elts
            if isinstance(element, ast.Constant)
            and isinstance(element.value, str)
        )
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return (node.value,)
    return ()


def self_attr_target(node):
    """The attribute name when ``node`` is a ``self.X`` store target
    (plain or subscripted: ``self.X = ...`` / ``self.X[k] = ...``),
    else ``None``."""
    if isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def iter_self_mutations(func_node):
    """Yield ``(attr_name, stmt)`` for every statement in ``func_node``
    that writes a ``self`` attribute: plain assignment, subscript
    assignment, augmented assignment, and ``del self.X``."""
    for stmt in ast.walk(func_node):
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                attr = self_attr_target(target)
                if attr:
                    yield attr, stmt
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            attr = self_attr_target(stmt.target)
            if attr:
                yield attr, stmt
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                attr = self_attr_target(target)
                if attr:
                    yield attr, stmt


def self_attr_reads(node):
    """All ``self.X`` attribute names loaded anywhere under ``node``."""
    reads = set()
    for child in ast.walk(node):
        if (
            isinstance(child, ast.Attribute)
            and isinstance(child.value, ast.Name)
            and child.value.id == "self"
        ):
            reads.add(child.attr)
    return reads


def references_self_attr(node, attr):
    """True when ``self.<attr>`` appears (in any position) under ``node``."""
    return attr in self_attr_reads(node)


def call_name(node):
    """Dotted name of a call target: ``Call(func=Name)`` -> ``"f"``,
    ``Call(func=Attribute(Name))`` -> ``"mod.f"``; ``None`` otherwise."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    parts = []
    while isinstance(func, ast.Attribute):
        parts.append(func.attr)
        func = func.value
    if isinstance(func, ast.Name):
        parts.append(func.id)
        return ".".join(reversed(parts))
    return None


def contains_name(node, name):
    """True when a ``Name`` node with id ``name`` occurs under ``node``."""
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and child.id == name:
            return True
    return False


def calls_super_method(func_node, method_name):
    """True when ``func_node`` contains ``super().<method_name>(...)``."""
    for node in ast.walk(func_node):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == method_name
            and isinstance(node.func.value, ast.Call)
            and call_name(node.func.value) == "super"
        ):
            return True
    return False


def in_file_bases(class_node, tree):
    """Transitively resolve a class's base classes *within this file*.

    Returns ``(resolved, unresolved)``: ClassDef nodes found in the
    file, and the bare names of bases defined elsewhere.
    """
    by_name = {
        node.name: node for node in ast.walk(tree)
        if isinstance(node, ast.ClassDef)
    }
    resolved, unresolved, queue, seen = [], [], list(class_node.bases), set()
    while queue:
        base = queue.pop(0)
        name = base.id if isinstance(base, ast.Name) else None
        if name is None and isinstance(base, ast.Attribute):
            name = base.attr
        if name is None or name in seen:
            continue
        seen.add(name)
        if name in by_name:
            node = by_name[name]
            resolved.append(node)
            queue.extend(node.bases)
        else:
            unresolved.append(name)
    return resolved, unresolved


def hierarchy_defines(class_node, tree, method_name):
    """Whether the class or an in-file ancestor defines ``method_name``.

    Returns ``"yes"``, ``"no"`` or ``"unknown"`` (an out-of-file base
    might define it)."""
    if method_name in class_methods(class_node):
        return "yes"
    resolved, unresolved = in_file_bases(class_node, tree)
    for base in resolved:
        if method_name in class_methods(base):
            return "yes"
    # Bases that are known leaf/framework classes cannot hide overrides.
    known_roots = {"object", "Component", "Snapshottable", "Arbiter"}
    if set(unresolved) - known_roots:
        return "unknown"
    return "no"
