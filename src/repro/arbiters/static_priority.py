"""Static priority based arbitration (Section 2.1).

"The bus arbiter periodically examines accumulated requests from the
master interfaces, and grants bus access to the master of highest
priority among the requesting masters."
"""

from repro.arbiters.base import Arbiter
from repro.bus.transaction import Grant


class StaticPriorityArbiter(Arbiter):
    """Always grants the highest-priority pending master.

    :param priorities: one value per master; **larger values mean higher
        priority** (the paper assigns 1..4 with 4 the highest).  Values
        must be unique so arbitration is deterministic.
    """

    name = "static-priority"

    # Stateless: idle rounds are pure no-ops.
    supports_idle_skip = True

    def __init__(self, priorities):
        super().__init__(len(priorities))
        priorities = [int(p) for p in priorities]
        if len(set(priorities)) != len(priorities):
            raise ValueError("priorities must be unique")
        self.priorities = tuple(priorities)
        # Masters sorted from highest to lowest priority; arbitration is
        # then a first-match scan, mirroring the hardware selector.
        self._order = sorted(
            range(len(priorities)), key=lambda m: -priorities[m]
        )

    def arbitrate(self, cycle, pending):
        self._check_pending(pending)
        for master in self._order:
            if pending[master]:
                return Grant(master)
        return None

    def vector_profile(self):
        """Batch-engine export: the fixed highest-to-lowest scan order
        (the whole arbiter — it holds no run-time state)."""
        return {"family": "static-priority", "order": list(self._order)}
