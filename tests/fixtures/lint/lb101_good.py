# lb: module=repro.sim.fixture_good
"""LB101 true negatives: the blessed equivalents of everything banned."""

import os
import random
import zlib


class SeededStream:
    """random.Random wrapped behind an explicit seed is the blessed path
    (this is literally what repro.sim.rng.RandomStream does)."""

    def __init__(self, seed):
        self._rng = random.Random(seed)

    def draw(self):
        return self._rng.random()


def arbitrate_sorted(masters):
    for master in sorted({"dma", "cpu", "dsp"}):
        if master in masters:
            return master
    return None


def sorted_listing(path):
    return sorted(os.listdir(path))


def stable_key(name):
    return zlib.crc32(name.encode("utf-8")) % 16


class Outcome:
    def __init__(self, winner):
        self.winner = winner

    def __hash__(self):
        # hash() inside __hash__ is how value objects compose hashes.
        return hash((type(self).__name__, self.winner))


def suppressed_wall_clock():
    import time

    return time.time()  # lb: noqa[LB101]
