"""Two-level TDMA arbitration (Section 2.2, Figure 2).

Level one is a timing wheel in which every slot is statically reserved
for one master; if that master has a pending request it receives a
single-word grant and the wheel rotates by one slot.  Level two
alleviates wasted slots: when the slot owner is idle, the slot is handed
to the next requesting master in round-robin order (the ``rr`` pointer
of Figure 2).

The wheel rotates exactly once per bus cycle in which the bus is free to
arbitrate (grants are single-word, so that is every transfer cycle), so
bandwidth reservations are proportional to slot counts and latency is
sensitive to the phase alignment of requests against the wheel — the
behaviour Figure 5 and Figure 12(b) demonstrate.
"""

from repro.arbiters.base import Arbiter
from repro.bus.transaction import Grant


class TdmaArbiter(Arbiter):
    """Two-level TDMA arbiter over an explicit slot reservation list.

    :param num_masters: number of masters on the bus.
    :param slots: the timing wheel — a sequence of master indices, e.g.
        ``[0, 0, 1, 2, 2, 2]``; reservations for one master are usually
        contiguous so back-to-back slots form bursts (Figure 5's "6
        contiguous slots defining the size of a burst").
    :param reclaim: second-level behaviour for idle slots:

        * ``"scan"`` (default, Figure 2's description) — the rr pointer
          advances to the next master with a pending request, so an idle
          slot is never wasted while anyone is waiting;
        * ``"single"`` — cheaper hardware that examines only the single
          next master after the rr pointer each slot; the slot is wasted
          if that one master is idle;
        * ``"none"`` — pure single-level TDMA, idle slots always wasted.
    """

    name = "tdma"

    _RECLAIM_POLICIES = ("scan", "single", "none")

    state_attrs = (
        "_position",
        "_rr",
        "level_one_grants",
        "level_two_grants",
        "wasted_slots",
    )

    def __init__(self, num_masters, slots, reclaim="scan"):
        super().__init__(num_masters)
        slots = [int(s) for s in slots]
        if not slots:
            raise ValueError("the timing wheel needs at least one slot")
        if any(s < 0 or s >= num_masters for s in slots):
            raise ValueError("slot reservations must name valid masters")
        if reclaim not in self._RECLAIM_POLICIES:
            raise ValueError(
                "reclaim must be one of {}".format(self._RECLAIM_POLICIES)
            )
        self.slots = tuple(slots)
        self.reclaim = reclaim
        self._position = 0
        self._rr = 0
        self.level_one_grants = 0
        self.level_two_grants = 0
        self.wasted_slots = 0

    @classmethod
    def from_slot_counts(cls, slot_counts, reclaim="scan"):
        """Build a wheel with contiguous blocks: counts per master.

        ``[2, 2, 3, 3]`` gives the wheel ``0 0 1 1 2 2 2 3 3 3``.
        """
        slots = []
        for master, count in enumerate(slot_counts):
            if count < 0:
                raise ValueError("slot counts must be non-negative")
            slots.extend([master] * count)
        return cls(len(slot_counts), slots, reclaim=reclaim)

    @property
    def current_owner(self):
        """The master owning the wheel's current slot."""
        return self.slots[self._position]

    def reset(self):
        self._position = 0
        self._rr = 0
        self.level_one_grants = 0
        self.level_two_grants = 0
        self.wasted_slots = 0

    # Idle rounds rotate the wheel and waste the slot; "single" reclaim
    # also advances the rr probe — all arithmetic, replayed by skip_idle.
    supports_idle_skip = True

    def skip_idle(self, cycles):
        self._position = (self._position + cycles) % len(self.slots)
        self.wasted_slots += cycles
        if self.reclaim == "single":
            self._rr = (self._rr + cycles) % self.num_masters

    def slot_counts(self):
        """Reserved slots per master."""
        counts = [0] * self.num_masters
        for slot in self.slots:
            counts[slot] += 1
        return counts

    def arbitrate(self, cycle, pending):
        self._check_pending(pending)
        owner = self.slots[self._position]
        self._position = (self._position + 1) % len(self.slots)
        if pending[owner]:
            self.level_one_grants += 1
            return Grant(owner, max_words=1)
        if self.reclaim == "scan":
            for offset in range(1, self.num_masters + 1):
                master = (self._rr + offset) % self.num_masters
                if pending[master]:
                    self._rr = master
                    self.level_two_grants += 1
                    return Grant(master, max_words=1)
        elif self.reclaim == "single":
            candidate = (self._rr + 1) % self.num_masters
            self._rr = candidate
            if pending[candidate]:
                self.level_two_grants += 1
                return Grant(candidate, max_words=1)
        self.wasted_slots += 1
        return None
