"""Section 5.2: hardware cost of the lottery manager.

Paper claims regenerated here: the 4-master static lottery manager maps
to ~1458 cell grids with ~3.1 ns arbitration on a 0.35 um cell-based
array, i.e. single-cycle arbitration past 300 MHz.
"""

import pytest
from conftest import run_once

from repro.experiments.hardware import run_hardware_comparison


def test_bench_hardware(benchmark):
    result = run_once(benchmark, run_hardware_comparison)
    print()
    print(result.format_report())
    static = result.by_name("static-lottery")
    assert static.area_cell_grids == pytest.approx(1458, rel=0.05)
    assert static.arbitration_ns == pytest.approx(3.1, rel=0.05)
    assert static.max_bus_mhz > 300
    dynamic = result.by_name("dynamic-lottery")
    assert dynamic.area_cell_grids > static.area_cell_grids
