"""Seeded execution of a :class:`~repro.chaos.plan.ChaosPlan`.

One :class:`ChaosInjector` lives in the supervising process and is
threaded through every infrastructure seam at once: worker dispatch
(:meth:`sabotage_dispatch`), result-store appends
(:meth:`mangle_store_append`) and cache stores
(:meth:`maybe_corrupt_cache_entry`).  Write faults *inside* worker
processes (checkpoint truncation, ``ENOSPC``) cannot share the parent's
generator, so each worker installs its own stream with
:func:`install_worker_chaos`, derived from the root seed and its worker
id via :func:`repro.sim.rng.child_seed` — fully deterministic per
worker regardless of scheduling.

Parent-side draws come from one seeded ``random.Random``; the draw
sequence is reproducible, though which dispatch or append consumes
each draw depends on completion order.  What must be exact — the final
campaign report — is compared bit-for-bit by the harness either way.
"""

import errno
import os
import random
import signal

from repro.chaos.plan import ChaosPlan
from repro.ioutil import set_write_fault_hook
from repro.sim.rng import child_seed

_CHECKPOINT_SUFFIXES = (".ckpt", ".done")


class ChaosInjector:
    """Draws faults from a seeded stream and keeps per-channel counts.

    :param plan: the :class:`~repro.chaos.plan.ChaosPlan` to execute.
    :param seed: root seed; the parent stream and every worker stream
        derive from it.
    """

    def __init__(self, plan, seed=1):
        if not isinstance(plan, ChaosPlan):
            raise TypeError("plan must be a ChaosPlan")
        self.plan = plan
        self.seed = seed
        self.rng = random.Random(child_seed(seed, "chaos-parent"))
        self.events = {kind: 0 for kind in ChaosPlan.KINDS}

    # -- parent-side seams -------------------------------------------------

    def sabotage_dispatch(self, worker):
        """Maybe kill or wedge a worker that was just sent a task.

        Returns the action label (``"SIGKILL"``/``"SIGSTOP"``) for the
        event log, or ``None``.  Kill wins the draw over stall so one
        dispatch suffers at most one fate.
        """
        if self.plan.kill_rate and self.rng.random() < self.plan.kill_rate:
            # One injector belongs to one supervisor run: every seam is
            # called from that run's single dispatch/reap loop, and the
            # events table is read after the run ends.  The engine
            # thread and __main__ never share an instance.
            self.events["kill"] += 1  # lb: noqa[LB201]
            worker.process.kill()
            return "SIGKILL"
        if self.plan.stall_rate and self.rng.random() < self.plan.stall_rate:
            self.events["stall"] += 1
            try:
                os.kill(worker.process.pid, signal.SIGSTOP)
            except (OSError, TypeError):
                # The worker died (or has no pid) before the stall could
                # land; there is nothing left to stall.
                return None
            return "SIGSTOP"
        return None

    def mangle_store_append(self, data):
        """Maybe tear or reject one result-store append.

        ``ENOSPC`` raises (the store caller degrades to in-memory);
        a torn write returns a strict prefix of the record, which the
        store's load-time recovery must truncate away.
        """
        if self.plan.enospc_rate and self.rng.random() < self.plan.enospc_rate:
            self.events["enospc"] += 1
            raise OSError(errno.ENOSPC, "chaos: no space left on device")
        if (
            self.plan.torn_write_rate
            and len(data) > 1
            and self.rng.random() < self.plan.torn_write_rate
        ):
            self.events["torn_write"] += 1
            return data[: self.rng.randrange(1, len(data))]
        return data

    def maybe_corrupt_cache_entry(self, path):
        """Maybe flip one byte of a freshly stored cache envelope."""
        if not self.plan.cache_corruption_rate:
            return False
        if self.rng.random() >= self.plan.cache_corruption_rate:
            return False
        try:
            with open(path, "r+b") as handle:
                raw = handle.read()
                if not raw:
                    return False
                offset = self.rng.randrange(len(raw))
                handle.seek(offset)
                handle.write(bytes([raw[offset] ^ 0xFF]))
        except OSError:
            return False
        self.events["cache_corruption"] += 1
        return True

    # -- worker-side seam --------------------------------------------------

    def worker_setup(self):
        """The ``(plan_state, seed)`` tuple shipped to pool workers,
        or ``None`` when no worker-side channel is active (workers then
        skip importing chaos entirely)."""
        if not self.plan.worker_active:
            return None
        return (self.plan.state_dict(), self.seed)

    def format_summary(self):
        """One grep-friendly accounting line for logs and CI asserts.

        Counts only parent-side draws; worker-side write faults
        (``enospc``/``checkpoint_corruption`` inside pool workers) fire
        in other processes and are flagged, not counted.
        """
        line = "chaos events: " + " ".join(
            "{}={}".format(kind, self.events[kind])
            for kind in ChaosPlan.KINDS
        )
        if self.plan.worker_active:
            line += " (+ worker-side write faults, not aggregated)"
        return line

    def __repr__(self):
        return "ChaosInjector(seed={}, {!r})".format(self.seed, self.plan)


def install_worker_chaos(plan_state, seed, worker_id):
    """Install the worker-side write-fault hook (called in the worker).

    The hook sees every :func:`repro.ioutil.atomic_write` in this
    process: any write may fail with ``ENOSPC``; checkpoint containers
    (``.ckpt``/``.done``) may additionally be truncated, producing
    exactly the torn artifacts the checkpoint readers must discard and
    recompute past.  The stream is ``child_seed(seed, "chaos-worker",
    worker_id)`` — deterministic per worker id.
    """
    plan = ChaosPlan.from_state(plan_state)
    rng = random.Random(child_seed(seed, "chaos-worker", worker_id))

    def hook(path, data):
        if plan.enospc_rate and rng.random() < plan.enospc_rate:
            raise OSError(errno.ENOSPC, "chaos: no space left on device")
        if (
            plan.checkpoint_corruption_rate
            and path.endswith(_CHECKPOINT_SUFFIXES)
            and len(data) > 1
            and rng.random() < plan.checkpoint_corruption_rate
        ):
            return data[: rng.randrange(1, len(data))]
        return data

    set_write_fault_hook(hook)
    return hook
