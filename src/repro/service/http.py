"""Dependency-free HTTP front-end: stdlib server, graceful SIGTERM.

This is *the* server the tests, the chaos harness and CI run — it needs
nothing beyond the standard library, so the crash-consistency story is
provable in the minimal environment.  (The FastAPI front-end in
:mod:`repro.service.app` is the same :class:`ServiceCore` behind a
framework; it is an optional extra, never a requirement.)

Request handling is a mechanical dispatch table into the core's
``(status, body, headers)`` triples.  Process lifecycle is the part
that matters:

* **SIGTERM → graceful drain → exit 143.**  The handler stops
  admissions (new submissions get a typed ``503 draining``), asks the
  supervisor to finish in-flight jobs, durably rewinds undispatched
  leases, shuts the listener down, and the process exits with the
  conventional ``128+15``.  A restart with the same ``--state-dir``
  resumes the queue exactly where the drain checkpointed it.
* **SIGINT → exit 130** (same drain, interactive convention).
"""

import errno
import json
import multiprocessing.util
import os
import signal
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.service.core import ServiceCore

#: Largest accepted request body; a submission is a few hundred bytes,
#: so anything near this is garbage or abuse, refused before parsing.
MAX_BODY_BYTES = 1 << 20

#: How long a restart may wait for its port.  A ``kill -9`` leaves the
#: dead server's forked supervisor workers holding the inherited
#: listening socket until they notice the parent is gone, so a
#: crash-restart on the same port can transiently see ``EADDRINUSE``
#: even though nothing is serving.
BIND_RETRY_SECONDS = 15.0

EXIT_SIGTERM = 143  # 128 + SIGTERM, the conventional graceful-kill code
EXIT_SIGINT = 130  # 128 + SIGINT


def _make_handler(core, on_event=None):
    """A request-handler class closed over one :class:`ServiceCore`."""

    class ServiceHandler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        # -- plumbing ----------------------------------------------------

        def log_message(self, format, *args):  # noqa: A002 - stdlib name
            if on_event is not None:
                on_event("http {} {}".format(
                    self.address_string(), format % args
                ))

        def _client_id(self):
            return (self.headers.get("X-Client-Id")
                    or self.client_address[0])

        def _send(self, result):
            status, body, headers = result
            payload = json.dumps(body).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(payload)))
            for name, value in headers.items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(payload)

        def _read_json(self):
            """The request body as JSON, or ``None`` after replying 4xx."""
            try:
                length = int(self.headers.get("Content-Length") or 0)
            except ValueError:
                length = -1
            if length < 0 or length > MAX_BODY_BYTES:
                self._send((400, {
                    "error": "missing or oversized request body",
                    "kind": "invalid-spec",
                }, {}))
                return None
            raw = self.rfile.read(length)
            try:
                return json.loads(raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError) as error:
                self._send((400, {
                    "error": "request body is not valid JSON: {}".format(
                        error
                    ),
                    "kind": "invalid-spec",
                }, {}))
                return None

        # -- dispatch ----------------------------------------------------

        def do_GET(self):
            path = self.path.split("?", 1)[0].rstrip("/") or "/"
            if path == "/healthz":
                return self._send(core.healthz())
            if path == "/readyz":
                return self._send(core.readyz())
            if path == "/stats":
                return self._send(core.stats())
            if path == "/jobs":
                return self._send(core.list_jobs())
            parts = path.strip("/").split("/")
            if len(parts) == 2 and parts[0] == "jobs":
                return self._send(core.job_status(parts[1]))
            if (len(parts) == 3 and parts[0] == "jobs"
                    and parts[2] == "result"):
                return self._send(core.job_result(parts[1]))
            self._send((404, {"error": "no such route: GET {}".format(path),
                              "kind": "not-found"}, {}))

        def do_POST(self):
            path = self.path.split("?", 1)[0].rstrip("/")
            if path == "/jobs":
                payload = self._read_json()
                if payload is not None:
                    self._send(core.submit(payload,
                                           client=self._client_id()))
                return
            if path == "/sweeps":
                payload = self._read_json()
                if payload is not None:
                    self._send(core.submit_sweep(payload,
                                                 client=self._client_id()))
                return
            self._send((404, {"error": "no such route: POST {}".format(path),
                              "kind": "not-found"}, {}))

        def do_DELETE(self):
            path = self.path.split("?", 1)[0].rstrip("/")
            parts = path.strip("/").split("/")
            if len(parts) == 2 and parts[0] == "jobs":
                return self._send(core.cancel(parts[1]))
            self._send((404, {
                "error": "no such route: DELETE {}".format(path),
                "kind": "not-found",
            }, {}))

    return ServiceHandler


class ServiceServer:
    """One listening server wrapping one :class:`ServiceCore`.

    Usable programmatically (tests drive ``start()`` / ``drain()``
    directly) or via :func:`run_server` which adds the signal handling.
    """

    def __init__(self, core, host="127.0.0.1", port=0, on_event=None,
                 bind_retry=BIND_RETRY_SECONDS):
        self.core = core
        handler = _make_handler(core, on_event=on_event)
        deadline = time.monotonic() + bind_retry
        while True:
            try:
                self.httpd = ThreadingHTTPServer((host, port), handler)
                break
            except OSError as error:
                if error.errno != errno.EADDRINUSE:
                    raise
                if port == 0 or time.monotonic() >= deadline:
                    raise
                # Crash-restart race: the previous server's orphaned
                # worker processes still hold the inherited listening
                # socket; they exit as soon as they see the parent die.
                time.sleep(0.25)
        # Workers forked from here on must not re-inherit the listener
        # across an exec (fork-only children are covered by the retry).
        os.set_inheritable(self.httpd.fileno(), False)
        # Forked supervisor workers inherit the listening socket; close
        # it in every child at fork time so an orphaned worker can never
        # hold the port against a crash-restart.
        multiprocessing.util.register_after_fork(
            self.httpd, lambda httpd: httpd.socket.close()
        )
        self.httpd.daemon_threads = True
        self._serve_thread = None

    @property
    def address(self):
        host, port = self.httpd.server_address[:2]
        return "http://{}:{}".format(host, port)

    def start(self):
        self.core.start()
        # Written once by the owning thread before any request or drain
        # thread exists; the later drain-side read is happens-after the
        # thread start that publishes it.
        self._serve_thread = threading.Thread(  # lb: noqa[LB201]
            target=self.httpd.serve_forever, name="service-http",
            daemon=True,
        )
        self._serve_thread.start()

    def serve_forever(self):
        """Foreground serving (the CLI path); returns on shutdown()."""
        self.core.start()
        self.httpd.serve_forever()

    def drain(self, timeout=None):
        """Stop admitting, finish in-flight work, stop the listener."""
        self.core.drain(timeout=timeout)
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(5.0)


def pick_free_port(host="127.0.0.1"):
    """An OS-assigned free TCP port (tests and the chaos harness)."""
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
        probe.bind((host, 0))
        return probe.getsockname()[1]


def run_server(core, host="127.0.0.1", port=8741, on_event=None):
    """Serve until SIGTERM/SIGINT; returns the conventional exit code.

    SIGTERM: stop admissions, drain in-flight jobs through the
    supervisor, durably rewind the rest, close the listener, return
    ``143``.  SIGINT does the same drain and returns ``130``.  The WAL
    left behind is a resumable checkpoint either way.
    """
    server = ServiceServer(core, host=host, port=port, on_event=on_event)
    received = {"signum": None}

    def _handle(signum, frame):
        received["signum"] = signum
        # Drain off the signal-handler frame: the drain joins threads
        # and does I/O, neither of which belongs in a signal context.
        threading.Thread(
            target=server.drain, kwargs={"timeout": 60.0},
            name="service-drain", daemon=True,
        ).start()

    previous_term = signal.signal(signal.SIGTERM, _handle)
    previous_int = signal.signal(signal.SIGINT, _handle)
    if on_event is not None:
        on_event("service listening on {}".format(server.address))
    try:
        server.serve_forever()
    finally:
        signal.signal(signal.SIGTERM, previous_term)
        signal.signal(signal.SIGINT, previous_int)
    if received["signum"] == signal.SIGTERM:
        return EXIT_SIGTERM
    if received["signum"] == signal.SIGINT:
        return EXIT_SIGINT
    return 0


def core_from_args(args, chaos=None, on_event=None):
    """Build a :class:`ServiceCore` from parsed CLI arguments."""
    cache_max_bytes = None
    if args.cache_max_mb is not None:
        cache_max_bytes = int(args.cache_max_mb * 1024 * 1024)
    return ServiceCore(
        args.state_dir,
        cache_dir=args.cache_dir,
        cache_max_bytes=cache_max_bytes,
        workers=args.workers,
        max_depth=args.queue_depth,
        rate=args.rate,
        burst=args.burst,
        timeout=args.timeout,
        retries=args.retries,
        quarantine_after=args.quarantine_after,
        circuit_breaker=args.circuit_breaker,
        chaos=chaos,
        on_event=on_event,
    )
