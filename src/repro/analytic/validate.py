"""Cross-validation of the surrogate against the simulator.

``validate_surrogate`` runs the real simulated sweep once over a grid
of (arbiter, traffic class) combinations, predicts every row with
:func:`repro.analytic.predict`, and reports three errors per
combination:

* ``share_error`` — max over masters of |predicted - simulated|
  bandwidth share (absolute);
* ``utilization_error`` — |predicted - simulated| bus utilization;
* ``latency_error`` — max over masters of the relative mean
  latency-per-word error, ``|pred - sim| / max(sim, 1)``.

The checked-in :data:`repro.analytic.bounds.ERROR_BOUNDS` were
calibrated from this driver at the pinned
:data:`~repro.analytic.bounds.CALIBRATION` settings (margin over the
worst observed error across seeds); the table-driven regression tests
and ``python -m repro.bench --analytic`` re-run it and fail on any
bound violation.

Run directly to recalibrate after a model change::

    python -m repro.analytic.validate --seeds 1 2 3 --margin 1.5
"""

import argparse
import sys

from repro.analytic.bounds import CALIBRATION, bound_for
from repro.analytic.model import predict, supported_arbiters
from repro.metrics.report import format_table


class ValidationReport:
    """Per-combination surrogate errors plus bound verdicts."""

    def __init__(self, rows, cycles, seed):
        self.rows = rows
        self.cycles = cycles
        self.seed = seed

    @property
    def violations(self):
        """Rows exceeding their checked-in bound (or missing one)."""
        return [row for row in self.rows if not row["within_bounds"]]

    @property
    def ok(self):
        return not self.violations

    def max_errors(self):
        """Worst observed error per metric across the grid."""
        return {
            "share": max(r["share_error"] for r in self.rows),
            "utilization": max(r["utilization_error"] for r in self.rows),
            "latency": max(r["latency_error"] for r in self.rows),
        }

    def format_report(self):
        table = []
        for row in self.rows:
            bound = row["bound"]
            table.append([
                row["arbiter"],
                row["traffic"],
                "{:.4f}".format(row["share_error"]),
                "{:.4f}".format(row["utilization_error"]),
                "{:.4f}".format(row["latency_error"]),
                (
                    "{:.3f}/{:.3f}/{:.3f}".format(
                        bound.share, bound.utilization, bound.latency
                    )
                    if bound is not None else "(none)"
                ),
                "ok" if row["within_bounds"] else "VIOLATED",
            ])
        return format_table(
            ["arbiter", "traffic", "share err", "util err", "lat err",
             "bound s/u/l", "verdict"],
            table,
            title="Surrogate cross-validation ({} cycles, seed {})".format(
                self.cycles, self.seed
            ),
        )


def _row_errors(predicted, simulated_row, num_masters=4):
    share_error = max(
        abs(
            predicted.bandwidth_shares[i]
            - simulated_row["share{}".format(i)]
        )
        for i in range(num_masters)
    )
    utilization_error = abs(
        predicted.utilization - simulated_row["utilization"]
    )
    latency_error = max(
        abs(
            predicted.latencies_per_word[i]
            - simulated_row["latency{}".format(i)]
        ) / max(simulated_row["latency{}".format(i)], 1.0)
        for i in range(num_masters)
    )
    return share_error, utilization_error, latency_error


def validate_surrogate(arbiters=None, traffic_classes=None, weights=None,
                       cycles=None, warmup=None, seed=1, backend="auto",
                       jobs=None):
    """Cross-validate predict() against one simulated sweep.

    Defaults run the full calibration grid — every supported arbiter
    family crossed with T1-T9 at the pinned CALIBRATION settings.
    Returns a :class:`ValidationReport`.
    """
    from repro.experiments.sweep import run_sweep

    arbiters = list(arbiters or supported_arbiters())
    traffic_classes = list(
        traffic_classes or CALIBRATION["traffic_classes"]
    )
    weights = tuple(weights or CALIBRATION["weights"])
    cycles = CALIBRATION["cycles"] if cycles is None else cycles
    warmup = CALIBRATION["warmup"] if warmup is None else warmup

    sweep = run_sweep(
        arbiters,
        traffic_classes,
        weights=weights,
        cycles=cycles,
        seed=seed,
        warmup=warmup,
        backend=backend,
        jobs=jobs,
    )
    rows = []
    for arbiter_name in arbiters:
        for traffic_name in traffic_classes:
            (simulated,) = sweep.filter(
                arbiter=arbiter_name, traffic=traffic_name
            )
            predicted = predict(
                arbiter_name, traffic_name, weights=weights,
                horizon=cycles,
            )
            share_err, util_err, lat_err = _row_errors(predicted, simulated)
            bound = bound_for(arbiter_name, traffic_name)
            within = bound is not None and (
                share_err <= bound.share
                and util_err <= bound.utilization
                and lat_err <= bound.latency
            )
            rows.append({
                "arbiter": arbiter_name,
                "traffic": traffic_name,
                "share_error": share_err,
                "utilization_error": util_err,
                "latency_error": lat_err,
                "bound": bound,
                "within_bounds": within,
                "predicted": predicted.row(),
                "simulated": simulated,
            })
    return ValidationReport(rows, cycles=cycles, seed=seed)


def _suggest_bounds(reports, margin, floors=(0.01, 0.01, 0.05)):
    """Worst observed error across reports, inflated by ``margin`` and
    floored — the literal table pasted into bounds.py."""
    worst = {}
    for report in reports:
        for row in report.rows:
            key = (row["arbiter"], row["traffic"])
            share, util, lat = worst.get(key, (0.0, 0.0, 0.0))
            worst[key] = (
                max(share, row["share_error"]),
                max(util, row["utilization_error"]),
                max(lat, row["latency_error"]),
            )
    lines = []
    for (arbiter, traffic), (share, util, lat) in sorted(worst.items()):
        lines.append(
            '    ("{}", "{}"): ErrorBound({:.3f}, {:.3f}, {:.3f}),'.format(
                arbiter, traffic,
                max(share * margin, floors[0]),
                max(util * margin, floors[1]),
                max(lat * margin, floors[2]),
            )
        )
    return "\n".join(lines)


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.analytic.validate",
        description="Cross-validate the analytic surrogate against the "
        "simulator and (optionally) suggest recalibrated bounds.",
    )
    parser.add_argument(
        "--seeds", type=int, nargs="+", default=[CALIBRATION["seed"]],
        help="root seeds to validate at (default: the calibration seed)",
    )
    parser.add_argument(
        "--cycles", type=int, default=None,
        help="simulated cycles per point (default: calibration setting)",
    )
    parser.add_argument(
        "--backend", choices=("scalar", "vector", "auto"), default="auto",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for the simulated sweep",
    )
    parser.add_argument(
        "--suggest-bounds", action="store_true",
        help="print an ERROR_BOUNDS table from the observed errors",
    )
    parser.add_argument(
        "--margin", type=float, default=1.5,
        help="bound inflation over the worst observed error "
        "(default: %(default)s)",
    )
    args = parser.parse_args(argv)

    reports = []
    for seed in args.seeds:
        report = validate_surrogate(
            cycles=args.cycles, seed=seed, backend=args.backend,
            jobs=args.jobs,
        )
        reports.append(report)
        print(report.format_report())
        print()
    if args.suggest_bounds:
        print("# Suggested ERROR_BOUNDS (margin {}x):".format(args.margin))
        print(_suggest_bounds(reports, args.margin))
    return 0 if all(report.ok for report in reports) else 1


if __name__ == "__main__":
    sys.exit(main())
