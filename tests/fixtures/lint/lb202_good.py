# lb: module=repro.service.fixture_tidy
"""LB202 true negative: spawn outside lock scopes, daemonized threads."""

import subprocess
import threading


class Launcher:
    def __init__(self):
        self._lock = threading.Lock()
        self._children = []

    def spawn(self, command):
        child = subprocess.Popen(command)
        with self._lock:
            self._children.append(child)
        return child

    def start_worker(self):
        worker = threading.Thread(target=self._serve, daemon=True)
        worker.start()
        return worker

    def _serve(self):
        pass
