"""Ablation: power-of-two ticket scaling resolution.

DESIGN.md question: how much allocation error does Section 4.3's
power-of-two scaling introduce, and how fast does raising the scaled
total (a wider LFSR) buy it back?  Uses an awkward ratio (1:2:4, T=7 —
the paper's own scaling example) where rounding error is visible.
"""

from conftest import run_once

from repro.core.scaling import scale_to_power_of_two, scaling_error
from repro.metrics.report import format_table

TICKETS = [1, 2, 4]
TOTALS = [8, 16, 32, 64, 128, 256]


def run_scaling_ablation():
    rows = []
    for total in TOTALS:
        scaled = scale_to_power_of_two(TICKETS, minimum_total=total)
        rows.append((total, scaled, scaling_error(TICKETS, scaled)))
    return rows


def test_bench_ablation_scaling(benchmark):
    rows = run_once(benchmark, run_scaling_ablation)
    print()
    print(
        format_table(
            ["scaled total", "holdings", "worst share error"],
            [[total, str(scaled), error] for total, scaled, error in rows],
            title="Scaling ablation for tickets 1:2:4 (paper example: 32 -> 5:9:18)",
        )
    )
    errors = [error for _, _, error in rows]
    # Error shrinks (weakly) as resolution grows, and is negligible by
    # 8 bits of tickets.
    assert errors[-1] < 0.02
    assert errors[-1] <= errors[0]
    # The paper's worked example is reproduced exactly.
    assert scale_to_power_of_two(TICKETS, minimum_total=32) == [5, 9, 18]
