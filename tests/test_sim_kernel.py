"""Tests for the simulation kernel."""

import pytest

from repro.sim import Component, SimulationError, Simulator


class Counter(Component):
    def __init__(self, name="counter"):
        super().__init__(name)
        self.ticks = []

    def tick(self, cycle):
        self.ticks.append(cycle)

    def reset(self):
        self.ticks = []


def test_run_advances_cycles():
    sim = Simulator()
    counter = sim.add(Counter())
    assert sim.run(5) == 5
    assert counter.ticks == [0, 1, 2, 3, 4]
    assert sim.cycle == 5


def test_run_resumes_from_current_cycle():
    sim = Simulator()
    counter = sim.add(Counter())
    sim.run(3)
    sim.run(2)
    assert counter.ticks == [0, 1, 2, 3, 4]


def test_components_tick_in_registration_order():
    sim = Simulator()
    order = []

    class Probe(Component):
        def tick(self, cycle):
            order.append(self.name)

    sim.add(Probe("first"))
    sim.add(Probe("second"))
    sim.run(1)
    assert order == ["first", "second"]


def test_duplicate_names_rejected():
    sim = Simulator()
    sim.add(Counter("a"))
    with pytest.raises(SimulationError):
        sim.add(Counter("a"))


def test_non_component_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.add(object())


def test_negative_cycles_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.run(-1)


def test_reset_restores_time_and_components():
    sim = Simulator()
    counter = sim.add(Counter())
    sim.run(4)
    sim.reset()
    assert sim.cycle == 0
    assert counter.ticks == []
    sim.run(2)
    assert counter.ticks == [0, 1]


def test_run_until_predicate():
    sim = Simulator()
    sim.add(Counter())
    reached = sim.run_until(lambda cycle: cycle >= 7)
    assert reached == 7


def test_run_until_bound_exhausted():
    sim = Simulator()
    sim.add(Counter())
    with pytest.raises(SimulationError):
        sim.run_until(lambda cycle: False, max_cycles=10)


def test_run_until_evaluates_predicate_on_entry():
    # A condition already true at the current cycle returns immediately
    # without burning a cycle.
    sim = Simulator()
    counter = sim.add(Counter())
    sim.run(5)
    assert sim.run_until(lambda cycle: cycle >= 3) == 5
    assert sim.cycle == 5
    assert counter.ticks == [0, 1, 2, 3, 4]  # no extra ticks


def test_run_until_error_reports_starting_cycle():
    sim = Simulator()
    sim.add(Counter())
    sim.run(7)
    with pytest.raises(SimulationError, match="started at cycle 7"):
        sim.run_until(lambda cycle: False, max_cycles=3)


def test_components_view_is_readonly_tuple():
    sim = Simulator()
    counter = sim.add(Counter())
    assert sim.components == (counter,)
