"""Tests for the static and dynamic lottery managers."""

import pytest

from repro.core.lottery_manager import (
    DynamicLotteryManager,
    SoftwareRandomSource,
    StaticLotteryManager,
    select_winner,
)
from repro.sim.rng import RandomStream


class ScriptedSource:
    def __init__(self, values):
        self.values = list(values)
        self.cursor = 0

    def draw_below(self, bound):
        value = self.values[self.cursor % len(self.values)]
        self.cursor += 1
        return value % bound

    def reset(self):
        self.cursor = 0


def test_select_winner_priority_semantics():
    # Partial sums for tickets 1,2,3,4 with all pending: 1,3,6,10.
    sums = [1, 3, 6, 10]
    assert select_winner(0, sums) == 0
    assert select_winner(1, sums) == 1
    assert select_winner(5, sums) == 2
    assert select_winner(9, sums) == 3
    assert select_winner(10, sums) is None


def test_select_winner_skips_idle_ranges():
    # Request map 1011 with tickets 1,2,3,4: sums 1,1,4,8.  A draw of 1
    # must select C3, never the idle C2 (its zero-width range).
    assert select_winner(1, [1, 1, 4, 8]) == 2


def test_static_scaling_preserves_num_masters():
    manager = StaticLotteryManager([1, 2, 3, 4])
    assert manager.num_masters == 4
    assert sum(manager.tickets) in (16,)  # 10 -> next power of two


def test_static_draw_none_when_idle():
    manager = StaticLotteryManager([1, 2])
    assert manager.draw([False, False]) is None
    assert manager.lotteries_held == 0


def test_static_draw_winner_always_pending():
    manager = StaticLotteryManager([1, 2, 3, 4], lfsr_seed=7)
    for _ in range(300):
        outcome = manager.draw([True, False, False, True])
        assert outcome.winner in (0, 3)


def test_static_paper_example_with_scripted_draw():
    manager = StaticLotteryManager(
        [1, 2, 3, 4], random_source=ScriptedSource([5]), scale=False
    )
    outcome = manager.draw([True, False, True, True])
    assert outcome.total == 8
    assert outcome.partial_sums == (1, 1, 4, 8)
    assert outcome.winner == 3  # the paper grants C4 on a draw of 5


def test_static_long_run_shares_track_scaled_tickets():
    manager = StaticLotteryManager([1, 2, 3, 4], lfsr_seed=3)
    scaled = manager.tickets
    counts = [0] * 4
    rounds = 16000
    for _ in range(rounds):
        counts[manager.draw([True] * 4).winner] += 1
    for master in range(4):
        expected = scaled[master] / scaled.total
        assert counts[master] / rounds == pytest.approx(expected, abs=0.02)


def test_static_software_source_supported():
    source = SoftwareRandomSource(RandomStream(1, "lottery"))
    manager = StaticLotteryManager([3, 1], random_source=source)
    counts = [0, 0]
    for _ in range(8000):
        counts[manager.draw([True, True]).winner] += 1
    assert counts[0] / 8000 == pytest.approx(0.75, abs=0.03)


def test_static_rejection_policy_counts_misses():
    manager = StaticLotteryManager(
        [3, 2], scale=False, draw_policy="rejection", lfsr_seed=5
    )
    outcomes = [manager.draw([True, False]) for _ in range(400)]
    missed = [o for o in outcomes if o.winner is None]
    assert manager.rejected_draws == len(missed)
    assert missed  # window 4 vs range 3: some draws must miss


def test_static_invalid_policy_rejected():
    with pytest.raises(ValueError):
        StaticLotteryManager([1, 2], draw_policy="mystery")


def test_static_reset_reproduces_sequence():
    manager = StaticLotteryManager([1, 2, 3], lfsr_seed=11)
    first = [manager.draw([True] * 3).winner for _ in range(40)]
    manager.reset()
    assert [manager.draw([True] * 3).winner for _ in range(40)] == first


def test_dynamic_draw_uses_current_tickets():
    manager = DynamicLotteryManager([1, 1], lfsr_seed=3)
    manager.set_tickets(0, 255)
    counts = [0, 0]
    for _ in range(2000):
        counts[manager.draw([True, True]).winner] += 1
    assert counts[0] / 2000 > 0.9


def test_dynamic_tickets_clamped_to_word_width():
    manager = DynamicLotteryManager([1, 1], ticket_bits=4)
    manager.set_tickets(0, 500)
    assert manager.tickets[0] == 15


def test_dynamic_rejects_zero_tickets():
    manager = DynamicLotteryManager([1, 1])
    with pytest.raises(ValueError):
        manager.set_tickets(0, 0)


def test_dynamic_set_all_validates_length():
    manager = DynamicLotteryManager([1, 1])
    with pytest.raises(ValueError):
        manager.set_all_tickets([1, 2, 3])


def test_dynamic_reset_restores_initial_tickets():
    manager = DynamicLotteryManager([2, 5])
    manager.set_tickets(0, 9)
    manager.reset()
    assert manager.tickets == (2, 5)
    assert manager.ticket_updates == 0


def test_dynamic_request_map_length_checked():
    manager = DynamicLotteryManager([1, 1])
    with pytest.raises(ValueError):
        manager.draw([True])


def test_outcome_repr_and_granted():
    manager = StaticLotteryManager([1, 1])
    outcome = manager.draw([True, True])
    assert outcome.granted
    assert "LotteryOutcome" in repr(outcome)


def test_dynamic_sums_cache_tracks_ticket_updates():
    manager = DynamicLotteryManager([1, 2, 3], random_source=ScriptedSource([0]))
    before = manager.draw([True, True, True])
    assert before.partial_sums == (1, 3, 6)
    # A cached map must not survive a ticket change.
    manager.set_tickets(0, 5)
    after = manager.draw([True, True, True])
    assert after.partial_sums == (5, 7, 10)
    # Re-setting the same value keeps the (now valid) cache coherent.
    manager.set_tickets(0, 5)
    assert manager.draw([True, True, True]).partial_sums == (5, 7, 10)


def test_dynamic_sums_cache_ignores_dropped_updates():
    manager = DynamicLotteryManager([1, 2, 3], random_source=ScriptedSource([0]))
    assert manager.draw([True, True, True]).partial_sums == (1, 3, 6)
    manager.disable_ticket_channel()
    manager.set_tickets(0, 5)  # dropped: channel is down
    assert manager.dropped_updates == 1
    assert manager.draw([True, True, True]).partial_sums == (1, 3, 6)


def test_dynamic_sums_cache_cleared_on_restore():
    manager = DynamicLotteryManager([1, 2, 3], random_source=ScriptedSource([0]))
    snapshot = manager.state_dict()
    manager.set_tickets(0, 7)
    manager.draw([True, False, True])
    manager.load_state_dict(snapshot)
    assert manager.draw([True, False, True]).partial_sums == (1, 1, 4)
