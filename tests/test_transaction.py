"""Tests for Request and Grant."""

import pytest

from repro.bus.transaction import Grant, Request


def test_request_initial_state():
    request = Request(2, 8, 100, slave=1, tag="x")
    assert request.remaining == 8
    assert not request.complete
    assert request.first_grant_cycle is None
    assert request.tag == "x"


@pytest.mark.parametrize(
    "kwargs",
    [
        {"master": -1, "words": 4, "arrival_cycle": 0},
        {"master": 0, "words": 0, "arrival_cycle": 0},
        {"master": 0, "words": 4, "arrival_cycle": -1},
    ],
)
def test_request_validation(kwargs):
    with pytest.raises(ValueError):
        Request(**kwargs)


def test_back_to_back_service_scores_one_cycle_per_word():
    request = Request(0, 4, 10)
    request.first_grant_cycle = 10
    for cycle in range(10, 14):
        request.remaining -= 1
        request.account_word(cycle)
    request.completion_cycle = 13
    assert request.complete
    assert request.latency_cycles == 4
    assert request.latency_per_word == 1.0
    assert request.word_latency_per_word == 1.0
    assert request.wait_cycles == 0


def test_interleaved_service_charges_gaps():
    request = Request(0, 2, 0)
    request.first_grant_cycle = 3
    request.remaining -= 1
    request.account_word(3)  # waited 3 cycles, then moved
    request.remaining -= 1
    request.account_word(9)  # 5-cycle gap before the second word
    request.completion_cycle = 9
    assert request.latency_cycles == 10
    assert request.word_latency_total == 4 + 6
    assert request.wait_cycles == 3


def test_latency_unavailable_before_completion():
    request = Request(0, 2, 0)
    with pytest.raises(ValueError):
        request.latency_cycles
    with pytest.raises(ValueError):
        request.wait_cycles


def test_grant_equality_and_validation():
    assert Grant(1) == Grant(1)
    assert Grant(1, 4) != Grant(1)
    assert len({Grant(2, 3), Grant(2, 3)}) == 1
    with pytest.raises(ValueError):
        Grant(-1)
    with pytest.raises(ValueError):
        Grant(0, 0)
