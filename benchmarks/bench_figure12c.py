"""Figure 12(c): LOTTERYBUS latency surface, classes T1-T6 x tickets.

Paper claims regenerated here:
* LOTTERYBUS latencies are uniformly low compared to the TDMA surface
  of Figure 12(b) (the paper's 8.55 -> 1.17 cycles/word comparison);
* latency falls monotonically with ticket holdings within each class;
* under the sparse class most grants are immediate (~1 cycle/word).
"""

from conftest import cycles, run_once

from repro.experiments.figure12 import run_figure12_latency


def test_bench_figure12c(benchmark):
    result = run_once(
        benchmark,
        run_figure12_latency,
        "lottery-static",
        cycles=cycles(300_000),
    )
    print()
    print(result.format_report())
    for name, row in zip(result.class_names, result.surface):
        # More tickets never hurts within a class (tolerate noise).
        assert row[-1] <= row[0] * 1.1, name
    assert result.latency("T3", 4) < 2.0
    # Compare against the TDMA surface of Figure 12(b).
    tdma = run_figure12_latency(
        "tdma", cycles=cycles(300_000), reclaim="single"
    )
    for weight in (1, 2, 3, 4):
        assert result.latency("T6", weight) < tdma.latency("T6", weight)
