"""Section 4.2: the starvation bound p = 1 - (1 - t/T)**n.

Regenerates the analytic-vs-measured first-win distribution for the
smallest ticket holder under continuous contention; the claim is that
access probability converges geometrically to one (no starvation).
"""

from conftest import cycles, run_once

from repro.experiments.starvation import run_starvation


def test_bench_starvation(benchmark):
    result = run_once(benchmark, run_starvation, drawings=cycles(200_000))
    print()
    print(result.format_report())
    assert result.worst_gap() < 0.03
    assert result.empirical[-1] > 0.999
