"""Infrastructure fault injection for the campaign engine.

:mod:`repro.faults` attacks the *simulated* bus — corrupted words,
dropped grants, stuck LFSRs — and proves the modelled protocol recovers.
This package attacks the *execution layer that runs the simulations*:
worker processes are SIGKILLed or SIGSTOPped mid-task, result-store
appends are torn short or rejected with ``ENOSPC``, cache envelopes get
byte flips, and checkpoint containers are truncated — all scheduled
from a seeded :class:`ChaosPlan`, so a chaos campaign is a repeatable
experiment, not a flaky stress test.

The contract under chaos is the acceptance test of the whole
supervision stack: a campaign run under any such schedule must still
converge, and its final :class:`~repro.experiments.supervisor.
CampaignReport` must be **bit-identical** to a fault-free serial run.
``python -m repro.chaos`` drives exactly that comparison.
"""

from repro.chaos.injector import ChaosInjector, install_worker_chaos
from repro.chaos.plan import ChaosPlan

__all__ = ["ChaosInjector", "ChaosPlan", "install_worker_chaos"]
