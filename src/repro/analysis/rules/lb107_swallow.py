"""LB107: swallowed exceptions must be justified or re-raised.

A reliability codebase earns its claims by *handling* failures, and a
handler whose whole body is ``pass``/``continue``/bare ``return``
handles nothing — it deletes the evidence.  The campaign engine's own
conventions make the legitimate cases cheap to mark:

* a **broad** catch (bare ``except:``, ``except Exception``,
  ``except BaseException`` — alone or inside a tuple) that swallows is
  always flagged; if it is truly intended (it almost never is), carry a
  ``# lb: noqa[LB107]`` with a justifying comment;
* a **narrow** catch (``except OSError:``, ``except KeyError:``) that
  swallows is flagged only when the handler carries **no comment at
  all** — the repo's idiom is ``pass  # why this is safe`` and a
  one-line justification is exactly the bar (see
  ``repro.ioutil.atomic_write`` or the WAL's best-effort repair path).

A docstring-style string constant does not count as handling (it is
still a swallow) but a comment anywhere on the handler's lines — the
``except`` line through the last body line — counts as justification
for narrow catches.
"""

import ast
import tokenize

from repro.analysis.core import Rule, register

_BROAD_NAMES = frozenset(("Exception", "BaseException"))


def _dotted_name(node):
    """``ast.Name``/``ast.Attribute`` chains as dotted text, else ''."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _caught_names(handler):
    """The exception names a handler catches; ``None`` marks a bare
    ``except:``."""
    if handler.type is None:
        return [None]
    if isinstance(handler.type, ast.Tuple):
        nodes = handler.type.elts
    else:
        nodes = [handler.type]
    return [_dotted_name(node) for node in nodes]


def _is_trivial_body(body):
    """True when the handler body swallows: only string constants plus
    at most one ``pass``/``continue``/bare ``return``."""
    statements = list(body)
    while (
        statements
        and isinstance(statements[0], ast.Expr)
        and isinstance(statements[0].value, ast.Constant)
        and isinstance(statements[0].value.value, str)
    ):
        statements = statements[1:]
    if not statements:
        return True
    if len(statements) != 1:
        return False
    statement = statements[0]
    if isinstance(statement, (ast.Pass, ast.Continue)):
        return True
    if isinstance(statement, ast.Return):
        return statement.value is None or (
            isinstance(statement.value, ast.Constant)
            and statement.value.value is None
        )
    return False


def _handler_span(handler):
    """The handler's inclusive line range (``except`` line → last body
    line)."""
    last = handler.lineno
    for node in handler.body:
        last = max(last, getattr(node, "end_lineno", node.lineno))
    return handler.lineno, last


def _comment_lines(source):
    """Every line number carrying a comment (via tokenize, so ``#``
    inside string literals does not count)."""
    lines = set()
    try:
        tokens = tokenize.generate_tokens(
            iter(source.lines_iter()).__next__
        )
        for token in tokens:
            if token.type == tokenize.COMMENT:
                lines.add(token.start[0])
    except tokenize.TokenError:
        pass  # parse succeeded earlier; treat the tail as comment-free
    return lines


@register
class SwallowedExceptionsRule(Rule):
    id = "LB107"
    name = "swallowed-exceptions"
    description = (
        "exception handler swallows the error (pass/continue/bare "
        "return) without justification"
    )

    def check(self, source):
        if not source.in_package("repro"):
            return
        comments = None
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_trivial_body(node.body):
                continue
            names = _caught_names(node)
            broad = [
                name for name in names
                if name is None or name in _BROAD_NAMES
            ]
            if broad:
                label = (
                    "bare except" if broad[0] is None
                    else "except {}".format(broad[0])
                )
                yield source.finding(
                    self.id, node,
                    "{} swallows every error silently; handle it, "
                    "re-raise, or justify with a comment plus "
                    "`# lb: noqa[LB107]`".format(label),
                )
                continue
            if comments is None:
                comments = _comment_lines(source)
            start, end = _handler_span(node)
            if not any(line in comments for line in range(start, end + 1)):
                yield source.finding(
                    self.id, node,
                    "except {} swallows the error with no justifying "
                    "comment; say why ignoring it is safe".format(
                        ", ".join(names)
                    ),
                )
