"""Tests for text report formatting."""

import pytest

from repro.metrics.report import (
    format_bar_chart,
    format_stacked_percentages,
    format_table,
)


def test_format_table_alignment_and_title():
    text = format_table(["name", "value"], [["a", 1.23456], ["bb", 7]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1]
    assert "1.235" in text
    assert "7" in text
    # Separator row uses dashes matching column widths.
    assert set(lines[2].replace("  ", "")) == {"-"}


def test_format_table_rejects_ragged_rows():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [["only one"]])


def test_format_bar_chart_scales_to_peak():
    text = format_bar_chart(["x", "y"], [1.0, 0.5], width=10)
    lines = text.splitlines()
    assert lines[0].count("#") == 10
    assert lines[1].count("#") == 5


def test_format_bar_chart_handles_zeros():
    text = format_bar_chart(["x"], [0.0])
    assert "#" not in text


def test_format_bar_chart_length_mismatch():
    with pytest.raises(ValueError):
        format_bar_chart(["x"], [1.0, 2.0])


def test_format_stacked_percentages():
    text = format_stacked_percentages(
        ["1234"], {"C1": [0.25], "C2": [0.75]}, width=8
    )
    assert "C1=25.0%" in text
    assert "C2=75.0%" in text
    assert "|" in text
