"""The arbiter interface."""

from repro.sim.snapshot import Snapshottable


class Arbiter(Snapshottable):
    """Decides which pending master owns the bus next.

    The bus calls :meth:`arbitrate` once per cycle while it is free,
    passing the per-master pending word counts (0 = no request).  The
    arbiter returns a :class:`~repro.bus.transaction.Grant` or ``None``
    for an idle cycle.  Arbiters with internal clocked state (the TDMA
    timing wheel, a token) advance that state per call, which the bus
    guarantees happens exactly once per free cycle.

    Arbiters carry the checkpoint protocol (see
    :mod:`repro.sim.snapshot`): clocked state is declared in
    ``state_attrs``/``state_children`` so the owning bus can include the
    arbiter in a simulation checkpoint.
    """

    name = "abstract"

    #: Whether idle arbitration rounds (no pending request anywhere) can
    #: be replayed arithmetically by :meth:`skip_idle` instead of one
    #: :meth:`arbitrate` call per cycle.  Arbiters setting this to True
    #: promise that ``skip_idle(k)`` leaves them in exactly the state
    #: ``k`` consecutive idle ``arbitrate`` calls would; the bus's fast
    #: path (see :meth:`repro.bus.bus.SharedBus.next_activity`) refuses
    #: to skip over arbiters that keep the default False.
    supports_idle_skip = False

    def __init__(self, num_masters):
        if num_masters < 1:
            raise ValueError("need at least one master")
        self.num_masters = num_masters

    def arbitrate(self, cycle, pending):
        raise NotImplementedError

    def skip_idle(self, cycles):
        """Fast-forward through ``cycles`` idle arbitration rounds.

        Default no-op, correct for arbiters whose idle rounds leave no
        trace; arbiters with clocked idle state (a rotating TDMA wheel,
        a hopping token) override it."""

    def reset(self):
        """Return clocked arbiter state to power-on; default no-op."""

    def _check_pending(self, pending):
        if len(pending) != self.num_masters:
            raise ValueError(
                "pending vector has {} entries for {} masters".format(
                    len(pending), self.num_masters
                )
            )

    def __repr__(self):
        return "{}(num_masters={})".format(type(self).__name__, self.num_masters)
