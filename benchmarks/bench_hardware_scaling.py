"""Hardware scaling: static vs dynamic manager as the SoC grows.

The static manager precomputes a table with one row per request map —
2**n rows for n masters — so its area grows exponentially, while the
dynamic manager's AND/adder-tree datapath grows ~linearly (with a
log-depth tree).  This analysis locates the crossover, the design
guidance implicit in Section 4.4's "the problem is considerably
harder" remark: past a handful of masters the table, not the datapath,
dominates.
"""

from conftest import run_once

from repro.experiments.hardware import run_hardware_scaling


def test_bench_hardware_scaling(benchmark):
    result = run_once(benchmark, run_hardware_scaling)
    print()
    print(result.format_report())
    by_n = {
        n: (static.area_cell_grids, dynamic.area_cell_grids)
        for n, static, dynamic in result.rows
    }
    # At the paper's 4 masters the static manager is far cheaper...
    assert by_n[4][0] < by_n[4][1]
    # ...but its exponential table overtakes the dynamic datapath.
    assert by_n[12][0] > by_n[12][1]
    assert result.crossover_masters() == 8
    # Static arbitration delay stays near-constant (table lookup); the
    # 4-master point matches the paper's 3.1 ns.
    static4 = next(s for n, s, _ in result.rows if n == 4)
    assert abs(static4.arbitration_ns - 3.1) < 0.2
