"""The centralized lottery managers (Sections 4.2-4.4).

Both managers resolve an arbitration round the same way:

1. compute the contending-ticket partial sums for the current request map
   (from a precomputed table in the static manager, from the AND/adder
   tree in the dynamic one);
2. draw a random number uniform over ``[0, T)`` where ``T`` is the
   contending total;
3. compare the draw against all partial sums in parallel and let a
   priority selector pick the first master whose cumulative range
   contains the draw.

The random source is pluggable: an :class:`~repro.core.lfsr.LFSR` models
the paper's hardware; a :class:`SoftwareRandomSource` gives ideal
uniformity for the RNG ablation benchmark.

A note on non-power-of-two contending totals: the paper scales the *full*
ticket total to a power of two so the LFSR draw is directly usable, but
when only a subset of masters contend, the subset total is arbitrary.
The hardware has two realizable behaviours, both modelled here:

* ``draw_policy="reduce"`` (default) — reduce the raw draw into
  ``[0, T)`` (mask when T is a power of two, else modulo; the dynamic
  manager's modulo hardware, always grants);
* ``draw_policy="rejection"`` — use the raw draw as-is; if it falls
  beyond every contending range, no comparator fires and the round
  produces no grant (one idle cycle, retried next round).  This is what
  bare comparator hardware without modulo does.
"""

from repro.core.adder_tree import AdderTree
from repro.core.lfsr import LFSR
from repro.core.lookup_table import request_map_to_index, shared_lookup_table
from repro.core.scaling import is_power_of_two, next_power_of_two, scale_to_power_of_two
from repro.core.tickets import TicketAssignment
from repro.sim.snapshot import Snapshottable

_DRAW_POLICIES = ("reduce", "rejection")


class SoftwareRandomSource(Snapshottable):
    """Ideal uniform source backed by a seeded software RNG."""

    state_children = ("_stream",)

    def __init__(self, stream):
        self._stream = stream

    def draw_below(self, bound):
        return self._stream.randrange(bound)

    def reset(self):
        self._stream.reset()


class LotteryOutcome:
    """The result of one lottery drawing."""

    __slots__ = ("winner", "draw", "total", "partial_sums")

    def __init__(self, winner, draw, total, partial_sums):
        self.winner = winner
        self.draw = draw
        self.total = total
        self.partial_sums = tuple(partial_sums)

    @property
    def granted(self):
        return self.winner is not None

    def __eq__(self, other):
        # Value equality, so a checkpoint-restored outcome compares
        # equal to the live one it snapshotted.
        if not isinstance(other, LotteryOutcome):
            return NotImplemented
        return (
            self.winner == other.winner
            and self.draw == other.draw
            and self.total == other.total
            and self.partial_sums == other.partial_sums
        )

    def __hash__(self):
        return hash((self.winner, self.draw, self.total, self.partial_sums))

    def __repr__(self):
        return "LotteryOutcome(winner={}, draw={}, total={})".format(
            self.winner, self.draw, self.total
        )


def select_winner(draw, partial_sums):
    """The comparator bank + priority selector.

    Every comparator outputs 1 when ``draw < partial_sum``; the priority
    selector grants the first asserted output.  Returns ``None`` when no
    comparator fires (draw beyond the contending range).
    """
    for master, boundary in enumerate(partial_sums):
        if draw < boundary:
            return master
    return None


class StaticLotteryManager(Snapshottable):
    """Lottery manager with statically assigned tickets (Section 4.3).

    :param tickets: requested holdings, one per master.
    :param random_source: object with ``draw_below(bound)``; default is a
        maximal LFSR sized to the scaled ticket total.
    :param scale: scale holdings to a power-of-two total (paper default).
    :param minimum_total: optional floor on the scaled total (power of
        two) for finer ratio resolution.
    :param draw_policy: ``"reduce"`` or ``"rejection"`` (see module doc).
    :param lfsr_seed: seed for the default LFSR source.
    """

    def __init__(
        self,
        tickets,
        random_source=None,
        scale=True,
        minimum_total=None,
        draw_policy="reduce",
        lfsr_seed=1,
    ):
        if draw_policy not in _DRAW_POLICIES:
            raise ValueError("unknown draw policy {!r}".format(draw_policy))
        requested = TicketAssignment(tickets)
        self.requested_tickets = requested
        if scale and not (
            is_power_of_two(requested.total) and minimum_total is None
        ):
            scaled = scale_to_power_of_two(
                requested.tickets, minimum_total=minimum_total
            )
        else:
            scaled = list(requested.tickets)
        self.tickets = TicketAssignment(scaled)
        # Shared across managers with identical scaled holdings — every
        # seed of a replication and every point of a sweep that lands on
        # the same assignment reuses one immutable table (reuse is
        # counted by repro.core.lookup_table.lookup_table_cache_stats).
        self.table = shared_lookup_table(self.tickets)
        self.draw_policy = draw_policy
        if random_source is None:
            # The register is 8 bits wider than the ticket index so the
            # masked low bits are near-uniform: a maximal LFSR never
            # emits the all-zero state, so a register exactly as wide as
            # the ticket total would never draw 0 and master 0 would be
            # visibly shortchanged.
            width = min(32, (self.tickets.total - 1).bit_length() + 8)
            random_source = LFSR(width, seed=lfsr_seed)
        self.random_source = random_source
        self.lotteries_held = 0
        self.rejected_draws = 0

    state_attrs = ("lotteries_held", "rejected_draws")
    state_children = ("random_source",)

    @property
    def num_masters(self):
        return self.tickets.num_masters

    def reset(self):
        if hasattr(self.random_source, "reset"):
            self.random_source.reset()
        self.lotteries_held = 0
        self.rejected_draws = 0

    def draw(self, request_map):
        """Hold one lottery; returns a LotteryOutcome or None if no requests."""
        partial_sums = self.table.partial_sums_at(
            request_map_to_index(request_map)
        )
        total = partial_sums[-1]
        if total == 0:
            return None
        self.lotteries_held += 1
        if self.draw_policy == "reduce":
            value = self.random_source.draw_below(total)
        else:
            # Raw draw over the smallest power-of-two window covering the
            # contending total; may miss every range.
            window = next_power_of_two(total)
            value = self.random_source.draw_below(window)
        winner = select_winner(value, partial_sums)
        if winner is None:
            self.rejected_draws += 1
        return LotteryOutcome(winner, value, total, partial_sums)


class DynamicLotteryManager(Snapshottable):
    """Lottery manager with run-time ticket holdings (Section 4.4).

    Masters update their holdings through :meth:`set_tickets`; each
    lottery recomputes partial sums through the AND/adder-tree datapath
    and reduces a fixed-width raw draw into the contending range with
    modulo hardware.

    :param initial_tickets: starting holdings, one per master.
    :param random_source: object with ``draw_below(bound)``; default a
        16-bit maximal LFSR (wide enough that modulo bias is < T/65535).
    :param ticket_bits: width of each ticket input word; holdings are
        clamped into ``[1, 2**ticket_bits - 1]``.
    :param lfsr_seed: seed for the default LFSR source.
    """

    def __init__(
        self,
        initial_tickets,
        random_source=None,
        ticket_bits=8,
        lfsr_seed=1,
    ):
        if ticket_bits < 1:
            raise ValueError("ticket_bits must be positive")
        initial = TicketAssignment(initial_tickets)
        self.ticket_bits = ticket_bits
        self.max_ticket = (1 << ticket_bits) - 1
        self._tickets = [self._clamp(t) for t in initial.tickets]
        self.adder_tree = AdderTree(len(self._tickets), ticket_bits)
        # Partial sums per packed request map, valid for the current
        # ticket table; rebuilt lazily, dropped on any ticket change.
        self._sums_cache = {}
        if random_source is None:
            random_source = LFSR(16, seed=lfsr_seed)
        self.random_source = random_source
        self.lotteries_held = 0
        self.ticket_updates = 0
        self._initial = list(self._tickets)
        # Graceful degradation (see repro.faults): while the ticket
        # update channel is down, the manager keeps serving lotteries
        # from its last-known table and counts the dropped updates.
        self.ticket_channel_up = True
        self.degradation_events = 0
        self.dropped_updates = 0

    state_attrs = (
        "_tickets",
        "lotteries_held",
        "ticket_updates",
        "ticket_channel_up",
        "degradation_events",
        "dropped_updates",
    )
    state_children = ("random_source",)
    # _sums_cache is a memo over _tickets, dropped by load_state_dict
    # below; _initial is the immutable reset target, fixed at
    # construction and identical in the restored object.
    state_exclude = ("_sums_cache", "_initial")

    def _clamp(self, value):
        value = int(value)
        if value < 1:
            raise ValueError("tickets must be positive")
        return min(value, self.max_ticket)

    @property
    def num_masters(self):
        return len(self._tickets)

    @property
    def tickets(self):
        """Current holdings (read-only copy)."""
        return tuple(self._tickets)

    def set_tickets(self, master, count):
        """A master communicates a new holding to the manager.

        While the ticket-update channel is disabled (an injected fault),
        the update is dropped — a counted, non-fatal degradation: the
        manager falls back to its last-known static ticket table rather
        than wedging or granting from garbage.
        """
        if not self.ticket_channel_up:
            self.dropped_updates += 1
            return
        count = self._clamp(count)
        if count != self._tickets[master]:
            self._tickets[master] = count
            self._sums_cache.clear()
        self.ticket_updates += 1

    def disable_ticket_channel(self):
        """Fault entry point: the update channel goes down (non-fatal)."""
        if self.ticket_channel_up:
            self.ticket_channel_up = False
            self.degradation_events += 1

    def restore_ticket_channel(self):
        """Fault recovery: updates flow again."""
        self.ticket_channel_up = True

    def set_all_tickets(self, tickets):
        """Replace every holding at once."""
        if len(tickets) != len(self._tickets):
            raise ValueError("wrong number of masters")
        for master, count in enumerate(tickets):
            self.set_tickets(master, count)

    def reset(self):
        self._tickets = list(self._initial)
        self._sums_cache.clear()
        if hasattr(self.random_source, "reset"):
            self.random_source.reset()
        self.lotteries_held = 0
        self.ticket_updates = 0
        self.ticket_channel_up = True
        self.degradation_events = 0
        self.dropped_updates = 0

    def load_state_dict(self, state):
        super().load_state_dict(state)
        # The restored ticket table may differ from the live one the
        # cache was built against.
        self._sums_cache.clear()

    def draw(self, request_map):
        """Hold one lottery; returns a LotteryOutcome or None if no requests."""
        if len(request_map) != len(self._tickets):
            raise ValueError("request map size mismatch")
        key = request_map_to_index(request_map)
        partial_sums = self._sums_cache.get(key)
        if partial_sums is None:
            partial_sums = tuple(
                self.adder_tree.compute(request_map, self._tickets)
            )
            self._sums_cache[key] = partial_sums
        total = partial_sums[-1]
        if total == 0:
            return None
        self.lotteries_held += 1
        value = self.random_source.draw_below(total)
        winner = select_winner(value, partial_sums)
        return LotteryOutcome(winner, value, total, partial_sums)
