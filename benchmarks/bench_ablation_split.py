"""Ablation: split transactions (dynamic bus splitting).

DESIGN.md question: Section 2 lists "dynamic bus splitting" among the
optional features any of the architectures can adopt.  With slaves that
need setup wait states (memory row activation), a blocking bus holds
the wires idle during every setup; a split bus posts the address phase
and lets other masters transfer meanwhile.  Measures throughput and
latency for both modes on a two-bank memory system under lottery
arbitration.
"""

from conftest import cycles, run_once

from repro.arbiters.lottery import StaticLotteryArbiter
from repro.bus.bus import SharedBus
from repro.bus.master import MasterInterface
from repro.bus.slave import Slave
from repro.bus.topology import BusSystem
from repro.metrics.report import format_table
from repro.traffic.generator import ClosedLoopGenerator
from repro.traffic.message import FixedWords

SETUP = 4  # cycles of bank activation per burst
NUM_MASTERS = 4


def _run(split, num_cycles):
    masters = [
        MasterInterface("m{}".format(i), i) for i in range(NUM_MASTERS)
    ]
    banks = [
        Slave("bank{}".format(j), j, setup_wait_states=SETUP) for j in range(2)
    ]
    bus = SharedBus(
        "bus",
        masters,
        StaticLotteryArbiter(tickets=[1] * NUM_MASTERS, lfsr_seed=3),
        slaves=banks,
        max_burst=8,
        split_transactions=split,
    )
    system = BusSystem()
    for i, interface in enumerate(masters):
        system.add_generator(
            ClosedLoopGenerator(
                "g{}".format(i),
                interface,
                FixedWords(8),
                0,
                seed=5 + i,
                slave=i % 2,  # masters alternate between the two banks
            )
        )
    system.add_bus(bus)
    system.run(num_cycles)
    metrics = bus.metrics
    return (
        metrics.utilization(),
        sum(metrics.latencies_per_word()) / NUM_MASTERS,
        metrics.stall_cycles,
    )


def run_split_ablation(num_cycles):
    return {
        "blocking": _run(False, num_cycles),
        "split": _run(True, num_cycles),
    }


def test_bench_ablation_split(benchmark):
    results = run_once(benchmark, run_split_ablation, cycles(60_000))
    print()
    print(
        format_table(
            ["mode", "utilization", "mean lat/word", "stall cycles"],
            [
                [mode, "{:.3f}".format(util), "{:.2f}".format(lat), stalls]
                for mode, (util, lat, stalls) in results.items()
            ],
            title=(
                "Split-transaction ablation: 4 masters, 2 banks, "
                "{}-cycle activation".format(SETUP)
            ),
        )
    )
    blocking = results["blocking"]
    split = results["split"]
    # Splitting converts setup stalls into useful transfers: higher
    # utilization and lower latency.
    assert split[0] > blocking[0] + 0.1
    assert split[1] < blocking[1]
    assert split[2] < blocking[2]
