"""Ablation: maximum burst (transfer) size.

DESIGN.md question: the paper allows multi-word grants "to avoid
incurring control overhead for each word", bounded by a maximum
transfer size so no master monopolizes the bus.  With a non-pipelined
arbiter (1 visible arbitration cycle per grant), sweep max_burst under
saturating 16-word traffic: small bursts pay the arbitration overhead
per word and throughput collapses; large bursts amortize it.
"""

from conftest import cycles, run_once

from repro.arbiters.lottery import StaticLotteryArbiter
from repro.bus.topology import build_single_bus_system
from repro.metrics.report import format_table
from repro.traffic.classes import get_traffic_class

BURSTS = [1, 2, 4, 8, 16]


def run_burst_ablation(num_cycles):
    rows = []
    for burst in BURSTS:
        arbiter = StaticLotteryArbiter(tickets=[1, 2, 3, 4], lfsr_seed=3)
        system, bus = build_single_bus_system(
            4,
            arbiter,
            get_traffic_class("T9").generator_factory(seed=2),
            max_burst=burst,
            arbitration_cycles=1,
        )
        system.run(num_cycles)
        mean_latency = sum(bus.metrics.latencies_per_word()) / 4
        rows.append((burst, bus.metrics.utilization(), mean_latency))
    return rows


def test_bench_ablation_burst(benchmark):
    rows = run_once(benchmark, run_burst_ablation, cycles(80_000))
    print()
    print(
        format_table(
            ["max_burst", "utilization", "mean lat/word"],
            list(rows),
            title=(
                "Max burst-size ablation (T9, non-pipelined arbitration: "
                "1 cycle/grant)"
            ),
        )
    )
    util = {burst: u for burst, u, _ in rows}
    latency = {burst: lat for burst, _, lat in rows}
    # Per-word arbitration halves throughput; 16-word grants amortize
    # the overhead to ~6%.
    assert util[1] < 0.55
    assert util[16] > 0.9
    assert latency[16] < latency[1]
