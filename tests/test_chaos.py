"""Tests for the infrastructure-fault injection stack.

Covers the plan/injector primitives, then the supervisor behaviours the
chaos harness depends on: convergence under dispatch kills, poison-task
quarantine, the circuit breaker's degraded serial mode, heartbeat
detection of wedged workers, SIGTERM draining, and the result store's
recovery from chaos-torn appends.
"""

import os
import signal
import subprocess
import sys

import pytest

from repro.chaos.injector import ChaosInjector, install_worker_chaos
from repro.chaos.plan import ChaosPlan
from repro.experiments.errors import CampaignDrained
from repro.experiments.supervisor import ResultStore, Supervisor, TaskSpec
from repro.ioutil import set_write_fault_hook


@pytest.fixture(autouse=True)
def _no_leftover_hook():
    yield
    set_write_fault_hook(None)


# Task runners must be module-level so spawned workers can unpickle them.

def echo_task_runner(spec, resume):
    return "report:" + spec.name


def pid_task_runner(spec, resume):
    if spec.name.startswith("poison"):
        os._exit(9)
    return "pid:{}".format(os.getpid())


def poison_task_runner(spec, resume):
    if spec.name == "poison":
        os._exit(9)
    return "ok:" + spec.name


def self_stopping_runner(spec, resume):
    # First attempt wedges its own worker (alive, never finishing);
    # only heartbeat liveness can notice.  The retry succeeds.
    if spec.name == "wedge" and not resume:
        os.kill(os.getpid(), signal.SIGSTOP)
    return "ok:" + spec.name


def _fast_supervisor(**kwargs):
    kwargs.setdefault("poll_interval", 0.01)
    kwargs.setdefault("backoff", 0.01)
    return Supervisor(**kwargs)


# -- ChaosPlan ------------------------------------------------------------


def test_plan_validates_rates():
    with pytest.raises(ValueError):
        ChaosPlan(kill_rate=1.5)
    with pytest.raises(ValueError):
        ChaosPlan(torn_write_rate=-0.1)
    with pytest.raises(ValueError):
        ChaosPlan.uniform(2.0)


def test_plan_activity_flags():
    assert not ChaosPlan().active
    assert ChaosPlan(kill_rate=0.1).active
    assert not ChaosPlan(kill_rate=0.1).worker_active
    assert ChaosPlan(enospc_rate=0.1).worker_active
    assert ChaosPlan(checkpoint_corruption_rate=0.1).worker_active


def test_plan_state_round_trip():
    plan = ChaosPlan.uniform(0.25, kill_rate=0.5)
    clone = ChaosPlan.from_state(plan.state_dict())
    assert clone.state_dict() == plan.state_dict()


# -- ChaosInjector primitives ---------------------------------------------


def test_injector_requires_a_plan():
    with pytest.raises(TypeError):
        ChaosInjector({"kill_rate": 1.0})


def test_torn_append_returns_strict_prefix():
    injector = ChaosInjector(ChaosPlan(torn_write_rate=1.0), seed=5)
    data = b'{"name": "a"}\n'
    torn = injector.mangle_store_append(data)
    assert 1 <= len(torn) < len(data)
    assert data.startswith(torn)
    assert injector.events["torn_write"] == 1


def test_enospc_append_raises_oserror():
    injector = ChaosInjector(ChaosPlan(enospc_rate=1.0), seed=5)
    with pytest.raises(OSError):
        injector.mangle_store_append(b"payload")
    assert injector.events["enospc"] == 1


def test_injector_draws_are_seed_deterministic():
    data = b'{"record": "x", "padding": "0123456789"}\n'
    runs = []
    for _ in range(2):
        injector = ChaosInjector(ChaosPlan(torn_write_rate=0.5), seed=9)
        runs.append([injector.mangle_store_append(data) for _ in range(20)])
    assert runs[0] == runs[1]


def test_cache_corruption_flips_one_byte(tmp_path):
    path = str(tmp_path / "entry.json")
    with open(path, "wb") as handle:
        handle.write(b"A" * 64)
    injector = ChaosInjector(ChaosPlan(cache_corruption_rate=1.0), seed=3)
    assert injector.maybe_corrupt_cache_entry(path)
    corrupted = open(path, "rb").read()
    assert len(corrupted) == 64
    assert sum(1 for byte in corrupted if byte != ord("A")) == 1


def test_worker_setup_only_for_worker_side_channels():
    parent_only = ChaosInjector(ChaosPlan(kill_rate=0.5), seed=1)
    assert parent_only.worker_setup() is None
    both = ChaosInjector(ChaosPlan(enospc_rate=0.5), seed=1)
    state, seed = both.worker_setup()
    assert seed == 1
    assert state["enospc_rate"] == 0.5


def test_worker_chaos_streams_differ_by_worker_id():
    plan = ChaosPlan(checkpoint_corruption_rate=0.5)
    data = bytes(range(64))
    sequences = []
    for worker_id in (1, 2):
        install_worker_chaos(plan.state_dict(), 7, worker_id)
        from repro import ioutil

        hook = ioutil._write_fault_hook
        sequences.append([hook("x.ckpt", data) for _ in range(20)])
        set_write_fault_hook(None)
    assert sequences[0] != sequences[1]
    # Same id, same seed: identical.
    install_worker_chaos(plan.state_dict(), 7, 1)
    from repro import ioutil

    hook = ioutil._write_fault_hook
    replay = [hook("x.ckpt", data) for _ in range(20)]
    set_write_fault_hook(None)
    assert replay == sequences[0]


def test_worker_chaos_only_truncates_checkpoint_paths():
    plan = ChaosPlan(checkpoint_corruption_rate=1.0)
    install_worker_chaos(plan.state_dict(), 7, 1)
    from repro import ioutil

    hook = ioutil._write_fault_hook
    data = bytes(range(64))
    assert hook("results/export.csv", data) == data
    assert len(hook("stage.ckpt", data)) < len(data)
    assert len(hook("stage.done", data)) < len(data)
    set_write_fault_hook(None)


# -- ResultStore under chaos ----------------------------------------------


def test_store_recovers_from_chaos_torn_append(tmp_path):
    path = str(tmp_path / "r.jsonl")
    chaotic = ResultStore(
        path, chaos=ChaosInjector(ChaosPlan(torn_write_rate=1.0), seed=2)
    )
    chaotic.append({"name": "a", "status": "done", "report": "ra"})
    clean = ResultStore(path)
    assert clean.load() == {}
    assert clean.recovered_records == 1
    assert clean.recovered_bytes > 0
    # Repair truncated the torn bytes; the next append starts clean.
    clean.append({"name": "b", "status": "done", "report": "rb"})
    reloaded = ResultStore(path)
    assert set(reloaded.load()) == {"b"}
    assert reloaded.recovered_bytes == 0


def test_store_drops_corrupt_middle_record_and_tail(tmp_path):
    path = str(tmp_path / "r.jsonl")
    store = ResultStore(path)
    for name in ("a", "b", "c"):
        store.append({"name": name, "status": "done", "report": name})
    raw = bytearray(open(path, "rb").read())
    lines = open(path, "rb").read().split(b"\n")
    offset = len(lines[0]) + 1 + 5  # inside record "b"
    raw[offset] ^= 0xFF
    with open(path, "wb") as handle:
        handle.write(bytes(raw))
    fresh = ResultStore(path)
    assert set(fresh.load()) == {"a"}
    assert fresh.recovered_records == 2


# -- Supervisor: convergence under dispatch kills -------------------------


def test_campaign_converges_under_dispatch_kills():
    injector = ChaosInjector(ChaosPlan(kill_rate=0.5), seed=11)
    supervisor = _fast_supervisor(
        jobs=2, retries=30, quarantine_after=100, circuit_breaker=None,
        task_runner=echo_task_runner, chaos=injector,
        heartbeat_interval=0.05, heartbeat_timeout=5.0,
    )
    specs = [TaskSpec("t{}".format(i)) for i in range(6)]
    outcomes = supervisor.run(specs)
    assert all(o.status == "done" for o in outcomes.values())
    assert {o.report for o in outcomes.values()} == {
        "report:t{}".format(i) for i in range(6)
    }
    assert injector.events["kill"] >= 1


# -- Supervisor: poison-task quarantine -----------------------------------


def test_poison_task_is_quarantined_with_bounded_respawns():
    events = []
    supervisor = _fast_supervisor(
        jobs=2, retries=10, quarantine_after=3,
        task_runner=poison_task_runner,
    )
    outcomes = supervisor.run(
        [TaskSpec("poison"), TaskSpec("clean")], on_event=events.append
    )
    poison = outcomes["poison"]
    assert poison.status == "failed"
    assert poison.error_kind == "quarantined"
    assert poison.attempts == 3
    assert "quarantined" in poison.error
    assert outcomes["clean"].status == "done"
    assert any("[quarantined]" in event for event in events)


def test_success_resets_quarantine_counter():
    # A clean task that runs between crashes of another task must not
    # inherit its crash count; only per-task consecutive crashes count.
    supervisor = _fast_supervisor(
        jobs=1, retries=5, quarantine_after=3, circuit_breaker=None,
        task_runner=poison_task_runner,
    )
    outcomes = supervisor.run(
        [TaskSpec("clean-1"), TaskSpec("poison"), TaskSpec("clean-2")]
    )
    assert outcomes["clean-1"].status == "done"
    assert outcomes["clean-2"].status == "done"
    assert outcomes["poison"].error_kind == "quarantined"


# -- Supervisor: circuit breaker and degraded mode ------------------------


def test_circuit_breaker_degrades_to_in_process_serial():
    # Three poison tasks queued ahead of the clean one: their first
    # attempts trip the breaker (3 consecutive crashes) before the clean
    # task ever reaches a pool worker, so it must run in degraded mode.
    events = []
    supervisor = _fast_supervisor(
        jobs=1, retries=2, quarantine_after=None, circuit_breaker=3,
        task_runner=pid_task_runner,
    )
    specs = [
        TaskSpec("poison-1"), TaskSpec("poison-2"),
        TaskSpec("poison-3"), TaskSpec("clean"),
    ]
    outcomes = supervisor.run(specs, on_event=events.append)
    assert supervisor.breaker_opened
    assert any("circuit breaker open" in event for event in events)
    # The clean task ran inside the supervisor process itself.
    assert outcomes["clean"].report == "pid:{}".format(os.getpid())
    # The poison tasks kept failing in containment subprocesses without
    # taking the supervisor down.
    for name in ("poison-1", "poison-2", "poison-3"):
        assert outcomes[name].status == "failed"
        assert outcomes[name].error_kind == "worker-crash"
        assert outcomes[name].attempts == 3
    assert any("[degraded, contained]" in event for event in events)
    assert any("[degraded, in-process]" in event for event in events)


# -- Supervisor: heartbeat liveness ---------------------------------------


def test_heartbeat_detects_wedged_worker_and_retries():
    events = []
    supervisor = _fast_supervisor(
        jobs=1, retries=2, task_runner=self_stopping_runner,
        heartbeat_interval=0.05, heartbeat_timeout=0.5,
    )
    outcomes = supervisor.run([TaskSpec("wedge")], on_event=events.append)
    assert outcomes["wedge"].status == "done"
    assert outcomes["wedge"].attempts == 2
    assert any("wedged" in event for event in events)


# -- Supervisor: SIGTERM drain --------------------------------------------


def test_request_drain_defers_pending_tasks():
    supervisor = _fast_supervisor(jobs=1, task_runner=echo_task_runner)

    def watch(event):
        if event == "task a: done":
            supervisor.request_drain()

    specs = [TaskSpec("a"), TaskSpec("b"), TaskSpec("c")]
    with pytest.raises(CampaignDrained) as excinfo:
        supervisor.run(specs, on_event=watch)
    drained = excinfo.value
    assert set(drained.outcomes) == {"a"}
    assert drained.outcomes["a"].status == "done"
    assert drained.pending == ["b", "c"]


def test_drain_with_nothing_pending_returns_normally():
    supervisor = _fast_supervisor(jobs=1, task_runner=echo_task_runner)

    def watch(event):
        if event == "task b: done":
            supervisor.request_drain()

    outcomes = supervisor.run(
        [TaskSpec("a"), TaskSpec("b")], on_event=watch
    )
    assert set(outcomes) == {"a", "b"}


# -- The harness end-to-end -----------------------------------------------


def test_chaos_harness_cli_end_to_end(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(os.path.dirname(__file__), "..", "src")
    result = subprocess.run(
        [
            sys.executable, "-m", "repro.chaos",
            "--seed", "1", "--scale", "0.05",
            "--kill-rate", "0.3", "--torn-writes", "--corrupt-cache",
            "--experiments", "table1",
            "--workdir", str(tmp_path / "chaos-work"),
        ],
        capture_output=True, text=True, env=env, timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert "bit-identical" in result.stderr
    assert "poison task quarantined" in result.stderr
    assert "all phases passed" in result.stderr


def test_chaos_harness_rejects_bad_usage():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(os.path.dirname(__file__), "..", "src")
    result = subprocess.run(
        [sys.executable, "-m", "repro.chaos", "--kill-rate", "1.5"],
        capture_output=True, text=True, env=env, timeout=60,
    )
    assert result.returncode == 2
    assert "kill-rate" in result.stderr
