"""Latency statistics for completed bus transactions."""

from repro.sim.snapshot import Snapshottable


class LatencyStats(Snapshottable):
    """Accumulates the paper's latency metric for one master.

    The paper reports "the average number of bus cycles spent in
    transferring a bus word including both waiting time and data transfer
    time": a message of ``w`` words arriving at cycle ``a`` whose last
    word completes at cycle ``c`` spent ``c - a + 1`` cycles in flight,
    i.e. ``(c - a + 1) / w`` cycles per word.  Averaging is word-weighted
    (total in-flight cycles over total words), so long messages count in
    proportion to the bandwidth they consume.
    """

    def __init__(self):
        self.messages = 0
        self.words = 0
        self.total_cycles = 0
        self.total_wait_cycles = 0
        self.total_word_latency = 0
        self.max_latency_per_word = 0.0
        self.max_wait_cycles = 0

    state_attrs = (
        "messages",
        "words",
        "total_cycles",
        "total_wait_cycles",
        "total_word_latency",
        "max_latency_per_word",
        "max_wait_cycles",
    )

    def record(self, request):
        """Fold one completed :class:`~repro.bus.transaction.Request` in."""
        self.messages += 1
        self.words += request.words
        self.total_cycles += request.latency_cycles
        self.total_wait_cycles += request.wait_cycles
        self.total_word_latency += request.word_latency_total
        self.max_latency_per_word = max(
            self.max_latency_per_word, request.latency_per_word
        )
        self.max_wait_cycles = max(self.max_wait_cycles, request.wait_cycles)

    @property
    def avg_latency_per_word(self):
        """Word-weighted mean cycles per word (0.0 when empty)."""
        if self.words == 0:
            return 0.0
        return self.total_cycles / self.words

    @property
    def avg_word_latency(self):
        """Word-stretch mean cycles per word (the figures' metric).

        Charges every word its individual wait since it became ready, so
        slot-interleaved service (TDMA) scores its inter-word gaps while
        burst service (lottery, priority) amortizes a single wait over
        the whole message.  Back-to-back service from arrival scores 1.0.
        """
        if self.words == 0:
            return 0.0
        return self.total_word_latency / self.words

    @property
    def avg_latency_per_message(self):
        """Mean in-flight cycles per message (0.0 when empty)."""
        if self.messages == 0:
            return 0.0
        return self.total_cycles / self.messages

    @property
    def avg_wait_cycles(self):
        """Mean cycles a message waited before its first word moved."""
        if self.messages == 0:
            return 0.0
        return self.total_wait_cycles / self.messages

    def merge(self, other):
        """Fold another LatencyStats into this one."""
        self.messages += other.messages
        self.words += other.words
        self.total_cycles += other.total_cycles
        self.total_wait_cycles += other.total_wait_cycles
        self.total_word_latency += other.total_word_latency
        self.max_latency_per_word = max(
            self.max_latency_per_word, other.max_latency_per_word
        )
        self.max_wait_cycles = max(self.max_wait_cycles, other.max_wait_cycles)

    def __repr__(self):
        return "LatencyStats(messages={}, words={}, avg/word={:.3f})".format(
            self.messages, self.words, self.avg_latency_per_word
        )
