"""Explore the communication traffic space across all arbiters.

Runs every registered arbitration scheme against every traffic class
(T1-T9) with weights 1:2:3:4 and prints a grid of utilization and the
highest-weight master's per-word latency — a compact map of where each
architecture shines (the expanded version of Section 5.1).

Run:  python examples/traffic_space.py [cycles]
"""

import sys

from repro.arbiters import available_arbiters
from repro.experiments.system import run_testbed
from repro.metrics.report import format_table
from repro.traffic.classes import TRAFFIC_CLASSES

WEIGHTS = [1, 2, 3, 4]


def main(cycles=60_000):
    class_names = sorted(TRAFFIC_CLASSES)
    rows = []
    for arbiter_name in available_arbiters():
        cells = [arbiter_name]
        for class_name in class_names:
            result = run_testbed(
                arbiter_name, class_name, WEIGHTS, cycles=cycles, seed=4
            )
            cells.append(
                "{:.0%}/{:.1f}".format(
                    result.utilization, result.latencies_per_word[3]
                )
            )
        rows.append(cells)
    print(
        format_table(
            ["arbiter"] + class_names,
            rows,
            title=(
                "Traffic space: utilization / C4 latency (cycles/word), "
                "weights 1:2:3:4"
            ),
        )
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 60_000)
