"""Tests for the latency histogram."""

import pytest

from repro.metrics.histogram import LatencyDistribution, LogHistogram


def test_percentiles_of_uniform_ramp():
    histogram = LogHistogram(low=0.5, high=1e4)
    for value in range(1, 1001):
        histogram.record(float(value))
    assert histogram.percentile(0.5) == pytest.approx(500, rel=0.08)
    assert histogram.percentile(0.99) == pytest.approx(990, rel=0.08)
    assert histogram.percentile(1.0) == 1000.0
    assert histogram.percentile(0.0) == 1.0


def test_clamping_at_edges():
    histogram = LogHistogram(low=1.0, high=100.0)
    histogram.record(0.001)
    histogram.record(1e9)
    assert histogram.total == 2
    assert histogram.counts[0] == 1
    assert histogram.counts[-1] == 1


def test_empty_histogram():
    histogram = LogHistogram()
    assert histogram.percentile(0.5) == 0.0
    assert histogram.summary() == (0.0, 0.0, 0.0, 0.0)


def test_validation():
    with pytest.raises(ValueError):
        LogHistogram(low=0)
    with pytest.raises(ValueError):
        LogHistogram(low=10, high=5)
    histogram = LogHistogram()
    with pytest.raises(ValueError):
        histogram.record(0)
    with pytest.raises(ValueError):
        histogram.percentile(1.5)


def test_merge():
    a = LogHistogram()
    b = LogHistogram()
    for value in (1.0, 2.0, 3.0):
        a.record(value)
    for value in (100.0, 200.0):
        b.record(value)
    a.merge(b)
    assert a.total == 5
    assert a.max_value == 200.0
    assert a.min_value == 1.0


def test_merge_requires_same_binning():
    a = LogHistogram(low=0.5)
    b = LogHistogram(low=1.0)
    with pytest.raises(ValueError):
        a.merge(b)


def test_distribution_tracks_bus_completions():
    from repro.arbiters.lottery import StaticLotteryArbiter
    from repro.bus.topology import build_single_bus_system
    from repro.traffic.classes import get_traffic_class

    arbiter = StaticLotteryArbiter(tickets=[1, 2, 3, 4])
    system, bus = build_single_bus_system(
        4, arbiter, get_traffic_class("T8").generator_factory(seed=1)
    )
    distribution = LatencyDistribution(4)
    bus.add_completion_hook(distribution.on_completion)
    system.run(20_000)
    rows = distribution.summary_rows()
    assert all(row[1] > 0 for row in rows)
    # The histogram's median tracks the collector's mean ordering: the
    # 1-ticket master is slower than the 4-ticket master at p50.
    assert distribution.percentile(0, 0.5) > distribution.percentile(3, 0.5)
    # Tails are at least as large as medians.
    for master, _, p50, p95, p99, peak in rows:
        assert p50 <= p95 <= p99 <= peak + 1e-9
