"""Ablation: arbitration energy overhead across architectures.

DESIGN.md question (extension; the paper motivates power but does not
evaluate it): how much energy does each arbitration architecture add
per word moved?  Runs identical saturating traffic under each arbiter,
then applies the gate-level energy model: wire energy scales with the
words moved; arbitration + leakage energy scale with the arbiter's
gate count and how often it arbitrates.
"""

from conftest import cycles, run_once

from repro.arbiters.registry import make_arbiter
from repro.bus.topology import build_single_bus_system
from repro.core.energy_model import estimate_run_energy
from repro.core.hardware_model import (
    estimate_dynamic_manager,
    estimate_static_manager,
    estimate_static_priority,
    estimate_tdma,
)
from repro.metrics.report import format_table
from repro.traffic.classes import get_traffic_class

CONFIGS = [
    ("static-priority", {}, lambda: estimate_static_priority(4)),
    ("tdma", {}, lambda: estimate_tdma(4, 10)),
    ("lottery-static", {}, lambda: estimate_static_manager(4, 16)),
    ("lottery-dynamic", {}, lambda: estimate_dynamic_manager(4)),
]


def run_energy_ablation(num_cycles):
    rows = []
    for name, kwargs, hardware_factory in CONFIGS:
        arbiter = make_arbiter(name, 4, [1, 2, 3, 4], **kwargs)
        system, bus = build_single_bus_system(
            4, arbiter, get_traffic_class("T9").generator_factory(seed=2)
        )
        system.run(num_cycles)
        breakdown = estimate_run_energy(bus.metrics, hardware_factory())
        rows.append((name, breakdown))
    return rows


def test_bench_ablation_energy(benchmark):
    rows = run_once(benchmark, run_energy_ablation, cycles(60_000))
    print()
    print(
        format_table(
            ["arbiter", "pJ/word", "arb overhead", "words"],
            [
                [
                    name,
                    "{:.2f}".format(b.pj_per_word),
                    "{:.2%}".format(b.arbitration_overhead),
                    b.words,
                ]
                for name, b in rows
            ],
            title="Arbitration energy overhead (T9: 16-word saturation)",
        )
    )
    overhead = {name: b.arbitration_overhead for name, b in rows}
    # The lottery costs more than a bare priority selector but stays a
    # small fraction of the wire energy; the dynamic manager's adder
    # tree and modulo datapath make it the most expensive.
    assert overhead["static-priority"] < overhead["lottery-static"]
    assert overhead["lottery-static"] < overhead["lottery-dynamic"]
    assert overhead["lottery-static"] < 0.2
