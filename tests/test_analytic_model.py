"""The analytic surrogate: closed-form exactness, input validation,
scalar<->batch agreement, and the numpy-less degradation path."""

import pytest

from repro.analytic import (
    UnsupportedArbiterError,
    predict,
    score_grid,
    supported_arbiters,
)
from repro.analytic.families import priority_ranks
from repro.analytic.model import PERCENTILES
from repro.arbiters.registry import make_arbiter
from repro.experiments.sweep import SweepResult

WEIGHTS = (12, 2, 6, 1)


def _force_unavailable(monkeypatch):
    monkeypatch.setattr("repro.vector._compat._FORCE_UNAVAILABLE", True)


def test_supported_arbiters_exist_in_registry():
    for name in supported_arbiters():
        make_arbiter(name, 4, list(WEIGHTS))


def test_priority_ranks_match_registry_mapping():
    for weights in [(12, 2, 6, 1), (1, 1, 1, 1), (5, 5, 2, 9)]:
        arbiter = make_arbiter("static-priority", 4, list(weights))
        assert tuple(priority_ranks(list(weights))) == arbiter.priorities


def test_saturated_tdma_shares_are_slot_proportional():
    # T8 saturates every master with fixed bursts, so the TDMA wheel's
    # closed form is exact: shares are slot proportions.
    result = predict("tdma", "T8", weights=WEIGHTS)
    total = sum(WEIGHTS)
    assert result.utilization == pytest.approx(1.0, abs=1e-4)
    for share, weight in zip(result.bandwidth_shares, WEIGHTS):
        assert share == pytest.approx(weight / total, abs=1e-4)


def test_saturated_round_robin_shares_are_equal():
    result = predict("round-robin", "T8", weights=WEIGHTS)
    for share in result.bandwidth_shares:
        assert share == pytest.approx(0.25, abs=1e-6)


def test_saturated_priority_starves_the_low_ranks():
    result = predict("static-priority", "T1", weights=WEIGHTS)
    shares = result.bandwidth_shares
    # Master 0 outranks everyone (weight 12); master 3 (weight 1) is
    # starved to a vanishing share.
    assert shares[0] == max(shares)
    assert shares[3] < 0.01


def test_lottery_shares_track_ticket_order():
    result = predict("lottery-static", "T8", weights=WEIGHTS)
    shares = result.bandwidth_shares
    assert shares[0] > shares[2] > shares[1] > shares[3]
    assert sum(shares) == pytest.approx(1.0, abs=1e-6)


def test_percentiles_are_monotone_and_cover_the_mean():
    result = predict("lottery-static", "T3", weights=WEIGHTS)
    keys = ["p{:02.0f}".format(q * 100) for q in PERCENTILES]
    assert set(result.latency_percentiles) == set(keys)
    for master in range(4):
        ladder = [result.latency_percentiles[k][master] for k in keys]
        assert ladder == sorted(ladder)
        assert ladder[0] >= 1.0  # transfer floor: one cycle per word


def test_row_matches_sweep_columns():
    row = predict("lottery-static", "T8", weights=WEIGHTS).row()
    assert set(row) == set(SweepResult.COLUMNS)
    assert row["weights"] == "12:2:6:1"


def test_unknown_arbiter_is_rejected():
    with pytest.raises(UnsupportedArbiterError):
        predict("token-ring", "T8", weights=WEIGHTS)


def test_bad_inputs_are_rejected():
    with pytest.raises(ValueError):
        predict("lottery-static", "T8", weights=(1, 0, 1, 1))
    with pytest.raises(ValueError):
        predict("lottery-static", "T8", weights=(1, 2, 3))
    with pytest.raises(ValueError):
        predict("lottery-static", "T8", weights=WEIGHTS, cap=4)
    with pytest.raises(ValueError):
        predict(
            "lottery-static", "T8", weights=WEIGHTS,
            draw_policy="discard",
        )


def test_horizon_zeroes_latencies_no_message_can_complete_in():
    free = predict("lottery-static", "T8", weights=WEIGHTS)
    assert all(lat > 0.0 for lat in free.latencies_per_word)
    clipped = predict("lottery-static", "T8", weights=WEIGHTS, horizon=1)
    assert all(lat == 0.0 for lat in clipped.latencies_per_word)


def _grid_points():
    points = []
    for arbiter_name in supported_arbiters():
        for traffic_name in ("T1", "T3", "T6", "T8"):
            for weights in (WEIGHTS, (1, 1, 1, 1)):
                points.append(
                    {
                        "arbiter_name": arbiter_name,
                        "traffic_class_name": traffic_name,
                        "weights": weights,
                    }
                )
    return points


def test_score_grid_matches_predict():
    pytest.importorskip("numpy")
    points = _grid_points()
    batch = score_grid(points, horizon=15_000, percentiles=True)
    for point, result in zip(points, batch):
        scalar = predict(
            point["arbiter_name"],
            point["traffic_class_name"],
            weights=point["weights"],
            horizon=15_000,
        )
        assert result.arbiter == point["arbiter_name"]
        assert result.traffic == point["traffic_class_name"]
        assert result.utilization == pytest.approx(
            scalar.utilization, rel=1e-6, abs=1e-9
        )
        for got, want in zip(
            result.bandwidth_shares, scalar.bandwidth_shares
        ):
            assert got == pytest.approx(want, rel=1e-6, abs=1e-9)
        for got, want in zip(
            result.latencies_per_word, scalar.latencies_per_word
        ):
            assert got == pytest.approx(want, rel=1e-6, abs=1e-9)
        for key, want_row in scalar.latency_percentiles.items():
            for got, want in zip(
                result.latency_percentiles[key], want_row
            ):
                assert got == pytest.approx(want, rel=1e-6, abs=1e-9)


def test_score_grid_degrades_without_numpy(monkeypatch):
    _force_unavailable(monkeypatch)
    points = _grid_points()[:6]
    batch = score_grid(points)
    assert len(batch) == len(points)
    for point, result in zip(points, batch):
        scalar = predict(
            point["arbiter_name"],
            point["traffic_class_name"],
            weights=point["weights"],
        )
        assert result.bandwidth_shares == scalar.bandwidth_shares
        assert result.utilization == scalar.utilization


def test_score_grid_rejects_unsupported_points():
    with pytest.raises(UnsupportedArbiterError):
        score_grid(
            [
                {
                    "arbiter_name": "lottery-static",
                    "traffic_class_name": "T8",
                    "weights": WEIGHTS,
                },
                {
                    "arbiter_name": "token-ring",
                    "traffic_class_name": "T8",
                    "weights": WEIGHTS,
                },
            ]
        )
