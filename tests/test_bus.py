"""Tests for the shared bus."""

import pytest

from repro.arbiters.base import Arbiter
from repro.arbiters.static_priority import StaticPriorityArbiter
from repro.bus.bus import BusProtocolError, SharedBus
from repro.bus.master import MasterInterface
from repro.bus.slave import Slave
from repro.bus.transaction import Grant
from repro.sim.kernel import Simulator


def make_bus(num_masters=2, arbiter=None, **kwargs):
    masters = [MasterInterface("m{}".format(i), i) for i in range(num_masters)]
    if arbiter is None:
        arbiter = StaticPriorityArbiter(list(range(1, num_masters + 1)))
    bus = SharedBus("bus", masters, arbiter, **kwargs)
    return bus, masters


def run_bus(bus, cycles):
    sim = Simulator()
    sim.add(bus)
    sim.run(cycles)
    return sim


def test_single_request_transfers_one_word_per_cycle():
    bus, masters = make_bus()
    request = masters[0].submit(4, 0)
    run_bus(bus, 4)
    assert request.complete
    assert request.completion_cycle == 3
    assert request.latency_per_word == 1.0
    assert bus.metrics.busy_cycles == 4


def test_idle_bus_counts_idle_cycles():
    bus, _ = make_bus()
    run_bus(bus, 5)
    assert bus.metrics.idle_cycles == 5
    assert bus.metrics.utilization() == 0.0


def test_max_burst_forces_rearbitration():
    bus, masters = make_bus(max_burst=2)
    low = masters[0].submit(4, 0)   # priority 1 (lower)
    high = masters[1].submit(2, 0)  # priority 2 (higher)
    run_bus(bus, 10)
    # The high-priority master goes first; the low-priority request runs
    # in two bursts of two words with no interruption afterwards.
    assert high.completion_cycle == 1
    assert low.completion_cycle == 5
    assert bus.metrics.masters[0].grants == 2
    assert bus.metrics.masters[1].grants == 1


def test_higher_priority_preempts_at_burst_boundary():
    bus, masters = make_bus(max_burst=2)
    sim = Simulator()
    sim.add(bus)
    low = masters[0].submit(6, 0)
    sim.run(2)  # one burst of the low-priority master
    high = masters[1].submit(2, 2)
    sim.run(10)
    assert high.completion_cycle == 3
    assert low.completion_cycle == 7


def test_arbitration_cycles_delay_first_word():
    bus, masters = make_bus(arbitration_cycles=2)
    request = masters[0].submit(2, 0)
    run_bus(bus, 6)
    # Grant at cycle 0, two stall cycles, words at cycles 2 and 3.
    assert request.first_grant_cycle == 0
    assert request.completion_cycle == 3
    assert bus.metrics.stall_cycles == 2


def test_slave_setup_wait_states_hold_the_bus():
    slave = Slave("s", 0, setup_wait_states=3)
    bus, masters = make_bus(slaves=[slave])
    request = masters[0].submit(2, 0)
    run_bus(bus, 8)
    # Three setup stalls at cycles 0-2, words at cycles 3 and 4.
    assert request.completion_cycle == 4
    assert slave.bursts_served == 1
    assert slave.words_served == 2


def test_per_word_wait_states_stretch_bursts():
    slave = Slave("s", 0, per_word_wait_states=1)
    bus, masters = make_bus(slaves=[slave])
    request = masters[0].submit(3, 0)
    run_bus(bus, 10)
    # words at cycles 0, 2, 4
    assert request.completion_cycle == 4


def test_completion_hooks_fire_once_per_request():
    bus, masters = make_bus()
    seen = []
    bus.add_completion_hook(lambda request, cycle: seen.append((request, cycle)))
    request = masters[0].submit(3, 0)
    run_bus(bus, 5)
    assert seen == [(request, 2)]


def test_granting_idle_master_raises():
    class BadArbiter(Arbiter):
        def arbitrate(self, cycle, pending):
            return Grant(1)

    bus, masters = make_bus(arbiter=BadArbiter(2))
    masters[0].submit(1, 0)
    with pytest.raises(BusProtocolError):
        run_bus(bus, 1)


def test_granting_unknown_master_raises():
    class BadArbiter(Arbiter):
        def arbitrate(self, cycle, pending):
            return Grant(5)

    bus, masters = make_bus(arbiter=BadArbiter(2))
    masters[0].submit(1, 0)
    with pytest.raises(BusProtocolError):
        run_bus(bus, 1)


def test_mismatched_master_ids_rejected():
    masters = [MasterInterface("m0", 0), MasterInterface("m1", 5)]
    with pytest.raises(ValueError):
        SharedBus("bus", masters, StaticPriorityArbiter([1, 2]))


def test_word_conservation():
    bus, masters = make_bus()
    masters[0].submit(5, 0)
    masters[1].submit(7, 0)
    run_bus(bus, 50)
    assert bus.metrics.total_words == 12
    assert bus.metrics.busy_cycles == 12


def test_reset_clears_bus_state():
    bus, masters = make_bus()
    masters[0].submit(10, 0)
    run_bus(bus, 3)
    masters[0].reset()
    bus.reset()
    assert not bus.busy
    assert bus.metrics.cycles == 0


def test_back_to_back_bursts_have_no_idle_gap():
    bus, masters = make_bus()
    masters[0].submit(2, 0)
    masters[1].submit(2, 0)
    run_bus(bus, 4)
    assert bus.metrics.idle_cycles == 0
    assert bus.metrics.total_words == 4
