"""Run every experiment and emit a combined report.

``python -m repro all`` (or ``lotterybus all``) regenerates every table
and figure of the paper in one pass; individual experiments are exposed
through the same registry for the CLI and the benchmarks.
"""

import warnings

from repro.experiments.fault_sweep import run_fault_sweep
from repro.experiments.figure4 import run_figure4
from repro.experiments.figure5 import run_figure5
from repro.experiments.figure6 import run_figure6a, run_figure6b
from repro.experiments.figure8 import run_figure8
from repro.experiments.figure12 import run_figure12a, run_figure12_latency
from repro.experiments.hardware import (
    run_hardware_comparison,
    run_hardware_scaling,
)
from repro.experiments.starvation import run_starvation
from repro.experiments.sweep import run_sweep
from repro.experiments.table1 import run_table1

# The standard sweep: every batch-engine-supported arbiter crossed with
# all nine traffic classes at the Table 1 weights.  ``backend=`` picks
# the execution engine (scalar / vector / auto); rows are bit-identical
# across backends.
_SWEEP_ARBITERS = (
    "static-priority",
    "lottery-static",
    "lottery-dynamic",
    "lottery-compensated",
)
_SWEEP_TRAFFIC = tuple("T{}".format(i) for i in range(1, 10))
_SWEEP_WEIGHTS = (12, 2, 6, 1)


def _run_standard_sweep(scale, seed, screen=False, screen_top_k=8,
                        **options):
    """The standard sweep grid, exhaustive or two-tier screened.

    With ``screen=True`` the grid is scored by the analytic surrogate
    first and only the surviving candidates are simulated (see
    :func:`repro.experiments.run_screened_sweep`); confirmed rows stay
    bit-identical to the exhaustive sweep's.
    """
    common = dict(
        weights=_SWEEP_WEIGHTS,
        cycles=int(50_000 * scale),
        seed=seed,
        **options
    )
    if screen:
        from repro.experiments.screen import run_screened_sweep

        return run_screened_sweep(
            _SWEEP_ARBITERS, _SWEEP_TRAFFIC,
            top_k=screen_top_k, **common
        )
    return run_sweep(_SWEEP_ARBITERS, _SWEEP_TRAFFIC, **common)

# Cycle counts are scaled by ``scale`` (1.0 = the EXPERIMENTS.md values).
_EXPERIMENTS = {
    "figure4": lambda scale, seed: run_figure4(
        cycles=int(100_000 * scale), seed=seed
    ),
    "figure5": lambda scale, seed: run_figure5(
        cycles=int(40_000 * scale), seed=seed
    ),
    "figure6a": lambda scale, seed: run_figure6a(
        cycles=int(100_000 * scale), seed=seed
    ),
    "figure6b": lambda scale, seed: run_figure6b(
        cycles=int(400_000 * scale), seed=seed
    ),
    "figure8": lambda scale, seed: run_figure8(),
    "figure12a": lambda scale, seed: run_figure12a(
        cycles=int(200_000 * scale), seed=seed
    ),
    "figure12b": lambda scale, seed: run_figure12_latency(
        "tdma", cycles=int(400_000 * scale), seed=seed, reclaim="single"
    ),
    "figure12c": lambda scale, seed: run_figure12_latency(
        "lottery-static", cycles=int(400_000 * scale), seed=seed
    ),
    "table1": lambda scale, seed, **extra: run_table1(
        cycles=int(500_000 * scale), seed=seed, **extra
    ),
    "hardware": lambda scale, seed: run_hardware_comparison(),
    "hwscale": lambda scale, seed: run_hardware_scaling(),
    "starvation": lambda scale, seed: run_starvation(
        drawings=int(200_000 * scale), seed=seed
    ),
    "faultsweep": lambda scale, seed, **options: run_fault_sweep(
        cycles=int(60_000 * scale), seed=seed, **options
    ),
    "sweep": _run_standard_sweep,
}

# Experiments accepting extra keyword options (e.g. the CLI's
# ``--fault-rate`` or ``--backend``); passing options to any other
# experiment is an error.
_OPTION_AWARE = {"faultsweep", "sweep"}

# Deterministic/analytic experiments whose lambdas take no cycle count
# or RNG: --scale/--seed cannot change their result, so passing
# non-default values draws a warning instead of being silently ignored.
_SEEDLESS = {"figure8", "hardware", "hwscale"}

# Experiments that accept a ``checkpointer``/``progress`` pair (see
# repro.experiments.checkpoint) for interruptible, resumable execution.
_CHECKPOINT_AWARE = {"table1"}


def experiment_names():
    """All runnable experiment ids, in paper order."""
    return list(_EXPERIMENTS)


def checkpoint_aware_experiments():
    """Experiment ids that support stage checkpointing / resume."""
    return set(_CHECKPOINT_AWARE)


def run_experiment(name, scale=1.0, seed=1, checkpointer=None,
                   progress=None, _warn_seedless=True, **options):
    """Run one experiment by id; returns its result object.

    :param checkpointer: optional
        :class:`~repro.experiments.checkpoint.ExperimentCheckpointer`
        for checkpoint-aware experiments (a ValueError for others).
    :param progress: optional ``progress(stage, cycle, total)`` callback
        driven by checkpoint-aware experiments as they advance.
    """
    try:
        runner = _EXPERIMENTS[name]
    except KeyError:
        raise ValueError(
            "unknown experiment {!r}; choose from {}".format(
                name, experiment_names()
            )
        )
    if _warn_seedless and name in _SEEDLESS and (scale != 1.0 or seed != 1):
        warnings.warn(
            "experiment {!r} is deterministic; --scale/--seed have no "
            "effect on it".format(name),
            RuntimeWarning,
            stacklevel=2,
        )
    extra = {}
    if checkpointer is not None:
        if name not in _CHECKPOINT_AWARE:
            raise ValueError(
                "experiment {!r} does not support checkpointing "
                "(only {} do)".format(name, sorted(_CHECKPOINT_AWARE))
            )
        extra["checkpointer"] = checkpointer
        if progress is not None:
            extra["progress"] = progress
    if options:
        if name not in _OPTION_AWARE:
            raise ValueError(
                "experiment {!r} takes no extra options ({} apply only to {})".format(
                    name, sorted(options), sorted(_OPTION_AWARE)
                )
            )
        return runner(scale, seed, **options, **extra)
    if extra:
        return runner(scale, seed, **extra)
    return runner(scale, seed)


def _run_named(name, scale, seed):
    """Module-level pool entry: one registry experiment, warnings off."""
    return run_experiment(name, scale=scale, seed=seed, _warn_seedless=False)


def run_all(scale=1.0, seed=1, names=None, jobs=None):
    """Run experiments and return {name: result}.

    Campaign-wide --scale/--seed legitimately cover the deterministic
    experiments too, so the per-experiment seedless warning stays quiet
    on this path.  ``jobs`` > 1 fans the experiments out over the
    persistent worker pool; results are keyed and ordered by name
    exactly as the serial path produces them.
    """
    if names is None:
        names = experiment_names()
    if jobs is not None and jobs > 1:
        from repro.experiments.supervisor import pool_map

        results = pool_map(
            _run_named, [(name, scale, seed) for name in names], jobs=jobs
        )
        return dict(zip(names, results))
    return {
        name: _run_named(name, scale, seed)
        for name in names
    }


def format_full_report(results):
    """Concatenate every result's report with separators."""
    sections = []
    for name, result in results.items():
        sections.append("=" * 72)
        sections.append("[{}]".format(name))
        sections.append(result.format_report())
        sections.append("")
    return "\n".join(sections)
