"""Lane planning: turning scalar systems into batch-engine lanes.

A *lane* is one complete simulated system (bus + masters + slaves +
generators + arbiter) occupying one column of the engine's
struct-of-arrays state.  :func:`plan_lane` inspects a freshly built
scalar system and either extracts everything the engine needs into a
:class:`LanePlan` or raises :class:`UnsupportedConfigError` naming the
feature that forces the scalar path — the backend turns that into a
per-point fallback, never a failure.

Supported configurations (everything else falls back):

* exactly one plain :class:`~repro.bus.bus.SharedBus` — no preemption,
  split transactions, bus timeout, fault injector, or completion hooks;
* plain :class:`~repro.bus.master.MasterInterface` masters (no retry
  policy, no queue bound) and plain :class:`~repro.bus.slave.Slave`
  slaves (wait states are fine);
* :class:`~repro.traffic.generator.SaturatingGenerator` /
  :class:`~repro.traffic.generator.ClosedLoopGenerator` sources without
  flow labels (at most one per master);
* lottery-family arbiters (static / dynamic / compensated) drawing from
  a hardware :class:`~repro.core.lfsr.LFSR`, plus the static-priority
  arbiter.
"""

import pickle

from repro.arbiters.lottery import (
    CompensatedLotteryArbiter,
    DynamicLotteryArbiter,
    StaticLotteryArbiter,
)
from repro.arbiters.static_priority import StaticPriorityArbiter
from repro.bus.bus import SharedBus
from repro.bus.master import MasterInterface
from repro.bus.slave import Slave
from repro.core.lfsr import LFSR
from repro.traffic.generator import ClosedLoopGenerator, SaturatingGenerator
from repro.traffic.message import FixedWords

# The static table is materialized per lane as a (2**M, M) block; cap
# the exponent so a pathological master count cannot explode memory.
MAX_TABLE_MASTERS = 8

SUPPORTED_FAMILIES = (
    "lottery-static",
    "lottery-dynamic",
    "lottery-compensated",
    "static-priority",
)
LOTTERY_FAMILIES = SUPPORTED_FAMILIES[:3]


class UnsupportedConfigError(ValueError):
    """The system uses a feature the batch engine does not model."""


class VectorDivergenceError(RuntimeError):
    """A cross-checked lane disagreed with the scalar simulator."""


class GeneratorSpec:
    """Per-master traffic source config lifted off a built generator."""

    __slots__ = ("kind", "depth", "mean_think", "fixed_words", "words",
                 "rng", "slave")

    def __init__(self, kind, depth, mean_think, fixed_words, words, rng,
                 slave):
        self.kind = kind                # "saturating" | "closedloop"
        self.depth = depth              # saturating backlog target
        self.mean_think = mean_think    # closed-loop think mean
        self.fixed_words = fixed_words  # int when the size draws no RNG
        self.words = words              # the distribution object
        self.rng = rng                  # the generator's RandomStream
        self.slave = slave


class LanePlan:
    """Everything the engine needs to host one system as a lane."""

    __slots__ = ("label", "num_masters", "max_burst", "arbitration_cycles",
                 "slave_setup", "slave_per_word", "generators", "profile",
                 "builder")

    def __init__(self, label, num_masters, max_burst, arbitration_cycles,
                 slave_setup, slave_per_word, generators, profile, builder):
        self.label = label
        self.num_masters = num_masters
        self.max_burst = max_burst
        self.arbitration_cycles = arbitration_cycles
        self.slave_setup = slave_setup
        self.slave_per_word = slave_per_word
        self.generators = generators    # one GeneratorSpec or None per master
        self.profile = profile          # arbiter vector_profile() dict
        self.builder = builder          # () -> (system, bus), fresh twin


def _require(condition, reason):
    if not condition:
        raise UnsupportedConfigError(reason)


def _plan_generator(generator, master_index, num_slaves):
    _require(generator.flow is None, "flow-labelled traffic")
    _require(
        0 <= generator.slave < num_slaves,
        "generator targets slave {} of {}".format(generator.slave,
                                                  num_slaves),
    )
    words = generator.words
    fixed = words.words if isinstance(words, FixedWords) else None
    if type(generator) is SaturatingGenerator:
        return GeneratorSpec("saturating", generator.depth, 0, fixed, words,
                             generator._rng, generator.slave)
    if type(generator) is ClosedLoopGenerator:
        _require(generator._think == 0, "closed-loop source already thinking")
        return GeneratorSpec("closedloop", 0, generator.mean_think, fixed,
                             words, generator._rng, generator.slave)
    raise UnsupportedConfigError(
        "generator type {}".format(type(generator).__name__)
    )


def _plan_arbiter(arbiter):
    _require(
        hasattr(arbiter, "vector_profile"),
        "arbiter {} exports no vector profile".format(
            type(arbiter).__name__
        ),
    )
    profile = arbiter.vector_profile()
    family = profile["family"]
    _require(family in SUPPORTED_FAMILIES,
             "arbiter family {}".format(family))
    if family in LOTTERY_FAMILIES:
        source = profile["random_source"]
        _require(
            type(source) is LFSR,
            "lottery random source {}".format(type(source).__name__),
        )
    if family == "lottery-dynamic":
        _require(profile["ticket_channel_up"],
                 "ticket channel is faulted down")
    return profile


def plan_lane(builder, label=None):
    """Build a fresh system via ``builder`` and plan it as a lane.

    ``builder`` must be a zero-argument callable returning a
    ``(BusSystem, SharedBus)`` pair (the :func:`build_single_bus_system`
    shape); it is kept on the plan so a strict cross-check can construct
    an untouched scalar twin later.  Raises
    :class:`UnsupportedConfigError` for anything the engine cannot
    reproduce bit-identically.
    """
    system, bus = builder()
    _require(len(system.buses) == 1 and system.buses[0] is bus,
             "multi-bus topology")
    _require(not system.monitors, "registered monitors")
    _require(type(bus) is SharedBus, "bus type {}".format(type(bus).__name__))
    _require(not bus.preemptive, "preemptive arbitration")
    _require(not bus.split_transactions, "split transactions")
    _require(bus.bus_timeout is None, "bus watchdog timeout")
    _require(bus.injector is None, "fault injector attached")
    _require(not bus._completion_hooks, "completion hooks attached")
    _require(bus._burst is None and bus._stall == 0
             and bus.metrics.cycles == 0, "system already run")
    for master in bus.masters:
        _require(type(master) is MasterInterface,
                 "master type {}".format(type(master).__name__))
        _require(master.retry_policy is None, "retry policy installed")
        _require(master.max_queue is None, "bounded master queue")
        _require(master.queue_depth == 0, "master queue not empty")
    for slave in bus.slaves:
        _require(type(slave) is Slave,
                 "slave type {}".format(type(slave).__name__))
    num_masters = len(bus.masters)
    generators = [None] * num_masters
    ids = {id(master): index for index, master in enumerate(bus.masters)}
    for generator in system.generators:
        index = ids.get(id(generator.interface))
        _require(index is not None, "generator wired to a foreign master")
        _require(generators[index] is None,
                 "two generators share master {}".format(index))
        generators[index] = _plan_generator(generator, index,
                                            len(bus.slaves))
    profile = _plan_arbiter(bus.arbiter)
    if profile["family"] == "lottery-static":
        _require(num_masters <= MAX_TABLE_MASTERS,
                 "{} masters exceed the static-table cap".format(num_masters))
    return LanePlan(
        label=label,
        num_masters=num_masters,
        max_burst=bus.max_burst,
        arbitration_cycles=bus.arbitration_cycles,
        slave_setup=[slave.setup_wait_states for slave in bus.slaves],
        slave_per_word=[slave.per_word_wait_states for slave in bus.slaves],
        generators=generators,
        profile=profile,
        builder=builder,
    )


def arbiter_check_state(arbiter):
    """The arbiter-side state folded into a lane fingerprint.

    Covers everything the engine replays beyond the metrics summary:
    lottery counters, the LFSR register, and live ticket state — enough
    that an RNG- or compensation-path divergence cannot hide behind
    matching bandwidth numbers.
    """
    if isinstance(arbiter, CompensatedLotteryArbiter):
        manager = arbiter.manager
        return {
            "family": "lottery-compensated",
            "lotteries_held": manager.lotteries_held,
            "tickets": tuple(manager.tickets),
            "factors": tuple(manager.policy.factors),
            "lfsr_state": manager._manager.random_source.state,
        }
    if isinstance(arbiter, StaticLotteryArbiter):
        manager = arbiter.manager
        return {
            "family": "lottery-static",
            "lotteries_held": manager.lotteries_held,
            "rejected_draws": manager.rejected_draws,
            "lfsr_state": manager.random_source.state,
        }
    if isinstance(arbiter, DynamicLotteryArbiter):
        manager = arbiter.manager
        return {
            "family": "lottery-dynamic",
            "lotteries_held": manager.lotteries_held,
            "tickets": tuple(manager.tickets),
            "lfsr_state": manager.random_source.state,
        }
    if isinstance(arbiter, StaticPriorityArbiter):
        return {"family": "static-priority"}
    return {"family": type(arbiter).__name__}


def scalar_fingerprint(bus):
    """Canonical fingerprint of a scalar system's observable state."""
    return pickle.dumps(
        (bus.metrics.summary(), arbiter_check_state(bus.arbiter)),
        protocol=2,
    )
