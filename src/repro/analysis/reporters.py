"""Finding reporters: human text and machine JSON."""

import json


def text_report(findings, accepted=0, stale=()):
    """Classic ``path:line:col: RULE message`` lines plus a summary."""
    lines = []
    for finding in findings:
        lines.append(
            "{}:{}:{}: {} {}".format(
                finding.path,
                finding.line,
                finding.col + 1,
                finding.rule,
                finding.message,
            )
        )
    counts = {}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    if findings:
        summary = ", ".join(
            "{} x{}".format(rule, counts[rule]) for rule in sorted(counts)
        )
        lines.append("")
        lines.append(
            "{} finding{} ({})".format(
                len(findings), "s" if len(findings) != 1 else "", summary
            )
        )
    else:
        lines.append("clean: no unbaselined findings")
    if accepted:
        lines.append("{} baselined finding{} accepted".format(
            accepted, "s" if accepted != 1 else ""
        ))
    for entry in stale:
        lines.append(
            "stale baseline entry: {} {} {!r} — fixed? remove it".format(
                entry["rule"], entry["path"], entry["code"]
            )
        )
    return "\n".join(lines)


def json_report(findings, accepted=0, stale=()):
    """A stable JSON document (the CI artifact)."""
    counts = {}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    payload = {
        "version": 1,
        "findings": [finding.as_dict() for finding in findings],
        "summary": {
            "total": len(findings),
            "by_rule": counts,
            "baselined": accepted,
            "stale_baseline_entries": len(stale),
        },
        "stale_baseline_entries": list(stale),
    }
    return json.dumps(payload, indent=2, sort_keys=True)
