"""The job queue's write-ahead log: append-only, CRC-stamped, replayable.

Every state transition the queue makes — submit, lease, run, done,
fail, quarantine, cancel, requeue — is appended here *before* the
in-memory table changes, using the same crash-consistent record framing
as the campaign :class:`~repro.experiments.supervisor.ResultStore`
(PR 6): one canonical-JSON object per line, ``_crc`` stamped with the
CRC32 of the record's canonical form, flushed and fsynced per append.

Recovery validates **every line independently**.  A ``kill -9`` can
land between any two syscalls of an append, so :meth:`JobWAL.replay`
walks the journal line by line: valid CRC-stamped records replay, torn
or corrupt lines are skipped *and counted*, and the invalid tail after
the last valid record is physically truncated (so later appends can
never be glued onto torn bytes).  Skipping interior junk — rather than
stopping at it — matters: the newline self-heal in :meth:`append`
guarantees each record owns its line, so a record torn by a fault
injector mid-campaign must not orphan the durable, acknowledged records
appended after it.  Because the record for a transition is durable
before the transition is acknowledged, replay can only ever *lose the
acknowledgement*, never fabricate one: a job is either fully admitted
(its ``submit`` record survived) or was never admitted at all — no lost
jobs, no duplicated jobs.

The chaos seam mirrors the result store's: an injector may tear or
reject appends so the fuzz suites and the chaos service phase prove the
recovery path on every byte offset.
"""

import json
import os
import zlib

from repro.experiments.cache import canonical_json

#: Every legal ``op`` field; replay rejects records claiming others so
#: a bit flip that survives CRC (it cannot) or a version skew surfaces
#: as a typed replay stop, not a KeyError mid-recovery.
WAL_OPS = (
    "submit",
    "lease",
    "run",
    "done",
    "fail",
    "cancel",
    "requeue",
)


class JobWAL:
    """Append-only CRC32-stamped JSONL journal of queue transitions.

    :param path: journal file (created on first append).
    :param chaos: optional :class:`repro.chaos.ChaosInjector`; when
        given, appends may be torn or rejected with ``ENOSPC`` exactly
        like result-store appends, so the chaos harness exercises WAL
        recovery too.
    """

    def __init__(self, path, chaos=None):
        self.path = path
        self.chaos = chaos
        self.appended = 0  # records appended by this instance
        self.recovered_records = 0  # tail records dropped by last replay()
        self.recovered_bytes = 0  # bytes truncated by the last replay()
        self.skipped_records = 0  # interior invalid lines skipped

    # -- append (the write-ahead half) ----------------------------------

    def append(self, record):
        """Durably append one transition record; returns the record.

        The record is CRC-stamped over its canonical JSON form, written
        with a trailing newline, flushed and fsynced.  If a previous
        append was torn (no trailing newline), a newline is inserted
        first so this record can never be concatenated onto torn bytes
        and lost with them.  Raises ``OSError`` on failure — the caller
        must *not* apply the transition in memory in that case.
        """
        record = dict(record)
        record.pop("_crc", None)
        record["_crc"] = zlib.crc32(canonical_json(record).encode("utf-8"))
        data = (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
        if self.chaos is not None:
            data = self.chaos.mangle_store_append(data)
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(self.path, "ab") as handle:
            if handle.tell() > 0 and not self._ends_with_newline():
                handle.write(b"\n")
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        # Single writer: every append happens under JobQueue._lock (the
        # WAL is the queue's journal), which the flow engine cannot see
        # across the untyped constructor param.  The /stats read is a
        # monitoring snapshot of a GIL-atomic int.
        self.appended += 1  # lb: noqa[LB201]
        return record

    def _ends_with_newline(self):
        try:
            with open(self.path, "rb") as handle:
                handle.seek(-1, os.SEEK_END)
                return handle.read(1) == b"\n"
        except OSError:
            # Unreadable tail: treat as clean and let the append land on
            # its own line; replay's CRC check still guards the result.
            return True

    # -- replay (the recovery half) --------------------------------------

    def replay(self, repair=True):
        """Every valid transition record, in append order.

        Never raises for corruption: each line validates independently
        (JSON + CRC32 + known op), torn or corrupt interior lines are
        skipped and counted in ``skipped_records``, and the invalid
        *tail* after the last valid record is counted in
        ``recovered_records``/``recovered_bytes`` and — with
        ``repair=True`` (the default) — physically truncated off the
        file so subsequent appends start from a clean boundary.  Only a
        present-but-unreadable file (permissions, I/O error) raises
        ``OSError``.
        """
        self.recovered_records = 0
        self.recovered_bytes = 0
        self.skipped_records = 0
        try:
            with open(self.path, "rb") as handle:
                raw = handle.read()
        except FileNotFoundError:
            return []
        records, valid_end, tail_invalid = self._scan(raw)
        if valid_end < len(raw):
            self.recovered_bytes = len(raw) - valid_end
            self.recovered_records = tail_invalid
            if repair:
                self._truncate_to(valid_end)
        return records

    def _scan(self, raw):
        """``(records, end-of-last-valid-record, invalid-tail-lines)``."""
        records = []
        valid_end = 0
        invalid_since_valid = 0
        offset = 0
        while offset < len(raw):
            newline = raw.find(b"\n", offset)
            if newline == -1:
                line, end = raw[offset:], len(raw)
            else:
                line, end = raw[offset:newline], newline + 1
            stripped = line.strip()
            if stripped:
                record = self._parse_record(stripped)
                if record is None:
                    invalid_since_valid += 1
                else:
                    records.append(record)
                    self.skipped_records += invalid_since_valid
                    invalid_since_valid = 0
                    valid_end = end
            elif not invalid_since_valid:
                valid_end = end  # blank line: harmless padding
            offset = end
        return records, valid_end, invalid_since_valid

    @staticmethod
    def _parse_record(line):
        """One validated transition, or ``None`` for torn/corrupt bytes."""
        try:
            record = json.loads(line.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return None  # torn/corrupt line: it ends the valid prefix
        if not isinstance(record, dict):
            return None
        crc = record.pop("_crc", None)
        if not isinstance(crc, int):
            return None
        payload = canonical_json(record).encode("utf-8")
        if zlib.crc32(payload) != crc:
            return None
        if record.get("op") not in WAL_OPS:
            return None
        return record

    def _truncate_to(self, size):
        try:
            with open(self.path, "r+b") as handle:
                handle.truncate(size)
                handle.flush()
                os.fsync(handle.fileno())
        except OSError:
            pass  # repair is best-effort; replay already skipped the tail

    def clear(self):
        try:
            os.unlink(self.path)
        except OSError:
            pass  # a missing journal is already "cleared"

    def __repr__(self):
        return "JobWAL({!r}, appended={})".format(self.path, self.appended)
