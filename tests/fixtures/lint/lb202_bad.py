# lb: module=repro.service.fixture_spawny
"""LB202 true positives: spawn under a held lock; non-daemon service thread."""

import subprocess
import threading


class Launcher:
    def __init__(self):
        self._lock = threading.Lock()
        self._children = []

    def spawn_locked(self, command):
        with self._lock:
            child = subprocess.Popen(command)
            self._children.append(child)
        return child

    def start_worker(self):
        worker = threading.Thread(target=self._serve)
        worker.start()
        return worker

    def _serve(self):
        pass
