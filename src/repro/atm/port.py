"""Output ports.

"Each port polls its queue to detect presence of a cell.  If it is not
empty, the port issues a dequeue signal to its local memory, and
requests access to the shared system bus.  Once it acquires the bus, it
extracts the relevant cell from the shared memory, and forwards it onto
the output link."
"""

from repro.atm.cell import CELL_WORDS
from repro.metrics.latency import LatencyStats
from repro.sim.component import Component


class OutputPort(Component):
    """One output port: queue poller, bus master, output link driver.

    The port handles one cell at a time: dequeue, read the payload over
    the bus (``cell_words`` bus words from the shared memory), forward.

    :param interface: the port's MasterInterface on the system bus.
    :param queue: the port's OutputQueue.
    :param memory: the SharedCellMemory (for buffer release).
    :param cell_words: bus words per cell (default 14 = 53 bytes / 32-bit).
    """

    def __init__(self, name, port_id, interface, queue, memory, cell_words=CELL_WORDS):
        super().__init__(name)
        if cell_words < 1:
            raise ValueError("cell_words must be >= 1")
        self.port_id = port_id
        self.interface = interface
        self.queue = queue
        self.memory = memory
        self.cell_words = cell_words
        self._inflight = None
        self.cells_forwarded = 0
        self.cell_latency = LatencyStats()
        self.total_switch_latency = 0

    # The port owns its queue's snapshot (the interface and memory are
    # snapshotted by the bus they sit on).  The in-flight cell is also
    # the tag of a request in the interface queue; the simulator-level
    # pickle pass keeps that a single shared object.
    state_attrs = ("_inflight", "cells_forwarded", "total_switch_latency")
    state_children = ("cell_latency", "queue")

    def reset(self):
        self._inflight = None
        self.cells_forwarded = 0
        self.cell_latency = LatencyStats()
        self.total_switch_latency = 0

    @property
    def busy(self):
        return self._inflight is not None

    def attach(self, bus):
        """Subscribe to bus completions so forwarded cells are detected."""
        bus.add_completion_hook(self._on_bus_completion)

    def tick(self, cycle):
        if self._inflight is None and not self.queue.empty:
            cell = self.queue.dequeue(cycle)
            request = self.interface.submit(
                self.cell_words, cycle, slave=self.memory.slave_id, tag=cell
            )
            if request is None:
                raise RuntimeError("port interface rejected a request")
            self._inflight = cell

    def _on_bus_completion(self, request, cycle):
        if request.master != self.interface.master_id:
            return
        cell = request.tag
        cell.forward_cycle = cycle
        self.memory.read_cell(cell)
        self.cells_forwarded += 1
        self.cell_latency.record(request)
        self.total_switch_latency += cell.switch_latency
        self._inflight = None

    @property
    def avg_switch_latency(self):
        """Mean cycles from switch arrival to forwarding."""
        if self.cells_forwarded == 0:
            return 0.0
        return self.total_switch_latency / self.cells_forwarded
