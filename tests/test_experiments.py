"""Smoke and shape tests for the experiment harnesses.

Cycle counts are reduced for test speed; the assertions target the
paper's qualitative claims, which hold at these scales.
"""

import pytest

from repro.experiments.figure4 import run_figure4
from repro.experiments.figure5 import run_figure5
from repro.experiments.figure6 import run_figure6a, run_figure6b
from repro.experiments.figure8 import run_figure8
from repro.experiments.figure12 import run_figure12a, run_figure12_latency
from repro.experiments.hardware import run_hardware_comparison
from repro.experiments.starvation import run_starvation
from repro.experiments.system import (
    permutation_label,
    run_testbed,
    weight_permutations,
)
from repro.experiments.table1 import run_table1


def test_weight_permutations_enumerate_all_24():
    perms = weight_permutations()
    assert len(perms) == 24
    assert perms[0] == [1, 2, 3, 4]
    assert perms[-1] == [4, 3, 2, 1]
    assert permutation_label([2, 1, 4, 3]) == "2143"


def test_run_testbed_returns_summary():
    result = run_testbed("round-robin", "T8", [1, 1, 1, 1], cycles=2000)
    assert result.utilization > 0.9
    assert len(result.bandwidth_fractions) == 4


def test_run_testbed_warmup_discards_transient():
    result = run_testbed(
        "round-robin", "T8", [1, 1, 1, 1], cycles=2000, warmup=500
    )
    # Metrics cover only the measured window.
    assert result.summary["cycles"] == 2000
    with pytest.raises(ValueError):
        run_testbed("round-robin", "T8", [1, 1, 1, 1], cycles=10, warmup=-1)


def test_figure4_priority_sensitivity_and_starvation():
    result = run_figure4(cycles=8000)
    assert len(result.labels) == 24
    low, high = result.master_range(0)
    # C1's share swings from almost nothing to almost everything.
    assert low < 0.05
    assert high > 0.85
    # Whoever holds the lowest priority starves.
    assert result.average_when_lowest(3) < 0.05
    assert "Figure 4" in result.format_report()


def test_figure5_alignment_pathology():
    result = run_figure5(cycles=6000)
    aligned = result.pure_tdma[result.phases.index(0)]
    worst = max(result.pure_tdma)
    # Aligned traffic is serviced immediately; misaligned waits slots.
    assert aligned == pytest.approx(1.0, abs=0.05)
    assert worst > 2.0
    assert result.worst_wait() >= 3.0
    # The lottery is phase-blind.
    assert result.lottery_spread() < 0.5
    assert "Figure 5" in result.format_report()


def test_figure6a_shares_track_tickets():
    result = run_figure6a(cycles=8000)
    assert len(result.labels) == 24
    # Proportionality within the tolerance of LFSR draws + scaling.
    assert result.worst_share_error() < 0.08
    assert "Figure 6(a)" in result.format_report()


def test_figure6b_lottery_beats_constrained_tdma():
    result = run_figure6b(cycles=60_000)
    # The high-ticket component: cost-constrained TDMA is several times
    # worse than the lottery (the paper's 8.55 vs 1.17 comparison).
    assert result.improvement(master=3, tdma="single") > 1.5
    assert "Figure 6(b)" in result.format_report()


def test_figure8_grants_c4_on_draw_of_5():
    result = run_figure8()
    assert result.outcome.winner == 3
    assert result.outcome.total == 8
    assert result.outcome.partial_sums == (1, 1, 4, 8)
    assert "C4" in result.format_report()


def test_figure12a_saturating_classes_follow_tickets():
    result = run_figure12a(cycles=20_000)
    assert len(result.class_names) == 9
    t8 = result.class_names.index("T8")
    row = result.fractions[t8]
    assert row[0] < row[1] < row[2] < row[3]
    # Sparse classes leave bandwidth unused.
    t3 = result.class_names.index("T3")
    assert result.unutilized(t3) > 0.3
    assert "Figure 12(a)" in result.format_report()


def test_figure12_latency_surfaces():
    tdma = run_figure12_latency("tdma", cycles=30_000, reclaim="single")
    lottery = run_figure12_latency("lottery-static", cycles=30_000)
    # T6, highest-weight component: constrained TDMA much worse.
    assert tdma.latency("T6", 4) > lottery.latency("T6", 4)
    # Sparse class: lottery grants are near-immediate.
    assert lottery.latency("T3", 4) < 2.0
    assert "surface" in tdma.format_report()


def test_table1_bandwidth_rows():
    result = run_table1(cycles=60_000)
    # Static priority starves the lowest-priority port.
    assert result.bandwidth("static priority", 3) < 0.02
    # LOTTERYBUS honours port 3's dominant reservation...
    lottery_p3 = result.bandwidth("LOTTERYBUS", 2)
    assert lottery_p3 > 0.5
    # ...while TDMA's ratio-blind reclaim dilutes it.
    assert result.bandwidth("TDMA (scan reclaim)", 2) < lottery_p3
    # Port 1's latency is minimal under static priority.
    pri = result.port1_latency("static priority")
    assert pri < result.port1_latency("TDMA (scan reclaim)")
    assert "Table 1" in result.format_report()


def test_hardware_comparison_report():
    result = run_hardware_comparison()
    static = result.by_name("static-lottery")
    assert static.area_cell_grids == pytest.approx(1458, rel=0.05)
    assert "cell grids" in result.format_report()


def test_starvation_analytic_matches_empirical():
    result = run_starvation(drawings=30_000)
    assert result.worst_gap() < 0.05
    assert "Starvation" in result.format_report()
