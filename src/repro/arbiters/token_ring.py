"""Token-ring arbitration (Section 2.3).

A token circulates among the masters; only the holder may use the bus.
When the holder has no pending request the token moves to the next
master, which costs one bus cycle per hop — the source of token-ring
latency under sparse traffic.
"""

from repro.arbiters.base import Arbiter
from repro.bus.transaction import Grant


class TokenRingArbiter(Arbiter):
    """Single-token ring over ``num_masters`` stations.

    :param num_masters: stations on the ring.
    :param hold_limit: maximum consecutive grants while holding the
        token before it must be passed on (None = release only when
        idle), preventing a backlogged master from monopolizing the bus.
    """

    name = "token-ring"

    # Each idle round hops the token one station; skip_idle replays the
    # hops arithmetically.
    supports_idle_skip = True

    state_attrs = ("_holder", "_consecutive", "token_passes")

    def __init__(self, num_masters, hold_limit=None):
        super().__init__(num_masters)
        if hold_limit is not None and hold_limit < 1:
            raise ValueError("hold_limit must be >= 1 when given")
        self.hold_limit = hold_limit
        self._holder = 0
        self._consecutive = 0
        self.token_passes = 0

    def reset(self):
        self._holder = 0
        self._consecutive = 0
        self.token_passes = 0

    @property
    def holder(self):
        return self._holder

    def skip_idle(self, cycles):
        self._holder = (self._holder + cycles) % self.num_masters
        self._consecutive = 0
        self.token_passes += cycles

    def _pass_token(self):
        self._holder = (self._holder + 1) % self.num_masters
        self._consecutive = 0
        self.token_passes += 1

    def arbitrate(self, cycle, pending):
        self._check_pending(pending)
        exhausted = (
            self.hold_limit is not None and self._consecutive >= self.hold_limit
        )
        if pending[self._holder] and not exhausted:
            self._consecutive += 1
            return Grant(self._holder)
        # Token hop: one cycle, no grant this round.
        self._pass_token()
        return None
