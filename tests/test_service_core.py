"""ServiceCore request semantics: statuses, admission, probes, drain.

Most tests drive an *unstarted* core (no engine thread), so admission
and introspection behaviour is deterministic — jobs stay ``submitted``
until a test says otherwise.  A handful of end-to-end tests start the
engine and run a real (tiny) experiment.
"""

import os
import time

import pytest

from repro.experiments.cache import experiment_key
from repro.service.core import ServiceCore
from repro.service.models import JobState, RateLimitedError
from repro.service.ratelimit import RateLimiter

SCALE = 0.05


def make_core(tmp_path, started=False, cache=False, **kwargs):
    core = ServiceCore(
        os.path.join(str(tmp_path), "state"),
        cache_dir=os.path.join(str(tmp_path), "cache") if cache else None,
        workers=2,
        **kwargs
    )
    if started:
        core.start()
    return core


def payload(seed=1, **extra):
    body = {"experiment": "figure5", "scale": SCALE, "seed": seed}
    body.update(extra)
    return body


# ---------------------------------------------------------------------------
# Submission statuses.
# ---------------------------------------------------------------------------


def test_submit_returns_202_and_job_body(tmp_path):
    core = make_core(tmp_path)
    status, body, headers = core.submit(payload())
    assert status == 202
    assert body["state"] == JobState.SUBMITTED
    assert body["experiment"] == "figure5"
    assert not body["deduplicated"]


def test_duplicate_submission_is_flagged_and_shares_the_job(tmp_path):
    core = make_core(tmp_path)
    _, first, _ = core.submit(payload())
    status, second, _ = core.submit(payload())
    assert status == 202
    assert second["job"] == first["job"]
    assert second["deduplicated"]


def test_malformed_submissions_get_typed_400s(tmp_path):
    core = make_core(tmp_path)
    cases = [
        ({"experiment": "no-such"}, "unknown-experiment"),
        ({"experiment": "figure5", "scale": -2}, "invalid-spec"),
        ({"experiment": "figure5", "seed": "x"}, "invalid-spec"),
        ({"experiment": "figure5", "wat": 1}, "invalid-spec"),
        (["list"], "invalid-spec"),
        ({"experiment": "figure5", "scale": float("nan")}, "invalid-spec"),
    ]
    for bad, kind in cases:
        status, body, _ = core.submit(bad)
        assert status == 400, bad
        assert body["kind"] == kind, bad


def test_queue_full_gives_429_with_retry_after_header(tmp_path):
    core = make_core(tmp_path, max_depth=2)
    core.submit(payload(seed=1))
    core.submit(payload(seed=2))
    status, body, headers = core.submit(payload(seed=3))
    assert status == 429
    assert body["kind"] == "queue-full"
    assert int(headers["Retry-After"]) >= 1


def test_warm_cache_admits_job_already_done(tmp_path):
    core = make_core(tmp_path, cache=True)
    key = experiment_key("figure5", scale=SCALE, seed=7, options={})
    core.cache.put(key, {"name": "figure5", "report": "warm report"})
    status, body, _ = core.submit(payload(seed=7))
    assert status == 200
    assert body["state"] == JobState.DONE and body["cached"]
    status, result, _ = core.job_result(body["job"])
    assert status == 200 and result["report"] == "warm report"
    # It is journaled like any other job — the WAL is complete history.
    assert core.queue.status_of(body["job"])["cached"]


def test_sweep_admits_each_seed_and_reports_partial_admission(tmp_path):
    core = make_core(tmp_path, max_depth=3)
    status, body, _ = core.submit_sweep(
        {"experiment": "figure5", "scale": SCALE, "seeds": [1, 2, 3]}
    )
    assert status == 202 and body["count"] == 3
    status, body, headers = core.submit_sweep(
        {"experiment": "figure5", "scale": SCALE, "seeds": [4, 5]}
    )
    assert status == 429
    assert body["admitted"] == []
    assert body["rejected_seeds"] == [4, 5]
    assert "Retry-After" in headers


def test_sweep_validation_rejects_duplicates_and_mixed_seed_fields(tmp_path):
    core = make_core(tmp_path)
    status, body, _ = core.submit_sweep(
        {"experiment": "figure5", "seeds": [1, 1]}
    )
    assert status == 400
    status, body, _ = core.submit_sweep(
        {"experiment": "figure5", "seed": 1, "seeds": [2]}
    )
    assert status == 400


# ---------------------------------------------------------------------------
# Rate limiting.
# ---------------------------------------------------------------------------


def test_rate_limiter_enforces_burst_then_recovers():
    limiter = RateLimiter(rate=1000.0, burst=3)
    for _ in range(3):
        limiter.check("alice")
    with pytest.raises(RateLimitedError) as excinfo:
        limiter.check("alice")
    assert excinfo.value.http_status == 429
    assert excinfo.value.retry_after >= 1
    limiter.check("bob")  # other clients are unaffected
    time.sleep(0.01)  # 1000/s refills fast
    limiter.check("alice")
    assert limiter.denied_count() == 1


def test_rate_limiter_disabled_when_rate_is_none():
    limiter = RateLimiter(rate=None, burst=1)
    for _ in range(100):
        limiter.check("anyone")
    assert limiter.denied_count() == 0


def test_core_surfaces_rate_limit_as_429(tmp_path):
    core = make_core(tmp_path, rate=0.001, burst=1)
    status, _, _ = core.submit(payload(seed=1), client="c1")
    assert status == 202
    status, body, headers = core.submit(payload(seed=2), client="c1")
    assert status == 429
    assert body["kind"] == "rate-limited"
    assert "Retry-After" in headers
    status, _, _ = core.submit(payload(seed=3), client="c2")
    assert status == 202


# ---------------------------------------------------------------------------
# Introspection and probes.
# ---------------------------------------------------------------------------


def test_job_result_statuses_by_state(tmp_path):
    core = make_core(tmp_path)
    _, body, _ = core.submit(payload())
    job_id = body["job"]
    status, result, headers = core.job_result(job_id)
    assert status == 202 and "Retry-After" in headers
    core.queue.lease(1)
    core.queue.fail(job_id, "worker-crash", "kaboom")
    status, result, _ = core.job_result(job_id)
    assert status == 500
    assert result["error_kind"] == "worker-crash"
    status, result, _ = core.job_result("j-404")
    assert status == 404
    _, body, _ = core.submit(payload(seed=5))
    core.cancel(body["job"])
    status, result, _ = core.job_result(body["job"])
    assert status == 409


def test_healthz_always_ok_readyz_tracks_saturation(tmp_path):
    core = make_core(tmp_path, max_depth=1)
    status, body, _ = core.healthz()
    assert status == 200 and body["status"] == "ok"
    status, body, _ = core.readyz()
    assert status == 200 and body["ready"]
    core.submit(payload())
    status, body, headers = core.readyz()
    assert status == 503 and body["status"] == "saturated"
    assert "Retry-After" in headers
    status, body, _ = core.healthz()
    assert status == 200  # liveness unaffected by saturation


def test_drain_refuses_submissions_and_flips_readyz(tmp_path):
    core = make_core(tmp_path, started=True)
    core.drain(timeout=5.0)
    status, body, _ = core.submit(payload())
    assert status == 503 and body["kind"] == "draining"
    status, body, _ = core.readyz()
    assert status == 503 and body["status"] == "draining"


def test_stats_reports_counters_and_cache(tmp_path):
    core = make_core(tmp_path, cache=True, cache_max_bytes=1 << 20)
    core.submit(payload())
    status, body, _ = core.stats()
    assert status == 200
    assert body["wal_appended"] >= 1
    assert body["counts"][JobState.SUBMITTED] == 1
    assert body["cache"]["stores"] == 0
    assert body["cache_max_bytes"] == 1 << 20


# ---------------------------------------------------------------------------
# End to end with the engine running.
# ---------------------------------------------------------------------------


def test_end_to_end_execution_and_memoization(tmp_path):
    core = make_core(tmp_path, started=True, cache=True, timeout=60)
    try:
        _, body, _ = core.submit(payload(seed=11))
        job = core.queue.wait_settled(body["job"], timeout=120)
        assert job.state == JobState.DONE
        report = job.report
        assert "Figure 5" in report
        # Same work requested again after settlement: served as done.
        status, again, _ = core.submit(payload(seed=11))
        assert status == 200 and again["state"] == JobState.DONE
        assert core.engine.executed == 1
    finally:
        core.close()


def test_restart_resumes_pending_jobs_bit_identical(tmp_path):
    reference_core = make_core(tmp_path, started=True, timeout=60)
    try:
        _, body, _ = reference_core.submit(payload(seed=21))
        reference = reference_core.queue.wait_settled(
            body["job"], timeout=120
        ).report
    finally:
        reference_core.close()

    # Submit against a core that never runs anything, then "crash".
    cold = ServiceCore(os.path.join(str(tmp_path), "state2"), workers=2)
    cold.queue.recover()
    _, body, _ = cold.submit(payload(seed=21))
    job_id = body["job"]
    # No clean shutdown: the WAL alone carries the job.

    revived = ServiceCore(os.path.join(str(tmp_path), "state2"),
                          workers=2, timeout=60)
    revived.start()
    try:
        job = revived.queue.wait_settled(job_id, timeout=120)
        assert job.state == JobState.DONE
        assert job.report == reference
    finally:
        revived.close()
