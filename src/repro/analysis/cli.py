"""Command line driver: ``python -m repro.lint``.

Exit codes follow the supervisor's convention (PR 2): ``0`` clean,
``1`` unbaselined findings, ``2`` usage or input errors.
"""

import argparse
import os
import sys
import time

from repro.analysis.baseline import (
    Baseline,
    BaselineError,
    DEFAULT_BASELINE_NAME,
)
from repro.analysis.cache import DEFAULT_CACHE_NAME, LintCache
from repro.analysis.core import LintError, get_rules, lint_paths
from repro.analysis.reporters import json_report, text_report

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "Static determinism & contract linter for the LOTTERYBUS "
            "reproduction: per-file rules (LB1xx) plus whole-program "
            "flow rules (LB2xx)."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=None,
        help="files or directories to lint (default: src/ tests/)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline", metavar="FILE", default=None,
        help=(
            "baseline file of accepted findings (default: {} when it "
            "exists)".format(DEFAULT_BASELINE_NAME)
        ),
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file, report every finding",
    )
    parser.add_argument(
        "--write-baseline", metavar="FILE", default=None,
        help=(
            "write current findings to FILE as a baseline (justifications "
            "stubbed with TODO; edit before committing) and exit 0"
        ),
    )
    parser.add_argument(
        "--select", metavar="RULES", default=None,
        help="comma-separated rule IDs to run (default: all)",
    )
    parser.add_argument(
        "--prune-baseline", action="store_true",
        help=(
            "rewrite the baseline file without its stale entries "
            "(entries matching no current finding) before reporting"
        ),
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="lint cache-miss files with N worker processes (default: 1)",
    )
    parser.add_argument(
        "--no-incremental", action="store_true",
        help="disable the content-hash incremental cache (always cold)",
    )
    parser.add_argument(
        "--cache-file", metavar="FILE", default=DEFAULT_CACHE_NAME,
        help="incremental cache location (default: {})".format(
            DEFAULT_CACHE_NAME
        ),
    )
    return parser


def list_rules():
    lines = []
    for rule in get_rules():
        lines.append("{}  {}".format(rule.id, rule.name))
        lines.append("    {}".format(rule.description))
    return "\n".join(lines)


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(list_rules())
        return EXIT_CLEAN

    paths = args.paths or [p for p in ("src", "tests") if os.path.isdir(p)]
    if not paths:
        print("error: no paths given and no src/ or tests/ here",
              file=sys.stderr)
        return EXIT_USAGE

    select = args.select.split(",") if args.select else None
    try:
        rules = get_rules(select)
    except LintError as error:
        print("error: {}".format(error), file=sys.stderr)
        return EXIT_USAGE

    cache = None
    if not args.no_incremental:
        cache = LintCache.load(args.cache_file, [rule.id for rule in rules])

    started = time.perf_counter()
    try:
        findings = lint_paths(
            paths, rules=rules, jobs=args.jobs, cache=cache
        )
    except LintError as error:
        print("error: {}".format(error), file=sys.stderr)
        return EXIT_USAGE
    elapsed = time.perf_counter() - started
    if cache is not None:
        cache.save()
        print(cache.stats_line(), file=sys.stderr)
    print(
        "lint: completed in {:.3f}s (jobs={})".format(elapsed, args.jobs),
        file=sys.stderr,
    )

    if args.write_baseline:
        Baseline.from_findings(findings).save(args.write_baseline)
        print(
            "wrote {} entr{} to {} — fill in the justifications".format(
                len(findings),
                "y" if len(findings) == 1 else "ies",
                args.write_baseline,
            ),
            file=sys.stderr,
        )
        return EXIT_CLEAN

    accepted, stale = [], []
    if not args.no_baseline:
        baseline_path = args.baseline
        if baseline_path is None and os.path.isfile(DEFAULT_BASELINE_NAME):
            baseline_path = DEFAULT_BASELINE_NAME
        if baseline_path is None and args.prune_baseline:
            print("error: --prune-baseline needs a baseline file",
                  file=sys.stderr)
            return EXIT_USAGE
        if baseline_path is not None:
            try:
                baseline = Baseline.load(baseline_path)
            except BaselineError as error:
                print("error: {}".format(error), file=sys.stderr)
                return EXIT_USAGE
            findings, accepted, stale = baseline.apply(findings)
            if args.prune_baseline and stale:
                kept = [
                    entry for entry in baseline.entries
                    if all(entry is not gone for gone in stale)
                ]
                Baseline(kept).save(baseline_path)
                print(
                    "pruned {} stale entr{} from {}".format(
                        len(stale), "y" if len(stale) == 1 else "ies",
                        baseline_path,
                    ),
                    file=sys.stderr,
                )
                stale = []
    if args.prune_baseline and args.no_baseline:
        print("error: --prune-baseline needs a baseline", file=sys.stderr)
        return EXIT_USAGE

    reporter = json_report if args.format == "json" else text_report
    print(reporter(findings, accepted=len(accepted), stale=stale))
    return EXIT_FINDINGS if findings else EXIT_CLEAN


if __name__ == "__main__":
    sys.exit(main())
