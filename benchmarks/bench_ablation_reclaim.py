"""Ablation: TDMA second-level reclaim capability.

DESIGN.md question: how much of TDMA's behaviour depends on how capable
the level-2 idle-slot reclaim is?  Compare "none" (pure TDMA), "single"
(one rr candidate per slot) and "scan" (Figure 2's full search) on
bandwidth waste and on the bursty class's latency.
"""

from conftest import cycles, run_once

from repro.arbiters.tdma import TdmaArbiter
from repro.bus.topology import build_single_bus_system
from repro.metrics.report import format_table
from repro.traffic.classes import get_traffic_class

POLICIES = ("none", "single", "scan")


def run_reclaim_ablation(num_cycles):
    rows = []
    for policy in POLICIES:
        arbiter = TdmaArbiter.from_slot_counts([1, 2, 3, 4], reclaim=policy)
        system, bus = build_single_bus_system(
            4, arbiter, get_traffic_class("T6").generator_factory(seed=3)
        )
        system.run(num_cycles)
        rows.append(
            (
                policy,
                bus.metrics.utilization(),
                arbiter.wasted_slots,
                sum(bus.metrics.latencies_per_word()) / 4,
            )
        )
    return rows


def test_bench_ablation_reclaim(benchmark):
    rows = run_once(benchmark, run_reclaim_ablation, cycles(300_000))
    print()
    print(
        format_table(
            ["reclaim", "utilization", "wasted slots", "mean lat/word"],
            list(rows),
            title="TDMA reclaim ablation (T6: rare intense bursts)",
        )
    )
    latency = {policy: lat for policy, _, _, lat in rows}
    # Each step up in reclaim capability strictly improves latency on
    # bursty traffic.
    assert latency["none"] > latency["single"] > latency["scan"]
