"""Name-based arbiter construction, for CLIs and sweep harnesses."""

from repro.arbiters.lottery import (
    CompensatedLotteryArbiter,
    DynamicLotteryArbiter,
    StaticLotteryArbiter,
)
from repro.arbiters.round_robin import RoundRobinArbiter
from repro.arbiters.static_priority import StaticPriorityArbiter
from repro.arbiters.tdma import TdmaArbiter
from repro.arbiters.token_ring import TokenRingArbiter
from repro.arbiters.weighted_rr import WeightedRoundRobinArbiter


def _make_static_priority(num_masters, weights):
    # Interpret weights as relative importance; rank them into unique
    # priorities (ties broken by master index, lower index wins).
    order = sorted(range(num_masters), key=lambda m: (weights[m], -m))
    priorities = [0] * num_masters
    for rank, master in enumerate(order):
        priorities[master] = rank + 1
    return StaticPriorityArbiter(priorities)


def make_arbiter(name, num_masters, weights=None, **kwargs):
    """Build an arbiter by name with a uniform weight interface.

    ``weights`` expresses per-master importance and maps onto each
    scheme's native knob: priorities (static-priority), slot counts
    (TDMA), tickets (lottery).  Weight-free schemes ignore it.

    :param name: one of :func:`available_arbiters`.
    :param num_masters: masters on the bus.
    :param weights: positive per-master weights (default all ones).
    :param kwargs: scheme-specific extras (e.g. ``lfsr_seed``,
        ``reclaim_idle``, ``hold_limit``).
    """
    if weights is None:
        weights = [1] * num_masters
    if len(weights) != num_masters:
        raise ValueError("weights length must equal num_masters")
    if any(w < 1 for w in weights):
        raise ValueError("weights must be positive integers")

    if name == "static-priority":
        return _make_static_priority(num_masters, weights)
    if name == "round-robin":
        return RoundRobinArbiter(num_masters)
    if name == "tdma":
        return TdmaArbiter.from_slot_counts(list(weights), **kwargs)
    if name == "token-ring":
        # Without a hold limit a permanently backlogged station would
        # never release the token; default to one max-size burst.
        kwargs.setdefault("hold_limit", 16)
        return TokenRingArbiter(num_masters, **kwargs)
    if name == "lottery-static":
        return StaticLotteryArbiter(tickets=list(weights), **kwargs)
    if name == "lottery-dynamic":
        return DynamicLotteryArbiter(tickets=list(weights), **kwargs)
    if name == "lottery-compensated":
        return CompensatedLotteryArbiter(list(weights), **kwargs)
    if name == "weighted-rr":
        return WeightedRoundRobinArbiter(list(weights), **kwargs)
    raise ValueError(
        "unknown arbiter {!r}; choose from {}".format(name, available_arbiters())
    )


def available_arbiters():
    """Names accepted by :func:`make_arbiter`."""
    return [
        "static-priority",
        "round-robin",
        "tdma",
        "token-ring",
        "lottery-static",
        "lottery-dynamic",
        "lottery-compensated",
        "weighted-rr",
    ]
