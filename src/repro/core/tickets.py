"""Lottery ticket assignments."""


class TicketAssignment:
    """An immutable assignment of lottery tickets to masters.

    Tickets encode the designer's intent: a master holding ``t_i`` of
    ``T`` total tickets should receive a ``t_i / T`` share of contended
    bandwidth (Section 4.2).

    :param tickets: one positive integer per master.
    """

    def __init__(self, tickets):
        tickets = tuple(int(t) for t in tickets)
        if not tickets:
            raise ValueError("need at least one master")
        if any(t < 1 for t in tickets):
            raise ValueError("every master must hold at least one ticket")
        self._tickets = tickets

    @property
    def tickets(self):
        return self._tickets

    @property
    def num_masters(self):
        return len(self._tickets)

    @property
    def total(self):
        return sum(self._tickets)

    def share(self, master):
        """The bandwidth share this master is entitled to under contention."""
        return self._tickets[master] / self.total

    def shares(self):
        total = self.total
        return [t / total for t in self._tickets]

    def contending_total(self, request_map):
        """Total tickets held by masters whose request bit is set.

        ``request_map`` is a sequence of truthy values, one per master —
        the paper's ``sum_j r_j * t_j``.
        """
        self._check_map(request_map)
        return sum(t for t, r in zip(self._tickets, request_map) if r)

    def partial_sums(self, request_map):
        """Cumulative contending-ticket boundaries, one per master.

        Entry ``i`` is ``sum_{k<=i} r_k * t_k``; a draw strictly below
        entry ``i`` (and not below entry ``i-1``) selects master ``i``.
        """
        self._check_map(request_map)
        sums = []
        running = 0
        for t, r in zip(self._tickets, request_map):
            if r:
                running += t
            sums.append(running)
        return sums

    def _check_map(self, request_map):
        if len(request_map) != len(self._tickets):
            raise ValueError(
                "request map has {} entries for {} masters".format(
                    len(request_map), len(self._tickets)
                )
            )

    def __getitem__(self, master):
        return self._tickets[master]

    def __len__(self):
        return len(self._tickets)

    def __iter__(self):
        return iter(self._tickets)

    def __eq__(self, other):
        if isinstance(other, TicketAssignment):
            return self._tickets == other._tickets
        return NotImplemented

    def __hash__(self):
        return hash(self._tickets)

    def __repr__(self):
        return "TicketAssignment({})".format(list(self._tickets))
