"""Parameterized on-chip communication traffic generation."""

from repro.traffic.classes import TRAFFIC_CLASSES, TrafficClass, get_traffic_class
from repro.traffic.generator import (
    OnOffGenerator,
    PeriodicGenerator,
    PoissonGenerator,
    SaturatingGenerator,
)
from repro.traffic.message import (
    FixedWords,
    GeometricWords,
    UniformWords,
)
from repro.traffic.patterns import PatternGenerator
from repro.traffic.trace import Trace, TraceRecorder, TraceReplayGenerator

__all__ = [
    "TRAFFIC_CLASSES",
    "TrafficClass",
    "get_traffic_class",
    "OnOffGenerator",
    "PeriodicGenerator",
    "PoissonGenerator",
    "SaturatingGenerator",
    "FixedWords",
    "GeometricWords",
    "UniformWords",
    "PatternGenerator",
    "Trace",
    "TraceRecorder",
    "TraceReplayGenerator",
]
