# lb: module=repro.experiments.fixture_bad107
"""LB107 true positives: handlers that swallow errors unjustified."""


def broad_swallow(task):
    try:
        task()
    except Exception:
        pass


def bare_swallow(task):
    try:
        task()
    except:  # noqa: E722 - the bareness is the point of this fixture
        pass


def base_exception_in_tuple(task):
    try:
        task()
    except (ValueError, BaseException):
        pass


def broad_with_docstring(task):
    try:
        task()
    except Exception:
        """A docstring is not handling — the error is still deleted."""
        pass


def broad_continue(tasks):
    for task in tasks:
        try:
            task()
        except Exception:
            continue


def broad_bare_return(task):
    try:
        task()
    except Exception:
        return


def narrow_uncommented(path):
    try:
        with open(path) as handle:
            return handle.read()
    except OSError:
        pass


def narrow_return_none_uncommented(payload):
    try:
        return int(payload)
    except ValueError:
        return None
