"""HTTP front-end end-to-end, plus the kill -9 integration test.

The in-process tests drive :class:`~repro.service.http.ServiceServer`
through the stdlib :class:`~repro.service.client.ServiceClient` — real
sockets, real JSON, no mocking.  The subprocess tests are the ISSUE's
integration contract: SIGKILL the server mid-queue, restart it on the
same state dir, and require the served reports to be bit-identical to
a fault-free in-process reference; a drained server must exit 143.
"""

import http.client
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.experiments.runner import run_experiment
from repro.service.client import ServiceClient
from repro.service.core import ServiceCore
from repro.service.http import (
    EXIT_SIGTERM,
    MAX_BODY_BYTES,
    ServiceServer,
    pick_free_port,
)

SCALE = 0.05


@pytest.fixture
def server(tmp_path):
    core = ServiceCore(
        os.path.join(str(tmp_path), "state"),
        cache_dir=os.path.join(str(tmp_path), "cache"),
        workers=2, timeout=60,
    )
    srv = ServiceServer(core, port=0)
    srv.start()
    try:
        yield srv
    finally:
        srv.drain(timeout=10.0)


def client_for(server, client_id="test"):
    return ServiceClient(server.address, client_id=client_id)


def test_submit_poll_result_over_http(server):
    client = client_for(server)
    status, body = client.submit("figure5", scale=SCALE, seed=31)
    assert status == 202 and body["state"] == "submitted"
    status, result = client.wait_result(body["job"], timeout=120)
    assert status == 200
    assert "Figure 5" in result["report"]
    # A duplicate submission joins the finished job: 200, same id.
    status, again = client.submit("figure5", scale=SCALE, seed=31)
    assert status == 200 and again["job"] == body["job"]
    assert again["deduplicated"]
    status, stats = client.stats()
    assert status == 200 and stats["executed"] == 1
    status, health = client.healthz()
    assert status == 200 and health["status"] == "ok"
    status, ready = client.readyz()
    assert status == 200 and ready["ready"]


def test_sweep_over_http(server):
    client = client_for(server)
    status, body = client.submit_sweep("figure5", [41, 42], scale=SCALE)
    assert status == 202 and body["count"] == 2
    job_ids = [job["job"] for job in body["jobs"]]
    results = client.wait_all(job_ids, timeout=240)
    assert all(status == 200 for status, _ in results.values())
    assert all("Figure 5" in body["report"]
               for _, body in results.values())


def test_malformed_payloads_bounce_typed_400s(server):
    client = client_for(server)
    status, body = client.submit_raw(["not", "an", "object"])
    assert status == 400 and body["kind"] == "invalid-spec"
    status, body = client.submit_raw({"experiment": "no-such"})
    assert status == 400 and body["kind"] == "unknown-experiment"
    status, body = client.submit_raw({"experiment": "figure5", "wat": 1})
    assert status == 400 and body["kind"] == "invalid-spec"


def test_unknown_routes_and_jobs_are_404(server):
    client = client_for(server)
    status, body = client._request("GET", "/nope")
    assert status == 404 and body["kind"] == "not-found"
    status, body = client.job_status("j-00009999")
    assert status == 404 and body["kind"] == "job-not-found"
    status, body = client.cancel("j-00009999")
    assert status == 404


def test_non_json_and_oversized_bodies_are_refused(server):
    host, port = server.httpd.server_address[:2]
    conn = http.client.HTTPConnection(host, port, timeout=10)
    try:
        conn.request("POST", "/jobs", body=b'{"experiment": ',
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        assert response.status == 400
        response.read()
        conn.request("POST", "/jobs", body=b"",
                     headers={"Content-Length": str(MAX_BODY_BYTES + 1)})
        response = conn.getresponse()
        assert response.status == 400
        response.read()
    finally:
        conn.close()


def test_drained_server_refuses_submissions(tmp_path):
    core = ServiceCore(os.path.join(str(tmp_path), "state"), workers=2)
    srv = ServiceServer(core, port=0)
    srv.start()
    client = ServiceClient(srv.address)
    srv.core.drain(timeout=10.0)
    status, body = client.submit("figure5", scale=SCALE, seed=1)
    assert status == 503 and body["kind"] == "draining"
    status, body = client.readyz()
    assert status == 503 and body["status"] == "draining"
    srv.httpd.shutdown()
    srv.httpd.server_close()


# ---------------------------------------------------------------------------
# Subprocess integration: kill -9 → restart → bit-identical; SIGTERM 143.
# ---------------------------------------------------------------------------


class ServerProcess:
    """A real ``python -m repro.service`` subprocess on a durable dir."""

    def __init__(self, tmp_path, port):
        self.state_dir = os.path.join(str(tmp_path), "state")
        self.cache_dir = os.path.join(str(tmp_path), "cache")
        self.port = port
        self.proc = None

    def start(self):
        env = dict(os.environ)
        src_root = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "src",
        )
        env["PYTHONPATH"] = os.pathsep.join(
            [src_root] + env.get("PYTHONPATH", "").split(os.pathsep)
        ).rstrip(os.pathsep)
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.service",
                "--state-dir", self.state_dir,
                "--cache-dir", self.cache_dir,
                "--port", str(self.port),
                "--workers", "2",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )

    def kill9(self):
        self.proc.kill()
        self.proc.wait()

    def terminate(self, timeout=90.0):
        self.proc.send_signal(signal.SIGTERM)
        return self.proc.wait(timeout=timeout)


def test_kill9_restart_serves_bit_identical_results(tmp_path):
    seeds = (51, 52)
    reference = {
        seed: run_experiment(
            "figure5", scale=SCALE, seed=seed, _warn_seedless=False
        ).format_report()
        for seed in seeds
    }

    server = ServerProcess(tmp_path, pick_free_port())
    server.start()
    client = ServiceClient(
        "http://127.0.0.1:{}".format(server.port), client_id="itest"
    )
    assert client.wait_ready(30), "server never became ready"
    job_ids = {}
    for seed in seeds:
        status, body = client.submit("figure5", scale=SCALE, seed=seed)
        assert status in (200, 202)
        job_ids[seed] = body["job"]

    # SIGKILL with the queue acknowledged but (at most partially) run.
    server.kill9()
    server.start()
    assert client.wait_ready(30), "server did not come back after kill -9"

    for seed in seeds:
        status, body = client.wait_result(job_ids[seed], timeout=240)
        assert status == 200, body
        assert body["report"] == reference[seed]

    # Idempotency survived the crash: resubmitting joins the same job.
    for seed in seeds:
        status, body = client.submit("figure5", scale=SCALE, seed=seed)
        assert status == 200 and body["job"] == job_ids[seed]

    assert server.terminate() == EXIT_SIGTERM


def test_sigterm_drains_to_resumable_queue(tmp_path):
    server = ServerProcess(tmp_path, pick_free_port())
    server.start()
    client = ServiceClient(
        "http://127.0.0.1:{}".format(server.port), client_id="itest"
    )
    assert client.wait_ready(30)
    status, body = client.submit("figure5", scale=SCALE, seed=61)
    assert status in (200, 202)
    job_id = body["job"]
    assert server.terminate() == EXIT_SIGTERM

    # The WAL is a checkpoint: a fresh server resumes and finishes.
    server.start()
    assert client.wait_ready(30)
    deadline = time.monotonic() + 240
    while True:
        status, body = client.job_result(job_id)
        if status == 200:
            assert "Figure 5" in body["report"]
            break
        assert status == 202, body
        assert time.monotonic() < deadline, "job never settled"
        time.sleep(0.2)
    assert server.terminate() == EXIT_SIGTERM
