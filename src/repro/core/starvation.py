"""Analytic starvation and bandwidth model (Section 4.2).

The paper's starvation argument: a component holding ``t`` of ``T``
contending tickets wins any one lottery with probability ``t / T``, so
the probability that it gains access within ``n`` drawings is
``p = 1 - (1 - t/T)**n``, which converges to one geometrically — no
component starves.
"""

import math


def access_probability(tickets, total, drawings):
    """``1 - (1 - t/T)**n``: probability of access within ``n`` drawings."""
    _validate(tickets, total)
    if drawings < 0:
        raise ValueError("drawings must be non-negative")
    return 1.0 - (1.0 - tickets / total) ** drawings


def expected_drawings_to_access(tickets, total):
    """Mean drawings until first win: ``T / t`` (geometric distribution)."""
    _validate(tickets, total)
    return total / tickets


def drawings_for_confidence(tickets, total, confidence):
    """Smallest ``n`` with ``access_probability >= confidence``."""
    _validate(tickets, total)
    if not 0.0 <= confidence < 1.0:
        raise ValueError("confidence must lie in [0, 1)")
    if confidence == 0.0:
        return 0
    ratio = tickets / total
    if ratio >= 1.0:
        return 1
    return math.ceil(math.log(1.0 - confidence) / math.log(1.0 - ratio))


def expected_bandwidth_shares(tickets):
    """Expected long-run bandwidth division under saturation.

    When every master always has pending requests, each lottery is drawn
    over the full ticket total, so shares converge to ``t_i / T``.
    """
    total = sum(tickets)
    if total <= 0 or any(t < 0 for t in tickets):
        raise ValueError("tickets must be non-negative with positive sum")
    return [t / total for t in tickets]


def expected_wait_drawings(tickets, total):
    """Mean drawings *before* the first win: ``T/t - 1``."""
    return expected_drawings_to_access(tickets, total) - 1.0


def expected_saturated_latency(tickets):
    """Per-master cycles/word under closed-loop saturation: ``T / t_i``.

    With every master permanently backlogged, any proportional-share
    arbiter serves master ``i`` at rate ``t_i / T`` words per cycle, so
    the long-run average latency per word is the reciprocal.  Holds for
    the lottery (in expectation) and exactly for TDMA with slot counts
    ``t_i``; validated against simulation in the test suite.
    """
    total = sum(tickets)
    if total <= 0 or any(t <= 0 for t in tickets):
        raise ValueError("tickets must be positive")
    return [total / t for t in tickets]


def _validate(tickets, total):
    if total <= 0:
        raise ValueError("total tickets must be positive")
    if not 0 < tickets <= total:
        raise ValueError("tickets must lie in (0, total]")
