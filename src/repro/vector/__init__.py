"""Vectorized struct-of-arrays batch engine for saturated workloads.

Hosts many independent test-bed systems as lanes of numpy arrays and
advances all of them one bus cycle per vectorized step — bit-identical
to the scalar dense simulator (equivalence is enforced by fingerprint
comparison and a strict cross-check; see :mod:`repro.vector.lanes`).

numpy is an optional extra (``pip install .[vector]``): importing this
package never requires it; anything that actually needs the arrays
raises :class:`VectorUnavailableError`, and the experiment runners fall
back to the scalar path (``backend="auto"``).
"""

from repro.vector._compat import VectorUnavailableError, have_numpy
from repro.vector.backend import (
    BatchRun,
    make_testbed_builder,
    run_testbed_batch,
)
from repro.vector.lanes import (
    LanePlan,
    UnsupportedConfigError,
    VectorDivergenceError,
    arbiter_check_state,
    plan_lane,
    scalar_fingerprint,
)

__all__ = [
    "BatchRun",
    "LanePlan",
    "UnsupportedConfigError",
    "VectorDivergenceError",
    "VectorEngine",
    "VectorLFSR",
    "VectorUnavailableError",
    "arbiter_check_state",
    "have_numpy",
    "make_testbed_builder",
    "plan_lane",
    "run_testbed_batch",
    "scalar_fingerprint",
]


def __getattr__(name):
    # VectorEngine / VectorLFSR construct numpy arrays; import them
    # lazily so `import repro.vector` works on a numpy-less install.
    if name == "VectorEngine":
        from repro.vector.engine import VectorEngine

        return VectorEngine
    if name == "VectorLFSR":
        from repro.vector.lfsr import VectorLFSR

        return VectorLFSR
    raise AttributeError(name)
