"""The numpy gate for the batch engine.

numpy is an *optional* extra (``pip install .[vector]``): every import
of it in this package funnels through :func:`get_numpy`, so the rest of
the codebase — and every scalar code path — works on a bare stdlib
install.  Callers that can degrade use :func:`have_numpy` to pick the
scalar fallback; callers that cannot raise the typed
:class:`VectorUnavailableError` so the CLI can print something better
than an ImportError traceback.
"""

_numpy = None
_numpy_checked = False

# Test seam: set to True (see tests) to simulate a numpy-less install
# without uninstalling anything.
_FORCE_UNAVAILABLE = False


class VectorUnavailableError(RuntimeError):
    """The batch engine was requested but numpy is not installed."""

    def __init__(self, message=None):
        super().__init__(
            message
            or "the vector backend needs numpy; install the optional "
            "extra (pip install .[vector]) or use the scalar backend"
        )


def get_numpy():
    """The numpy module, or raise :class:`VectorUnavailableError`."""
    global _numpy, _numpy_checked
    if _FORCE_UNAVAILABLE:
        raise VectorUnavailableError()
    if not _numpy_checked:
        try:
            import numpy
        except ImportError:
            numpy = None
        _numpy = numpy
        _numpy_checked = True
    if _numpy is None:
        raise VectorUnavailableError()
    return _numpy


def have_numpy():
    """True when the batch engine can run in this interpreter."""
    try:
        get_numpy()
    except VectorUnavailableError:
        return False
    return True
