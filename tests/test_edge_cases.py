"""Edge-case tests across modules."""

import pytest

from repro.arbiters.registry import make_arbiter
from repro.bus.master import MasterInterface
from repro.bus.slave import Slave
from repro.bus.bus import SharedBus
from repro.sim.kernel import Simulator


def test_token_ring_registry_default_hold_limit():
    arbiter = make_arbiter("token-ring", 3)
    assert arbiter.hold_limit == 16


def test_token_ring_registry_hold_limit_override():
    arbiter = make_arbiter("token-ring", 3, hold_limit=2)
    assert arbiter.hold_limit == 2


def test_slave_rejects_negative_wait_states():
    with pytest.raises(ValueError):
        Slave("s", 0, setup_wait_states=-1)
    with pytest.raises(ValueError):
        Slave("s", 0, per_word_wait_states=-1)


def test_bus_rejects_bad_parameters():
    masters = [MasterInterface("m", 0)]
    arbiter = make_arbiter("round-robin", 1)
    with pytest.raises(ValueError):
        SharedBus("bus", masters, arbiter, max_burst=0)
    with pytest.raises(ValueError):
        SharedBus("bus", masters, arbiter, arbitration_cycles=-1)
    with pytest.raises(ValueError):
        SharedBus("bus", [], arbiter)


def test_single_master_single_word_minimal_system():
    masters = [MasterInterface("m", 0)]
    bus = SharedBus("bus", masters, make_arbiter("round-robin", 1))
    sim = Simulator()
    sim.add(bus)
    request = masters[0].submit(1, 0)
    sim.run(1)
    assert request.complete
    assert request.latency_per_word == 1.0


def test_max_burst_one_interleaves_fairly():
    masters = [MasterInterface("m{}".format(i), i) for i in range(2)]
    bus = SharedBus(
        "bus", masters, make_arbiter("round-robin", 2), max_burst=1
    )
    sim = Simulator()
    sim.add(bus)
    a = masters[0].submit(3, 0)
    b = masters[1].submit(3, 0)
    sim.run(6)
    # Strict word-by-word alternation.
    assert a.completion_cycle == 4
    assert b.completion_cycle == 5


def test_simulator_zero_cycle_run_is_noop():
    sim = Simulator()
    assert sim.run(0) == 0


def test_request_queue_fifo_within_master():
    masters = [MasterInterface("m", 0)]
    bus = SharedBus("bus", masters, make_arbiter("round-robin", 1))
    sim = Simulator()
    sim.add(bus)
    first = masters[0].submit(2, 0)
    second = masters[0].submit(2, 0)
    sim.run(4)
    assert first.completion_cycle < second.completion_cycle


def test_stacked_percentages_zero_column():
    from repro.metrics.report import format_stacked_percentages

    text = format_stacked_percentages(["x"], {"A": [0.0]}, width=10)
    assert "A=0.0%" in text


def test_geometric_words_repr_and_uniform_repr():
    from repro.traffic.message import GeometricWords, UniformWords

    assert "GeometricWords" in repr(GeometricWords(5))
    assert "UniformWords" in repr(UniformWords(1, 2))


def test_tiny_figure12_experiments_run():
    from repro.experiments.runner import run_experiment

    result_b = run_experiment("figure12b", scale=0.01)
    result_c = run_experiment("figure12c", scale=0.01)
    assert len(result_b.surface) == 6
    assert len(result_c.surface) == 6


def test_hwscale_experiment_runs():
    from repro.experiments.runner import run_experiment

    result = run_experiment("hwscale")
    assert result.crossover_masters() == 8
