"""Checkpoint round-trip determinism for every arbiter.

The contract: save at cycle N, restore into a freshly built identical
system, run N more cycles — metrics (and therefore LFSR/RNG state,
queues, in-flight bursts) must be identical to the uninterrupted 2N-cycle
run.  Plus corruption tests: a damaged file raises CheckpointError and
never half-restores the simulator.
"""

import pytest

from repro.arbiters.registry import available_arbiters, make_arbiter
from repro.atm.switch import OutputQueuedSwitch
from repro.atm.workload import PortWorkload
from repro.bus.topology import build_single_bus_system
from repro.experiments.checkpoint import ExperimentCheckpointer
from repro.experiments.table1 import run_table1
from repro.sim.snapshot import CheckpointError
from repro.traffic.generator import OnOffGenerator
from repro.traffic.message import UniformWords

WEIGHTS = [1, 2, 3, 4]
HALF = 4_000


def _build_system(arbiter_name):
    arbiter = make_arbiter(arbiter_name, 4, WEIGHTS)
    factory = lambda index, interface: OnOffGenerator(
        "gen{}".format(index),
        interface,
        UniformWords(2, 12),
        on_rate=0.4,
        mean_on=80,
        mean_off=120,
        seed=11 + index,
    )
    return build_single_bus_system(4, arbiter, factory)


@pytest.mark.parametrize("arbiter_name", available_arbiters())
def test_bus_roundtrip_matches_uninterrupted_run(arbiter_name, tmp_path):
    path = str(tmp_path / "bus.ckpt")

    system_a, bus_a = _build_system(arbiter_name)
    system_a.run(HALF)
    system_a.save_checkpoint(path)
    system_a.run(HALF)

    system_b, bus_b = _build_system(arbiter_name)
    assert system_b.load_checkpoint(path) == HALF
    system_b.run(HALF)

    assert bus_b.metrics.summary() == bus_a.metrics.summary()
    assert bus_b.arbiter.state_dict() == bus_a.arbiter.state_dict()


@pytest.mark.parametrize(
    "arbiter_name", ["lottery-static", "tdma", "round-robin"]
)
def test_atm_switch_roundtrip(arbiter_name, tmp_path):
    path = str(tmp_path / "switch.ckpt")

    def build():
        return OutputQueuedSwitch(
            make_arbiter(arbiter_name, 4, WEIGHTS),
            PortWorkload.table1(),
            seed=3,
        )

    switch_a = build()
    switch_a.simulator.run(HALF)
    switch_a.simulator.save_checkpoint(path)
    switch_a.simulator.run(HALF)

    switch_b = build()
    switch_b.simulator.load_checkpoint(path)
    switch_b.simulator.run(HALF)

    assert vars(switch_b.report()) == vars(switch_a.report())


def test_restore_into_wrong_arbiter_never_half_restores(tmp_path):
    path = str(tmp_path / "bus.ckpt")
    system_a, _ = _build_system("lottery-static")
    system_a.run(1_000)
    system_a.save_checkpoint(path)

    system_b, bus_b = _build_system("token-ring")
    system_b.run(500)
    before = bus_b.metrics.summary()
    with pytest.raises(CheckpointError):
        system_b.load_checkpoint(path)
    assert system_b.simulator.cycle == 500
    assert bus_b.metrics.summary() == before


def test_corrupted_checkpoint_detected_before_restore(tmp_path):
    path = tmp_path / "bus.ckpt"
    system, bus = _build_system("lottery-dynamic")
    system.run(1_000)
    system.save_checkpoint(str(path))
    blob = bytearray(path.read_bytes())
    blob[len(blob) // 2] ^= 0xA5
    path.write_bytes(bytes(blob))

    before = bus.metrics.summary()
    with pytest.raises(CheckpointError):
        system.simulator.load_checkpoint(str(path))
    assert system.simulator.cycle == 1_000
    assert bus.metrics.summary() == before


def test_truncated_checkpoint_detected(tmp_path):
    path = tmp_path / "bus.ckpt"
    system, _ = _build_system("weighted-rr")
    system.run(500)
    system.save_checkpoint(str(path))
    path.write_bytes(path.read_bytes()[:40])
    with pytest.raises(CheckpointError):
        system.simulator.load_checkpoint(str(path))


def test_table1_interrupted_resume_is_bit_identical(tmp_path):
    cycles = 20_000
    baseline = run_table1(cycles=cycles, seed=5)

    class Abort(Exception):
        pass

    calls = [0]

    def bomb(stage, cycle, total):
        calls[0] += 1
        if calls[0] == 6:  # partway into the second architecture
            raise Abort()

    directory = str(tmp_path / "ck")
    with pytest.raises(Abort):
        run_table1(
            cycles=cycles,
            seed=5,
            checkpointer=ExperimentCheckpointer(directory, every=4_000),
            progress=bomb,
        )

    events = []
    resumed = run_table1(
        cycles=cycles,
        seed=5,
        checkpointer=ExperimentCheckpointer(
            directory, every=4_000, resume=True, on_event=events.append
        ),
    )
    assert resumed.rows == baseline.rows
    assert any("skipping stage" in event for event in events)
    assert any("resuming stage" in event for event in events)


def test_stale_stage_checkpoint_raises(tmp_path):
    directory = str(tmp_path / "ck")
    checkpointer = ExperimentCheckpointer(directory, every=1_000)
    stage = checkpointer.stage("only")

    from repro.sim.kernel import Simulator
    from tests.test_sim_snapshot import Counter

    sim = Simulator()
    sim.add(Counter("c"))
    sim.run(5_000)
    sim.save_checkpoint(stage.ckpt_path)

    resumer = ExperimentCheckpointer(directory, every=1_000, resume=True)
    sim2 = Simulator()
    sim2.add(Counter("c"))
    with pytest.raises(CheckpointError):
        resumer.stage("only").run(sim2, total_cycles=2_000)


def test_fresh_checkpointer_wipes_stale_stage_files(tmp_path):
    directory = tmp_path / "ck"
    directory.mkdir()
    (directory / "old.ckpt").write_bytes(b"stale")
    (directory / "old.done").write_bytes(b"stale")
    (directory / "results.jsonl").write_text("{}\n")
    ExperimentCheckpointer(str(directory), every=1_000)
    names = sorted(p.name for p in directory.iterdir())
    assert names == ["results.jsonl"]
