"""Table-driven surrogate error-bound regression tests (one row per
arbiter family x traffic class, at the pinned calibration settings).

The checked-in :data:`repro.analytic.ERROR_BOUNDS` are the contract the
two-tier screened sweep leans on; any model drift that pushes an
observed error past its bound must fail here, not in a user's screen.
"""

import pytest

from repro.analytic import (
    CALIBRATION,
    ERROR_BOUNDS,
    bound_for,
    supported_arbiters,
    validate_surrogate,
)


@pytest.fixture(scope="module")
def calibration_report():
    """One cross-validation sweep at the calibration settings; every
    parametrized case below reads its combination's row from it."""
    return validate_surrogate(backend="auto")


def test_every_supported_combination_has_a_bound():
    for arbiter_name in supported_arbiters():
        for traffic_name in CALIBRATION["traffic_classes"]:
            bound = bound_for(arbiter_name, traffic_name)
            assert bound is not None, (arbiter_name, traffic_name)
            assert bound.share > 0.0
            assert bound.utilization > 0.0
            assert bound.latency > 0.0


def test_bound_for_unknown_combination_is_none():
    assert bound_for("token-ring", "T1") is None
    assert bound_for("lottery-static", "T99") is None


def test_calibration_settings_are_pinned():
    # The bounds are only meaningful at these settings; changing them
    # requires recalibrating (python -m repro.analytic.validate
    # --suggest-bounds) and updating this pin.
    assert CALIBRATION["cycles"] == 15_000
    assert CALIBRATION["warmup"] == 1_000
    assert CALIBRATION["seed"] == 1
    assert tuple(CALIBRATION["weights"]) == (12, 2, 6, 1)
    assert tuple(CALIBRATION["traffic_classes"]) == tuple(
        "T{}".format(i) for i in range(1, 10)
    )


@pytest.mark.parametrize(
    "arbiter_name,traffic_name", sorted(ERROR_BOUNDS)
)
def test_observed_error_within_checked_in_bound(
    calibration_report, arbiter_name, traffic_name
):
    row = next(
        r
        for r in calibration_report.rows
        if r["arbiter"] == arbiter_name and r["traffic"] == traffic_name
    )
    bound = ERROR_BOUNDS[(arbiter_name, traffic_name)]
    assert row["share_error"] <= bound.share
    assert row["utilization_error"] <= bound.utilization
    assert row["latency_error"] <= bound.latency


def test_report_is_clean_and_formats(calibration_report):
    assert calibration_report.ok
    assert calibration_report.violations == []
    text = calibration_report.format_report()
    assert "Surrogate cross-validation" in text
    assert "VIOLATED" not in text
