"""Generic experiment sweeps over the test-bed with CSV export.

A downstream user's workhorse: cross a set of arbiters with traffic
classes (and optionally weight vectors), run every combination, and get
the results as rows ready for a spreadsheet or pandas — the expanded
version of Section 5.1's study.

Each point of the cross product derives its own independent seed with
:func:`repro.sim.rng.child_seed` (``seed_mode="derived"``), so adjacent
points never share generator streams; ``seed_mode="shared"`` is the
compatibility shim reproducing the historical behaviour of feeding one
root seed to every point.  Points are pure functions of their row, so
``jobs`` > 1 fans them over the persistent worker pool with rows (and
seeds) identical to the serial run.
"""

import csv
import io

from repro.experiments.system import run_testbed
from repro.ioutil import atomic_write
from repro.metrics.report import format_table
from repro.sim.rng import child_seed

SEED_MODES = ("derived", "shared")


class SweepResult:
    """Rows of (arbiter, traffic, weights, metrics...)."""

    COLUMNS = (
        "arbiter",
        "traffic",
        "weights",
        "utilization",
        "share0",
        "share1",
        "share2",
        "share3",
        "latency0",
        "latency1",
        "latency2",
        "latency3",
    )

    def __init__(self, rows):
        self.rows = rows

    def _known(self, column):
        seen = []
        for row in self.rows:
            if row[column] not in seen:
                seen.append(row[column])
        return seen

    def filter(self, arbiter=None, traffic=None):
        """Rows matching the given arbiter and/or traffic class.

        A name this sweep never ran raises :class:`KeyError` listing
        the names it did — a typo'd arbiter should fail loudly, not
        masquerade as an empty result set.
        """
        if arbiter is not None:
            known = self._known("arbiter")
            if arbiter not in known:
                raise KeyError(
                    "unknown arbiter {!r}; this sweep has: {}".format(
                        arbiter, ", ".join(known) or "(no rows)"
                    )
                )
        if traffic is not None:
            known = self._known("traffic")
            if traffic not in known:
                raise KeyError(
                    "unknown traffic class {!r}; this sweep has: "
                    "{}".format(traffic, ", ".join(known) or "(no rows)")
                )
        out = []
        for row in self.rows:
            if arbiter is not None and row["arbiter"] != arbiter:
                continue
            if traffic is not None and row["traffic"] != traffic:
                continue
            out.append(row)
        return out

    def value(self, arbiter, traffic, column):
        rows = self.filter(arbiter=arbiter, traffic=traffic)
        if len(rows) != 1:
            raise KeyError(
                "expected one row for ({}, {}), found {}".format(
                    arbiter, traffic, len(rows)
                )
            )
        row = rows[0]
        if column not in row:
            raise KeyError(
                "unknown column {!r}; sweep rows have: {}".format(
                    column, ", ".join(self.COLUMNS)
                )
            )
        return row[column]

    def save_csv(self, path):
        # Render in memory, then land the whole file atomically — a
        # killed export leaves the previous CSV intact, never half the
        # rows.
        buffer = io.StringIO(newline="")
        writer = csv.DictWriter(buffer, fieldnames=self.COLUMNS)
        writer.writeheader()
        for row in self.rows:
            writer.writerow(row)
        atomic_write(path, buffer.getvalue())

    def format_report(self):
        table_rows = []
        for row in self.rows:
            table_rows.append(
                [
                    row["arbiter"],
                    row["traffic"],
                    row["weights"],
                    "{:.2f}".format(row["utilization"]),
                    "/".join(
                        "{:.2f}".format(row["share{}".format(i)])
                        for i in range(4)
                    ),
                    "/".join(
                        "{:.1f}".format(row["latency{}".format(i)])
                        for i in range(4)
                    ),
                ]
            )
        return format_table(
            ["arbiter", "traffic", "weights", "util", "shares", "lat/word"],
            table_rows,
            title="Test-bed sweep",
        )


def point_seed(seed, arbiter_name, traffic_name, seed_mode="derived"):
    """The seed one (arbiter, traffic) point actually runs with."""
    if seed_mode == "derived":
        return child_seed(seed, arbiter_name, traffic_name)
    if seed_mode == "shared":
        return seed
    raise ValueError(
        "seed_mode must be one of {}, got {!r}".format(SEED_MODES, seed_mode)
    )


def _result_row(arbiter_name, traffic_name, weights, result):
    """One TestbedResult flattened into a sweep row dict."""
    row = {
        "arbiter": arbiter_name,
        "traffic": traffic_name,
        "weights": ":".join(str(w) for w in weights),
        "utilization": result.utilization,
    }
    for master, share in enumerate(result.bandwidth_shares):
        row["share{}".format(master)] = share
    for master, latency in enumerate(result.latencies_per_word):
        row["latency{}".format(master)] = latency
    return row


def _sweep_point(
    arbiter_name, traffic_name, weights, cycles, seed, warmup, kwargs
):
    """One cross-product point as a plain row dict (pool fan-out unit)."""
    result = run_testbed(
        arbiter_name,
        traffic_name,
        list(weights),
        cycles=cycles,
        seed=seed,
        warmup=warmup,
        **kwargs
    )
    return _result_row(arbiter_name, traffic_name, weights, result)


BACKENDS = ("scalar", "vector", "auto")


def run_sweep(
    arbiters,
    traffic_classes,
    weights=(1, 2, 3, 4),
    cycles=50_000,
    seed=1,
    warmup=0,
    arbiter_kwargs=None,
    seed_mode="derived",
    jobs=None,
    backend="scalar",
):
    """Run the full cross product; returns a :class:`SweepResult`.

    :param arbiters: iterable of registry names.
    :param traffic_classes: iterable of class names (``"T1"``..``"T9"``).
    :param weights: one weight vector applied to every combination.
    :param arbiter_kwargs: optional per-arbiter extras,
        ``{arbiter_name: {kwarg: value}}``.
    :param seed_mode: ``"derived"`` (default) gives every point an
        independent :func:`~repro.sim.rng.child_seed`; ``"shared"`` is
        the legacy shim feeding the root seed to every point.
    :param jobs: fan points over the worker pool (``None``/1 = inline);
        row order and values are independent of ``jobs``.
    :param backend: ``"scalar"`` (default) runs every point on the
        scalar simulator; ``"vector"`` batches supported points through
        the struct-of-arrays engine (:mod:`repro.vector`) and raises
        :class:`~repro.vector.VectorUnavailableError` without numpy;
        ``"auto"`` uses the vector engine when numpy is importable and
        silently falls back otherwise.  Rows are bit-identical across
        backends (the vector engine falls back per point for configs it
        does not model); ``jobs`` only applies to the scalar path.
    """
    from repro.experiments.supervisor import pool_map

    if backend not in BACKENDS:
        raise ValueError(
            "backend must be one of {}, got {!r}".format(BACKENDS, backend)
        )
    arbiter_kwargs = arbiter_kwargs or {}
    calls = []
    for arbiter_name in arbiters:
        for traffic_name in traffic_classes:
            calls.append(
                (
                    arbiter_name,
                    traffic_name,
                    tuple(weights),
                    cycles,
                    point_seed(seed, arbiter_name, traffic_name, seed_mode),
                    warmup,
                    arbiter_kwargs.get(arbiter_name, {}),
                )
            )
    if backend != "scalar":
        from repro.vector import have_numpy

        if backend == "vector" or have_numpy():
            from repro.vector import run_testbed_batch

            batch = run_testbed_batch(
                [
                    dict(
                        arbiter_name=call[0],
                        traffic_class_name=call[1],
                        weights=list(call[2]),
                        cycles=call[3],
                        seed=call[4],
                        warmup=call[5],
                        arbiter_kwargs=call[6],
                    )
                    for call in calls
                ]
            )
            return SweepResult(
                [
                    _result_row(call[0], call[1], call[2], result)
                    for call, result in zip(calls, batch.results)
                ]
            )
    return SweepResult(pool_map(_sweep_point, calls, jobs=jobs))
