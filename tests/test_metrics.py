"""Tests for metrics collection and statistics."""

import pytest

from repro.bus.transaction import Request
from repro.metrics.bandwidth import jain_fairness_index, share_ratio_error
from repro.metrics.collector import MetricsCollector
from repro.metrics.latency import LatencyStats


def completed_request(master=0, words=4, arrival=0, start=0, gap=0):
    """Build a completed request served word-per-cycle from ``start``."""
    request = Request(master, words, arrival)
    request.first_grant_cycle = start
    cycle = start
    for index in range(words):
        request.remaining -= 1
        request.account_word(cycle)
        cycle += 1 + gap
    request.completion_cycle = cycle - 1 - gap
    return request


def test_latency_stats_single_message():
    stats = LatencyStats()
    stats.record(completed_request(words=4, arrival=0, start=2))
    assert stats.messages == 1
    assert stats.words == 4
    assert stats.avg_latency_per_word == pytest.approx(6 / 4)
    assert stats.avg_wait_cycles == 2.0
    assert stats.max_wait_cycles == 2


def test_latency_stats_word_weighting():
    stats = LatencyStats()
    stats.record(completed_request(words=1, arrival=0, start=9))   # 10 cycles
    stats.record(completed_request(words=10, arrival=0, start=0))  # 10 cycles
    # Word-weighted: 20 total cycles over 11 words.
    assert stats.avg_latency_per_word == pytest.approx(20 / 11)
    # Message mean: (10 + 10) / 2.
    assert stats.avg_latency_per_message == pytest.approx(10.0)


def test_latency_stats_interleaving_visible_in_word_metric():
    smooth = LatencyStats()
    smooth.record(completed_request(words=4, start=0, gap=0))
    stretched = LatencyStats()
    stretched.record(completed_request(words=4, start=0, gap=3))
    assert stretched.avg_word_latency > smooth.avg_word_latency


def test_latency_stats_merge():
    a = LatencyStats()
    a.record(completed_request(words=2))
    b = LatencyStats()
    b.record(completed_request(words=6, start=4))
    a.merge(b)
    assert a.messages == 2
    assert a.words == 8


def test_latency_stats_empty():
    stats = LatencyStats()
    assert stats.avg_latency_per_word == 0.0
    assert stats.avg_latency_per_message == 0.0
    assert stats.avg_word_latency == 0.0


def test_collector_bandwidth_accounting():
    collector = MetricsCollector(3)
    for _ in range(10):
        collector.observe_cycle()
    for _ in range(4):
        collector.record_word(0)
    for _ in range(2):
        collector.record_word(2)
    assert collector.utilization() == pytest.approx(0.6)
    assert collector.bandwidth_fractions() == [0.4, 0.0, 0.2]
    assert collector.bandwidth_shares() == pytest.approx([4 / 6, 0.0, 2 / 6])


def test_collector_zero_cycles_safe():
    collector = MetricsCollector(2)
    assert collector.utilization() == 0.0
    assert collector.bandwidth_fractions() == [0.0, 0.0]
    assert collector.bandwidth_shares() == [0.0, 0.0]


def test_collector_summary_keys():
    collector = MetricsCollector(2)
    collector.observe_cycle()
    collector.record_word(1)
    summary = collector.summary()
    for key in (
        "cycles",
        "utilization",
        "bandwidth_fractions",
        "bandwidth_shares",
        "latencies_per_word",
        "word_latencies",
        "words",
        "grants",
    ):
        assert key in summary


def test_collector_reset():
    collector = MetricsCollector(2)
    collector.observe_cycle()
    collector.record_word(0)
    collector.reset()
    assert collector.cycles == 0
    assert collector.total_words == 0


def test_collector_validation():
    with pytest.raises(ValueError):
        MetricsCollector(0)


def test_jain_fairness_index():
    assert jain_fairness_index([1, 1, 1, 1]) == pytest.approx(1.0)
    assert jain_fairness_index([1, 0, 0, 0]) == pytest.approx(0.25)
    assert jain_fairness_index([0, 0]) == 1.0
    # Proportional-but-unequal allocation sits strictly between.
    index = jain_fairness_index([0.1, 0.2, 0.3, 0.4])
    assert 0.25 < index < 1.0
    with pytest.raises(ValueError):
        jain_fairness_index([])
    with pytest.raises(ValueError):
        jain_fairness_index([-1, 2])


def test_fairness_of_simulated_arbiters():
    from repro.arbiters.registry import make_arbiter
    from repro.bus.topology import build_single_bus_system
    from repro.traffic.classes import get_traffic_class

    def fairness(name):
        arbiter = make_arbiter(name, 4, [1, 1, 1, 1])
        system, bus = build_single_bus_system(
            4, arbiter, get_traffic_class("T8").generator_factory(seed=2)
        )
        system.run(10_000)
        return jain_fairness_index(bus.metrics.bandwidth_shares())

    assert fairness("round-robin") > 0.99
    assert fairness("lottery-static") > 0.98
    assert fairness("static-priority") < 0.3


def test_share_ratio_error():
    assert share_ratio_error([0.1, 0.2, 0.3, 0.4], [1, 2, 3, 4]) == pytest.approx(0.0)
    assert share_ratio_error([0.2, 0.8], [1, 1]) == pytest.approx(0.6)
    with pytest.raises(ValueError):
        share_ratio_error([0.5], [1, 1])
    with pytest.raises(ValueError):
        share_ratio_error([0.5, 0.5], [0, 0])
