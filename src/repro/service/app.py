"""FastAPI front-end over :class:`~repro.service.core.ServiceCore`.

Optional — installed via the ``service`` extra (``pip install
.[service]``); nothing else in the repo imports this module, so the
core service, the tests and the chaos harness all run without FastAPI.
The pydantic request models exist for the OpenAPI schema and first-pass
shape checking; the *semantics* (registry membership, seed bounds,
idempotency, admission) stay in the core's validators so the two
front-ends cannot drift apart.

Import errors here mean the extra is missing; callers
(:mod:`repro.service.__main__`, the CI smoke test) catch ``ImportError``
and degrade with a clear message rather than a traceback.
"""

from typing import Any, Dict, List, Optional

from fastapi import FastAPI, Request
from fastapi.responses import JSONResponse
from pydantic import BaseModel, ConfigDict, Field


class SubmissionModel(BaseModel):
    """One experiment submission (shape-checked; semantics in core)."""

    model_config = ConfigDict(extra="forbid")

    experiment: str
    scale: float = 1.0
    seed: int = 1
    options: Dict[str, Any] = Field(default_factory=dict)


class SweepModel(BaseModel):
    """One spec crossed with an explicit seeds list."""

    model_config = ConfigDict(extra="forbid")

    experiment: str
    scale: float = 1.0
    seeds: List[int]
    options: Dict[str, Any] = Field(default_factory=dict)


def _respond(result):
    status, body, headers = result
    return JSONResponse(content=body, status_code=status,
                        headers=headers or None)


def _client_id(request: Request) -> str:
    header = request.headers.get("X-Client-Id")
    if header:
        return header
    client: Optional[Any] = request.client
    return client.host if client is not None else "anonymous"


def create_app(core) -> FastAPI:
    """The FastAPI app for one started-or-startable ``ServiceCore``.

    The core's lifecycle rides the app's: startup recovers the WAL and
    starts the lease loop, shutdown drains (so uvicorn's SIGTERM
    handling checkpoints the queue just like the stdlib server's).
    """
    app = FastAPI(
        title="LOTTERYBUS design-space-exploration service",
        description=(
            "Durable experiment serving: WAL-backed job queue, "
            "idempotent submissions, admission control."
        ),
    )

    @app.on_event("startup")
    def _startup():
        if not core.started:
            core.start()

    @app.on_event("shutdown")
    def _shutdown():
        core.drain(timeout=60.0)

    @app.post("/jobs")
    def submit(spec: SubmissionModel, request: Request):
        return _respond(core.submit(spec.model_dump(),
                                    client=_client_id(request)))

    @app.post("/sweeps")
    def submit_sweep(spec: SweepModel, request: Request):
        return _respond(core.submit_sweep(spec.model_dump(),
                                          client=_client_id(request)))

    @app.get("/jobs")
    def list_jobs():
        return _respond(core.list_jobs())

    @app.get("/jobs/{job_id}")
    def job_status(job_id: str):
        return _respond(core.job_status(job_id))

    @app.get("/jobs/{job_id}/result")
    def job_result(job_id: str):
        return _respond(core.job_result(job_id))

    @app.delete("/jobs/{job_id}")
    def cancel(job_id: str):
        return _respond(core.cancel(job_id))

    @app.get("/healthz")
    def healthz():
        return _respond(core.healthz())

    @app.get("/readyz")
    def readyz():
        return _respond(core.readyz())

    @app.get("/stats")
    def stats():
        return _respond(core.stats())

    return app
