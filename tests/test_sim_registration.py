"""Registration-error coverage for the simulation kernel.

One module covering every way :meth:`Simulator.add` can refuse a
component: wrong type, duplicate name, and registration attempted while
the simulation is running.
"""

import pytest

from repro.sim import Component, SimulationError, Simulator


class Counter(Component):
    def __init__(self, name="counter"):
        super().__init__(name)
        self.ticks = 0

    def tick(self, cycle):
        self.ticks += 1


class MidRunRegistrar(Component):
    """Misbehaving component that tries to register a peer from tick."""

    def __init__(self, name, simulator):
        super().__init__(name)
        self.simulator = simulator

    def tick(self, cycle):
        self.simulator.add(Counter("late-arrival"))


@pytest.mark.parametrize("bogus", [object(), None, 42, "component"])
def test_non_component_rejected(bogus):
    sim = Simulator()
    with pytest.raises(SimulationError, match="expected a Component"):
        sim.add(bogus)


def test_duplicate_name_rejected():
    sim = Simulator()
    sim.add(Counter("a"))
    with pytest.raises(SimulationError, match="duplicate component name"):
        sim.add(Counter("a"))


def test_duplicate_rejection_leaves_registry_intact():
    sim = Simulator()
    first = sim.add(Counter("a"))
    with pytest.raises(SimulationError):
        sim.add(Counter("a"))
    assert sim.components == (first,)
    sim.run(3)
    assert first.ticks == 3


@pytest.mark.parametrize("mode", ["fast", "dense", "strict"])
def test_add_while_running_rejected(mode):
    sim = Simulator(mode=mode)
    sim.add(MidRunRegistrar("registrar", sim))
    with pytest.raises(SimulationError, match="while the simulation is running"):
        sim.run(1)


def test_add_while_running_does_not_register():
    sim = Simulator()
    registrar = sim.add(MidRunRegistrar("registrar", sim))
    with pytest.raises(SimulationError):
        sim.run(1)
    assert sim.components == (registrar,)
    # The failed run still released the re-entrancy latch.
    ok = sim.add(Counter("post-run"))
    assert ok in sim.components


def test_add_while_run_until_rejected():
    sim = Simulator()
    sim.add(MidRunRegistrar("registrar", sim))
    with pytest.raises(SimulationError, match="while the simulation is running"):
        sim.run_until(lambda cycle: cycle >= 5)


def test_unknown_mode_rejected():
    with pytest.raises(SimulationError, match="unknown simulator mode"):
        Simulator(mode="turbo")


def test_mode_change_applies_between_runs():
    sim = Simulator(mode="dense")
    sim.add(Counter())
    sim.run(2)
    sim.mode = "fast"
    assert sim.mode == "fast"
    sim.run(2)
    assert sim.cycle == 4
