"""Visitor core: source model, rule registry, suppression handling.

The framework is deliberately dependency-free: files are parsed with
:mod:`ast`, rules are plain classes registered under stable IDs, and a
finding is a value object that a reporter or baseline can fingerprint.

Suppressions
------------
A finding on line *N* is suppressed when line *N* carries a trailing
``# lb: noqa`` comment — bare (suppresses every rule) or scoped to
specific rules: ``# lb: noqa[LB101]``, ``# lb: noqa[LB102,LB104]``.

Module directives
-----------------
Rules scope themselves by dotted module path (inferred from the file's
location under ``src/``).  A file outside the package tree — a test
fixture, a scratch script — can pretend to be part of a package with a
directive comment in its first ten lines::

    # lb: module=repro.sim.fixture

which is how the lint fixtures under ``tests/fixtures/lint/`` exercise
package-scoped rules.
"""

import ast
import os
import re
import tokenize

_NOQA_RE = re.compile(r"#\s*lb:\s*noqa(?:\[([A-Za-z0-9_,\s]+)\])?")
_MODULE_RE = re.compile(r"#\s*lb:\s*module\s*=\s*([A-Za-z0-9_.]+)")

#: Directory names never descended into when walking a tree.  ``fixtures``
#: is excluded so the deliberately-bad lint fixtures under
#: ``tests/fixtures/lint/`` do not fail a whole-tree run; tests lint them
#: by passing the files explicitly (explicit file arguments bypass the
#: exclusion).
DEFAULT_EXCLUDED_DIRS = (
    "__pycache__",
    ".git",
    ".pytest_cache",
    ".hypothesis",
    "fixtures",
)


class LintError(Exception):
    """Raised for unusable inputs (missing files, unparsable syntax)."""


class Finding:
    """One rule violation at a source location."""

    __slots__ = ("rule", "path", "line", "col", "message", "code")

    def __init__(self, rule, path, line, col, message, code=""):
        self.rule = rule
        self.path = path
        self.line = line
        self.col = col
        self.message = message
        self.code = code

    def fingerprint(self):
        """Location-drift-tolerant identity used by the baseline: the
        rule, the file, and the *text* of the offending line (whitespace
        collapsed) — stable across unrelated edits that shift line
        numbers."""
        return (self.rule, self.path, normalize_code(self.code))

    def sort_key(self):
        return (self.path, self.line, self.col, self.rule)

    def as_dict(self):
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "code": self.code,
        }

    def __repr__(self):
        return "Finding({}, {}:{}:{})".format(
            self.rule, self.path, self.line, self.col
        )


def normalize_code(code):
    """Collapse runs of whitespace so reformatting does not break the
    baseline match."""
    return " ".join(code.split())


class SourceFile:
    """A parsed source file plus everything rules need to scope and
    suppress: the AST (with parent links), the dotted module path, and
    the per-line noqa table."""

    def __init__(self, path, text, module=None):
        self.path = path
        self.text = text
        self.lines = text.splitlines()
        try:
            self.tree = ast.parse(text, filename=path)
        except SyntaxError as error:
            raise LintError(
                "cannot parse {}: {}".format(path, error)
            ) from error
        self.parents = {}
        for node in ast.walk(self.tree):
            for child in ast.iter_child_nodes(node):
                self.parents[child] = node
        self.noqa = self._collect_noqa(text)
        self.module = module if module is not None else self._infer_module()

    # -- scoping ---------------------------------------------------------

    def _infer_module(self):
        directive = self._module_directive()
        if directive:
            return directive
        parts = self.path.replace(os.sep, "/").split("/")
        for name in ("src", "Lib", "site-packages"):
            if name in parts:
                parts = parts[parts.index(name) + 1:]
                break
        if parts and parts[-1].endswith(".py"):
            parts[-1] = parts[-1][:-3]
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        # Only claim a dotted path when the file demonstrably lives in
        # the repro package; everything else stays unscoped.
        if "repro" in parts:
            parts = parts[parts.index("repro"):]
            return ".".join(parts)
        return ""

    def _module_directive(self):
        for line in self.lines[:10]:
            match = _MODULE_RE.search(line)
            if match:
                return match.group(1)
        return ""

    def in_package(self, *packages):
        """True when this file's module lies inside any of ``packages``
        (a dotted prefix match: ``repro.sim`` covers ``repro.sim.kernel``)."""
        for package in packages:
            if self.module == package or self.module.startswith(package + "."):
                return True
        return False

    # -- suppression -----------------------------------------------------

    def _collect_noqa(self, text):
        """Map line number -> set of suppressed rule IDs (``None`` in the
        set means "all rules").  Comments are located with
        :mod:`tokenize` so a ``# lb: noqa`` inside a string literal is
        not a suppression."""
        table = {}
        try:
            tokens = tokenize.generate_tokens(iter(self.lines_iter()).__next__)
            for token in tokens:
                if token.type != tokenize.COMMENT:
                    continue
                match = _NOQA_RE.search(token.string)
                if not match:
                    continue
                rules = table.setdefault(token.start[0], set())
                if match.group(1):
                    rules.update(
                        part.strip().upper()
                        for part in match.group(1).split(",")
                        if part.strip()
                    )
                else:
                    rules.add(None)
        except tokenize.TokenError:
            # Unterminated something; the ast parse already succeeded, so
            # just fall back to no suppressions past the break point.
            pass
        return table

    def lines_iter(self):
        for line in self.lines:
            yield line + "\n"

    def is_suppressed(self, rule_id, line):
        rules = self.noqa.get(line)
        if not rules:
            return False
        return None in rules or rule_id.upper() in rules

    # -- finding construction -------------------------------------------

    def code_at(self, line):
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(self, rule_id, node, message):
        """Build a finding anchored at ``node`` (or a bare line number)."""
        if isinstance(node, int):
            line, col = node, 0
        else:
            line, col = node.lineno, getattr(node, "col_offset", 0)
        return Finding(
            rule_id, self.path, line, col, message, self.code_at(line)
        )


class Rule:
    """Base class for lint rules.

    Subclasses set ``id`` (stable, ``LB###``), ``name`` and
    ``description``, and implement :meth:`check` yielding
    :class:`Finding` objects.  Suppression is handled by the driver —
    rules simply report everything they see.

    Whole-program rules (the LB2xx family) set ``project = True`` and
    implement :meth:`check_project` instead: the driver runs them once
    per invocation against the :class:`~repro.analysis.flow.Project`
    built from every linted file's flow summary, after all per-file
    rules have run.
    """

    id = None
    name = None
    description = None
    #: True for rules that consume the whole-program index (phase two)
    #: instead of one file at a time.
    project = False

    def check(self, source):
        raise NotImplementedError

    def check_project(self, project):
        raise NotImplementedError


_REGISTRY = {}


def register(rule_class):
    """Class decorator adding a rule to the global registry."""
    if not rule_class.id:
        raise ValueError("rule {} has no id".format(rule_class.__name__))
    if rule_class.id in _REGISTRY:
        raise ValueError("duplicate rule id {}".format(rule_class.id))
    _REGISTRY[rule_class.id] = rule_class
    return rule_class


def get_rules(select=None):
    """Instantiate registered rules (optionally a subset by ID)."""
    _load_builtin_rules()
    if select is None:
        ids = sorted(_REGISTRY)
    else:
        ids = []
        for rule_id in select:
            rule_id = rule_id.strip().upper()
            if rule_id not in _REGISTRY:
                raise LintError("unknown rule id {!r}".format(rule_id))
            ids.append(rule_id)
    return [_REGISTRY[rule_id]() for rule_id in ids]


def _load_builtin_rules():
    # Importing the rules package triggers @register for every module.
    import repro.analysis.rules  # noqa: F401  (import for side effect)


class _AllRuleIds:
    """Lazy view of the registered IDs (registration happens on import)."""

    def __iter__(self):
        _load_builtin_rules()
        return iter(sorted(_REGISTRY))

    def __contains__(self, rule_id):
        _load_builtin_rules()
        return rule_id in _REGISTRY


ALL_RULE_IDS = _AllRuleIds()


# ---------------------------------------------------------------------------
# Drivers.  Linting is two-phase: per-file rules run against each
# SourceFile (parallelizable, cacheable by content hash); project rules
# run once against the whole-program index built from flow summaries.
# ---------------------------------------------------------------------------


def partition_rules(rules):
    """Split into ``(file_rules, project_rules)``."""
    file_rules = [r for r in rules if not getattr(r, "project", False)]
    project_rules = [r for r in rules if getattr(r, "project", False)]
    return file_rules, project_rules


def _project_findings(summaries, project_rules):
    """Phase two: build the project from summaries, run LB2xx rules,
    apply noqa suppression via the summaries' own noqa tables (the
    SourceFile may never have existed this run — cache hit)."""
    from repro.analysis.flow import build_project

    project = build_project(summaries)
    noqa = {
        summary["path"]: summary.get("noqa", {}) for summary in summaries
    }
    findings = []
    for rule in project_rules:
        for finding in rule.check_project(project):
            suppressed = noqa.get(finding.path, {}).get(str(finding.line))
            if suppressed is not None and (
                "" in suppressed or finding.rule.upper() in suppressed
            ):
                continue
            findings.append(finding)
    return findings


def lint_source(text, path="<string>", rules=None, module=None):
    """Lint a source string; returns the unsuppressed findings, sorted.

    Project rules see a single-file project — exactly how the
    self-contained lint fixtures exercise LB2xx."""
    from repro.analysis.flow import extract_summary

    source = SourceFile(path, text, module=module)
    file_rules, project_rules = partition_rules(
        rules if rules is not None else get_rules()
    )
    findings = _run(source, file_rules)
    if project_rules:
        findings.extend(
            _project_findings([extract_summary(source)], project_rules)
        )
        findings.sort(key=Finding.sort_key)
    return findings


def lint_file(path, rules=None):
    """Lint one file on disk."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as error:
        raise LintError("cannot read {}: {}".format(path, error)) from error
    return lint_source(text, path=_display_path(path), rules=rules)


def iter_python_files(paths, excluded_dirs=DEFAULT_EXCLUDED_DIRS):
    """Expand files/directories into a sorted list of ``.py`` files.

    Directories are walked recursively in sorted order (deterministic
    output on every filesystem); excluded directory names are pruned.
    Explicitly named files are always included, excluded or not.
    """
    result = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs if d not in excluded_dirs
                )
                for name in sorted(files):
                    if name.endswith(".py"):
                        result.append(os.path.join(root, name))
        elif os.path.isfile(path):
            result.append(path)
        else:
            raise LintError("no such file or directory: {!r}".format(path))
    return result


def _lint_one(display_path, text, file_rules):
    """Per-file phase for one file: findings (as dicts, already
    suppression-filtered) plus the flow summary.  Everything returned
    is JSON-serializable — the unit the incremental cache stores and
    the multiprocessing workers ship back."""
    from repro.analysis.flow import extract_summary

    source = SourceFile(display_path, text)
    findings = _run(source, file_rules)
    return (
        [finding.as_dict() for finding in findings],
        extract_summary(source),
    )


_POOL_RULES = None


def _pool_init(select_ids):
    global _POOL_RULES
    _POOL_RULES = partition_rules(get_rules(select_ids))[0]


def _pool_lint_one(item):
    display_path, text = item
    return _lint_one(display_path, text, _POOL_RULES)


def lint_paths(paths, rules=None, excluded_dirs=DEFAULT_EXCLUDED_DIRS,
               jobs=0, cache=None):
    """Lint files and directory trees; returns sorted findings.

    :param jobs: fan per-file work for cache-miss files across this
        many worker processes (``0``/``1`` = in-process).
    :param cache: a :class:`~repro.analysis.cache.LintCache`; hits skip
        parsing entirely and the caller is responsible for ``save()``.
    """
    if rules is None:
        rules = get_rules()
    file_rules, project_rules = partition_rules(rules)
    select_ids = [rule.id for rule in rules]

    results = {}   # display path -> (finding dicts, summary)
    misses = []    # (display path, text, digest)
    for file_path in iter_python_files(paths, excluded_dirs):
        display = _display_path(file_path)
        try:
            with open(file_path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as error:
            raise LintError(
                "cannot read {}: {}".format(file_path, error)
            ) from error
        digest = None
        if cache is not None:
            from repro.analysis.cache import content_digest
            digest = content_digest(text)
            entry = cache.lookup(display, digest)
            if entry is not None:
                results[display] = (entry["findings"], entry["summary"])
                continue
        misses.append((display, text, digest))

    if jobs and jobs > 1 and len(misses) > 1:
        outputs = _lint_parallel(misses, select_ids, jobs)
    else:
        outputs = [
            _lint_one(display, text, file_rules)
            for display, text, _ in misses
        ]
    for (display, text, digest), (finding_dicts, summary) in zip(
            misses, outputs):
        results[display] = (finding_dicts, summary)
        if cache is not None:
            cache.store(display, digest, finding_dicts, summary)

    findings, summaries = [], []
    for display in sorted(results):
        finding_dicts, summary = results[display]
        findings.extend(Finding(**d) for d in finding_dicts)
        summaries.append(summary)
    if project_rules:
        findings.extend(
            _project_findings_cached(results, summaries, project_rules,
                                     cache)
        )
    findings.sort(key=Finding.sort_key)
    return findings


def _project_findings_cached(results, summaries, project_rules, cache):
    """The whole-program findings, memoized on the full file set.

    The project passes are a pure function of every (path, digest)
    pair, so when not one file changed since the cached run the stored
    findings are replayed without building the project at all — that is
    what makes a fully warm run an order of magnitude faster than cold.
    """
    if cache is not None:
        from repro.analysis.cache import project_key

        key = project_key(
            (display, entry["digest"])
            for display, entry in (
                (display, cache.entries.get(display))
                for display in results
            )
            if entry is not None
        )
        # Only trust the key when every linted file has a cache entry
        # (files can be missing after a store-side failure).
        if all(display in cache.entries for display in results):
            replay = cache.project_lookup(key)
            if replay is not None:
                return [Finding(**d) for d in replay]
            computed = _project_findings(summaries, project_rules)
            cache.project_store(key, [f.as_dict() for f in computed])
            return computed
    return _project_findings(summaries, project_rules)


def _lint_parallel(misses, select_ids, jobs):
    """Fan the per-file phase over worker processes; falls back to
    in-process on any pool setup failure (restricted environments)."""
    try:
        import multiprocessing

        pool = multiprocessing.Pool(
            min(jobs, len(misses)), initializer=_pool_init,
            initargs=(select_ids,),
        )
    except (ImportError, OSError, ValueError):
        return [
            _lint_one(display, text, partition_rules(get_rules(select_ids))[0])
            for display, text, _ in misses
        ]
    try:
        return pool.map(
            _pool_lint_one, [(display, text) for display, text, _ in misses]
        )
    finally:
        pool.close()
        pool.join()


def _display_path(path):
    """Repo-relative, forward-slash path so baselines are portable."""
    rel = os.path.relpath(path)
    if not rel.startswith(".."):
        path = rel
    return path.replace(os.sep, "/")


def _run(source, rules):
    findings = []
    for rule in rules:
        for finding in rule.check(source):
            if not source.is_suppressed(finding.rule, finding.line):
                findings.append(finding)
    findings.sort(key=Finding.sort_key)
    return findings
