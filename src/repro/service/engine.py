"""The lease/worker loop: queue out, supervisor in, queue back.

The engine is one background thread that repeatedly leases a batch of
jobs and hands them to a fresh PR 6
:class:`~repro.experiments.supervisor.Supervisor` run — so every
hardening behaviour the campaign engine earned (persistent preloaded
worker pool, per-task timeouts, bounded retries with backoff, heartbeat
liveness for wedged workers, poison-task quarantine, the circuit
breaker degrading to contained serial execution) applies verbatim to
service jobs.  The supervisor's typed error taxonomy flows through
unchanged: a failed job's ``error_kind`` is the
:class:`~repro.experiments.errors.CampaignError` kind the supervisor
settled it with.

Before dispatching, each leased job is checked against the shared
content-addressed :class:`~repro.experiments.cache.ResultCache` — the
cluster-wide memo table — so identical work ever done by *any* client
(or any past campaign) is served without an execution.  Fresh results
are published back, which is what makes many concurrent clients
sweeping one design space cheap: the first submission pays, everyone
else hits.

Settlement is streamed: the supervisor appends each outcome to its
result store as the task finishes, and the engine's store adapter turns
those appends into per-job queue transitions — a job's status flips to
``done`` the moment its report exists, not when the whole batch ends.

A drain (SIGTERM) reuses the supervisor's own drain: in-flight jobs
finish and settle, undispached leases are rewound to ``submitted`` with
durable ``requeue`` records, and the restarted server picks them up.
"""

import threading

from repro.experiments.errors import CampaignDrained
from repro.experiments.runner import run_experiment
from repro.experiments.supervisor import Supervisor, TaskSpec


def service_task_runner(spec, resume):
    """In-worker executor for service jobs (module-level, pool-picklable).

    The :class:`~repro.experiments.supervisor.TaskSpec` name is the
    *job id* (unique per supervisor batch even when two jobs run the
    same experiment with different seeds); the experiment identity
    rides in ``spec.options``.
    """
    options = spec.options
    result = run_experiment(
        options["experiment"],
        scale=spec.scale,
        seed=spec.seed,
        _warn_seedless=False,
        **options.get("options", {})
    )
    return result.format_report()


class _SettleAdapter:
    """Duck-typed result store streaming supervisor outcomes to a callback.

    The supervisor appends each settled outcome record as the task
    finishes; this adapter forwards them instead of persisting (the
    queue's WAL is the durable record).  It must never raise — the
    supervisor treats only ``OSError`` as survivable here.
    """

    def __init__(self, on_settle):
        self.on_settle = on_settle

    def append(self, record):
        self.on_settle(record)


class ServiceEngine:
    """Background execution loop between a :class:`JobQueue` and the pool.

    :param queue: the :class:`~repro.service.queue.JobQueue`.
    :param cache: a :class:`~repro.experiments.cache.ResultCache` or
        ``None`` (memoization off).
    :param jobs: supervisor pool width (concurrent worker processes).
    :param timeout: per-job wall-clock seconds (``None`` unlimited).
    :param retries: extra attempts after a crash/timeout.
    :param quarantine_after: consecutive crashes before quarantine.
    :param circuit_breaker: consecutive crashes before the pool
        degrades to contained serial execution.
    :param batch_max: most jobs leased into one supervisor run; bounds
        the admission-to-execution latency of jobs arriving mid-batch.
    :param on_event: optional progress callback (supervisor events and
        engine lifecycle lines).
    """

    def __init__(self, queue, cache=None, jobs=2, timeout=None, retries=1,
                 quarantine_after=3, circuit_breaker=6, batch_max=None,
                 backoff=0.1, on_event=None):
        self.queue = queue
        self.cache = cache
        self.jobs = jobs
        self.timeout = timeout
        self.retries = retries
        self.quarantine_after = quarantine_after
        self.circuit_breaker = circuit_breaker
        self.batch_max = batch_max or max(1, jobs * 2)
        self.backoff = backoff
        self.on_event = on_event
        # _state_lock guards everything the engine thread mutates while
        # other threads (HTTP handlers via stats/healthz, the drain
        # thread via stop) read: the counters, the published supervisor,
        # and the engine thread handle itself.
        self._state_lock = threading.Lock()
        self.executed = 0  # jobs that actually ran (not cache-served)
        self.memo_hits = 0  # jobs served from the shared cache at lease
        self.breaker_opened = False  # sticky: any batch tripped it
        self._supervisor = None
        self._stop = threading.Event()
        self._idle = threading.Event()
        self._idle.set()
        self._thread = None

    def _emit(self, message):
        if self.on_event is not None:
            self.on_event(message)

    # -- lifecycle -------------------------------------------------------

    def start(self):
        thread = threading.Thread(
            target=self._loop, name="service-engine", daemon=True
        )
        with self._state_lock:
            if self._thread is not None:
                raise RuntimeError("engine already started")
            self._thread = thread
        thread.start()

    def stop(self, drain=True, timeout=None):
        """Stop the loop; with ``drain`` wait for in-flight jobs.

        The supervisor's own drain finishes what is running; leased but
        undispatched jobs are rewound to ``submitted`` (durably) for
        the next process.  Without ``drain`` the pool is left to its
        daemon-thread fate — only for tests.
        """
        self._stop.set()
        with self._state_lock:
            supervisor = self._supervisor
            thread = self._thread
        if supervisor is not None:
            supervisor.request_drain()
        self.queue.close()
        if drain and thread is not None:
            thread.join(timeout)

    def busy(self):
        return not self._idle.is_set()

    def counters(self):
        """Locked snapshot of the cross-thread monitoring counters —
        what ``/stats`` and ``/healthz`` report."""
        with self._state_lock:
            return {
                "executed": self.executed,
                "memo_hits": self.memo_hits,
                "breaker_opened": self.breaker_opened,
            }

    # -- the loop --------------------------------------------------------

    def _loop(self):
        while not self._stop.is_set():
            leased = self.queue.lease(self.batch_max, timeout=0.2)
            if not leased:
                continue
            self._idle.clear()
            try:
                self._run_batch(leased)
            finally:
                self._idle.set()
        # Leases taken after the stop flag raced the close; rewind them.
        self._rewind_unfinished()

    def _run_batch(self, leased):
        to_run = []
        for job in leased:
            if self._serve_from_cache(job):
                continue
            to_run.append(job)
        if not to_run:
            return
        if self._stop.is_set():
            self.queue.requeue([job.id for job in to_run])
            return

        by_id = {}
        specs = []
        for job in to_run:
            self.queue.mark_running(job.id)
            by_id[job.id] = job
            specs.append(
                TaskSpec(
                    job.id,
                    scale=job.spec.scale,
                    seed=job.spec.seed,
                    options={
                        "experiment": job.spec.experiment,
                        "options": job.spec.options,
                    },
                )
            )

        supervisor = Supervisor(
            jobs=min(self.jobs, len(specs)),
            timeout=self.timeout,
            retries=self.retries,
            backoff=self.backoff,
            quarantine_after=self.quarantine_after,
            circuit_breaker=self.circuit_breaker,
            task_runner=service_task_runner,
            drain_on_sigterm=False,  # the HTTP layer owns SIGTERM
        )
        with self._state_lock:
            self._supervisor = supervisor
        if self._stop.is_set():
            # A drain landed between the check above and publishing the
            # supervisor; honour it before dispatch begins.
            supervisor.request_drain()
        def settle(record):
            try:
                self._settle(by_id, record)
            except Exception as error:
                # A settlement defect must not take down the supervisor
                # loop mid-batch; the job stays in flight and is rewound
                # to ``submitted`` when the batch ends.
                self._emit(
                    "engine settle failed for {} ({}); job will be "
                    "requeued".format(record.get("name"), error)
                )

        adapter = _SettleAdapter(settle)
        try:
            supervisor.run(specs, store=adapter, on_event=self.on_event)
        except CampaignDrained as drained:
            # In-flight tasks finished and settled; the rest are rewound
            # by the reconciliation below.
            self._emit("engine drain: {}".format(drained))
        finally:
            with self._state_lock:
                if supervisor.breaker_opened:
                    self.breaker_opened = True
                self._supervisor = None
            # Reconcile: anything the batch left unsettled (a drain, a
            # settle defect) is rewound so no job can wedge in flight.
            leftovers = self.queue.in_flight(list(by_id))
            if leftovers:
                self.queue.requeue(leftovers)

    def _serve_from_cache(self, job):
        """Settle a leased job from the memo table; True when served."""
        if self.cache is None:
            return False
        record = self.cache.get(job.key)
        if record is None:
            return False
        with self._state_lock:
            self.memo_hits += 1
        self.queue.complete(job.id, record["report"], cached=True)
        self._emit("job {}: served from cache".format(job.id))
        return True

    def _settle(self, by_id, record):
        """One streamed supervisor outcome -> one queue transition."""
        job = by_id.get(record.get("name"))
        if job is None:
            return
        if record.get("status") == "done":
            report = record.get("report")
            with self._state_lock:
                self.executed += 1
            if self.cache is not None:
                try:
                    self.cache.put(
                        job.key, {"name": job.spec.experiment,
                                  "report": report}
                    )
                except OSError as error:
                    self._emit(
                        "cache store failed for job {} ({}); "
                        "continuing".format(job.id, error)
                    )
            self.queue.complete(job.id, report)
        else:
            self.queue.fail(
                job.id,
                record.get("error_kind") or "task-error",
                record.get("error") or "unknown failure",
            )

    def _rewind_unfinished(self):
        stuck = self.queue.in_flight()
        if stuck:
            self.queue.requeue(stuck)
