"""Tests for the run-time bus protocol checker."""

import pytest

from repro.arbiters.registry import available_arbiters, make_arbiter
from repro.arbiters.static_priority import StaticPriorityArbiter
from repro.bus.bus import SharedBus
from repro.bus.checker import BusChecker, CheckerViolation
from repro.bus.master import MasterInterface
from repro.bus.topology import build_single_bus_system
from repro.sim.kernel import Simulator
from repro.traffic.classes import get_traffic_class


def test_checker_passes_on_healthy_bus():
    system, bus = build_single_bus_system(
        4,
        make_arbiter("lottery-static", 4, [1, 2, 3, 4]),
        get_traffic_class("T8").generator_factory(seed=1),
    )
    checker = system.add_monitor(BusChecker("chk", bus, starvation_bound=2000))
    system.run(20_000)
    assert checker.checks_performed == 20_000
    assert checker.worst_wait < 2000


def test_starvation_watchdog_trips_on_static_priority():
    # Under closed-loop saturation the lowest-priority master never gets
    # the bus; the watchdog must catch it.
    system, bus = build_single_bus_system(
        4,
        make_arbiter("static-priority", 4, [1, 2, 3, 4]),
        get_traffic_class("T8").generator_factory(seed=1),
    )
    system.add_monitor(BusChecker("chk", bus, starvation_bound=500))
    with pytest.raises(CheckerViolation, match="starved"):
        system.run(5_000)


def test_watchdog_can_be_disabled():
    system, bus = build_single_bus_system(
        4,
        make_arbiter("static-priority", 4, [1, 2, 3, 4]),
        get_traffic_class("T8").generator_factory(seed=1),
    )
    checker = system.add_monitor(
        BusChecker("chk", bus, starvation_bound=None)
    )
    system.run(5_000)
    assert checker.checks_performed == 5_000


@pytest.mark.parametrize(
    "name", [n for n in available_arbiters() if n != "static-priority"]
)
def test_no_starvation_for_fair_arbiters(name):
    system, bus = build_single_bus_system(
        4,
        make_arbiter(name, 4, [1, 2, 3, 4]),
        get_traffic_class("T8").generator_factory(seed=1),
    )
    system.add_monitor(BusChecker("chk", bus, starvation_bound=2_000))
    system.run(30_000)  # raises on violation


def test_cycle_accounting_checked():
    masters = [MasterInterface("m", 0)]
    bus = SharedBus("bus", masters, StaticPriorityArbiter([1]))
    checker = BusChecker("chk", bus)
    sim = Simulator()
    sim.add(bus)
    sim.add(checker)
    masters[0].submit(3, 0)
    sim.run(10)
    # Corrupt the accounting; the checker must notice on its next tick.
    bus.metrics.idle_cycles += 1
    with pytest.raises(CheckerViolation, match="accounting"):
        sim.run(1)


def test_validation():
    masters = [MasterInterface("m", 0)]
    bus = SharedBus("bus", masters, StaticPriorityArbiter([1]))
    with pytest.raises(ValueError):
        BusChecker("chk", bus, starvation_bound=0)


def test_busy_cycles_overflow_checked():
    masters = [MasterInterface("m", 0)]
    bus = SharedBus("bus", masters, StaticPriorityArbiter([1]))
    checker = BusChecker("chk", bus)
    sim = Simulator()
    sim.add(bus)
    sim.add(checker)
    sim.run(5)
    # More words carried than cycles elapsed is physically impossible on
    # a one-word-per-cycle bus.  (+2: the bus observes one more cycle
    # before the checker's next tick.)
    bus.metrics.busy_cycles = bus.metrics.cycles + 2
    with pytest.raises(CheckerViolation, match="more words than cycles"):
        sim.run(1)


def test_sub_physical_latency_checked():
    masters = [MasterInterface("m", 0)]
    bus = SharedBus("bus", masters, StaticPriorityArbiter([1]))
    checker = BusChecker("chk", bus)
    sim = Simulator()
    sim.add(bus)
    sim.add(checker)
    request = masters[0].submit(4, 0)
    sim.run(10)
    assert request.complete
    # Replaying the completion with an impossible timestamp must trip
    # the latency check (4 words cannot complete in 2 cycles).
    request.completion_cycle = request.arrival_cycle + 1
    with pytest.raises(CheckerViolation, match="faster than one word"):
        checker._on_completion(request, request.completion_cycle)


def test_checker_hook_registration_is_idempotent():
    masters = [MasterInterface("m", 0)]
    bus = SharedBus("bus", masters, StaticPriorityArbiter([1]))
    checker = BusChecker("chk", bus)
    checker.reset()  # re-registers under the same key
    stacked = BusChecker("chk2", bus)  # same key: replaces, never stacks
    assert bus._completion_hooks.count(checker._on_completion) == 0
    assert bus._completion_hooks.count(stacked._on_completion) == 1


def test_unkeyed_hook_registration_is_idempotent():
    masters = [MasterInterface("m", 0)]
    bus = SharedBus("bus", masters, StaticPriorityArbiter([1]))
    seen = []

    def hook(request, cycle):
        seen.append(request)

    bus.add_completion_hook(hook)
    bus.add_completion_hook(hook)  # no-op
    sim = Simulator()
    sim.add(bus)
    masters[0].submit(2, 0)
    sim.run(5)
    assert len(seen) == 1


def test_remove_completion_hook_by_callable_and_key():
    masters = [MasterInterface("m", 0)]
    bus = SharedBus("bus", masters, StaticPriorityArbiter([1]))

    def hook(request, cycle):
        pass

    bus.add_completion_hook(hook)
    assert bus.remove_completion_hook(hook)
    assert not bus.remove_completion_hook(hook)  # already gone

    bus.add_completion_hook(hook, key="k")
    assert bus.remove_completion_hook("k")
    assert "k" not in bus._hook_keys
    assert hook not in bus._completion_hooks

    # Removing a keyed hook by callable also drops its key slot.
    bus.add_completion_hook(hook, key="k")
    assert bus.remove_completion_hook(hook)
    assert "k" not in bus._hook_keys
