"""Slave-side bus models."""

from repro.sim.component import Component


class Slave(Component):
    """A bus slave (e.g. an on-chip memory).

    Slaves never initiate transactions; their only performance-visible
    behaviour is access timing:

    :param setup_wait_states: bus cycles the slave holds the bus before
        the first word of a burst moves (e.g. memory row activation).
    :param per_word_wait_states: extra cycles between consecutive words
        of a burst (0 means one word per cycle, the paper's model).
    """

    def __init__(self, name, slave_id, setup_wait_states=0, per_word_wait_states=0):
        super().__init__(name)
        if setup_wait_states < 0 or per_word_wait_states < 0:
            raise ValueError("wait states must be non-negative")
        self.slave_id = slave_id
        self.setup_wait_states = setup_wait_states
        self.per_word_wait_states = per_word_wait_states
        self.words_served = 0
        self.bursts_served = 0

    state_attrs = ("words_served", "bursts_served")

    def reset(self):
        self.words_served = 0
        self.bursts_served = 0

    def begin_burst(self):
        """Called by the bus when a burst to this slave starts."""
        self.bursts_served += 1
        return self.setup_wait_states

    def serve_word(self):
        """Called by the bus per word moved; returns trailing wait states."""
        self.words_served += 1
        return self.per_word_wait_states
