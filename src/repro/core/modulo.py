"""Range reduction of a raw random draw (Section 4.4's "modulo hardware").

The dynamic manager must turn a raw ``k``-bit LFSR word into a value
uniform over ``[0, T)`` where ``T`` is the run-time contending-ticket
total.  Two reductions are modelled:

* :func:`reduce_modulo` — the paper's modulo hardware: ``R mod T``.
  Exactly the hardware behaviour, but biased toward small residues when
  ``T`` does not divide the draw range; the bias is bounded by
  ``T / 2**k`` and is negligible for a wide LFSR.
* :func:`reduce_scale` — an alternative multiplicative reduction
  ``(R * T) >> k`` (one multiplier, no divider), with the same bias
  bound; provided for the ablation benchmark.
"""


def reduce_modulo(draw, total):
    """``draw mod total`` — the paper's modulo hardware."""
    if total < 1:
        raise ValueError("total must be positive")
    if draw < 0:
        raise ValueError("draw must be non-negative")
    return draw % total


def reduce_scale(draw, total, draw_bits):
    """Multiplicative range reduction: ``(draw * total) >> draw_bits``."""
    if total < 1:
        raise ValueError("total must be positive")
    if draw < 0 or draw >= (1 << draw_bits):
        raise ValueError("draw out of range for {} bits".format(draw_bits))
    return (draw * total) >> draw_bits


def modulo_bias(total, draw_bits):
    """Worst-case probability excess of any residue under ``mod total``.

    A uniform draw over ``[0, 2**k)`` reduced mod ``T`` gives residues
    below ``2**k mod T`` one extra preimage; this returns the largest
    absolute deviation of any residue's probability from ``1/T``.
    """
    if total < 1:
        raise ValueError("total must be positive")
    space = 1 << draw_bits
    if total > space:
        raise ValueError("total exceeds the draw space")
    base = space // total
    extra = space % total
    if extra == 0:
        return 0.0
    prob_high = (base + 1) / space
    prob_low = base / space
    target = 1.0 / total
    return max(prob_high - target, target - prob_low)
