"""The synchronous simulation kernel."""

from repro.sim.component import Component
from repro.sim.snapshot import (
    CheckpointError,
    read_checkpoint,
    write_checkpoint,
)

_PAYLOAD_KIND = "lotterybus-simulator"


class SimulationError(RuntimeError):
    """Raised for misuse of the simulator (bad registration, re-entry...)."""


class Simulator:
    """Drives a set of :class:`Component` objects through bus cycles.

    Components are ticked once per cycle in registration order, which
    callers arrange to be dataflow order (generators before interfaces
    before the bus).  The kernel itself has no notion of buses or
    arbiters; it only owns time.
    """

    def __init__(self):
        self._components = []
        self._names = set()
        self.cycle = 0
        self._running = False

    def add(self, component):
        """Register a component; returns it for chaining."""
        if not isinstance(component, Component):
            raise SimulationError(
                "expected a Component, got {!r}".format(type(component).__name__)
            )
        if component.name in self._names:
            raise SimulationError(
                "duplicate component name {!r}".format(component.name)
            )
        self._names.add(component.name)
        self._components.append(component)
        return component

    @property
    def components(self):
        """The registered components, in tick order (read-only view)."""
        return tuple(self._components)

    def reset(self):
        """Reset time and every registered component."""
        if self._running:
            raise SimulationError("cannot reset while running")
        self.cycle = 0
        for component in self._components:
            component.reset()

    def run(self, cycles):
        """Advance the simulation by ``cycles`` cycles."""
        if cycles < 0:
            raise SimulationError("cycle count must be non-negative")
        if self._running:
            raise SimulationError("simulator is not re-entrant")
        self._running = True
        try:
            end = self.cycle + cycles
            components = self._components
            while self.cycle < end:
                now = self.cycle
                for component in components:
                    component.tick(now)
                self.cycle = now + 1
        finally:
            self._running = False
        return self.cycle

    # -- checkpoint / restore (see repro.sim.snapshot) -------------------

    def state_dict(self):
        """Snapshot the simulation: cycle count plus every component's
        :meth:`~repro.sim.component.Component.state_dict`.

        The returned mapping holds live references into the running
        simulation; callers serialize it immediately (as
        :meth:`save_checkpoint` does) rather than keeping it across
        further ``run`` calls.
        """
        if self._running:
            raise SimulationError("cannot snapshot while running")
        return {
            "kind": _PAYLOAD_KIND,
            "cycle": self.cycle,
            "components": {
                component.name: component.state_dict()
                for component in self._components
            },
        }

    def load_state_dict(self, state):
        """Restore a snapshot produced by :meth:`state_dict`.

        The payload is validated in full — shape, kind, and an exact
        match between its component names and the registered ones —
        before any component is touched, so a mismatched or corrupted
        payload raises :class:`~repro.sim.snapshot.CheckpointError`
        without leaving a half-restored simulator.
        """
        if self._running:
            raise SimulationError("cannot restore while running")
        if not isinstance(state, dict) or state.get("kind") != _PAYLOAD_KIND:
            raise CheckpointError("payload is not a simulator snapshot")
        cycle = state.get("cycle")
        if not isinstance(cycle, int) or cycle < 0:
            raise CheckpointError(
                "invalid cycle count {!r} in snapshot".format(cycle)
            )
        component_states = state.get("components")
        if not isinstance(component_states, dict):
            raise CheckpointError("snapshot has no component state map")
        if set(component_states) != self._names:
            missing = self._names - set(component_states)
            unknown = set(component_states) - self._names
            raise CheckpointError(
                "snapshot does not match the registered components: "
                "missing {}, unknown {}".format(sorted(missing), sorted(unknown))
            )
        for component in self._components:
            if not isinstance(component_states[component.name], dict):
                raise CheckpointError(
                    "state of component {!r} is not a dict".format(
                        component.name
                    )
                )
        for component in self._components:
            component.load_state_dict(component_states[component.name])
        self.cycle = cycle

    def save_checkpoint(self, path):
        """Write a versioned, checksummed checkpoint of the simulation.

        The file is written atomically (temp + rename); a crash mid-save
        leaves any previous checkpoint at ``path`` intact.  Returns
        ``path``.
        """
        return write_checkpoint(path, self.state_dict())

    def load_checkpoint(self, path):
        """Restore the simulation from a file written by
        :meth:`save_checkpoint`.

        Corruption (bad magic, truncation, CRC mismatch) and component
        mismatches raise :class:`~repro.sim.snapshot.CheckpointError`
        before any component state is modified.  Returns the restored
        cycle count.
        """
        self.load_state_dict(read_checkpoint(path))
        return self.cycle

    def run_until(self, predicate, max_cycles=1_000_000):
        """Run until ``predicate(cycle)`` is true or ``max_cycles`` elapse.

        The predicate is evaluated once on entry — a condition already
        true at the current cycle returns immediately without burning a
        cycle — and again after each cycle.  Returns the cycle count at
        which it first held, or raises :class:`SimulationError` if the
        bound is exhausted.
        """
        start = self.cycle
        if predicate(self.cycle):
            return self.cycle
        while self.cycle - start < max_cycles:
            self.run(1)
            if predicate(self.cycle):
                return self.cycle
        raise SimulationError(
            "predicate not satisfied within {} cycles "
            "(started at cycle {})".format(max_cycles, start)
        )
