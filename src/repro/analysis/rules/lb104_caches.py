"""LB104: hot-path caches must be invalidated by every mutator.

PR 3 introduced memoization on the arbitration hot path: the dynamic
lottery manager caches partial sums per request map (dropped on any
ticket change), the flow manager caches prefix sums per flow vector.
A cache like that is an invariant: *cache contents == function of the
attributes it was computed from*.  Any method that mutates one of those
attributes without invalidating leaves the cache serving stale sums —
grants drift from ticket holdings and no exception ever fires.

Statically, for every class that initializes a ``self.*_cache``
attribute in ``__init__``:

* the *fill sites* (``self.X_cache[key] = ...``) identify the cache's
  **dependencies**: the ``self.*`` attributes read inside the
  cache-miss block that computes the stored value;
* every other method that assigns to a dependency (plain, subscript or
  augmented assignment) must mention the cache attribute somewhere in
  its body (a ``.clear()``, a reassignment, a size check — any
  reference counts as having considered it); a mutator that never
  names the cache is flagged;
* if a dependency is also listed in ``state_attrs``, checkpoint restore
  rewrites it behind the cache's back, so the class must define a
  ``load_state_dict`` override that references the cache.
"""

import ast

from repro.analysis.core import Rule, register
from repro.analysis.visitors import (
    class_methods,
    class_tuple_attr,
    iter_classes,
    self_attr_reads,
    self_attr_target,
)


def _cache_attrs(init_node):
    """Attributes assigned in ``__init__`` whose name marks a cache."""
    caches = []
    for stmt in ast.walk(init_node):
        if not isinstance(stmt, ast.Assign):
            continue
        for target in stmt.targets:
            if isinstance(target, ast.Subscript):
                continue
            attr = self_attr_target(target)
            if attr and "cache" in attr.lower():
                caches.append(attr)
    return caches


def _fill_dependencies(method_node, cache_attr):
    """Self-attributes read in the cache-miss blocks of ``method_node``.

    A fill site is ``self.<cache_attr>[...] = ...``; its surrounding
    block is the nearest enclosing ``if`` (the canonical
    compute-on-miss shape) or, failing that, the whole method.
    """
    parents = {}
    for node in ast.walk(method_node):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    deps = set()
    found_fill = False
    for node in ast.walk(method_node):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if not isinstance(target, ast.Subscript):
                continue
            if self_attr_target(target) != cache_attr:
                continue
            found_fill = True
            block = node
            while block in parents and not isinstance(block, ast.If):
                block = parents[block]
            scope = block if isinstance(block, ast.If) else method_node
            deps |= self_attr_reads(scope)
    deps.discard(cache_attr)
    return deps if found_fill else None


@register
class CacheInvalidationRule(Rule):
    id = "LB104"
    name = "cache-invalidation"
    description = (
        "mutation of a cached computation's inputs without touching "
        "the cache (stale partial sums / lookup rows)"
    )

    def check(self, source):
        if not source.module:
            return
        for class_node in iter_classes(source.tree):
            methods = class_methods(class_node)
            init = methods.get("__init__")
            if init is None:
                continue
            for cache_attr in _cache_attrs(init):
                yield from self._check_cache(
                    source, class_node, methods, cache_attr
                )

    def _check_cache(self, source, class_node, methods, cache_attr):
        deps = set()
        filler_names = set()
        for name, method in methods.items():
            if name == "__init__":
                continue
            method_deps = _fill_dependencies(method, cache_attr)
            if method_deps is not None:
                deps |= method_deps
                filler_names.add(name)
        if not deps:
            return
        for name, method in methods.items():
            if name == "__init__" or name in filler_names:
                continue
            if self._references(method, cache_attr):
                continue
            for stmt in ast.walk(method):
                mutated = self._mutated_attr(stmt)
                if mutated in deps:
                    yield source.finding(
                        self.id, stmt,
                        "{}.{} mutates self.{} — an input of the "
                        "self.{} memo — without referencing the cache; "
                        "stale entries will keep serving the old "
                        "value".format(
                            class_node.name, name, mutated, cache_attr
                        ),
                    )
        state_attrs = set(class_tuple_attr(class_node, "state_attrs") or ())
        restored = sorted(deps & state_attrs)
        if restored:
            loader = methods.get("load_state_dict")
            if loader is None or not self._references(loader, cache_attr):
                yield source.finding(
                    self.id, class_node,
                    "{} snapshots cache input(s) {} in state_attrs but "
                    "{} — checkpoint restore rewrites them behind "
                    "self.{}, which must be invalidated in "
                    "load_state_dict".format(
                        class_node.name,
                        ", ".join(restored),
                        "defines no load_state_dict override"
                        if loader is None
                        else "its load_state_dict never touches the cache",
                        cache_attr,
                    ),
                )

    def _references(self, method, cache_attr):
        return cache_attr in self_attr_reads(method)

    def _mutated_attr(self, stmt):
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                attr = self_attr_target(target)
                if attr:
                    return attr
        elif isinstance(stmt, ast.AugAssign):
            return self_attr_target(stmt.target)
        return None
