"""Tests for the sweep harness and replication experiments."""

import csv

import pytest

from repro.experiments.replication import run_replicated_testbed
from repro.experiments.sweep import run_sweep


@pytest.fixture(scope="module")
def small_sweep():
    return run_sweep(
        ["round-robin", "lottery-static"],
        ["T3", "T8"],
        cycles=4000,
        seed=2,
    )


def test_sweep_covers_cross_product(small_sweep):
    assert len(small_sweep.rows) == 4
    assert len(small_sweep.filter(arbiter="round-robin")) == 2
    assert len(small_sweep.filter(traffic="T8")) == 2


def test_sweep_values_sane(small_sweep):
    util = small_sweep.value("lottery-static", "T8", "utilization")
    assert util > 0.9
    sparse = small_sweep.value("lottery-static", "T3", "utilization")
    assert sparse < 0.6


def test_sweep_value_requires_unique_row(small_sweep):
    with pytest.raises(KeyError):
        small_sweep.value("round-robin", "T9", "utilization")


def test_filter_names_valid_arbiters_on_typo(small_sweep):
    with pytest.raises(KeyError) as excinfo:
        small_sweep.filter(arbiter="lotery-static")
    message = str(excinfo.value)
    assert "lotery-static" in message
    assert "round-robin" in message and "lottery-static" in message


def test_filter_names_valid_traffic_classes_on_typo(small_sweep):
    with pytest.raises(KeyError) as excinfo:
        small_sweep.filter(traffic="T99")
    message = str(excinfo.value)
    assert "T99" in message
    assert "T3" in message and "T8" in message


def test_value_names_valid_columns_on_typo(small_sweep):
    with pytest.raises(KeyError) as excinfo:
        small_sweep.value("lottery-static", "T8", "thruput")
    message = str(excinfo.value)
    assert "thruput" in message
    assert "utilization" in message and "latency3" in message


def test_empty_sweep_filter_says_no_rows():
    from repro.experiments.sweep import SweepResult

    with pytest.raises(KeyError) as excinfo:
        SweepResult([]).filter(arbiter="lottery-static")
    assert "(no rows)" in str(excinfo.value)


def test_sweep_csv_round_trip(small_sweep, tmp_path):
    path = tmp_path / "sweep.csv"
    small_sweep.save_csv(str(path))
    with open(path, newline="") as handle:
        rows = list(csv.DictReader(handle))
    assert len(rows) == 4
    assert set(rows[0]) == set(small_sweep.COLUMNS)
    assert float(rows[0]["utilization"]) >= 0.0


def test_sweep_report(small_sweep):
    text = small_sweep.format_report()
    assert "Test-bed sweep" in text
    assert "lottery-static" in text


def test_sweep_arbiter_kwargs_reach_arbiter():
    result = run_sweep(
        ["tdma"],
        ["T8"],
        cycles=2000,
        arbiter_kwargs={"tdma": {"reclaim": "none"}},
    )
    assert len(result.rows) == 1


def test_replicated_testbed_report():
    result = run_replicated_testbed(
        "lottery-static", "T8", [1, 2, 3, 4], seeds=range(1, 4), cycles=3000,
        warmup=500,
    )
    mu, halfwidth = result.interval("utilization")
    assert mu == pytest.approx(1.0, abs=0.02)
    assert "replicated" in result.format_report()
    # Per-master metrics exist for every master.
    for master in range(4):
        result.interval("share{}".format(master))
        result.interval("latency{}".format(master))
