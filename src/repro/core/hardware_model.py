"""Gate-level area / delay estimation for the lottery managers (§5.2).

The paper mapped the 4-master static lottery manager onto NEC's 0.35 um
cell-based array and reports an area of ~1458 cell grids and an
arbitration time of ~3.1 ns (one cycle at bus speeds past 300 MHz).  We
cannot run a proprietary 2001 cell-array flow, so this module estimates
area and critical path from gate counts and two technology constants
(cell grids per gate equivalent, nanoseconds per logic level) calibrated
so the 4-master static manager reproduces the paper's figures; every
other configuration then scales structurally.

Structural inventory per manager:

* static  — request latch, partial-sum register-file (2**n rows x n
  entries), comparator bank, priority selector, LFSR.
* dynamic — ticket input registers, bitwise-AND stage, Sklansky prefix
  adder tree, modulo range-reduction (iterative subtract/compare array),
  comparator bank, priority selector, LFSR.
"""

import math

from repro.core.adder_tree import AdderTree


class Technology:
    """Process constants for the area/delay estimate.

    Defaults are calibrated to the paper's NEC 0.35 um datapoint.

    :param grids_per_gate: cell grids per gate equivalent.
    :param ns_per_level: delay per logic level in nanoseconds.
    """

    def __init__(self, grids_per_gate=3.03, ns_per_level=0.344, name="nec-0.35um"):
        if grids_per_gate <= 0 or ns_per_level <= 0:
            raise ValueError("technology constants must be positive")
        self.grids_per_gate = grids_per_gate
        self.ns_per_level = ns_per_level
        self.name = name


class HardwareEstimate:
    """Area and critical-path estimate for one arbiter implementation."""

    def __init__(self, name, gate_equivalents, logic_levels, technology):
        self.name = name
        self.gate_equivalents = gate_equivalents
        self.logic_levels = logic_levels
        self.technology = technology

    @property
    def area_cell_grids(self):
        return self.gate_equivalents * self.technology.grids_per_gate

    @property
    def arbitration_ns(self):
        return self.logic_levels * self.technology.ns_per_level

    @property
    def max_bus_mhz(self):
        """Highest bus clock at which arbitration fits in one cycle."""
        return 1000.0 / self.arbitration_ns

    def __repr__(self):
        return (
            "HardwareEstimate({}: {:.0f} grids, {:.2f} ns, {:.0f} MHz)".format(
                self.name, self.area_cell_grids, self.arbitration_ns,
                self.max_bus_mhz,
            )
        )


def _log2_ceil(value):
    return max(1, math.ceil(math.log2(max(2, value))))


def _comparator(width):
    """(gates, levels) for a width-bit magnitude comparator."""
    return 3 * width, 1 + _log2_ceil(width)


def _adder(width):
    """(gates, levels) for a width-bit carry-lookahead adder."""
    return 7 * width, 2 + _log2_ceil(width)


def _priority_selector(inputs):
    """(gates, levels) for an n-input priority selector."""
    return 2 * inputs, _log2_ceil(inputs)


def _lfsr(width):
    """(gates, levels); levels ~ 1 because feedback is a short XOR chain."""
    return 5 * width + 4, 1


def estimate_static_manager(num_masters, ticket_total, technology=None):
    """Estimate the static lottery manager (Figure 9).

    :param num_masters: number of request lines.
    :param ticket_total: scaled (power-of-two) ticket total; sets the
        partial-sum width and LFSR width.
    """
    if technology is None:
        technology = Technology()
    sum_bits = max(2, ticket_total.bit_length())
    rows = 1 << num_masters

    gates = 0.0
    # Request latch.
    gates += 4 * num_masters
    # Partial-sum register file: rows x num_masters entries x sum_bits,
    # ~1 gate equivalent per stored bit plus row decode.
    table_bits = rows * num_masters * sum_bits
    gates += table_bits + 2 * rows
    # Comparator bank: one per master.
    cmp_gates, cmp_levels = _comparator(sum_bits)
    gates += num_masters * cmp_gates
    # Priority selector and grant register.
    sel_gates, sel_levels = _priority_selector(num_masters)
    gates += sel_gates + 4 * num_masters
    # LFSR random number generator.
    lfsr_gates, lfsr_levels = _lfsr(sum_bits)
    gates += lfsr_gates

    # Critical path: latch -> table read -> comparator -> selector.
    levels = 1 + 2 + cmp_levels + sel_levels
    levels = max(levels, lfsr_levels)
    return HardwareEstimate(
        "static-lottery-{}m".format(num_masters), gates, levels, technology
    )


def estimate_dynamic_manager(
    num_masters, ticket_bits=8, lfsr_width=16, technology=None, pipelined=True
):
    """Estimate the dynamic lottery manager (Figure 10).

    :param pipelined: when True (paper: comparators and RNG "were
        pipelined to maximize performance"), the reported delay is the
        slowest single stage; otherwise the full combinational path.
    """
    if technology is None:
        technology = Technology()
    tree = AdderTree(num_masters, ticket_bits)
    sum_bits = tree.result_bits

    gates = 0.0
    # Ticket input registers and request latch.
    gates += num_masters * (4 * ticket_bits + 4)
    # Bitwise-AND masking stage.
    gates += num_masters * ticket_bits
    # Adder tree.
    add_gates, add_levels = _adder(sum_bits)
    gates += tree.adder_count * add_gates
    tree_levels = tree.depth * add_levels
    # Modulo hardware: iterative conditional-subtract array, one
    # subtract/compare row per draw bit.
    mod_rows = lfsr_width
    sub_gates, sub_levels = _adder(sum_bits)
    gates += mod_rows * (sub_gates + sum_bits)
    mod_levels = mod_rows * (sub_levels // 2 + 1)
    # Comparators + selector + LFSR.
    cmp_gates, cmp_levels = _comparator(sum_bits)
    gates += num_masters * cmp_gates
    sel_gates, sel_levels = _priority_selector(num_masters)
    gates += sel_gates + 4 * num_masters
    lfsr_gates, _ = _lfsr(lfsr_width)
    gates += lfsr_gates

    stages = [1 + tree_levels, mod_levels, cmp_levels + sel_levels]
    levels = max(stages) if pipelined else sum(stages)
    return HardwareEstimate(
        "dynamic-lottery-{}m".format(num_masters), gates, levels, technology
    )


def estimate_static_priority(num_masters, technology=None):
    """Baseline: a static-priority arbiter is just a priority selector."""
    if technology is None:
        technology = Technology()
    sel_gates, sel_levels = _priority_selector(num_masters)
    gates = 4 * num_masters + sel_gates + 4 * num_masters
    return HardwareEstimate(
        "static-priority-{}m".format(num_masters), gates, 1 + sel_levels,
        technology,
    )


def estimate_tdma(num_masters, num_slots, technology=None):
    """Baseline: two-level TDMA arbiter (wheel register + rr pointer)."""
    if technology is None:
        technology = Technology()
    slot_bits = _log2_ceil(num_masters)
    gates = 0.0
    gates += num_slots * slot_bits  # timing-wheel reservation store
    gates += 4 * _log2_ceil(num_slots)  # wheel pointer counter
    gates += 4 * _log2_ceil(num_masters)  # round-robin pointer
    gates += 6 * num_masters  # slot-match and reclaim logic
    levels = 1 + _log2_ceil(num_slots) + _log2_ceil(num_masters)
    return HardwareEstimate(
        "tdma-{}m-{}s".format(num_masters, num_slots), gates, levels, technology
    )
