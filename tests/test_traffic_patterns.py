"""Tests for deterministic pattern generators."""

import pytest

from repro.bus.master import MasterInterface
from repro.sim.kernel import Simulator
from repro.traffic.patterns import PatternGenerator, phase_shifted


def drive(generator, cycles):
    sim = Simulator()
    sim.add(generator)
    sim.run(cycles)


def test_one_shot_schedule():
    interface = MasterInterface("m", 0)
    gen = PatternGenerator("g", interface, [(3, 2), (7, 5)])
    drive(gen, 20)
    arrivals = [(r.arrival_cycle, r.words) for r in interface._queue]
    assert arrivals == [(3, 2), (7, 5)]
    assert gen.messages_emitted == 2


def test_repeating_schedule():
    interface = MasterInterface("m", 0)
    gen = PatternGenerator("g", interface, [(1, 3)], repeat_period=5)
    drive(gen, 12)
    arrivals = [r.arrival_cycle for r in interface._queue]
    assert arrivals == [1, 6, 11]


def test_events_sorted_regardless_of_input_order():
    interface = MasterInterface("m", 0)
    gen = PatternGenerator("g", interface, [(7, 1), (2, 1)])
    assert gen.events == [(2, 1), (7, 1)]


@pytest.mark.parametrize(
    "kwargs",
    [
        {"events": [(-1, 2)]},
        {"events": [(0, 0)]},
        {"events": [(0, 1)], "repeat_period": 0},
        {"events": [(9, 1)], "repeat_period": 5},
    ],
)
def test_validation(kwargs):
    interface = MasterInterface("m", 0)
    with pytest.raises(ValueError):
        PatternGenerator("g", interface, **kwargs)


def test_phase_shifted_wraps_within_period():
    events = [(0, 6), (6, 6), (12, 6)]
    shifted = phase_shifted(events, 8, 18)
    assert shifted == [(2, 6), (8, 6), (14, 6)]


def test_phase_shift_by_zero_is_identity():
    events = [(0, 1), (4, 2)]
    assert phase_shifted(events, 0, 10) == events
