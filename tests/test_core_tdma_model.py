"""Tests for the closed-form pure-TDMA alignment model."""

import pytest

from repro.core.tdma_model import (
    aligned_phase,
    pure_tdma_latency_per_word,
    pure_tdma_wait,
    worst_case_phase,
)
from repro.experiments.figure5 import BLOCK, NUM_MASTERS, run_figure5


def test_aligned_pattern_is_free():
    assert pure_tdma_wait(0, 6, 3) == 0
    assert pure_tdma_latency_per_word(0, 6, 3) == 1.0
    assert aligned_phase() == 0


def test_worst_case_is_just_after_the_block():
    phase = worst_case_phase(6, 3)
    assert phase == 6
    assert pure_tdma_wait(phase, 6, 3) == 12
    waits = [pure_tdma_wait(p, 6, 3) for p in range(18)]
    assert max(waits) == pure_tdma_wait(phase, 6, 3)


def test_known_values():
    # Figure 5's geometry: block 6, three masters, period 18.
    assert pure_tdma_latency_per_word(3, 6, 3) == pytest.approx(3.0)
    assert pure_tdma_latency_per_word(6, 6, 3) == pytest.approx(3.0)
    assert pure_tdma_latency_per_word(9, 6, 3) == pytest.approx(2.5)
    assert pure_tdma_latency_per_word(15, 6, 3) == pytest.approx(1.5)
    assert pure_tdma_wait(15, 6, 3) == 3  # the paper's "Wait = 3"


def test_validation():
    with pytest.raises(ValueError):
        pure_tdma_wait(18, 6, 3)
    with pytest.raises(ValueError):
        pure_tdma_wait(-1, 6, 3)
    with pytest.raises(ValueError):
        pure_tdma_latency_per_word(0, 0, 3)


def test_model_matches_simulation_exactly():
    phases = [0, 3, 6, 9, 12, 15]
    result = run_figure5(cycles=9_000, phases=phases)
    for index, phase in enumerate(phases):
        analytic_latency = pure_tdma_latency_per_word(phase, BLOCK, NUM_MASTERS)
        analytic_wait = pure_tdma_wait(phase, BLOCK, NUM_MASTERS)
        assert result.pure_tdma[index] == pytest.approx(
            analytic_latency, abs=0.02
        ), phase
        assert result.pure_waits[index] == pytest.approx(
            analytic_wait, abs=0.1
        ), phase
