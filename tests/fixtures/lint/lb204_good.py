# lb: module=repro.experiments.fixture_taxonomy
"""LB204 true negatives: typed taxonomy errors on both concurrent paths."""

from repro.experiments.errors import CampaignError
from repro.service.models import ServiceError


class PointError(CampaignError):
    kind = "bad-point"


class MissingResourceError(ServiceError):
    http_status = 404


def run_campaign(points, checkpoint_dir=None):
    results = []
    for point in points:
        results.append(dispatch(point))
    return results


def dispatch(point):
    if point is None:
        raise PointError("bad campaign point")
    return point * 2


class Handler(BaseHTTPRequestHandler):  # noqa: F821 — fixture, never imported
    def do_GET(self):
        self.reply()

    def reply(self):
        raise MissingResourceError("missing resource")
