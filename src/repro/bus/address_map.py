"""System address maps and bus address decoding.

Real masters issue *addresses*, not slave indices; the bus's address
decoder maps each transaction onto the slave whose region contains it.
:class:`AddressMap` is that decoder: named, non-overlapping regions,
each bound to a slave index, with the usual SoC memory-map operations
(decode, region queries, overlap/alignment validation, map rendering).

:class:`AddressedMaster` wraps a
:class:`~repro.bus.master.MasterInterface` so components can submit by
address; bursts that would cross a region boundary are rejected, as a
real decoder would signal a bus error.
"""


class AddressError(ValueError):
    """Bad region definition or undecodable address."""


class Region:
    """One slave's window in the system address space."""

    __slots__ = ("name", "base", "size", "slave")

    def __init__(self, name, base, size, slave):
        if base < 0:
            raise AddressError("region base must be non-negative")
        if size < 1:
            raise AddressError("region size must be >= 1")
        if slave < 0:
            raise AddressError("slave index must be non-negative")
        self.name = name
        self.base = base
        self.size = size
        self.slave = slave

    @property
    def end(self):
        """One past the last valid address."""
        return self.base + self.size

    def contains(self, address):
        return self.base <= address < self.end

    def overlaps(self, other):
        return self.base < other.end and other.base < self.end

    def __repr__(self):
        return "Region({!r}, 0x{:08x}..0x{:08x} -> slave {})".format(
            self.name, self.base, self.end - 1, self.slave
        )


class AddressMap:
    """A set of non-overlapping regions with decode."""

    def __init__(self):
        self._regions = []
        self._by_name = {}

    def add_region(self, name, base, size, slave):
        """Register a region; rejects duplicates and overlaps."""
        if name in self._by_name:
            raise AddressError("duplicate region name {!r}".format(name))
        region = Region(name, base, size, slave)
        for existing in self._regions:
            if region.overlaps(existing):
                raise AddressError(
                    "region {!r} overlaps {!r}".format(name, existing.name)
                )
        self._regions.append(region)
        self._regions.sort(key=lambda r: r.base)
        self._by_name[name] = region
        return region

    def regions(self):
        """Regions in ascending base order."""
        return list(self._regions)

    def region(self, name):
        try:
            return self._by_name[name]
        except KeyError:
            raise AddressError("unknown region {!r}".format(name))

    def decode(self, address):
        """(slave_index, offset_within_region) for an address.

        Binary search over the sorted regions; raises
        :class:`AddressError` for holes in the map.
        """
        lo, hi = 0, len(self._regions) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            region = self._regions[mid]
            if address < region.base:
                hi = mid - 1
            elif address >= region.end:
                lo = mid + 1
            else:
                return region.slave, address - region.base
        raise AddressError("address 0x{:x} maps to no region".format(address))

    def decode_burst(self, address, words, word_bytes=4):
        """Decode a burst; rejects bursts crossing a region boundary."""
        if words < 1:
            raise AddressError("a burst carries at least one word")
        slave, _ = self.decode(address)
        last = address + words * word_bytes - 1
        try:
            last_slave, _ = self.decode(last)
        except AddressError:
            last_slave = None
        if last_slave != slave:
            raise AddressError(
                "burst 0x{:x}+{}w crosses a region boundary".format(
                    address, words
                )
            )
        return slave

    def format_map(self):
        """The memory map as an aligned text table."""
        lines = ["address map:"]
        for region in self._regions:
            lines.append(
                "  0x{:08x}-0x{:08x}  {:<12} -> slave {}".format(
                    region.base, region.end - 1, region.name, region.slave
                )
            )
        return "\n".join(lines)


class AddressedMaster:
    """Address-based submission wrapper over a MasterInterface."""

    def __init__(self, interface, address_map, word_bytes=4):
        if word_bytes < 1:
            raise AddressError("word_bytes must be >= 1")
        self.interface = interface
        self.address_map = address_map
        self.word_bytes = word_bytes
        self.decode_errors = 0

    def submit(self, address, words, cycle, tag=None, flow=None):
        """Decode and enqueue; raises AddressError on bad addresses."""
        try:
            slave = self.address_map.decode_burst(
                address, words, word_bytes=self.word_bytes
            )
        except AddressError:
            self.decode_errors += 1
            raise
        return self.interface.submit(
            words, cycle, slave=slave, tag=tag, flow=flow
        )
