# lb: module=repro.sim.fixture_good
"""LB102 true negatives: complete declarations, explicit exclusions,
custom hooks."""

from collections import deque


class CompleteQueue:
    state_attrs = ("served", "_pending")

    def __init__(self, name):
        self.name = name  # immutable config: not a container, not flagged
        self.served = 0
        self._pending = deque()


class ExcludedCache:
    state_attrs = ("hits",)
    # Derived memo, rebuilt lazily after restore.
    state_exclude = ("_memo",)

    def __init__(self):
        self.hits = 0
        self._memo = {}


class CustomHooks:
    """Attributes serialized by hand in state_dict count as declared."""

    state_attrs = ("total",)

    def __init__(self):
        self.total = 0
        self._rows = []

    def state_dict(self):
        return {"total": self.total, "rows": list(self._rows)}

    def load_state_dict(self, state):
        self.total = state["total"]
        self._rows = list(state["rows"])


class SuppressedScratch:
    state_attrs = ("count",)

    def __init__(self):
        self.count = 0
        self._scratch = []  # lb: noqa[LB102]
