# lb: module=repro.experiments.fixture_offtaxonomy
"""LB204 true positives: builtin raises on campaign and request paths."""


def run_campaign(points, checkpoint_dir=None):
    results = []
    for point in points:
        results.append(dispatch(point))
    return results


def dispatch(point):
    if point is None:
        raise RuntimeError("bad campaign point")
    return point * 2


class Handler(BaseHTTPRequestHandler):  # noqa: F821 — fixture, never imported
    def do_GET(self):
        self.reply()

    def reply(self):
        raise KeyError("missing resource")
