"""Declarative SoC construction from plain-data specifications."""

from repro.soc.config import (
    ConfigError,
    build_system,
    build_traffic_source,
    build_words_distribution,
    load_system,
)
from repro.soc.dma import DmaDescriptor, DmaEngine
from repro.soc.network_config import build_network
from repro.soc.presets import PRESETS, get_preset

__all__ = [
    "ConfigError",
    "build_network",
    "build_system",
    "build_traffic_source",
    "build_words_distribution",
    "load_system",
    "DmaDescriptor",
    "DmaEngine",
    "PRESETS",
    "get_preset",
]
