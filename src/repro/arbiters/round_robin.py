"""Round-robin arbitration (mentioned in Section 2 as a common protocol)."""

from repro.arbiters.base import Arbiter
from repro.bus.transaction import Grant


class RoundRobinArbiter(Arbiter):
    """Grants pending masters in cyclic order.

    A pointer remembers the most recently granted master; arbitration
    scans forward from the next position and grants the first pending
    master, which then becomes the new pointer.
    """

    name = "round-robin"

    # Idle rounds scan, find nothing and leave the pointer untouched.
    supports_idle_skip = True

    state_attrs = ("_last",)

    def __init__(self, num_masters):
        super().__init__(num_masters)
        self._last = num_masters - 1

    def reset(self):
        self._last = self.num_masters - 1

    def arbitrate(self, cycle, pending):
        self._check_pending(pending)
        for offset in range(1, self.num_masters + 1):
            master = (self._last + offset) % self.num_masters
            if pending[master]:
                self._last = master
                return Grant(master)
        return None
