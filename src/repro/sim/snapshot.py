"""Checkpoint/restore for simulations.

Two layers live here:

* the **snapshot protocol** — every :class:`~repro.sim.component.Component`
  (and the stateful helpers hanging off components: arbiters, lottery
  managers, RNG streams, metrics) exposes ``state_dict()`` /
  ``load_state_dict(state)``.  The default implementation snapshots the
  attributes a class *declares* in ``state_attrs`` (plain values,
  shallow-copied containers) and ``state_children`` (sub-objects restored
  in place through their own ``state_dict`` hooks), collected across the
  MRO so subclasses only declare what they add.

* the **checkpoint file format** — a versioned, checksummed container
  written atomically (temp file + ``os.replace``), so a crash or
  ``SIGKILL`` mid-save leaves the previous checkpoint intact.  Readers
  verify magic, version, length and CRC32 *before* unpickling, and a
  :class:`~repro.sim.kernel.Simulator` validates the whole payload
  before mutating any component, so a corrupted file raises
  :class:`CheckpointError` and never yields a half-restored simulator.

Identity matters: a pending :class:`~repro.bus.transaction.Request` is
simultaneously referenced from its master's queue, the bus's active
burst and (for ATM cells) an output port's in-flight slot.  Component
``state_dict``s therefore store *live references*, and the simulator
serializes the combined payload in a single ``pickle`` pass, whose memo
preserves shared identity across components on both save and load.
"""

import copy
import pickle
import struct
import zlib
from collections import deque

from repro.ioutil import atomic_write

CHECKPOINT_MAGIC = b"LBUSCKPT"
CHECKPOINT_VERSION = 1

# magic (8s) | format version (u32) | payload length (u64) | CRC32 (u32)
_HEADER = struct.Struct(">8sIQI")


class CheckpointError(RuntimeError):
    """Raised for unreadable, corrupted or mismatched checkpoints."""


# ---------------------------------------------------------------------------
# The snapshot protocol.
# ---------------------------------------------------------------------------


def declared_state(obj, attribute):
    """Collect a class-tuple declaration (``state_attrs`` or
    ``state_children``) across ``type(obj)``'s MRO, base classes first,
    deduplicated so a subclass may re-list an inherited name harmlessly.
    """
    seen = set()
    names = []
    for klass in reversed(type(obj).__mro__):
        for name in vars(klass).get(attribute, ()):
            if name not in seen:
                seen.add(name)
                names.append(name)
    return names


def _copy_value(value):
    """Shallow-copy mutable containers so later in-place mutation of the
    live attribute (or of the restored object) cannot reach through the
    snapshot; contained elements stay shared, which the simulator-level
    pickle pass resolves."""
    if isinstance(value, (list, set, dict, deque)):
        return copy.copy(value)
    return value


def default_state_dict(obj):
    """The default ``state_dict``: declared attrs plus nested children."""
    state = {}
    for name in declared_state(obj, "state_attrs"):
        state[name] = _copy_value(getattr(obj, name))
    for name in declared_state(obj, "state_children"):
        child = getattr(obj, name)
        # A child without hooks (e.g. a caller-supplied random source)
        # is treated as stateless rather than failing the whole save.
        if child is None or not hasattr(child, "state_dict"):
            state[name] = None
        else:
            state[name] = child.state_dict()
    return state


def default_load_state_dict(obj, state):
    """The default ``load_state_dict``: strict inverse of the default
    ``state_dict``.  Raises :class:`CheckpointError` when the state's key
    set does not exactly match the declaration (a mismatched or corrupted
    payload), before assigning anything."""
    if not isinstance(state, dict):
        raise CheckpointError(
            "state for {} must be a dict, got {!r}".format(
                type(obj).__name__, type(state).__name__
            )
        )
    attrs = declared_state(obj, "state_attrs")
    children = declared_state(obj, "state_children")
    declared = set(attrs) | set(children)
    if set(state) != declared:
        missing = declared - set(state)
        unknown = set(state) - declared
        raise CheckpointError(
            "state mismatch for {}: missing {}, unknown {}".format(
                type(obj).__name__, sorted(missing), sorted(unknown)
            )
        )
    for name in children:
        child = getattr(obj, name)
        if state[name] is not None and (
            child is None or not hasattr(child, "load_state_dict")
        ):
            raise CheckpointError(
                "snapshot carries state for child {!r} of {} but the live "
                "object cannot accept it".format(name, type(obj).__name__)
            )
    for name in attrs:
        setattr(obj, name, _copy_value(state[name]))
    for name in children:
        if state[name] is not None:
            getattr(obj, name).load_state_dict(state[name])


class Snapshottable:
    """Mixin providing the default snapshot hooks.

    Subclasses declare the attributes that constitute their runtime
    state::

        class TokenRing(Arbiter):
            state_attrs = ("_holder", "_consecutive", "token_passes")

    ``state_attrs`` are captured by value (containers shallow-copied);
    ``state_children`` name sub-objects with their own hooks, restored
    *in place* so object wiring (who points at whom) never changes.
    """

    state_attrs = ()
    state_children = ()

    def state_dict(self):
        """Snapshot the declared runtime state of this object."""
        return default_state_dict(self)

    def load_state_dict(self, state):
        """Restore a snapshot produced by :meth:`state_dict`."""
        default_load_state_dict(self, state)


# ---------------------------------------------------------------------------
# The checkpoint file container.
# ---------------------------------------------------------------------------


def write_checkpoint(path, payload, version=CHECKPOINT_VERSION):
    """Serialize ``payload`` to ``path`` atomically.

    The payload is pickled once (preserving shared identity between the
    objects inside it), framed with magic/version/length/CRC32, and
    written through :func:`repro.ioutil.atomic_write` (sibling temp
    file + fsync + ``os.replace`` + directory fsync) — a kill at any
    point leaves either the old file or the complete new one, never a
    torn checkpoint.
    """
    data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    header = _HEADER.pack(CHECKPOINT_MAGIC, version, len(data), zlib.crc32(data))
    atomic_write(path, header + data)
    return path


def read_checkpoint(path):
    """Read and validate a checkpoint written by :func:`write_checkpoint`.

    Every validation failure — missing file, short header, bad magic,
    unsupported version, truncation, trailing garbage, CRC mismatch,
    unpicklable payload — raises :class:`CheckpointError`; nothing is
    deserialized until the checksum has been verified.
    """
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except OSError as error:
        raise CheckpointError(
            "cannot read checkpoint {!r}: {}".format(path, error)
        ) from error
    if len(raw) < _HEADER.size:
        raise CheckpointError(
            "truncated checkpoint {!r}: {} bytes is shorter than the "
            "{}-byte header".format(path, len(raw), _HEADER.size)
        )
    magic, version, length, crc = _HEADER.unpack_from(raw)
    if magic != CHECKPOINT_MAGIC:
        raise CheckpointError(
            "bad magic in {!r}: not a LOTTERYBUS checkpoint".format(path)
        )
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            "unsupported checkpoint version {} in {!r} "
            "(this build reads version {})".format(
                version, path, CHECKPOINT_VERSION
            )
        )
    data = raw[_HEADER.size:]
    if len(data) < length:
        raise CheckpointError(
            "truncated checkpoint {!r}: payload is {} of {} bytes".format(
                path, len(data), length
            )
        )
    if len(data) > length:
        raise CheckpointError(
            "trailing garbage after payload in {!r}".format(path)
        )
    if zlib.crc32(data) != crc:
        raise CheckpointError(
            "CRC mismatch in {!r}: checkpoint is corrupted".format(path)
        )
    try:
        return pickle.loads(data)
    except Exception as error:
        raise CheckpointError(
            "cannot deserialize checkpoint {!r}: {}".format(path, error)
        ) from error
