"""Convenience functions over a MetricsCollector."""


def bandwidth_fractions(collector):
    """Per-master fraction of total bus cycles carrying their words."""
    return collector.bandwidth_fractions()


def utilization(collector):
    """Fraction of cycles in which any word moved."""
    return collector.utilization()


def jain_fairness_index(values):
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)``.

    1.0 means perfectly equal allocation; ``1/n`` means one party took
    everything.  Useful for quantifying starvation in one number (e.g.
    static priority under saturation scores near ``1/n``; round-robin
    scores ~1.0).
    """
    values = list(values)
    if not values:
        raise ValueError("need at least one value")
    if any(v < 0 for v in values):
        raise ValueError("values must be non-negative")
    square_of_sum = sum(values) ** 2
    sum_of_squares = sum(v * v for v in values)
    if sum_of_squares == 0:
        return 1.0  # nobody got anything: vacuously fair
    return square_of_sum / (len(values) * sum_of_squares)


def share_ratio_error(shares, weights):
    """Largest relative deviation of observed shares from target weights.

    ``shares`` are observed bandwidth shares (summing to ~1 among busy
    masters); ``weights`` are the intended proportions (e.g. lottery
    tickets).  Returns ``max_i |share_i - w_i/sum(w)| / (w_i/sum(w))``,
    the figure of merit for "allocation closely matches the ratio of
    lottery tickets".
    """
    if len(shares) != len(weights):
        raise ValueError("shares and weights must have equal length")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    worst = 0.0
    for share, weight in zip(shares, weights):
        target = weight / total
        if target == 0:
            continue
        worst = max(worst, abs(share - target) / target)
    return worst
