"""Tests for the Figure 5 waveform rendering."""

from repro.experiments.figure5 import BLOCK, PERIOD, render_figure5_traces


def test_aligned_trace_serves_at_arrival():
    art = render_figure5_traces(phase=0, cycles=PERIOD * 2)
    lines = art.splitlines()
    # First master: request at cycle 0, bus ownership starting cycle 0.
    req_m1 = next(line for line in lines if line.startswith("req M1"))
    bus_m1 = next(line for line in lines if line.startswith("bus M1"))
    req_row = req_m1.split("  ", 1)[1]
    bus_row = bus_m1.split("  ", 1)[1]
    assert req_row[0] == "R"
    assert bus_row[:BLOCK] == "=" * BLOCK


def test_shifted_trace_shows_three_slot_wait():
    # Phase 15 = each master arrives 3 slots before its block: the
    # paper's Trace 2, "Wait = 3".
    art = render_figure5_traces(phase=15, cycles=PERIOD * 2)
    lines = art.splitlines()
    req_m1 = next(line for line in lines if line.startswith("req M1"))
    bus_m1 = next(line for line in lines if line.startswith("bus M1"))
    req_row = req_m1.split("  ", 1)[1]
    bus_row = bus_m1.split("  ", 1)[1]
    arrival = req_row.index("R")
    service = bus_row.index("=")
    assert service - arrival == 3


def test_trace_includes_title_and_all_masters():
    art = render_figure5_traces(phase=0, cycles=20)
    assert "Figure 5 trace" in art
    for master in ("M1", "M2", "M3"):
        assert "req {}".format(master) in art
        assert "bus {}".format(master) in art
