"""Per-master traffic parameters extracted from the T1-T9 class specs.

The surrogate never samples a generator; it works from the *moments* of
each master's traffic process:

* the message-size distribution's mean and its expected grant count
  under the bus's maximum transfer size (a 24-word message on a
  16-word-burst bus re-arbitrates twice),
* the think gap of closed-loop sources (the only cycles a closed-loop
  master is invisible to the arbiter), and
* the offered word rate and ON-phase peak rate of open-loop sources.

Profiles are deterministic functions of the checked-in traffic classes,
so they are memoized per (class, max_burst).
"""

from repro.traffic.classes import get_traffic_class
from repro.traffic.message import FixedWords, GeometricWords, UniformWords

# Generator kinds whose masters block until completion (one outstanding
# message, think, repeat).  Saturating sources are the think-0 limit.
_CLOSED_KINDS = ("closedloop", "saturating")
_RATE_KINDS = ("poisson", "periodic", "onoff")


class MasterProfile:
    """Analytic view of one master's traffic source.

    :param closed: True for blocking (closed-loop) sources.
    :param mean_words: expected words per message, E[w].
    :param mean_grants: expected arbitration grants per message,
        E[ceil(w / max_burst)] — heavy-tailed messages split.
    :param think: mean idle gap between completion and the next request
        (closed-loop only; the request after a 0-think completion is
        visible to the very next arbitration, so the gap is 0).
    :param rate_words: offered words per cycle (open-loop only).
    :param peak_rate: ON-phase words per cycle (on-off sources; equals
        ``rate_words`` for memoryless sources).
    :param duty: fraction of time the source is ON (1.0 if always).
    """

    __slots__ = (
        "closed", "mean_words", "mean_grants", "think",
        "rate_words", "peak_rate", "duty",
    )

    def __init__(self, closed, mean_words, mean_grants, think=0.0,
                 rate_words=0.0, peak_rate=0.0, duty=1.0):
        self.closed = closed
        self.mean_words = mean_words
        self.mean_grants = mean_grants
        self.think = think
        self.rate_words = rate_words
        self.peak_rate = peak_rate
        self.duty = duty

    @property
    def words_per_grant(self):
        """Mean burst length actually moved per grant."""
        return self.mean_words / self.mean_grants

    @property
    def solo_demand(self):
        """Words per cycle if the bus never made this master wait."""
        if self.closed:
            return self.mean_words / (self.mean_words + self.think)
        return self.rate_words


def _mean_grants(dist, max_burst):
    """E[ceil(w / max_burst)] under the message-size distribution."""
    if isinstance(dist, FixedWords):
        return float(-(-dist.words // max_burst))
    if isinstance(dist, UniformWords):
        total = sum(
            -(-w // max_burst) for w in range(dist.low, dist.high + 1)
        )
        return total / float(dist.high - dist.low + 1)
    if isinstance(dist, GeometricWords):
        # Truncated geometric: P(w=k) = p(1-p)^(k-1) for k < cap, the
        # remaining tail mass lands on the cap.
        p = 1.0 / dist.mean_words
        grants = 0.0
        survive = 1.0  # P(w >= k) entering iteration k
        for k in range(1, dist.cap):
            grants += survive * p * -(-k // max_burst)
            survive *= 1.0 - p
        grants += survive * -(-dist.cap // max_burst)
        return grants
    raise ValueError(
        "no analytic grant model for message distribution {!r}".format(dist)
    )


def _mean_words(dist):
    """E[w]; exact for the truncated geometric (``.mean()`` ignores the
    cap, which is fine for offered-load planning but not for shares)."""
    if isinstance(dist, GeometricWords):
        p = 1.0 / dist.mean_words
        words = 0.0
        survive = 1.0
        for k in range(1, dist.cap):
            words += survive * p * k
            survive *= 1.0 - p
        words += survive * dist.cap
        return words
    return float(dist.mean())


def _profile_from_spec(kind, params, max_burst):
    if kind not in _CLOSED_KINDS + _RATE_KINDS:
        raise ValueError(
            "no analytic traffic model for generator kind {!r}".format(kind)
        )
    words = params["words"]
    mean_words = _mean_words(words)
    mean_grants = _mean_grants(words, max_burst)
    if kind in _CLOSED_KINDS:
        think = float(params.get("mean_think", 0.0)) if (
            kind == "closedloop"
        ) else 0.0
        return MasterProfile(
            closed=True,
            mean_words=mean_words,
            mean_grants=mean_grants,
            think=think,
        )
    if kind == "poisson":
        rate = params["rate"] * mean_words
        return MasterProfile(
            closed=False, mean_words=mean_words, mean_grants=mean_grants,
            rate_words=rate, peak_rate=rate, duty=1.0,
        )
    if kind == "periodic":
        rate = mean_words / float(params["period"])
        return MasterProfile(
            closed=False, mean_words=mean_words, mean_grants=mean_grants,
            rate_words=rate, peak_rate=rate, duty=1.0,
        )
    # on-off: words flow at on_rate only during ON dwells.
    duty = params["mean_on"] / float(params["mean_on"] + params["mean_off"])
    peak = params["on_rate"] * mean_words
    return MasterProfile(
        closed=False, mean_words=mean_words, mean_grants=mean_grants,
        rate_words=duty * peak, peak_rate=peak, duty=duty,
    )


_PROFILE_CACHE = {}


def traffic_profiles(traffic_name, max_burst=16):
    """Per-master :class:`MasterProfile` list for a named traffic class.

    Memoized: the checked-in classes are immutable, so repeat
    predictions over a sweep grid pay for the moment integrals once.
    """
    key = (traffic_name, max_burst)
    cached = _PROFILE_CACHE.get(key)
    if cached is None:
        traffic = get_traffic_class(traffic_name)
        cached = tuple(
            _profile_from_spec(kind, params, max_burst)
            for kind, params in traffic.specs
        )
        _PROFILE_CACHE[key] = cached
    return cached
