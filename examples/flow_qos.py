"""Per-data-flow bandwidth control with a DMA engine.

The paper's abstract promises "fine grained control over the fraction
of communication bandwidth that each system component **or data flow**
receives".  This example exercises the flow case: one DMA engine and
one CPU share a bus whose arbiter holds tickets per *flow*, not per
master.  The DMA alternates between a real-time video stream (flow
"video", 6 tickets) and background housekeeping ("bulk", 1 ticket);
the CPU's cache refills run as flow "cpu" (3 tickets).

While the DMA carries video its transfers outrank the CPU; when it
falls back to bulk, the CPU outranks it — bandwidth follows the data,
not the component.

Run:  python examples/flow_qos.py
"""

from repro.arbiters.flow_lottery import FlowLotteryArbiter
from repro.bus import BusSystem, MasterInterface, SharedBus, Slave
from repro.metrics.report import format_table
from repro.soc.dma import DmaDescriptor, DmaEngine
from repro.traffic.generator import ClosedLoopGenerator
from repro.traffic.message import FixedWords

FLOW_TICKETS = {"video": 6, "cpu": 3, "bulk": 1}
PHASE_CYCLES = 120_000


def build():
    dma_if = MasterInterface("dma", 0)
    cpu_if = MasterInterface("cpu", 1)
    arbiter = FlowLotteryArbiter(2, FLOW_TICKETS, lfsr_seed=4)
    bus = SharedBus(
        "bus", [dma_if, cpu_if], arbiter, slaves=[Slave("mem", 0)],
        max_burst=16,
    )
    dma = DmaEngine("dma.engine", dma_if, chunk_words=16)
    dma.attach(bus)
    system = BusSystem()
    system.add_generator(dma)
    # CPU transfers sized like the DMA chunks, so word shares equal
    # ticket shares (the lottery allocates grants; see
    # benchmarks/bench_ablation_compensation.py for the mixed-size case).
    system.add_generator(
        ClosedLoopGenerator(
            "cpu.gen", cpu_if, FixedWords(16), 0, seed=9, flow="cpu"
        )
    )
    system.add_bus(bus)
    return system, bus, arbiter, dma


def keep_programmed(dma, flow, words=4000):
    """Top the DMA chain up so it always has work of the given flow.

    Descriptors are large relative to the top-up interval, so the engine
    never drains between refills.
    """
    if dma.queue_depth < 2:
        dma.program([DmaDescriptor(words, flow=flow)])


def run_phase(system, bus, dma, flow, cycles):
    start_words = [m.words for m in bus.metrics.masters]
    remaining = cycles
    while remaining > 0:
        keep_programmed(dma, flow)
        step = min(500, remaining)
        system.run(step)
        remaining -= step
    end_words = [m.words for m in bus.metrics.masters]
    delta = [b - a for a, b in zip(start_words, end_words)]
    total = sum(delta)
    return [d / total for d in delta]


def main():
    system, bus, arbiter, dma = build()
    video_phase = run_phase(system, bus, dma, "video", PHASE_CYCLES)
    bulk_phase = run_phase(system, bus, dma, "bulk", PHASE_CYCLES)

    rows = [
        [
            "DMA engine",
            "{:.1%}".format(video_phase[0]),
            "{:.1%}".format(bulk_phase[0]),
        ],
        [
            "CPU",
            "{:.1%}".format(video_phase[1]),
            "{:.1%}".format(bulk_phase[1]),
        ],
    ]
    print(
        format_table(
            ["component", "DMA carrying video (6 vs 3)", "DMA carrying bulk (1 vs 3)"],
            rows,
            title="Flow-level lottery: bandwidth follows the data flow",
        )
    )
    print()
    print("carried words per flow:", arbiter.usage.words)
    print("targets: video phase ~ 67%/33%, bulk phase ~ 25%/75%")


if __name__ == "__main__":
    main()
