"""Tests for bridges and topology helpers."""

import pytest

from repro.arbiters.round_robin import RoundRobinArbiter
from repro.arbiters.static_priority import StaticPriorityArbiter
from repro.bus.bridge import Bridge, BridgeTag
from repro.bus.bus import SharedBus
from repro.bus.master import MasterInterface
from repro.bus.slave import Slave
from repro.bus.topology import build_single_bus_system
from repro.sim.kernel import Simulator


def build_two_bus_system():
    """Near bus: one CPU master + bridge slave.  Far bus: bridge master."""
    cpu = MasterInterface("cpu", 0)
    bridge_master = MasterInterface("bridge.m", 0)
    far_memory = Slave("far.mem", 0)
    bridge = Bridge("bridge", slave_id=0, far_master=bridge_master)
    near_bus = SharedBus(
        "near", [cpu], StaticPriorityArbiter([1]), slaves=[bridge]
    )
    far_bus = SharedBus(
        "far", [bridge_master], StaticPriorityArbiter([1]), slaves=[far_memory]
    )
    bridge.attach(near_bus)
    sim = Simulator()
    sim.add(near_bus)
    sim.add(bridge)
    sim.add(far_bus)
    return sim, cpu, bridge, near_bus, far_bus, far_memory


def test_bridge_forwards_completed_transactions():
    sim, cpu, bridge, near_bus, far_bus, far_memory = build_two_bus_system()
    cpu.submit(4, 0, slave=0, tag=BridgeTag(remote_slave=0, payload="data"))
    sim.run(30)
    assert bridge.forwarded == 1
    assert far_memory.words_served == 4
    assert far_bus.metrics.total_words == 4


def test_bridge_forwarding_delay():
    sim, cpu, bridge, near_bus, far_bus, _ = build_two_bus_system()
    cpu.submit(2, 0, tag=BridgeTag(0))
    # Near bus completes at cycle 1; bridge forwards at cycle 2 (delay 1);
    # far bus first word no earlier than cycle 2.
    sim.run(2)
    assert far_bus.metrics.total_words == 0
    sim.run(30)
    assert far_bus.metrics.total_words == 2


def test_bridge_preserves_payload_tag():
    sim, cpu, bridge, near_bus, far_bus, _ = build_two_bus_system()
    seen = []
    far_bus.add_completion_hook(lambda request, cycle: seen.append(request.tag))
    cpu.submit(1, 0, tag=BridgeTag(0, payload={"id": 9}))
    sim.run(20)
    assert seen == [{"id": 9}]


def test_bridge_ignores_other_slaves():
    cpu = MasterInterface("cpu", 0)
    bridge_master = MasterInterface("bridge.m", 0)
    bridge = Bridge("bridge", slave_id=1, far_master=bridge_master)
    near_bus = SharedBus(
        "near",
        [cpu],
        StaticPriorityArbiter([1]),
        slaves=[Slave("local", 0), bridge],
    )
    bridge.attach(near_bus)
    sim = Simulator()
    sim.add(near_bus)
    sim.add(bridge)
    cpu.submit(3, 0, slave=0)  # local transaction, not via bridge
    sim.run(10)
    assert bridge.forwarded == 0


def test_bridge_validation():
    with pytest.raises(ValueError):
        Bridge("b", 0, MasterInterface("m", 0), forwarding_delay=-1)


def test_build_single_bus_system_shape():
    system, bus = build_single_bus_system(3, RoundRobinArbiter(3), num_slaves=2)
    assert len(bus.masters) == 3
    assert len(bus.slaves) == 2
    system.run(5)
    assert bus.metrics.cycles == 5


def test_bus_system_rejects_late_registration():
    system, bus = build_single_bus_system(2, RoundRobinArbiter(2))
    system.run(1)
    with pytest.raises(RuntimeError):
        system.add_bus(bus)


def test_bus_system_metrics_shortcut():
    system, bus = build_single_bus_system(2, RoundRobinArbiter(2))
    assert system.metrics is bus.metrics


def test_build_single_bus_system_validation():
    with pytest.raises(ValueError):
        build_single_bus_system(0, RoundRobinArbiter(1))
