"""The batch backend: sweep/replication dispatch, per-point fallback,
and the numpy-less degradation paths (which run with or without numpy
installed, via the forced-unavailable test seam).
"""

import pytest

from repro.experiments.replication import run_replicated_testbed
from repro.experiments.sweep import run_sweep
from repro.vector import VectorUnavailableError, have_numpy

ARCHS = ("static-priority", "lottery-static", "lottery-compensated")
WEIGHTS = (12, 2, 6, 1)


def _force_unavailable(monkeypatch):
    monkeypatch.setattr(
        "repro.vector._compat._FORCE_UNAVAILABLE", True
    )


def test_sweep_backends_produce_identical_rows():
    pytest.importorskip("numpy")
    kwargs = dict(
        weights=WEIGHTS, cycles=1200, warmup=300, seed=3
    )
    scalar = run_sweep(ARCHS, ("T1", "T6", "T8"), backend="scalar", **kwargs)
    vector = run_sweep(ARCHS, ("T1", "T6", "T8"), backend="vector", **kwargs)
    auto = run_sweep(ARCHS, ("T1", "T6", "T8"), backend="auto", **kwargs)
    assert vector.rows == scalar.rows  # T6 exercises per-point fallback
    assert auto.rows == scalar.rows


def test_replication_backends_produce_identical_statistics():
    pytest.importorskip("numpy")
    kwargs = dict(
        seeds=range(1, 5), cycles=900, warmup=200
    )
    scalar = run_replicated_testbed(
        "lottery-compensated", "T8", list(WEIGHTS), backend="scalar",
        **kwargs
    )
    vector = run_replicated_testbed(
        "lottery-compensated", "T8", list(WEIGHTS), backend="vector",
        **kwargs
    )
    assert (
        scalar.replication.state_dict() == vector.replication.state_dict()
    )


def test_batch_points_carry_backend_attribute():
    pytest.importorskip("numpy")
    from repro.vector import run_testbed_batch

    batch = run_testbed_batch(
        [
            dict(arbiter_name="lottery-static", traffic_class_name="T8",
                 weights=list(WEIGHTS), cycles=600, seed=1),
            dict(arbiter_name="lottery-static", traffic_class_name="T6",
                 weights=list(WEIGHTS), cycles=600, seed=1),
            dict(arbiter_name="round-robin", traffic_class_name="T8",
                 weights=list(WEIGHTS), cycles=600, seed=1),
        ]
    )
    assert [result.backend for result in batch.results] == [
        "vector", "scalar", "scalar"
    ]
    assert batch.vector_points == 1 and batch.scalar_points == 2
    reasons = [reason for _, _, reason in batch.fallbacks]
    assert any("OnOffGenerator" in reason for reason in reasons)
    assert any("vector profile" in reason for reason in reasons)


def test_strict_cross_check_runs_by_default():
    pytest.importorskip("numpy")
    from repro.vector import run_testbed_batch

    batch = run_testbed_batch(
        [
            dict(arbiter_name=name, traffic_class_name="T8",
                 weights=list(WEIGHTS), cycles=500, seed=2)
            for name in ARCHS
        ]
    )
    assert len(batch.checked_labels) == batch.groups == 1


def test_auto_backend_falls_back_without_numpy(monkeypatch):
    _force_unavailable(monkeypatch)
    assert not have_numpy()
    rows = run_sweep(
        ("lottery-static",), ("T8",), weights=WEIGHTS, cycles=400,
        backend="auto",
    ).rows
    scalar = run_sweep(
        ("lottery-static",), ("T8",), weights=WEIGHTS, cycles=400,
        backend="scalar",
    ).rows
    assert rows == scalar


def test_vector_backend_raises_without_numpy(monkeypatch):
    _force_unavailable(monkeypatch)
    with pytest.raises(VectorUnavailableError):
        run_sweep(
            ("lottery-static",), ("T8",), weights=WEIGHTS, cycles=400,
            backend="vector",
        )
    with pytest.raises(VectorUnavailableError):
        run_replicated_testbed(
            "lottery-static", "T8", list(WEIGHTS), seeds=[1],
            cycles=400, backend="vector",
        )


def test_batch_raises_without_numpy(monkeypatch):
    _force_unavailable(monkeypatch)
    from repro.vector import run_testbed_batch

    with pytest.raises(VectorUnavailableError) as excinfo:
        run_testbed_batch([])
    assert "pip install .[vector]" in str(excinfo.value)


def test_bad_backend_name_is_rejected():
    with pytest.raises(ValueError):
        run_sweep(("lottery-static",), ("T8",), backend="gpu")
    with pytest.raises(ValueError):
        run_replicated_testbed(
            "lottery-static", "T8", list(WEIGHTS), backend="gpu"
        )


def test_quick_batch_benchmark_is_identical():
    pytest.importorskip("numpy")
    from repro import bench

    # Shrink the workload: the full quick bench is CI-sized, not
    # unit-test-sized.
    original = bench._batch_lane_specs

    def tiny_specs(quick):
        specs, _ = original(True)
        # A static-priority slice plus a static-lottery slice (the
        # latter exercises the shared lookup-table cache).
        return specs[:6] + specs[24:30], 400

    bench._batch_lane_specs = tiny_specs
    try:
        results = bench.run_batch_benchmark(quick=True, repeats=1)
    finally:
        bench._batch_lane_specs = original
    assert results["all_identical"]
    assert results["lanes"] == 12
    assert results["mismatched_lanes"] == []
    assert results["platform"]["machine"]
    assert results["vector"]["lookup_table_cache"]["builds"] >= 1
