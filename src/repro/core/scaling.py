"""Power-of-two ticket scaling (Section 4.3).

The static lottery manager draws its random number from a maximal-length
LFSR, which produces values uniform over ``[0, 2**k)``.  To use such a
draw directly, the masters' ticket holdings are rescaled so their sum is
a power of two, "taking care that the ratios of tickets held by the
components are not significantly altered".

The paper's example: holdings in ratio 1:2:4 (T = 7) scale to 5:9:18
(T = 32).  That is exactly largest-remainder apportionment onto 32
seats, which is what :func:`scale_to_power_of_two` implements.
"""


def next_power_of_two(value):
    """Smallest power of two >= ``value`` (value must be positive)."""
    if value < 1:
        raise ValueError("value must be positive")
    power = 1
    while power < value:
        power <<= 1
    return power


def is_power_of_two(value):
    """True for 1, 2, 4, 8, ..."""
    return value >= 1 and (value & (value - 1)) == 0


def scale_to_power_of_two(tickets, minimum_total=None):
    """Rescale ``tickets`` so the total is a power of two.

    Uses largest-remainder (Hamilton) apportionment, then guarantees
    every master keeps at least one ticket.

    :param tickets: positive integer holdings, one per master.
    :param minimum_total: optionally force the scaled total to be at
        least this (must itself be a power of two); more total tickets
        give finer ratio resolution at the cost of a wider LFSR.
    :returns: list of scaled holdings whose sum is a power of two.
    """
    tickets = [int(t) for t in tickets]
    if not tickets:
        raise ValueError("need at least one master")
    if any(t < 1 for t in tickets):
        raise ValueError("tickets must be positive")
    total = sum(tickets)
    target = next_power_of_two(max(total, len(tickets)))
    if minimum_total is not None:
        if not is_power_of_two(minimum_total):
            raise ValueError("minimum_total must be a power of two")
        target = max(target, minimum_total)

    floors = []
    remainders = []
    for t in tickets:
        exact = t * target / total
        floor = (t * target) // total
        floors.append(int(floor))
        remainders.append(exact - floor)

    leftover = target - sum(floors)
    # Hand out leftover seats to the largest fractional parts; ties break
    # toward the earlier master, matching a fixed hardware priority.
    order = sorted(range(len(tickets)), key=lambda i: (-remainders[i], i))
    for i in order[:leftover]:
        floors[i] += 1

    # No master may end with zero tickets (it could never win a lottery);
    # steal from the largest holder, which distorts ratios the least.
    for i, value in enumerate(floors):
        if value == 0:
            donor = max(range(len(floors)), key=lambda j: floors[j])
            if floors[donor] <= 1:
                raise ValueError(
                    "cannot scale {} masters into {} tickets".format(
                        len(tickets), target
                    )
                )
            floors[donor] -= 1
            floors[i] = 1
    return floors


def scaling_error(tickets, scaled):
    """Largest relative share distortion introduced by scaling."""
    if len(tickets) != len(scaled):
        raise ValueError("length mismatch")
    total = sum(tickets)
    scaled_total = sum(scaled)
    worst = 0.0
    for t, s in zip(tickets, scaled):
        target = t / total
        actual = s / scaled_total
        worst = max(worst, abs(actual - target) / target)
    return worst
