"""The framework-agnostic service core both front-ends dispatch into.

Every public request method returns the same triple —
``(status, body, headers)`` with ``status`` an HTTP status code,
``body`` a JSON-representable dict and ``headers`` extra response
headers (``Retry-After`` for backpressure) — and **never raises** for a
request defect: typed :class:`~repro.service.models.ServiceError`
values are converted to their canonical status/body here, once, so the
stdlib front-end (:mod:`repro.service.http`) and the FastAPI front-end
(:mod:`repro.service.app`) translate requests mechanically and cannot
disagree about semantics.

The core owns the whole durable stack: the WAL-backed
:class:`~repro.service.queue.JobQueue`, the
:class:`~repro.service.engine.ServiceEngine` lease loop, the shared
content-addressed :class:`~repro.experiments.cache.ResultCache` (with
its LRU size cap) and per-client token-bucket rate limiting.  Admission
is layered cheapest-first: drain check, then the rate limiter, then
validation, then the warm memo table (a cached result admits the job
already ``done`` — no queue capacity consumed), then the bounded queue.
"""

import os
import threading

from repro.experiments.cache import ResultCache
from repro.service.engine import ServiceEngine
from repro.service.models import (
    FAILED_JOB_HTTP_STATUS,
    JobState,
    ServiceDrainingError,
    ServiceError,
    validate_submission,
    validate_sweep,
)
from repro.service.queue import JobQueue
from repro.service.ratelimit import RateLimiter
from repro.service.wal import JobWAL

#: Suggested poll interval (seconds) returned with 202 "still running"
#: results; doubles as that response's ``Retry-After`` header.
POLL_RETRY_AFTER = 1


class ServiceCore:
    """The DSE service behind any transport.

    :param state_dir: directory holding the job WAL (``queue.wal``);
        restarting with the same directory resumes the queue.
    :param cache_dir: content-addressed result cache root, or ``None``
        to run without memoization.
    :param cache_max_bytes: LRU size cap for the cache (``None`` =
        unbounded).
    :param workers: supervisor pool width.
    :param max_depth: bounded-queue admission limit.
    :param rate: per-client sustained submissions/second (``None`` =
        unlimited); ``burst`` is the instantaneous allowance.
    :param timeout: per-job wall-clock timeout (seconds).
    :param retries: extra attempts after a crash/timeout.
    :param quarantine_after: consecutive crashes before quarantine.
    :param circuit_breaker: consecutive crashes before serial fallback.
    :param chaos: optional injector threaded into the WAL and cache so
        the chaos harness can fault the service's own durability layer.
    :param on_event: optional progress callback.
    """

    def __init__(self, state_dir, cache_dir=None, cache_max_bytes=None,
                 workers=2, max_depth=64, rate=None, burst=10,
                 timeout=None, retries=1, quarantine_after=3,
                 circuit_breaker=6, chaos=None, on_event=None):
        self.state_dir = state_dir
        os.makedirs(state_dir, exist_ok=True)
        self.wal = JobWAL(os.path.join(state_dir, "queue.wal"), chaos=chaos)
        self.queue = JobQueue(self.wal, max_depth=max_depth,
                              on_event=on_event)
        self.cache = None
        if cache_dir is not None:
            self.cache = ResultCache(cache_dir, chaos=chaos,
                                     max_bytes=cache_max_bytes)
        self.limiter = RateLimiter(rate=rate, burst=burst)
        self.engine = ServiceEngine(
            self.queue, cache=self.cache, jobs=workers, timeout=timeout,
            retries=retries, quarantine_after=quarantine_after,
            circuit_breaker=circuit_breaker, on_event=on_event,
        )
        self.recovery = None  # queue.recover() summary, set by start()
        self._draining = threading.Event()
        self._started = False

    # -- lifecycle --------------------------------------------------------

    def start(self):
        """Recover the queue from the WAL and start the lease loop."""
        if self._started:
            raise RuntimeError("core already started")
        # Written exactly once, before the engine and the HTTP listener
        # start — publication happens-before the first request thread.
        self.recovery = self.queue.recover()  # lb: noqa[LB201]
        self.engine.start()
        self._started = True
        return self.recovery

    def drain(self, timeout=None):
        """Graceful shutdown: stop admitting, finish in-flight, rewind.

        After this returns the WAL is a resumable checkpoint: every job
        is either settled or durably ``submitted``, so a restart with
        the same ``state_dir`` continues exactly where the drain
        stopped.
        """
        self._draining.set()
        self.engine.stop(drain=True, timeout=timeout)

    def close(self):
        """Non-draining stop (tests); in-flight work is rewound."""
        self._draining.set()
        self.engine.stop(drain=True, timeout=5.0)

    @property
    def draining(self):
        return self._draining.is_set()

    @property
    def started(self):
        return self._started

    # -- request plumbing -------------------------------------------------

    @staticmethod
    def _error_response(error):
        headers = {}
        if error.retry_after is not None:
            headers["Retry-After"] = str(error.retry_after)
        return error.http_status, error.as_dict(), headers

    def _admission_checks(self, client):
        if self._draining.is_set():
            raise ServiceDrainingError(
                "server is draining; resubmit after restart"
            )
        self.limiter.check(client or "anonymous")

    def _admit(self, spec, client):
        """Admit one validated spec; returns the job's status body.

        The warm memo-table path: a spec whose result already sits in
        the content-addressed cache is admitted directly to ``done``
        (journaled, so the WAL stays the complete history) without
        consuming queue capacity or an execution.
        """
        if self.cache is not None:
            state = self.queue.key_state(spec.key())
            if state is None or state not in JobState.ACTIVE:
                record = self.cache.get(spec.key())
                if record is not None:
                    job, deduplicated = self.queue.submit(
                        spec, client=client,
                        completed_report=record["report"], cached=True,
                    )
                    body = self.queue.status_of(job.id)
                    body["deduplicated"] = deduplicated
                    return body
        job, deduplicated = self.queue.submit(spec, client=client)
        body = self.queue.status_of(job.id)
        body["deduplicated"] = deduplicated
        return body

    # -- submissions ------------------------------------------------------

    def submit(self, payload, client=None):
        """``POST /jobs`` — admit one experiment submission.

        ``202`` with the job body for admitted (or joined in-flight)
        work; ``200`` when the job is already ``done`` (warm cache or a
        duplicate of finished work).
        """
        try:
            self._admission_checks(client)
            spec = validate_submission(payload)
            body = self._admit(spec, client)
        except ServiceError as error:
            return self._error_response(error)
        status = 200 if body["state"] == JobState.DONE else 202
        return status, body, {}

    def submit_sweep(self, payload, client=None):
        """``POST /sweeps`` — admit one spec crossed with many seeds.

        Admission is per-seed and stops at the first refusal, reporting
        partial progress honestly: the body lists every job admitted
        before the queue filled, plus the refusal that stopped the
        sweep, so a client can resubmit exactly the unadmitted seeds
        after ``Retry-After``.
        """
        try:
            self._admission_checks(client)
            specs = validate_sweep(payload)
        except ServiceError as error:
            return self._error_response(error)
        admitted = []
        for spec in specs:
            try:
                admitted.append(self._admit(spec, client))
            except ServiceError as error:
                status, body, headers = self._error_response(error)
                body["admitted"] = admitted
                body["rejected_seeds"] = [
                    s.seed for s in specs[len(admitted):]
                ]
                return status, body, headers
        return 202, {"jobs": admitted, "count": len(admitted)}, {}

    # -- job introspection ------------------------------------------------

    def job_status(self, job_id):
        """``GET /jobs/{id}`` — the job's full status body."""
        try:
            body = self.queue.status_of(job_id)
        except ServiceError as error:
            return self._error_response(error)
        return 200, body, {}

    def job_result(self, job_id):
        """``GET /jobs/{id}/result`` — the report, or where it stands.

        ``200`` + report when done; ``202`` + state while in flight
        (with a poll ``Retry-After``); ``500`` + the campaign-engine
        error taxonomy when failed/quarantined; ``409`` when cancelled.
        """
        try:
            snap = self.queue.snapshot(job_id)
        except ServiceError as error:
            return self._error_response(error)
        state = snap["state"]
        if state == JobState.DONE:
            return 200, {
                "job": snap["job"],
                "state": state,
                "report": snap["report"],
                "cached": snap["cached"],
            }, {}
        if state in (JobState.FAILED, JobState.QUARANTINED):
            return FAILED_JOB_HTTP_STATUS, {
                "job": snap["job"],
                "state": state,
                "error": snap.get("error"),
                "error_kind": snap.get("error_kind"),
                "attempts": snap["attempts"],
            }, {}
        if state == JobState.CANCELLED:
            return 409, {
                "job": snap["job"],
                "state": state,
                "error": "job was cancelled",
                "kind": "job-conflict",
            }, {}
        return 202, {
            "job": snap["job"],
            "state": state,
            "retry_after": POLL_RETRY_AFTER,
        }, {"Retry-After": str(POLL_RETRY_AFTER)}

    def cancel(self, job_id):
        """``DELETE /jobs/{id}`` — cancel a not-yet-leased job."""
        try:
            self.queue.cancel(job_id)
            body = self.queue.status_of(job_id)
        except ServiceError as error:
            return self._error_response(error)
        return 200, body, {}

    def list_jobs(self):
        """``GET /jobs`` — every job (submission order) plus counts."""
        return 200, {
            "jobs": self.queue.statuses(),
            "counts": self.queue.counts(),
        }, {}

    # -- probes -----------------------------------------------------------

    def healthz(self):
        """``GET /healthz`` — liveness: always 200 while the process
        serves, with the queue/pool/breaker state for dashboards."""
        return 200, {
            "status": "ok",
            "draining": self.draining,
            "depth": self.queue.depth(),
            "max_depth": self.queue.max_depth,
            "counts": self.queue.counts(),
            "breaker_opened": self.engine.counters()["breaker_opened"],
            "busy": self.engine.busy(),
        }, {}

    def readyz(self):
        """``GET /readyz`` — readiness: 503 while draining or saturated
        (load balancers should stop routing submissions here)."""
        if self.draining:
            return 503, {"status": "draining", "ready": False}, {}
        depth = self.queue.depth()
        if depth >= self.queue.max_depth:
            return 503, {
                "status": "saturated",
                "ready": False,
                "depth": depth,
                "max_depth": self.queue.max_depth,
            }, {"Retry-After": str(self.queue.retry_after_hint(depth))}
        return 200, {
            "status": "ready",
            "ready": True,
            "depth": depth,
            "max_depth": self.queue.max_depth,
        }, {}

    def stats(self):
        """``GET /stats`` — counters for benchmarks and the chaos
        harness (executions vs memo hits is the duplicate-work probe)."""
        engine = self.engine.counters()
        body = {
            "executed": engine["executed"],
            "memo_hits": engine["memo_hits"],
            "dedup_hits": self.queue.dedup_count(),
            "rate_limited": self.limiter.denied_count(),
            "wal_appended": self.wal.appended,
            "recovery": self.recovery,
            "counts": self.queue.counts(),
            "breaker_opened": engine["breaker_opened"],
        }
        if self.cache is not None:
            body["cache"] = self.cache.stats.as_dict()
            body["cache_bytes"] = self.cache.total_bytes()
            body["cache_max_bytes"] = self.cache.max_bytes
        return 200, body, {}
