# lb: module=repro.sim.fixture_bad
"""LB101 true positives: every flavour of nondeterminism the rule bans."""

import glob
import os
import random
import time
from random import randint
from time import perf_counter


def ambient_random_draw():
    return random.random() + random.randint(1, 6)


def wall_clock_timestamp():
    return time.time()


def imported_wall_clock():
    return perf_counter()


def imported_ambient_random():
    return randint(0, 1)


def os_entropy():
    return os.urandom(8)


def arbitrate_over_set(masters):
    for master in {"dma", "cpu", "dsp"}:
        if master in masters:
            return master
    return None


def iterate_set_call(pending):
    return [master for master in set(pending)]


def unsorted_listing(path):
    return os.listdir(path)


def salted_key(name):
    return hash(name) % 16
