"""Deterministic request patterns (Figure 5's symbolic traces).

Figure 5 contrasts two periodic request traces on a three-master TDMA
bus: Trace 1 arrives time-aligned with the timing-wheel reservations and
waits ~1 slot per transaction; Trace 2 is the identical pattern phase-
shifted, and waits ~3+ slots.  :class:`PatternGenerator` emits an
explicit list of (cycle, words) events, optionally repeating with a
period, so both traces can be written down literally.
"""

from repro.sim.component import Component


class PatternGenerator(Component):
    """Replays an explicit request schedule into a master interface.

    :param events: iterable of ``(cycle, words)`` pairs, cycle >= 0.
    :param repeat_period: when given, the schedule repeats every that
        many cycles (events are offsets within the period).
    """

    def __init__(self, name, interface, events, repeat_period=None, slave=0):
        super().__init__(name)
        events = sorted((int(c), int(w)) for c, w in events)
        if any(c < 0 or w < 1 for c, w in events):
            raise ValueError("events need cycle >= 0 and words >= 1")
        if repeat_period is not None:
            if repeat_period < 1:
                raise ValueError("repeat_period must be >= 1")
            if events and events[-1][0] >= repeat_period:
                raise ValueError("event offsets must lie within the period")
        self.interface = interface
        self.events = events
        self.repeat_period = repeat_period
        self.slave = slave
        self.messages_emitted = 0

    def reset(self):
        self.messages_emitted = 0

    def tick(self, cycle):
        when = cycle if self.repeat_period is None else cycle % self.repeat_period
        for event_cycle, words in self.events:
            if event_cycle == when:
                self.interface.submit(words, cycle, slave=self.slave)
                self.messages_emitted += 1


def phase_shifted(events, shift, period):
    """Shift a periodic schedule by ``shift`` cycles within ``period``.

    This is how Figure 5's Trace 2 relates to Trace 1: "identical ...
    except for a phase shift".
    """
    return sorted(((cycle + shift) % period, words) for cycle, words in events)
