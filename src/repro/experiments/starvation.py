"""Section 4.2's starvation expression, validated against simulation.

The paper argues no master starves because the probability of winning
within n drawings, ``p = 1 - (1 - t/T)**n``, converges geometrically to
one.  This experiment measures the empirical distribution of "drawings
until first win" for the smallest ticket holder on a saturated bus and
compares it against the analytic curve.
"""

from repro.core.lottery_manager import StaticLotteryManager
from repro.core.starvation import access_probability
from repro.metrics.report import format_table


class StarvationResult:
    def __init__(self, tickets, master, horizons, analytic, empirical, max_wait):
        self.tickets = list(tickets)
        self.master = master
        self.horizons = horizons
        self.analytic = analytic
        self.empirical = empirical
        self.max_wait = max_wait

    def worst_gap(self):
        return max(
            abs(a - e) for a, e in zip(self.analytic, self.empirical)
        )

    def format_report(self):
        rows = [
            [n, "{:.4f}".format(a), "{:.4f}".format(e)]
            for n, a, e in zip(self.horizons, self.analytic, self.empirical)
        ]
        table = format_table(
            ["drawings n", "analytic p", "measured p"],
            rows,
            title=(
                "Starvation: P(master {} wins within n drawings), tickets {}".format(
                    self.master, self.tickets
                )
            ),
        )
        return table + "\nlongest observed wait: {} drawings".format(self.max_wait)


def run_starvation(
    tickets=(1, 2, 3, 4), master=0, drawings=200_000, seed=3, horizons=None
):
    """Measure first-win waiting times under continuous contention."""
    if horizons is None:
        horizons = [1, 2, 4, 8, 16, 32, 64]
    manager = StaticLotteryManager(tickets, lfsr_seed=seed)
    request_map = [True] * len(tickets)
    scaled = manager.tickets
    waits = []
    current = 0
    for _ in range(drawings):
        outcome = manager.draw(request_map)
        current += 1
        if outcome.winner == master:
            waits.append(current)
            current = 0
    analytic = [
        access_probability(scaled[master], scaled.total, n) for n in horizons
    ]
    empirical = [
        sum(1 for w in waits if w <= n) / len(waits) for n in horizons
    ]
    return StarvationResult(
        tickets, master, horizons, analytic, empirical, max(waits)
    )
