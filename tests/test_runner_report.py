"""Tests for the all-experiments runner at reduced scale."""

from repro.experiments.runner import (
    experiment_names,
    format_full_report,
    run_all,
)


def test_full_report_contains_every_cheap_section():
    # The instant experiments run at full fidelity; the simulated ones
    # at a tiny scale just to prove the plumbing.
    results = run_all(
        scale=0.02,
        names=["figure8", "hardware", "hwscale", "starvation", "figure5"],
    )
    report = format_full_report(results)
    for name in ("figure8", "hardware", "hwscale", "starvation", "figure5"):
        assert "[{}]".format(name) in report
    # The Figure 5 section embeds the symbolic waveform traces.
    assert "Figure 5 trace" in report
    assert "req M1" in report


def test_experiment_names_are_unique_and_ordered():
    names = experiment_names()
    assert len(names) == len(set(names))
    assert names.index("figure4") < names.index("table1")
