"""Supervised, crash-safe parallel execution of experiment campaigns.

``lotterybus all`` runs every registry experiment.  At paper scale that
is hours of simulation, so the campaign must saturate the machine and
survive worker crashes, hangs, and outright loss of the supervising
process:

* tasks run on a **persistent, preloaded worker pool**: each worker
  process imports the ``repro`` experiment stack once, then serves any
  number of tasks over a duplex pipe, so per-task cost is one pickle
  round-trip instead of a fresh interpreter + import per task;
* dispatch is **deterministic**: tasks are independent, seeded points
  dispatched in submission order and assembled in campaign order, so
  ``--jobs N`` produces bit-identical campaign results to ``--jobs 1``
  regardless of which worker ran what when;
* each task has a wall-clock **timeout** — an expired worker is
  terminated (and replaced) and the task treated like a crash;
* crashed and timed-out tasks are **retried** a bounded number of times
  with exponential backoff, and checkpoint-aware experiments resume
  their retries from their own stage checkpoints instead of starting
  over.  A worker that merely *reports* an error (an exception inside
  the task) stays alive and keeps serving tasks; only a dying process
  costs a respawn;
* finished reports land in an append-only **JSONL result store** whose
  records are flushed and fsynced, so a SIGKILL between tasks loses at
  most the task in flight and ``--resume`` skips everything recorded;
* finished reports are also published to a **content-addressed result
  cache** (:mod:`repro.experiments.cache`) keyed by (experiment id,
  config, seed, schema version), so rerunning an unchanged point in a
  *later* campaign is a cache hit instead of a simulation.

Experiments are deterministic given (name, scale, seed), so a resumed,
cached, or differently-parallel campaign's combined report is
byte-identical to a serial uninterrupted one.

:func:`pool_map` exposes the same pool to intra-experiment fan-out
(sweep points, figure surfaces, replication chunks): call a module-level
function over a list of argument tuples and get results back in
submission order.

Legacy note: constructing a :class:`Supervisor` with a custom
``worker=`` entry point (the pre-pool injection seam) still runs one
process per task with the injected function; the pool engages for the
default worker, where reuse is safe by construction.
"""

import json
import multiprocessing
import os
import time
from collections import deque
from multiprocessing.connection import wait as _wait_connections

from repro.experiments.cache import ResultCache, experiment_key
from repro.experiments.runner import experiment_names, run_experiment


def default_jobs():
    """CPU-count-aware worker default.

    Prefers ``os.process_cpu_count()`` (Python 3.13+, respects CPU
    affinity) and falls back to ``os.cpu_count()``; never below 1.
    """
    counter = getattr(os, "process_cpu_count", None)
    count = counter() if counter is not None else None
    if not count:
        count = os.cpu_count()
    return count or 1


class TaskOutcome:
    """What the supervisor concluded about one task."""

    def __init__(self, name, status, report=None, error=None, attempts=1,
                 cached=False):
        self.name = name
        self.status = status  # "done" | "failed"
        self.report = report
        self.error = error
        self.attempts = attempts
        self.cached = cached

    def record(self):
        return {
            "name": self.name,
            "status": self.status,
            "report": self.report,
            "error": self.error,
            "attempts": self.attempts,
        }


class ResultStore:
    """Append-only JSONL store of per-task outcomes.

    Appends are flushed and fsynced so a completed task survives any
    later crash.  :meth:`load` tolerates a torn final line (the one
    write a SIGKILL can interrupt) by skipping lines that do not parse.
    """

    def __init__(self, path):
        self.path = path

    def load(self):
        """{name: record} for every successfully recorded task."""
        completed = {}
        try:
            handle = open(self.path, "r")
        except OSError:
            return completed
        with handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue  # torn tail line from a crash mid-append
                if (
                    isinstance(record, dict)
                    and record.get("status") == "done"
                    and isinstance(record.get("name"), str)
                ):
                    completed[record["name"]] = record
        return completed

    def append(self, record):
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(self.path, "a") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def clear(self):
        try:
            os.unlink(self.path)
        except OSError:
            pass


class TaskSpec:
    """One supervised unit of work: a single registry experiment."""

    def __init__(self, name, scale=1.0, seed=1, options=None,
                 checkpoint_dir=None, checkpoint_every=None, resume=False):
        self.name = name
        self.scale = scale
        self.seed = seed
        self.options = dict(options or {})
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_every = checkpoint_every
        self.resume = resume


def run_task_spec(spec, resume):
    """Execute one task spec in-process; returns the report text.

    Shared by the per-task legacy worker and every pool worker, so both
    execution modes produce byte-identical reports.
    """
    kwargs = dict(spec.options)
    if spec.checkpoint_dir is not None:
        from repro.experiments.checkpoint import task_checkpointer

        kwargs["checkpointer"] = task_checkpointer(
            spec.checkpoint_dir,
            every=spec.checkpoint_every,
            resume=resume,
        )
    result = run_experiment(
        spec.name, scale=spec.scale, seed=spec.seed,
        _warn_seedless=False, **kwargs
    )
    return result.format_report()


def _worker_main(conn, spec, resume):
    """Run one experiment and send ("ok", report) or ("error", message).

    The legacy process-per-task entry point; the parent interprets
    silence plus a nonzero exit code as a crash.
    """
    try:
        conn.send(("ok", run_task_spec(spec, resume)))
    except BaseException as error:  # the parent needs the reason, always
        try:
            conn.send(
                ("error", "{}: {}".format(type(error).__name__, error))
            )
        except (OSError, ValueError):
            pass
        raise
    finally:
        conn.close()


def _pool_worker_main(conn, task_runner):
    """A persistent pool worker: preload once, serve tasks until told
    to stop.

    Protocol (parent -> worker): ``("task", spec, resume)``,
    ``("call", func, args, kwargs)``, ``("stop",)``.
    Worker -> parent: ``("ok", payload)`` or ``("error", message)``.

    An exception inside a task is *reported*, not fatal — the worker
    stays warm for the next task.  Only process death (os._exit, OOM
    kill, signal) costs the supervisor a respawn.
    """
    # The expensive part of a fresh worker is importing the experiment
    # stack; do it exactly once, before the first task arrives.
    import repro.experiments.runner  # noqa: F401  (preload)

    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        kind = message[0]
        if kind == "stop":
            break
        try:
            if kind == "task":
                _, spec, resume = message
                conn.send(("ok", task_runner(spec, resume)))
            elif kind == "call":
                _, func, args, kwargs = message
                conn.send(("ok", func(*args, **(kwargs or {}))))
            else:
                conn.send(("error", "unknown message {!r}".format(kind)))
        except KeyboardInterrupt:
            break
        except BaseException as error:
            try:
                conn.send(
                    ("error", "{}: {}".format(type(error).__name__, error))
                )
            except (OSError, ValueError):
                break
    conn.close()


class _PoolWorker:
    """Parent-side handle for one persistent worker process."""

    _next_id = 0

    def __init__(self, context, task_runner):
        _PoolWorker._next_id += 1
        self.id = _PoolWorker._next_id
        parent_conn, child_conn = context.Pipe(duplex=True)
        self.conn = parent_conn
        self.process = context.Process(
            target=_pool_worker_main,
            args=(child_conn, task_runner),
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        self.tasks_done = 0

    def send(self, message):
        self.conn.send(message)

    def alive(self):
        return self.process.is_alive()

    def stop(self, grace=2.0):
        """Ask the worker to exit; escalate to terminate/kill."""
        if self.process.is_alive():
            try:
                self.conn.send(("stop",))
            except (OSError, ValueError, BrokenPipeError):
                pass
        try:
            self.conn.close()
        except OSError:
            pass
        self.process.join(timeout=grace)
        self.terminate()

    def terminate(self):
        if not self.process.is_alive():
            self.process.join(timeout=0.1)
            return
        self.process.terminate()
        self.process.join(timeout=2.0)
        if self.process.is_alive():
            self.process.kill()
            self.process.join()


class WorkerPool:
    """A set of persistent worker processes sharing one task protocol.

    :param jobs: maximum concurrent workers (spawned lazily).
    :param task_runner: the in-worker task executor (injectable for
        tests); must be a module-level callable.
    """

    def __init__(self, jobs=None, task_runner=run_task_spec, context=None):
        if jobs is None:
            jobs = default_jobs()
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.task_runner = task_runner
        self._context = context or multiprocessing.get_context()
        self.idle = []
        self.spawned = 0

    def checkout(self, active):
        """An idle worker, or a fresh one if under the jobs cap.

        ``active`` is the number of workers currently busy; returns
        ``None`` when the pool is saturated.
        """
        while self.idle:
            worker = self.idle.pop(0)
            if worker.alive():
                return worker
            worker.terminate()
        if active + len(self.idle) < self.jobs:
            self.spawned += 1
            return _PoolWorker(self._context, self.task_runner)
        return None

    def checkin(self, worker):
        """Return a worker after a served task (alive workers only)."""
        worker.tasks_done += 1
        if worker.alive():
            self.idle.append(worker)
        else:
            worker.terminate()

    def discard(self, worker):
        """Drop a crashed / timed-out worker permanently."""
        worker.terminate()
        try:
            worker.conn.close()
        except OSError:
            pass

    def stop(self):
        for worker in self.idle:
            worker.stop()
        self.idle = []

    def terminate_all(self, extra=()):
        for worker in list(self.idle) + list(extra):
            worker.terminate()
        self.idle = []


def pool_map(func, calls, jobs=None, task_runner=run_task_spec):
    """Apply a module-level ``func`` over argument tuples, in parallel.

    The intra-experiment fan-out primitive: sweep points, figure
    surface cells and replication chunks are pure functions of their
    arguments, so results depend only on ``calls`` — never on ``jobs``
    or scheduling — and are returned in submission order.  ``jobs`` of
    ``None`` or 1 runs inline (no processes); errors raise
    :class:`RuntimeError` with the worker's message.
    """
    calls = [tuple(call) for call in calls]
    if jobs is None or jobs <= 1 or len(calls) <= 1:
        return [func(*call) for call in calls]
    pool = WorkerPool(jobs=min(jobs, len(calls)), task_runner=task_runner)
    results = [None] * len(calls)
    busy = {}  # worker -> call index
    next_index = 0
    try:
        while next_index < len(calls) or busy:
            while next_index < len(calls):
                worker = pool.checkout(len(busy))
                if worker is None:
                    break
                worker.send(("call", func, calls[next_index], None))
                busy[worker] = next_index
                next_index += 1
            ready = _wait_connections(
                [worker.conn for worker in busy], timeout=0.05
            )
            for worker in list(busy):
                if worker.conn not in ready and worker.alive():
                    continue
                index = busy[worker]
                try:
                    status, payload = worker.conn.recv()
                except (EOFError, OSError):
                    status, payload = None, None
                del busy[worker]
                if status == "ok":
                    results[index] = payload
                    pool.checkin(worker)
                    continue
                pool.discard(worker)
                raise RuntimeError(
                    "pool_map call {} failed: {}".format(
                        index,
                        payload if status == "error" else "worker crashed",
                    )
                )
    except BaseException:
        pool.terminate_all(extra=busy)
        raise
    pool.stop()
    return results


class _RunningTask:
    def __init__(self, spec, process, conn, deadline, attempt):
        self.spec = spec
        self.process = process
        self.conn = conn
        self.deadline = deadline
        self.attempt = attempt


class Supervisor:
    """Runs task specs on a supervised persistent worker pool.

    :param jobs: maximum concurrently running workers (``None`` = all
        CPUs, via :func:`default_jobs`).
    :param timeout: per-task wall-clock seconds (``None`` = unlimited).
    :param retries: extra attempts after the first (0 = fail fast).
    :param backoff: base seconds of delay before retry ``n`` (doubled
        each further attempt).
    :param poll_interval: supervisor loop sleep between health checks.
    :param worker: a legacy process-per-task entry point; passing a
        custom one disables the pool and runs the injected function in
        a fresh process per task (the original supervision seam).
    :param task_runner: in-pool task executor (injectable for tests);
        must be a module-level callable of ``(spec, resume)``.
    """

    def __init__(self, jobs=None, timeout=None, retries=1, backoff=0.5,
                 poll_interval=0.05, worker=_worker_main,
                 task_runner=run_task_spec):
        if jobs is None:
            jobs = default_jobs()
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive when given")
        self.jobs = jobs
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.poll_interval = poll_interval
        self.worker = worker
        self.task_runner = task_runner
        self.pooled = worker is _worker_main
        self._context = multiprocessing.get_context()
        self.workers_spawned = 0

    def run(self, specs, store=None, on_event=None):
        """Run every spec; returns {name: TaskOutcome}.

        Completed tasks are appended to ``store`` as they finish.  A
        KeyboardInterrupt terminates all workers before propagating, so
        ^C never leaves orphaned simulations running.
        """
        if self.pooled:
            return self._run_pooled(specs, store, on_event)
        return self._run_legacy(specs, store, on_event)

    # -- shared bookkeeping ------------------------------------------------

    def _make_emit(self, on_event):
        def emit(message):
            if on_event is not None:
                on_event(message)
        return emit

    def _make_settle(self, outcomes, store):
        def settle(task, status, report=None, error=None):
            outcome = TaskOutcome(
                task.spec.name, status, report=report, error=error,
                attempts=task.attempt,
            )
            outcomes[task.spec.name] = outcome
            if store is not None:
                store.append(outcome.record())
        return settle

    def _make_retry_or_fail(self, pending, settle, emit):
        def retry_or_fail(task, error):
            if task.attempt <= self.retries:
                delay = self.backoff * (2 ** (task.attempt - 1))
                emit(
                    "task {}: {}; retrying in {:.1f}s (attempt {}/{})".format(
                        task.spec.name, error, delay, task.attempt + 1,
                        self.retries + 1,
                    )
                )
                pending.append(
                    (task.spec, task.attempt + 1, time.monotonic() + delay)
                )
            else:
                emit("task {}: {}; giving up".format(task.spec.name, error))
                settle(task, "failed", error=error)
        return retry_or_fail

    # -- pooled execution --------------------------------------------------

    def _run_pooled(self, specs, store, on_event):
        emit = self._make_emit(on_event)
        pending = deque((spec, 1, 0.0) for spec in specs)
        outcomes = {}
        settle = self._make_settle(outcomes, store)
        retry_or_fail = self._make_retry_or_fail(pending, settle, emit)
        pool = WorkerPool(
            jobs=self.jobs, task_runner=self.task_runner,
            context=self._context,
        )
        busy = {}  # worker -> _PoolTask

        class _PoolTask:
            def __init__(self, spec, attempt, deadline):
                self.spec = spec
                self.attempt = attempt
                self.deadline = deadline

        try:
            while pending or busy:
                now = time.monotonic()
                # Dispatch whatever is due onto idle/fresh workers, in
                # deterministic submission order.
                blocked = []
                while pending:
                    spec, attempt, not_before = pending.popleft()
                    if not_before > now:
                        blocked.append((spec, attempt, not_before))
                        continue
                    worker = pool.checkout(len(busy))
                    if worker is None:
                        blocked.append((spec, attempt, not_before))
                        break
                    resume = spec.resume or attempt > 1
                    worker.send(("task", spec, resume))
                    deadline = (
                        None if self.timeout is None
                        else now + self.timeout
                    )
                    busy[worker] = _PoolTask(spec, attempt, deadline)
                    emit(
                        "task {}: started (attempt {}/{}) on worker {}".format(
                            spec.name, attempt, self.retries + 1, worker.id
                        )
                    )
                pending.extendleft(reversed(blocked))

                if busy:
                    _wait_connections(
                        [worker.conn for worker in busy],
                        timeout=self.poll_interval,
                    )
                elif pending:
                    time.sleep(self.poll_interval)

                now = time.monotonic()
                for worker in list(busy):
                    task = busy[worker]
                    finished, crashed = self._collect_pooled(
                        worker, task, settle, retry_or_fail, emit, now
                    )
                    if not finished:
                        continue
                    del busy[worker]
                    if crashed:
                        pool.discard(worker)
                    else:
                        pool.checkin(worker)
        except KeyboardInterrupt:
            pool.terminate_all(extra=busy)
            raise
        pool.stop()
        self.workers_spawned = pool.spawned
        return outcomes

    def _collect_pooled(self, worker, task, settle, retry_or_fail, emit,
                        now):
        """One health check; returns (finished, worker_crashed)."""
        if worker.conn.poll():
            try:
                status, payload = worker.conn.recv()
            except (EOFError, OSError):
                status, payload = None, None
            if status == "ok":
                emit("task {}: done".format(task.spec.name))
                settle(task, "done", report=payload)
                return True, False
            if status == "error":
                retry_or_fail(task, payload)
                return True, False
            retry_or_fail(
                task,
                "worker crashed (exit code {})".format(
                    worker.process.exitcode
                ),
            )
            return True, True
        if task.deadline is not None and now > task.deadline:
            retry_or_fail(
                task, "timed out after {:.0f}s".format(self.timeout)
            )
            return True, True
        if not worker.alive():
            retry_or_fail(
                task,
                "worker crashed (exit code {})".format(
                    worker.process.exitcode
                ),
            )
            return True, True
        return False, False

    # -- legacy process-per-task execution ---------------------------------

    def _run_legacy(self, specs, store, on_event):
        emit = self._make_emit(on_event)
        pending = deque((spec, 1, 0.0) for spec in specs)
        running = []
        outcomes = {}
        settle = self._make_settle(outcomes, store)
        retry_or_fail = self._make_retry_or_fail(pending, settle, emit)

        try:
            while pending or running:
                now = time.monotonic()
                # Launch whatever is due and fits.
                blocked = []
                while pending and len(running) < self.jobs:
                    spec, attempt, not_before = pending.popleft()
                    if not_before > now:
                        blocked.append((spec, attempt, not_before))
                        continue
                    running.append(self._launch(spec, attempt, emit))
                pending.extendleft(reversed(blocked))

                still_running = []
                for task in running:
                    finished = self._collect(task, settle, retry_or_fail)
                    if not finished:
                        still_running.append(task)
                running = still_running
                if pending or running:
                    time.sleep(self.poll_interval)
        except KeyboardInterrupt:
            for task in running:
                self._terminate(task)
            raise
        return outcomes

    def _launch(self, spec, attempt, emit):
        parent_conn, child_conn = self._context.Pipe(duplex=False)
        # Retries resume from the task's own checkpoints instead of
        # redoing completed stages; a resumed campaign resumes even on
        # the first attempt.
        resume = spec.resume or attempt > 1
        process = self._context.Process(
            target=self.worker, args=(child_conn, spec, resume), daemon=True
        )
        process.start()
        child_conn.close()
        self.workers_spawned += 1
        deadline = (
            None if self.timeout is None
            else time.monotonic() + self.timeout
        )
        emit(
            "task {}: started (attempt {}/{})".format(
                spec.name, attempt, self.retries + 1
            )
        )
        return _RunningTask(spec, process, parent_conn, deadline, attempt)

    def _collect(self, task, settle, retry_or_fail):
        """Check one running task; True when it left the running set."""
        if task.conn.poll():
            try:
                status, payload = task.conn.recv()
            except (EOFError, OSError):
                status, payload = None, None
            task.process.join()
            task.conn.close()
            if status == "ok":
                settle(task, "done", report=payload)
            elif status == "error":
                retry_or_fail(task, payload)
            else:
                retry_or_fail(
                    task,
                    "worker crashed (exit code {})".format(
                        task.process.exitcode
                    ),
                )
            return True
        if task.deadline is not None and time.monotonic() > task.deadline:
            self._terminate(task)
            task.conn.close()
            retry_or_fail(
                task, "timed out after {:.0f}s".format(self.timeout)
            )
            return True
        if not task.process.is_alive():
            task.process.join()
            task.conn.close()
            retry_or_fail(
                task,
                "worker crashed (exit code {})".format(task.process.exitcode),
            )
            return True
        return False

    def _terminate(self, task):
        if not task.process.is_alive():
            return
        task.process.terminate()
        task.process.join(timeout=2.0)
        if task.process.is_alive():
            task.process.kill()
            task.process.join()


class CampaignReport:
    """The assembled outcome of a supervised campaign."""

    def __init__(self, sections, skipped, failed, cached=None,
                 cache_stats=None):
        self.sections = sections  # [(name, report_text or None)]
        self.skipped = skipped  # names reused from the result store
        self.failed = failed  # {name: error}
        self.cached = cached or []  # names served by the result cache
        self.cache_stats = cache_stats  # CacheStats or None

    @property
    def ok(self):
        return not self.failed

    def format_report(self):
        lines = []
        for name, report in self.sections:
            lines.append("=" * 72)
            lines.append("[{}]".format(name))
            if report is None:
                lines.append(
                    "FAILED: {}".format(self.failed.get(name, "unknown"))
                )
            else:
                lines.append(report)
            lines.append("")
        return "\n".join(lines)

    def format_cache_summary(self):
        """Cache accounting block (empty string without a cache)."""
        if self.cache_stats is None:
            return ""
        from repro.metrics.report import format_kv_section

        stats = self.cache_stats.as_dict()
        stats["hit_rate"] = "{:.1%}".format(self.cache_stats.hit_rate)
        stats["cached_tasks"] = (
            ", ".join(self.cached) if self.cached else "(none)"
        )
        return format_kv_section("campaign result cache", stats)


def run_campaign(names=None, scale=1.0, seed=1, jobs=None, timeout=None,
                 retries=1, resume=False, checkpoint_dir=None,
                 checkpoint_every=None, on_event=None, supervisor=None,
                 cache=None, cache_dir=None, use_cache=True):
    """Run a supervised experiment campaign; returns a CampaignReport.

    ``checkpoint_dir`` hosts both the JSONL result store
    (``results.jsonl``) and one sub-directory per checkpoint-aware
    experiment.  With ``resume=True``, tasks recorded in the store are
    skipped outright and interrupted checkpoint-aware tasks restart
    from their stage checkpoints.

    The result cache sits in front of the supervisor: a task whose
    (name, scale, seed, options, schema-version) key holds a verified
    entry is served from the cache without dispatching a worker, and
    every freshly finished task is published back.  ``cache_dir`` names
    the cache root (``use_cache=False`` or a pre-built ``cache``
    override it); accounting lands on ``CampaignReport.cache_stats``.
    """
    from repro.experiments.runner import checkpoint_aware_experiments

    if names is None:
        names = experiment_names()
    if checkpoint_dir is None:
        raise ValueError("a campaign needs a checkpoint directory")
    os.makedirs(checkpoint_dir, exist_ok=True)
    if cache is None and use_cache and cache_dir is not None:
        cache = ResultCache(cache_dir)
    store = ResultStore(os.path.join(checkpoint_dir, "results.jsonl"))
    if not resume:
        store.clear()
    completed = store.load()

    def emit(message):
        if on_event is not None:
            on_event(message)

    skipped = [name for name in names if name in completed]
    for name in skipped:
        emit("task {}: already complete, skipping".format(name))

    keys = {
        name: experiment_key(name, scale=scale, seed=seed)
        for name in names
    }
    cached = []
    if cache is not None:
        for name in names:
            if name in completed:
                continue
            record = cache.get(keys[name])
            if record is None:
                continue
            cached.append(name)
            completed[name] = {
                "name": name,
                "status": "done",
                "report": record["report"],
            }
            store.append(
                {
                    "name": name,
                    "status": "done",
                    "report": record["report"],
                    "error": None,
                    "attempts": 0,
                }
            )
            emit("task {}: cache hit, skipping".format(name))

    aware = checkpoint_aware_experiments()
    specs = []
    for name in names:
        if name in completed:
            continue
        specs.append(
            TaskSpec(
                name,
                scale=scale,
                seed=seed,
                checkpoint_dir=(
                    os.path.join(checkpoint_dir, name)
                    if name in aware
                    else None
                ),
                checkpoint_every=checkpoint_every,
                resume=resume,
            )
        )

    if supervisor is None:
        supervisor = Supervisor(jobs=jobs, timeout=timeout, retries=retries)
    outcomes = supervisor.run(specs, store=store, on_event=on_event)

    if cache is not None:
        for name, outcome in outcomes.items():
            if outcome.status == "done":
                cache.put(keys[name], {"name": name, "report": outcome.report})

    sections, failed = [], {}
    for name in names:
        if name in completed:
            sections.append((name, completed[name]["report"]))
        elif name in outcomes and outcomes[name].status == "done":
            sections.append((name, outcomes[name].report))
        else:
            error = (
                outcomes[name].error
                if name in outcomes
                else "never completed"
            )
            failed[name] = error
            sections.append((name, None))
    if cache is not None:
        emit(cache.stats.format_line())
    return CampaignReport(
        sections, skipped, failed, cached=cached,
        cache_stats=None if cache is None else cache.stats,
    )
