"""Ablation: latency jitter — randomized vs deterministic shares.

DESIGN.md question: LOTTERYBUS randomizes every arbitration; a
deterministic proportional scheme (deficit weighted round-robin) hits
the same long-run shares without randomness.  What does randomization
cost in tail latency?  Compares p50/p95/p99 per-word latency of the
highest-weight master across lottery, weighted-RR and two-level TDMA
under saturating and bursty traffic.
"""

from conftest import cycles, run_once

from repro.arbiters.registry import make_arbiter
from repro.bus.topology import build_single_bus_system
from repro.metrics.histogram import LatencyDistribution
from repro.metrics.report import format_table
from repro.traffic.classes import get_traffic_class

SCHEMES = ("lottery-static", "weighted-rr", "tdma")
WEIGHTS = [1, 2, 3, 4]


def run_jitter_ablation(num_cycles):
    rows = []
    for traffic in ("T9", "T6"):
        for scheme in SCHEMES:
            arbiter = make_arbiter(scheme, 4, WEIGHTS)
            system, bus = build_single_bus_system(
                4, arbiter, get_traffic_class(traffic).generator_factory(seed=4)
            )
            distribution = LatencyDistribution(4)
            bus.add_completion_hook(distribution.on_completion)
            system.run(num_cycles)
            p50 = distribution.percentile(3, 0.50)
            p99 = distribution.percentile(3, 0.99)
            rows.append((traffic, scheme, p50, p99, p99 / max(p50, 1e-9)))
    return rows


def test_bench_ablation_jitter(benchmark):
    rows = run_once(benchmark, run_jitter_ablation, cycles(200_000))
    print()
    print(
        format_table(
            ["traffic", "scheme", "C4 p50", "C4 p99", "p99/p50"],
            [
                [traffic, scheme, "{:.2f}".format(p50), "{:.2f}".format(p99),
                 "{:.2f}".format(ratio)]
                for traffic, scheme, p50, p99, ratio in rows
            ],
            title="Jitter: tail latency of the highest-weight master",
        )
    )
    by_key = {(t, s): (p50, p99) for t, s, p50, p99, _ in rows}
    # Under saturation the deterministic schemes bound the tail tighter
    # than the lottery (randomization costs p99)...
    assert by_key[("T9", "weighted-rr")][1] <= by_key[("T9", "lottery-static")][1]
    # ...while medians stay in the same band (same long-run shares).
    assert by_key[("T9", "weighted-rr")][0] < 2 * by_key[("T9", "lottery-static")][0]
