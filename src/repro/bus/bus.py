"""The shared system bus.

One word moves per bus cycle when a burst is active.  The bus owns the
arbiter and consults it whenever it is free; arbitration is pipelined
with data transfer by default (zero visible cycles, per the paper), with
an optional non-pipelined mode that charges arbitration cycles between
bursts.
"""

from repro.metrics.collector import MetricsCollector
from repro.sim.component import Component
from repro.sim.snapshot import (
    CheckpointError,
    default_load_state_dict,
    default_state_dict,
)


class BusProtocolError(RuntimeError):
    """Raised when an arbiter violates the bus protocol."""


class _ActiveBurst:
    """Bookkeeping for the burst currently holding the bus."""

    __slots__ = ("request", "words_left", "slave")

    def __init__(self, request, words_left, slave):
        self.request = request
        self.words_left = words_left
        self.slave = slave


class SharedBus(Component):
    """A single shared channel connecting masters to slaves.

    :param name: component name.
    :param masters: list of :class:`~repro.bus.master.MasterInterface`,
        indexed by master id.
    :param slaves: list of :class:`~repro.bus.slave.Slave`, indexed by
        slave id; a default zero-wait slave is created if omitted.
    :param arbiter: an :class:`~repro.arbiters.base.Arbiter`.
    :param max_burst: maximum words per grant before re-arbitration
        (the paper's "maximum transfer size"; default 16).
    :param arbitration_cycles: visible cycles charged per arbitration
        when not pipelined (default 0 = pipelined with data transfer).
    :param preemptive: re-arbitrate every cycle instead of at burst
        boundaries (Section 2's optional pre-emption feature).  A new
        winner takes the bus mid-burst; the displaced request keeps its
        progress and competes again.  Each word pays the slave's setup
        wait states, since preemption re-issues the address phase.
    :param split_transactions: Section 2's "dynamic bus splitting": a
        request whose slave needs setup wait states releases the bus
        during the setup (the address phase is posted, the slave works
        off-bus, the request re-competes when ready) instead of holding
        it idle, so other masters' transfers overlap slave latency.
    :param bus_timeout: consecutive stall cycles an active burst may
        accumulate before the watchdog aborts it through the masters'
        error-response path instead of wedging the simulation (``None``
        disables the watchdog; see :mod:`repro.faults`).
    :param metrics: optional externally owned MetricsCollector.
    """

    def __init__(
        self,
        name,
        masters,
        arbiter,
        slaves=None,
        max_burst=16,
        arbitration_cycles=0,
        preemptive=False,
        split_transactions=False,
        bus_timeout=None,
        metrics=None,
    ):
        super().__init__(name)
        if not masters:
            raise ValueError("a bus needs at least one master")
        if max_burst < 1:
            raise ValueError("max_burst must be >= 1")
        if arbitration_cycles < 0:
            raise ValueError("arbitration_cycles must be non-negative")
        if bus_timeout is not None and bus_timeout < 1:
            raise ValueError("bus_timeout must be >= 1 when given")
        self.masters = list(masters)
        if slaves is None:
            from repro.bus.slave import Slave

            slaves = [Slave(name + ".slave0", 0)]
        self.slaves = list(slaves)
        self.arbiter = arbiter
        self._completion_hooks = []
        self._hook_keys = {}
        if hasattr(arbiter, "bind"):
            # Flow-aware arbiters need visibility beyond pending word
            # counts (e.g. the head request's flow label).
            arbiter.bind(self)
        self.max_burst = max_burst
        self.arbitration_cycles = arbitration_cycles
        self.preemptive = preemptive
        self.split_transactions = split_transactions
        self.bus_timeout = bus_timeout
        self.injector = None
        self.metrics = metrics or MetricsCollector(len(self.masters))
        self._burst = None
        self._stall = 0
        self._stall_run = 0
        for index, master in enumerate(self.masters):
            if master.master_id != index:
                raise ValueError(
                    "master {!r} has id {} but occupies slot {}".format(
                        master.name, master.master_id, index
                    )
                )
        # Interfaces exposing the fault/retry machinery (serviced every
        # cycle; plain duck-typed masters are left alone).
        self._serviced_masters = [
            master for master in self.masters if hasattr(master, "service")
        ]

    def add_completion_hook(self, hook, key=None):
        """Register ``hook(request, cycle)`` called as requests complete.

        Registration is idempotent: re-adding an already registered hook
        is a no-op, and a ``key`` names a slot of which there is at most
        one — adding another hook under the same key replaces the old
        one (used by :class:`~repro.bus.checker.BusChecker` so stacked
        or reset checkers never double-fire).
        """
        if key is not None:
            old = self._hook_keys.pop(key, None)
            if old is not None and old in self._completion_hooks:
                self._completion_hooks.remove(old)
            self._hook_keys[key] = hook
        elif hook in self._completion_hooks:
            return hook
        self._completion_hooks.append(hook)
        return hook

    def remove_completion_hook(self, hook_or_key):
        """Deregister a completion hook by callable or by its key.

        Returns True if a hook was removed.
        """
        hook = hook_or_key
        if hook_or_key in self._hook_keys:
            hook = self._hook_keys.pop(hook_or_key)
        else:
            for key, value in list(self._hook_keys.items()):
                if value == hook:
                    del self._hook_keys[key]
        try:
            self._completion_hooks.remove(hook)
            return True
        except ValueError:
            return False

    def reset(self):
        self._burst = None
        self._stall = 0
        self._stall_run = 0
        self.metrics.reset()
        if hasattr(self.arbiter, "reset"):
            self.arbiter.reset()

    # -- checkpoint / restore (see repro.sim.snapshot) -------------------
    #
    # The bus snapshots its masters and slaves itself: they are wired to
    # the bus at construction and usually not registered with the
    # simulator, so the bus is their snapshot root.  The active burst is
    # stored as (request, words left) — the request object is shared
    # with its master's queue, an identity the simulator-level pickle
    # pass preserves — and its slave is re-derived from the request.

    state_attrs = ("_stall", "_stall_run")
    state_children = ("arbiter", "metrics")
    # Wiring, not runtime state: completion hooks are callables
    # re-registered by whoever builds the system (unpicklable in
    # general), and _serviced_masters is a derived view of self.masters,
    # whose contents snapshot through the "masters" section above.
    state_exclude = ("_completion_hooks", "_hook_keys", "_serviced_masters")

    def state_dict(self):
        state = default_state_dict(self)
        state["masters"] = [
            master.state_dict() if hasattr(master, "state_dict") else None
            for master in self.masters
        ]
        state["slaves"] = [
            slave.state_dict() if hasattr(slave, "state_dict") else None
            for slave in self.slaves
        ]
        burst = self._burst
        state["burst"] = (
            None
            if burst is None
            else {"request": burst.request, "words_left": burst.words_left}
        )
        return state

    def load_state_dict(self, state):
        state = dict(state)
        try:
            master_states = state.pop("masters")
            slave_states = state.pop("slaves")
            burst_state = state.pop("burst")
        except KeyError as error:
            raise CheckpointError(
                "bus snapshot for {!r} lacks section {}".format(
                    self.name, error
                )
            ) from None
        if len(master_states) != len(self.masters):
            raise CheckpointError(
                "bus snapshot has {} masters, bus {!r} has {}".format(
                    len(master_states), self.name, len(self.masters)
                )
            )
        if len(slave_states) != len(self.slaves):
            raise CheckpointError(
                "bus snapshot has {} slaves, bus {!r} has {}".format(
                    len(slave_states), self.name, len(self.slaves)
                )
            )
        default_load_state_dict(self, state)
        for master, master_state in zip(self.masters, master_states):
            if master_state is not None:
                master.load_state_dict(master_state)
        for slave, slave_state in zip(self.slaves, slave_states):
            if slave_state is not None:
                slave.load_state_dict(slave_state)
        if burst_state is None:
            self._burst = None
        else:
            request = burst_state["request"]
            self._burst = _ActiveBurst(
                request, burst_state["words_left"], self.slaves[request.slave]
            )

    @property
    def busy(self):
        """True while a burst holds the bus."""
        return self._burst is not None

    def pending_words(self, cycle=None):
        """Per-master words pending in each head request (arbiter's view).

        With split transactions, a head request parked on slave setup is
        invisible to arbitration until its ``parked_until`` cycle.
        """
        pending = []
        for master in self.masters:
            words = master.pending_words
            if words and cycle is not None:
                head = master.head()
                if head.parked_until is not None and head.parked_until > cycle:
                    words = 0
            pending.append(words)
        return pending

    def next_activity(self, cycle):
        """Wakeup contract: the bus is quiescent only when nothing is in
        flight, no stall is draining, the arbiter can replay idle rounds
        arithmetically (``supports_idle_skip``) and every master is
        quiet.  A master in retry backoff bounds the jump to its release
        cycle rather than blocking the skip."""
        if self._burst is not None or self._stall > 0:
            return cycle
        if not getattr(self.arbiter, "supports_idle_skip", False):
            return cycle
        horizon = None
        for master in self.masters:
            if hasattr(master, "next_activity"):
                nxt = master.next_activity(cycle)
            elif master.pending_words:  # duck-typed master
                nxt = cycle
            else:
                nxt = None
            if nxt is None:
                continue
            if nxt <= cycle:
                return cycle
            if horizon is None or nxt < horizon:
                horizon = nxt
        return horizon

    def skip_quiet(self, cycle, span):
        """Replay ``span`` idle bus cycles: the metrics see the cycles as
        idle and the arbiter fast-forwards its clocked idle behaviour
        (TDMA wheel, token rotation).  Master ``service`` calls and
        ``filter_grant(None)`` are no-ops on idle cycles, so nothing else
        needs replaying."""
        self.metrics.observe_idle_gap(span)
        self.arbiter.skip_idle(span)

    def tick(self, cycle):
        self.metrics.observe_cycle()
        for master in self._serviced_masters:
            master.service(cycle, self.metrics.faults)
        if self._stall > 0:
            self._stall -= 1
            self.metrics.record_stall()
            if self._burst is not None and self.bus_timeout is not None:
                self._stall_run += 1
                if self._stall_run > self.bus_timeout:
                    self._abort_burst(cycle)
            return
        if self.preemptive:
            # Pre-emption: the arbiter is consulted every cycle; any
            # in-progress burst yields to the new winner.
            self._burst = None
        if self._burst is None:
            self._arbitrate(cycle)
            if self._burst is None:
                self.metrics.record_idle()
                return
            if self._stall > 0:
                self._stall -= 1
                self.metrics.record_stall()
                return
        self._transfer_word(cycle)

    def _arbitrate(self, cycle):
        pending = self.pending_words(cycle)
        grant = self.arbiter.arbitrate(cycle, pending)
        if self.injector is not None:
            grant = self.injector.filter_grant(self, grant, pending, cycle)
        if grant is None:
            return
        if grant.master >= len(self.masters):
            raise BusProtocolError(
                "arbiter granted nonexistent master {}".format(grant.master)
            )
        if pending[grant.master] == 0:
            if self.injector is not None:
                # An injected spurious grant decoded to an idle master:
                # the bus-side protocol check catches it and the round
                # is wasted, but the simulation survives.
                self.metrics.faults.record_detected()
                return
            raise BusProtocolError(
                "arbiter granted idle master {} at cycle {}".format(
                    grant.master, cycle
                )
            )
        master = self.masters[grant.master]
        request = master.head()
        burst = min(request.remaining, self.max_burst)
        if grant.max_words is not None:
            burst = min(burst, grant.max_words)
        if self.preemptive:
            burst = 1
        slave = self.slaves[request.slave]
        request.attempt_granted = True
        if request.first_grant_cycle is None:
            request.first_grant_cycle = cycle
        setup = 0 if request.setup_done else slave.begin_burst()
        if self.split_transactions and setup > 0:
            # Post the address phase and release the bus: the slave
            # performs its setup off-bus while others transfer; the
            # request re-competes once ready.
            request.setup_done = True
            request.parked_until = cycle + setup
            self.metrics.record_grant(grant.master)
            return
        self._burst = _ActiveBurst(request, burst, slave)
        self._stall = self.arbitration_cycles + setup
        self.metrics.record_grant(grant.master)

    def _transfer_word(self, cycle):
        burst = self._burst
        request = burst.request
        request.remaining -= 1
        burst.words_left -= 1
        request.account_word(cycle)
        self.metrics.record_word(request.master)
        self._stall_run = 0
        self._stall = burst.slave.serve_word()
        if self.injector is not None:
            if self.injector.corrupt_word(self, request, cycle):
                request.fault_detected = True
            self._stall += self.injector.slave_stall(self, burst.slave, cycle)
        if request.complete:
            if request.fault_detected:
                # End-of-message integrity check failed (the CRC view of
                # the injected word errors): error-respond instead of
                # completing; the master retries or aborts per policy.
                self._burst = None
                self._complete_with_error(request, cycle)
                return
            request.completion_cycle = cycle
            master = self.masters[request.master]
            if hasattr(master, "retire"):
                master.retire(request)
            else:  # duck-typed master without the retry machinery
                master.pop()
            self.metrics.record_completion(request)
            if request.retries:
                self.metrics.faults.record_recovered(
                    cycle - request.arrival_cycle + 1
                )
            for hook in self._completion_hooks:
                hook(request, cycle)
            self._burst = None
        elif burst.words_left == 0:
            self._burst = None

    def _abort_burst(self, cycle):
        """Bus-timeout watchdog: abort the hung transfer, free the bus."""
        request = self._burst.request
        self._burst = None
        self._stall = 0
        self._stall_run = 0
        self.metrics.faults.record_timeout()
        self._complete_with_error(request, cycle)

    def _complete_with_error(self, request, cycle):
        """Deliver an error response to the issuing master."""
        faults = self.metrics.faults
        faults.record_detected()
        master = self.masters[request.master]
        if hasattr(master, "complete_with_error"):
            master.complete_with_error(request, cycle, faults=faults)
        else:  # duck-typed master without the retry machinery
            request.aborted = True
            if master.head() is request:
                master.pop()
            faults.record_aborted()
