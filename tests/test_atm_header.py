"""Tests for ATM header encoding and HEC protection."""

import pytest

from repro.atm.header import (
    compute_hec,
    crc8,
    decode_header,
    encode_header,
    locate_single_bit_error,
    verify,
)


def test_crc8_known_vectors():
    # CRC of all-zero input is zero; the generator is x^8+x^2+x+1.
    assert crc8([0, 0, 0, 0]) == 0
    # A single 0x01 in the last position passes through unreduced.
    assert crc8([0x00, 0x00, 0x00, 0x01]) == 0x07


def test_crc8_rejects_bad_octets():
    with pytest.raises(ValueError):
        crc8([256])


def test_hec_includes_coset():
    assert compute_hec([0, 0, 0, 0]) == 0x55


def test_encode_decode_round_trip():
    header = encode_header(vpi=42, vci=4097, pt=3, clp=1, gfc=2)
    assert len(header) == 5
    fields = decode_header(header)
    assert fields == {"gfc": 2, "vpi": 42, "vci": 4097, "pt": 3, "clp": 1}


@pytest.mark.parametrize(
    "kwargs",
    [
        {"vpi": 256, "vci": 0},
        {"vpi": 0, "vci": 1 << 16},
        {"vpi": 0, "vci": 0, "pt": 8},
        {"vpi": 0, "vci": 0, "clp": 2},
        {"vpi": 0, "vci": 0, "gfc": 16},
    ],
)
def test_encode_validation(kwargs):
    with pytest.raises(ValueError):
        encode_header(**kwargs)


def test_verify_detects_corruption():
    header = encode_header(vpi=1, vci=2)
    assert verify(header)
    corrupted = list(header)
    corrupted[2] ^= 0x10
    assert not verify(corrupted)
    with pytest.raises(ValueError):
        decode_header(corrupted)


def test_every_single_bit_error_detected_and_located():
    header = encode_header(vpi=77, vci=1234, pt=1)
    for index in range(5):
        for bit in range(8):
            corrupted = list(header)
            corrupted[index] ^= 1 << bit
            assert not verify(corrupted)
            assert locate_single_bit_error(corrupted) == (index, bit)


def test_locate_returns_none_for_valid_header():
    assert locate_single_bit_error(encode_header(vpi=1, vci=1)) is None


def test_header_length_enforced():
    with pytest.raises(ValueError):
        verify([0, 0, 0, 0])
    with pytest.raises(ValueError):
        decode_header([0] * 6)
    with pytest.raises(ValueError):
        compute_hec([0] * 5)
