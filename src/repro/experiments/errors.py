"""Structured error taxonomy for the campaign engine.

The supervisor used to thread failure *strings* through its retry and
reporting paths, which meant behaviour ("is this retryable?", "which
exit code?") hung off substring matching.  Every failure is now a typed
:class:`CampaignError`; the type carries the policy:

``kind``
    a stable machine-readable tag, written into result-store records
    (``error_kind``) and appended to event-log lines, so logs and CI
    asserts key on types instead of prose;
``retryable``
    whether the supervisor may re-dispatch the task;
``counts_as_crash``
    whether the failure consumed a worker process — these feed the
    poison-task quarantine counter and the pool circuit breaker, while
    in-task exceptions (the worker survived) do not.

:class:`CampaignDrained` is control flow, not a task failure: raised by
:meth:`Supervisor.run` after a SIGTERM drain so callers can distinguish
"shut down cleanly, resume later" (exit code 143) from "tasks failed"
(exit code 1).
"""


class CampaignError(Exception):
    """Base class for one task's failure inside a campaign."""

    kind = "campaign-error"
    #: May the supervisor schedule another attempt?
    retryable = True
    #: Did this failure cost a worker process (feeds quarantine/breaker)?
    counts_as_crash = False


class WorkerCrashError(CampaignError):
    """The worker process serving the task died (signal, OOM, exit)."""

    kind = "worker-crash"
    counts_as_crash = True


class TaskTimeoutError(CampaignError):
    """The task exceeded its wall-clock budget; its worker was killed."""

    kind = "task-timeout"
    counts_as_crash = True


class TaskError(CampaignError):
    """The task raised inside a healthy worker (reported, not fatal)."""

    kind = "task-error"


class QuarantinedTaskError(CampaignError):
    """The task crashed ``quarantine_after`` consecutive workers.

    A poison task — one that deterministically kills whatever process
    runs it — must not be retried forever: after a bounded number of
    respawns it is quarantined, reported as failed, and the campaign
    moves on.
    """

    kind = "quarantined"
    retryable = False


class StoreCorruptionError(CampaignError):
    """A persistent store is unreadable beyond what recovery handles."""

    kind = "store-corruption"
    retryable = False


class CampaignDrained(Exception):
    """The supervisor drained after SIGTERM; resume to continue.

    :param outcomes: ``{name: TaskOutcome}`` for tasks settled before
        the drain completed.
    :param pending: names of tasks that never settled (rerun on
        ``--resume``).
    """

    def __init__(self, outcomes, pending):
        self.outcomes = outcomes
        self.pending = list(pending)
        super().__init__(
            "campaign drained after SIGTERM: {} task(s) settled, "
            "{} deferred".format(len(outcomes), len(self.pending))
        )
