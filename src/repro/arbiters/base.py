"""The arbiter interface."""

from repro.sim.snapshot import Snapshottable


class Arbiter(Snapshottable):
    """Decides which pending master owns the bus next.

    The bus calls :meth:`arbitrate` once per cycle while it is free,
    passing the per-master pending word counts (0 = no request).  The
    arbiter returns a :class:`~repro.bus.transaction.Grant` or ``None``
    for an idle cycle.  Arbiters with internal clocked state (the TDMA
    timing wheel, a token) advance that state per call, which the bus
    guarantees happens exactly once per free cycle.

    Arbiters carry the checkpoint protocol (see
    :mod:`repro.sim.snapshot`): clocked state is declared in
    ``state_attrs``/``state_children`` so the owning bus can include the
    arbiter in a simulation checkpoint.
    """

    name = "abstract"

    def __init__(self, num_masters):
        if num_masters < 1:
            raise ValueError("need at least one master")
        self.num_masters = num_masters

    def arbitrate(self, cycle, pending):
        raise NotImplementedError

    def reset(self):
        """Return clocked arbiter state to power-on; default no-op."""

    def _check_pending(self, pending):
        if len(pending) != self.num_masters:
            raise ValueError(
                "pending vector has {} entries for {} masters".format(
                    len(pending), self.num_masters
                )
            )

    def __repr__(self):
        return "{}(num_masters={})".format(type(self).__name__, self.num_masters)
