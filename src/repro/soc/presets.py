"""Ready-made system specifications.

Each preset is a plain dict consumable by
:func:`repro.soc.config.build_system` — a starting point for users who
want to tweak the paper's systems without writing Python.
"""

import copy


def _testbed(arbiter):
    """The 4-master performance test-bed with saturating traffic."""
    return {
        "name": "testbed",
        "seed": 1,
        "bus": {
            "arbiter": arbiter,
            "weights": [1, 2, 3, 4],
            "max_burst": 16,
        },
        "slaves": [{"name": "shared_mem"}],
        "masters": [
            {
                "name": "m{}".format(i + 1),
                "traffic": {
                    "kind": "closedloop",
                    "words": {"kind": "uniform", "low": 1, "high": 4},
                },
            }
            for i in range(4)
        ],
    }


PRESETS = {
    "testbed-lottery": _testbed("lottery-static"),
    "testbed-tdma": _testbed("tdma"),
    "testbed-priority": _testbed("static-priority"),
    "bursty-lottery": {
        "name": "bursty",
        "seed": 1,
        "bus": {"arbiter": "lottery-static", "weights": [1, 2, 3, 4]},
        "slaves": [{"name": "shared_mem"}],
        "masters": [
            {
                "name": "m{}".format(i + 1),
                "traffic": {
                    "kind": "onoff",
                    "words": {"kind": "fixed", "words": 4},
                    "on_rate": 0.15,
                    "mean_on": 80,
                    "mean_off": 600,
                },
            }
            for i in range(4)
        ],
    },
}


def get_preset(name):
    """A deep copy of a named preset (safe to mutate)."""
    try:
        return copy.deepcopy(PRESETS[name])
    except KeyError:
        raise ValueError(
            "unknown preset {!r}; available: {}".format(name, sorted(PRESETS))
        )
