"""Tests for the CLI and the experiment runner registry."""

import pytest

from repro.cli import main
from repro.experiments.runner import (
    experiment_names,
    format_full_report,
    run_all,
    run_experiment,
)


def test_list_prints_experiment_ids(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in experiment_names():
        assert name in out


def test_figure8_runs_instantly(capsys):
    assert main(["figure8"]) == 0
    assert "winner" in capsys.readouterr().out


def test_unknown_experiment_fails_cleanly(capsys):
    assert main(["figure99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_output_file_written(tmp_path, capsys):
    path = tmp_path / "report.txt"
    assert main(["hardware", "--output", str(path)]) == 0
    assert "cell grids" in path.read_text()


def test_scale_reduces_runtime(capsys):
    assert main(["figure5", "--scale", "0.05"]) == 0
    assert "Figure 5" in capsys.readouterr().out


def test_run_experiment_rejects_unknown():
    with pytest.raises(ValueError):
        run_experiment("nope")


def test_run_all_subset_and_report():
    results = run_all(scale=0.02, names=["figure8", "hardware"])
    assert set(results) == {"figure8", "hardware"}
    report = format_full_report(results)
    assert "[figure8]" in report
    assert "[hardware]" in report


def test_faultsweep_cli_with_fault_rate(capsys):
    assert main(["faultsweep", "--scale", "0.05", "--fault-rate", "0.005"]) == 0
    out = capsys.readouterr().out
    assert "Fault sweep" in out
    assert "no-retry control" in out


def test_fault_rate_rejected_for_other_experiments(capsys):
    assert main(["figure8", "--fault-rate", "0.01"]) == 2
    assert "faultsweep" in capsys.readouterr().err


def test_fault_rate_rejected_for_all(capsys):
    assert main(["all", "--fault-rate", "0.01"]) == 2
    assert "faultsweep" in capsys.readouterr().err


def test_run_experiment_rejects_stray_options():
    with pytest.raises(ValueError):
        run_experiment("figure8", fault_rates=(0.0, 0.1))


def test_screen_rejected_for_other_experiments(capsys):
    assert main(["figure8", "--screen"]) == 2
    assert "--screen applies only to the sweep" in capsys.readouterr().err


def test_screen_top_k_requires_screen(capsys):
    assert main(["sweep", "--screen-top-k", "4"]) == 2
    assert "--screen-top-k requires --screen" in capsys.readouterr().err


def test_screen_top_k_must_be_positive(capsys):
    assert main(["sweep", "--screen", "--screen-top-k", "0"]) == 2
    assert "--screen-top-k must be >= 1" in capsys.readouterr().err


def test_screened_sweep_runs_end_to_end(capsys):
    assert main(["sweep", "--screen", "--scale", "0.04"]) == 0
    out = capsys.readouterr().out
    assert "Screened sweep frontier" in out
    assert "funnel:" in out


def test_bad_scale_rejected_with_one_line_error(capsys):
    assert main(["table1", "--scale", "-1"]) == 2
    err = capsys.readouterr().err
    assert "--scale" in err
    assert "Traceback" not in err


def test_bad_seed_rejected_with_one_line_error(capsys):
    assert main(["table1", "--seed", "-3"]) == 2
    err = capsys.readouterr().err
    assert "--seed" in err


def test_bad_jobs_and_supervision_flags_rejected(capsys):
    assert main(["all", "--jobs", "0"]) == 2
    assert "--jobs" in capsys.readouterr().err
    assert main(["all", "--timeout", "0"]) == 2
    assert "--timeout" in capsys.readouterr().err
    assert main(["all", "--retries", "-1"]) == 2
    assert "--retries" in capsys.readouterr().err
    assert main(["all", "--checkpoint-every", "0"]) == 2
    assert "--checkpoint-every" in capsys.readouterr().err


def test_keyboard_interrupt_exits_130(monkeypatch, capsys):
    def interrupted(**kwargs):
        raise KeyboardInterrupt()

    monkeypatch.setattr("repro.cli.run_all", interrupted)
    assert main(["all"]) == 130
    err = capsys.readouterr().err
    assert "interrupted" in err
    assert "Traceback" not in err


def test_seedless_experiments_warn_on_scale_or_seed():
    with pytest.warns(RuntimeWarning, match="deterministic"):
        run_experiment("figure8", scale=0.5)
    with pytest.warns(RuntimeWarning, match="deterministic"):
        run_experiment("hardware", seed=9)


def test_checkpointed_table1_resume_prints_skipped(tmp_path, capsys):
    directory = str(tmp_path / "ck")
    args = [
        "table1",
        "--scale", "0.01",
        "--checkpoint-dir", directory,
        "--checkpoint-every", "1000",
    ]
    assert main(args) == 0
    first = capsys.readouterr().out
    assert main(args + ["--resume"]) == 0
    captured = capsys.readouterr()
    assert captured.out == first
    assert "skipping stage" in captured.err


def test_checkpoint_flags_on_unaware_experiment_note_and_run(capsys):
    assert main(["figure8", "--checkpoint-every", "1000"]) == 0
    captured = capsys.readouterr()
    assert "does not support checkpointing" in captured.err
    assert "winner" in captured.out


def test_experiment_names_cover_all_paper_artifacts():
    names = experiment_names()
    for artifact in (
        "figure4",
        "figure5",
        "figure6a",
        "figure6b",
        "figure8",
        "figure12a",
        "figure12b",
        "figure12c",
        "table1",
        "hardware",
        "starvation",
    ):
        assert artifact in names


def test_cache_max_mb_flag_validation(capsys):
    assert main(["all", "--cache-max-mb", "0"]) == 2
    assert "--cache-max-mb" in capsys.readouterr().err
    assert main(["all", "--no-cache", "--cache-max-mb", "10"]) == 2
    assert "--cache-max-mb" in capsys.readouterr().err
