"""Fault schedules and recovery policies.

A :class:`FaultPlan` is pure configuration: per-event probabilities and
window lengths for every fault channel the injector knows how to drive.
A :class:`RetryPolicy` is the master-side answer: how many times to
re-issue an error-completed transfer, how long to wait before declaring
a pending request hung, and how to space the retries (exponential
backoff with jitter drawn from the simulation RNG, so runs stay
reproducible).
"""


class FaultPlan:
    """Declarative fault rates for a :class:`~repro.faults.FaultInjector`.

    All ``*_rate`` parameters are per-event probabilities in ``[0, 1]``:
    per transferred word for ``word_error_rate`` and
    ``slave_stall_rate``, per issued grant for the grant faults, per
    cycle for the window faults (LFSR stuck-at, ticket-channel outage)
    and per forwarded message for ``bridge_loss_rate``.

    :param word_error_rate: probability a transferred word is corrupted
        in flight (detected at end of message, like a CRC check).
    :param slave_stall_rate: probability a served word incurs extra
        transient wait states.
    :param slave_stall_cycles: ``(low, high)`` inclusive range of extra
        stall cycles per slave-stall event.
    :param grant_drop_rate: probability an arbiter grant is lost on the
        grant lines (one idle cycle; the request re-competes).
    :param grant_spurious_rate: probability the grant decodes to a
        random master instead of the winner; if that master is idle the
        bus-side protocol check catches it (a *detected* fault).
    :param lfsr_stuck_rate: per-cycle probability a lottery manager's
        random source wedges at a constant value.
    :param lfsr_stuck_cycles: length of a stuck window.
    :param ticket_outage_rate: per-cycle probability the dynamic lottery
        manager's ticket-update channel goes down (graceful degradation:
        the manager keeps serving from its last-known table).
    :param ticket_outage_cycles: length of a ticket-channel outage.
    :param bridge_loss_rate: probability a bridge-forwarded message is
        lost in the bridge FIFO (the bridge retransmits it).
    :param bridge_retry_delay: cycles before a lost forward is
        retransmitted.
    """

    KINDS = (
        "word_error",
        "slave_stall",
        "grant_drop",
        "grant_spurious",
        "lfsr_stuck",
        "ticket_outage",
        "bridge_loss",
    )

    def __init__(
        self,
        word_error_rate=0.0,
        slave_stall_rate=0.0,
        slave_stall_cycles=(1, 8),
        grant_drop_rate=0.0,
        grant_spurious_rate=0.0,
        lfsr_stuck_rate=0.0,
        lfsr_stuck_cycles=32,
        ticket_outage_rate=0.0,
        ticket_outage_cycles=64,
        bridge_loss_rate=0.0,
        bridge_retry_delay=4,
    ):
        rates = {
            "word_error_rate": word_error_rate,
            "slave_stall_rate": slave_stall_rate,
            "grant_drop_rate": grant_drop_rate,
            "grant_spurious_rate": grant_spurious_rate,
            "lfsr_stuck_rate": lfsr_stuck_rate,
            "ticket_outage_rate": ticket_outage_rate,
            "bridge_loss_rate": bridge_loss_rate,
        }
        for name, rate in rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ValueError("{} must lie in [0, 1]".format(name))
        low, high = slave_stall_cycles
        if not 1 <= low <= high:
            raise ValueError("slave_stall_cycles must satisfy 1 <= low <= high")
        if lfsr_stuck_cycles < 1 or ticket_outage_cycles < 1:
            raise ValueError("fault windows must last at least one cycle")
        if bridge_retry_delay < 1:
            raise ValueError("bridge_retry_delay must be >= 1")
        self.word_error_rate = word_error_rate
        self.slave_stall_rate = slave_stall_rate
        self.slave_stall_cycles = (low, high)
        self.grant_drop_rate = grant_drop_rate
        self.grant_spurious_rate = grant_spurious_rate
        self.lfsr_stuck_rate = lfsr_stuck_rate
        self.lfsr_stuck_cycles = lfsr_stuck_cycles
        self.ticket_outage_rate = ticket_outage_rate
        self.ticket_outage_cycles = ticket_outage_cycles
        self.bridge_loss_rate = bridge_loss_rate
        self.bridge_retry_delay = bridge_retry_delay

    @classmethod
    def uniform(cls, rate, **overrides):
        """One-knob plan: apply ``rate`` across every fault channel.

        Per-event channels (word errors, slave stalls, grant faults,
        bridge losses) get ``rate`` directly; window faults (stuck LFSR,
        ticket outages) get ``rate / 8`` since each event disrupts many
        cycles.  Keyword overrides replace individual parameters.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must lie in [0, 1]")
        params = {
            "word_error_rate": rate,
            "slave_stall_rate": rate,
            "grant_drop_rate": rate,
            "grant_spurious_rate": rate / 2.0,
            "lfsr_stuck_rate": rate / 8.0,
            "ticket_outage_rate": rate / 8.0,
            "bridge_loss_rate": rate,
        }
        params.update(overrides)
        return cls(**params)

    @property
    def active(self):
        """True if any fault channel has a nonzero rate."""
        return any(
            (
                self.word_error_rate,
                self.slave_stall_rate,
                self.grant_drop_rate,
                self.grant_spurious_rate,
                self.lfsr_stuck_rate,
                self.ticket_outage_rate,
                self.bridge_loss_rate,
            )
        )

    def __repr__(self):
        return (
            "FaultPlan(word_error={}, slave_stall={}, grant_drop={}, "
            "grant_spurious={}, lfsr_stuck={}, ticket_outage={}, "
            "bridge_loss={})".format(
                self.word_error_rate,
                self.slave_stall_rate,
                self.grant_drop_rate,
                self.grant_spurious_rate,
                self.lfsr_stuck_rate,
                self.ticket_outage_rate,
                self.bridge_loss_rate,
            )
        )


class RetryPolicy:
    """Master-side recovery policy for error-completed transfers.

    :param max_retries: attempts after the first before the request is
        aborted (0 disables retries entirely: the first error aborts).
    :param timeout: cycles a queued-but-never-granted request may wait
        (per attempt) before the master error-completes it; ``None``
        disables the request timeout.  Requests whose current attempt
        has already been granted are left to the bus's own
        ``bus_timeout`` watchdog, which owns mid-burst hangs.
    :param backoff_base: cycles of backoff after the first error.
    :param backoff_factor: multiplier applied per subsequent retry
        (exponential backoff).
    :param max_backoff: cap on the deterministic part of the delay.
    :param jitter: fraction of the deterministic delay added as uniform
        random jitter (0 disables; randomness comes from the master's
        seeded retry stream, so runs are reproducible).
    """

    def __init__(
        self,
        max_retries=8,
        timeout=None,
        backoff_base=8,
        backoff_factor=2.0,
        max_backoff=512,
        jitter=0.5,
    ):
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if timeout is not None and timeout < 1:
            raise ValueError("timeout must be >= 1 when given")
        if backoff_base < 1:
            raise ValueError("backoff_base must be >= 1")
        if backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1.0")
        if max_backoff < backoff_base:
            raise ValueError("max_backoff must be >= backoff_base")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError("jitter must lie in [0, 1]")
        self.max_retries = max_retries
        self.timeout = timeout
        self.backoff_base = backoff_base
        self.backoff_factor = backoff_factor
        self.max_backoff = max_backoff
        self.jitter = jitter

    @classmethod
    def disabled(cls, **kwargs):
        """A policy that aborts on the first error (no retries)."""
        kwargs.setdefault("max_retries", 0)
        return cls(**kwargs)

    def delay(self, attempt, rng=None):
        """Backoff cycles before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        base = self.backoff_base * self.backoff_factor ** (attempt - 1)
        base = min(base, self.max_backoff)
        if self.jitter and rng is not None:
            base += base * self.jitter * rng.random()
        return max(1, int(base))

    def __repr__(self):
        return (
            "RetryPolicy(max_retries={}, timeout={}, backoff_base={}, "
            "backoff_factor={}, max_backoff={}, jitter={})".format(
                self.max_retries,
                self.timeout,
                self.backoff_base,
                self.backoff_factor,
                self.max_backoff,
                self.jitter,
            )
        )
