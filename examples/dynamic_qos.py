"""Dynamic LOTTERYBUS: a run-time bandwidth controller.

The paper's dynamic variant lets components re-communicate their ticket
holdings at run time (Section 4.4) but leaves the control policy to the
designer.  This example builds one: a feedback controller samples each
master's achieved bandwidth share once per epoch and nudges its tickets
toward a target share — so the system tracks QoS targets even as the
offered traffic mix shifts mid-run.

Phase 1: all masters saturate; targets 40/30/20/10.
Phase 2 (mid-run): the targets flip to 10/20/30/40.

Run:  python examples/dynamic_qos.py
"""

from repro import DynamicLotteryArbiter, build_single_bus_system
from repro.metrics.report import format_table
from repro.sim.component import Component
from repro.traffic import get_traffic_class

EPOCH = 2_000
PHASE_CYCLES = 150_000
PHASE1_TARGETS = [0.4, 0.3, 0.2, 0.1]
PHASE2_TARGETS = [0.1, 0.2, 0.3, 0.4]


class BandwidthController(Component):
    """Proportional controller from measured shares to ticket updates."""

    def __init__(self, name, bus, arbiter, targets, gain=60, floor=1, cap=255):
        super().__init__(name)
        self.bus = bus
        self.arbiter = arbiter
        self.targets = list(targets)
        self.gain = gain
        self.floor = floor
        self.cap = cap
        self._last_words = [0] * len(targets)

    def set_targets(self, targets):
        self.targets = list(targets)

    def tick(self, cycle):
        if cycle == 0 or cycle % EPOCH:
            return
        words = [m.words for m in self.bus.metrics.masters]
        delta = [now - before for now, before in zip(words, self._last_words)]
        self._last_words = words
        moved = sum(delta)
        if moved == 0:
            return
        for master, target in enumerate(self.targets):
            error = target - delta[master] / moved
            current = self.arbiter.tickets[master]
            updated = min(self.cap, max(self.floor,
                                        round(current + self.gain * error)))
            self.arbiter.set_tickets(master, updated)


def shares_since(bus, snapshot):
    words = [m.words for m in bus.metrics.masters]
    delta = [now - before for now, before in zip(words, snapshot)]
    total = sum(delta)
    return [d / total for d in delta]


def main():
    arbiter = DynamicLotteryArbiter(tickets=[1, 1, 1, 1])
    system, bus = build_single_bus_system(
        4, arbiter, get_traffic_class("T8").generator_factory(seed=3)
    )
    controller = BandwidthController("qos", bus, arbiter, PHASE1_TARGETS)
    system.add_generator(controller)

    system.run(PHASE_CYCLES)
    snapshot = [m.words for m in bus.metrics.masters]
    phase1 = shares_since(bus, [0] * 4)

    controller.set_targets(PHASE2_TARGETS)
    system.run(PHASE_CYCLES)
    phase2 = shares_since(bus, snapshot)

    rows = []
    for master in range(4):
        rows.append(
            [
                "C{}".format(master + 1),
                "{:.0%}".format(PHASE1_TARGETS[master]),
                "{:.1%}".format(phase1[master]),
                "{:.0%}".format(PHASE2_TARGETS[master]),
                "{:.1%}".format(phase2[master]),
                arbiter.tickets[master],
            ]
        )
    print(
        format_table(
            [
                "master",
                "phase-1 target",
                "phase-1 measured",
                "phase-2 target",
                "phase-2 measured",
                "final tickets",
            ],
            rows,
            title="Run-time QoS control over the dynamic lottery manager",
        )
    )


if __name__ == "__main__":
    main()
