# lb: module=repro.experiments.fixture_bad
"""LB105 true positives: seedless, None-defaulted and dropped seeds."""


def run_seedless_sweep(cycles=1000, scale=1.0):
    return cycles * scale


def run_none_seeded(cycles=1000, seed=None):
    return (cycles, seed)


def run_dropped_seed(cycles=1000, seed=1):
    # Accepts a seed but never threads it into anything.
    return cycles * 2
