"""VectorLFSR: per-lane streams must equal the scalar LFSR bit-for-bit."""

import pytest

from repro.core.lfsr import LFSR
from repro.vector.lfsr import VectorLFSR

np = pytest.importorskip("numpy")


def _bank(widths, seeds, block_size):
    scalars = [
        LFSR(width, seed=seed) for width, seed in zip(widths, seeds)
    ]
    bank = VectorLFSR(
        np,
        [lfsr.jump_masks for lfsr in scalars],
        [lfsr.state for lfsr in scalars],
        block_size=block_size,
    )
    return scalars, bank


@pytest.mark.parametrize("block_size", [1, 3, 32])
def test_all_lanes_match_scalar_streams(block_size):
    widths = [2, 5, 8, 16, 16, 24, 32]
    seeds = [1, 3, 9, 1, 77, 5, 123456]
    scalars, bank = _bank(widths, seeds, block_size)
    every = np.arange(len(widths))
    for _ in range(50):
        values = bank.consume(every)
        expected = [lfsr.sample() for lfsr in scalars]
        assert values.tolist() == expected
    assert bank.state.tolist() == [lfsr.state for lfsr in scalars]


def test_partial_consumption_keeps_lanes_independent():
    # Lanes draw at different rates (only arbitrating lanes consume);
    # block refills must continue each stream exactly regardless of how
    # much of the previous block other lanes used.
    widths = [16, 16, 8, 24]
    seeds = [1, 2, 3, 4]
    scalars, bank = _bank(widths, seeds, block_size=4)
    schedule = [
        [0], [0, 1], [2], [0, 1, 2, 3], [3], [0], [1, 2], [0, 3],
        [0, 1, 2], [2, 3], [0], [1], [0, 1, 2, 3], [3, 0], [2],
    ]
    counts = [0, 0, 0, 0]
    for lanes in schedule:
        lanes = sorted(lanes)
        values = bank.consume(np.array(lanes))
        expected = [scalars[lane].sample() for lane in lanes]
        assert values.tolist() == expected
        for lane in lanes:
            counts[lane] += 1
    assert bank.state.tolist() == [lfsr.state for lfsr in scalars]
    assert counts != [counts[0]] * 4  # rates genuinely diverged


def test_single_lane_bank():
    scalars, bank = _bank([16], [42], block_size=8)
    lane = np.array([0])
    stream = [int(bank.consume(lane)[0]) for _ in range(30)]
    assert stream == [scalars[0].sample() for _ in range(30)]


def test_rejects_mismatched_inputs():
    with pytest.raises(ValueError):
        VectorLFSR(np, [(1, 2)], [1, 2])
    with pytest.raises(ValueError):
        VectorLFSR(np, [(1, 2)], [1], block_size=0)
